//! Classic queueing formulas.
//!
//! Notation: arrival rate `λ`, service rate `μ`, servers `c`, utilization
//! `ρ = λ/(cμ)`; `W` = mean time in system, `Wq` = mean wait in queue,
//! `L`/`Lq` the corresponding mean counts (Little's law: `L = λW`).

use wt_dist::Dist;

/// The M/M/1 queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1 {
    /// Arrival rate, 1/s.
    pub lambda: f64,
    /// Service rate, 1/s.
    pub mu: f64,
}

impl Mm1 {
    /// A stable M/M/1 queue (`λ < μ`).
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(lambda > 0.0 && mu > 0.0, "rates must be positive");
        assert!(lambda < mu, "unstable queue: λ={lambda} ≥ μ={mu}");
        Mm1 { lambda, mu }
    }

    /// Utilization ρ.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Mean number in system, `L = ρ/(1−ρ)`.
    pub fn l(&self) -> f64 {
        let r = self.rho();
        r / (1.0 - r)
    }

    /// Mean number in queue, `Lq = ρ²/(1−ρ)`.
    pub fn lq(&self) -> f64 {
        let r = self.rho();
        r * r / (1.0 - r)
    }

    /// Mean time in system, `W = 1/(μ−λ)`.
    pub fn w(&self) -> f64 {
        1.0 / (self.mu - self.lambda)
    }

    /// Mean wait in queue, `Wq = ρ/(μ−λ)`.
    pub fn wq(&self) -> f64 {
        self.rho() / (self.mu - self.lambda)
    }

    /// Steady-state probability of exactly `n` customers.
    pub fn p_n(&self, n: u32) -> f64 {
        let r = self.rho();
        (1.0 - r) * r.powi(n as i32)
    }

    /// The `q`-quantile of time in system (exponential with rate `μ−λ`).
    pub fn w_quantile(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q));
        -(1.0 - q).ln() / (self.mu - self.lambda)
    }
}

/// The M/M/c queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mmc {
    /// Arrival rate, 1/s.
    pub lambda: f64,
    /// Per-server service rate, 1/s.
    pub mu: f64,
    /// Servers.
    pub c: u32,
}

impl Mmc {
    /// A stable M/M/c queue (`λ < cμ`).
    pub fn new(lambda: f64, mu: f64, c: u32) -> Self {
        assert!(lambda > 0.0 && mu > 0.0 && c >= 1);
        assert!(lambda < mu * f64::from(c), "unstable queue");
        Mmc { lambda, mu, c }
    }

    /// Utilization per server.
    pub fn rho(&self) -> f64 {
        self.lambda / (self.mu * f64::from(self.c))
    }

    /// Offered load in Erlangs, `a = λ/μ`.
    pub fn offered(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Erlang-C probability that an arrival waits.
    pub fn p_wait(&self) -> f64 {
        erlang_c(self.c, self.offered())
    }

    /// Mean wait in queue.
    pub fn wq(&self) -> f64 {
        self.p_wait() / (f64::from(self.c) * self.mu - self.lambda)
    }

    /// Mean time in system.
    pub fn w(&self) -> f64 {
        self.wq() + 1.0 / self.mu
    }

    /// Mean queue length.
    pub fn lq(&self) -> f64 {
        self.lambda * self.wq()
    }

    /// Mean number in system.
    pub fn l(&self) -> f64 {
        self.lambda * self.w()
    }

    /// The `q`-quantile of the queue wait. Conditional on waiting, the
    /// M/M/c wait is exponential with rate `cμ−λ`, so
    /// `P(Wq > t) = C(c, a)·e^{−(cμ−λ)t}` and the quantile is
    /// `max(0, (ln C − ln(1−q)) / (cμ−λ))` — zero whenever the no-wait
    /// mass `1−C` already covers `q`.
    pub fn wq_quantile(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q));
        let c = self.p_wait();
        let rate = f64::from(self.c) * self.mu - self.lambda;
        ((c.ln() - (1.0 - q).ln()) / rate).max(0.0)
    }
}

/// The M/G/1 queue via Pollaczek–Khinchine.
#[derive(Debug, Clone)]
pub struct Mg1 {
    /// Arrival rate, 1/s.
    pub lambda: f64,
    /// Service-time distribution, seconds.
    pub service: Dist,
}

impl Mg1 {
    /// A stable M/G/1 queue (`λ·E[S] < 1`).
    pub fn new(lambda: f64, service: Dist) -> Self {
        assert!(lambda > 0.0);
        let rho = lambda * service.mean();
        assert!(rho < 1.0, "unstable queue: ρ = {rho}");
        Mg1 { lambda, service }
    }

    /// Utilization.
    pub fn rho(&self) -> f64 {
        self.lambda * self.service.mean()
    }

    /// Mean wait in queue: `Wq = λ E[S²] / (2(1−ρ))`.
    pub fn wq(&self) -> f64 {
        let es = self.service.mean();
        let es2 = self.service.variance() + es * es;
        self.lambda * es2 / (2.0 * (1.0 - self.rho()))
    }

    /// Mean time in system.
    pub fn w(&self) -> f64 {
        self.wq() + self.service.mean()
    }

    /// Mean number in system (Little).
    pub fn l(&self) -> f64 {
        self.lambda * self.w()
    }
}

/// Erlang-B blocking probability for `c` servers at `a` Erlangs offered,
/// by the numerically stable recurrence.
pub fn erlang_b(c: u32, a: f64) -> f64 {
    assert!(a > 0.0);
    let mut b = 1.0f64;
    for k in 1..=c {
        b = a * b / (f64::from(k) + a * b);
    }
    b
}

/// Erlang-C probability of waiting for `c` servers at `a` Erlangs offered
/// (requires `a < c` for stability).
pub fn erlang_c(c: u32, a: f64) -> f64 {
    assert!(a < f64::from(c), "Erlang C requires a < c");
    let b = erlang_b(c, a);
    let rho = a / f64::from(c);
    b / (1.0 - rho + rho * b)
}

/// The staffing question inverted: the minimum number of servers for
/// which the M/M/c mean queue wait stays at or below `max_wq` seconds.
/// The paper's hardware-provisioning use case (§3) in closed form, used
/// to sanity-check the simulator's answers.
pub fn min_servers_for_wait(lambda: f64, mu: f64, max_wq: f64) -> u32 {
    assert!(lambda > 0.0 && mu > 0.0 && max_wq >= 0.0);
    let mut c = (lambda / mu).ceil().max(1.0) as u32;
    loop {
        if lambda < mu * f64::from(c) && Mmc::new(lambda, mu, c).wq() <= max_wq {
            return c;
        }
        c += 1;
        assert!(c < 100_000, "staffing search diverged");
    }
}

/// Kingman's G/G/1 heavy-traffic approximation for the mean queue wait:
/// `Wq ≈ (ρ/(1−ρ)) · ((ca² + cs²)/2) · E[S]`, with `ca²`/`cs²` the squared
/// coefficients of variation of interarrival and service times.
pub fn kingman_gg1(lambda: f64, ca2: f64, mean_service: f64, cs2: f64) -> f64 {
    let rho = lambda * mean_service;
    assert!(rho < 1.0, "unstable queue");
    (rho / (1.0 - rho)) * ((ca2 + cs2) / 2.0) * mean_service
}

/// Allen–Cunneen G/G/c approximation: scales the M/M/c wait by the
/// variability factor `(ca² + cs²)/2`.
pub fn allen_cunneen_ggc(lambda: f64, c: u32, mean_service: f64, ca2: f64, cs2: f64) -> f64 {
    let mu = 1.0 / mean_service;
    let mmc = Mmc::new(lambda, mu, c);
    mmc.wq() * (ca2 + cs2) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_textbook_example() {
        // λ=8, μ=10: ρ=0.8, L=4, W=0.5, Wq=0.4, Lq=3.2.
        let q = Mm1::new(8.0, 10.0);
        assert!((q.rho() - 0.8).abs() < 1e-12);
        assert!((q.l() - 4.0).abs() < 1e-12);
        assert!((q.w() - 0.5).abs() < 1e-12);
        assert!((q.wq() - 0.4).abs() < 1e-12);
        assert!((q.lq() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn mm1_littles_law() {
        let q = Mm1::new(3.0, 7.0);
        assert!((q.l() - q.lambda * q.w()).abs() < 1e-12);
        assert!((q.lq() - q.lambda * q.wq()).abs() < 1e-12);
    }

    #[test]
    fn mm1_state_probabilities_sum() {
        let q = Mm1::new(5.0, 8.0);
        let total: f64 = (0..200).map(|n| q.p_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((q.p_n(0) - (1.0 - q.rho())).abs() < 1e-12);
    }

    #[test]
    fn mm1_quantile() {
        let q = Mm1::new(5.0, 10.0);
        // Median of Exp(5) is ln2/5.
        assert!((q.w_quantile(0.5) - 2f64.ln() / 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_mm1_rejected() {
        let _ = Mm1::new(10.0, 10.0);
    }

    #[test]
    fn mmc_reduces_to_mm1() {
        let m1 = Mm1::new(4.0, 10.0);
        let mc = Mmc::new(4.0, 10.0, 1);
        assert!((mc.wq() - m1.wq()).abs() < 1e-12);
        assert!((mc.w() - m1.w()).abs() < 1e-12);
    }

    #[test]
    fn mmc_textbook_example() {
        // Classic: λ=2/min, μ=1.5/min, c=2 → ρ=2/3, P(wait)=8/15? Let's use
        // the standard result: a = 4/3, c = 2.
        let q = Mmc::new(2.0, 1.5, 2);
        // Erlang C for c=2, a=4/3: C = B/(1-ρ+ρB); B = a²/2 / (1+a+a²/2).
        let a: f64 = 4.0 / 3.0;
        let b = (a * a / 2.0) / (1.0 + a + a * a / 2.0);
        let rho = a / 2.0;
        let want = b / (1.0 - rho + rho * b);
        assert!((q.p_wait() - want).abs() < 1e-12);
        assert!(q.wq() > 0.0 && q.w() > q.wq());
    }

    #[test]
    fn more_servers_less_wait() {
        let w2 = Mmc::new(10.0, 6.0, 2).wq();
        let w4 = Mmc::new(10.0, 6.0, 4).wq();
        let w8 = Mmc::new(10.0, 6.0, 8).wq();
        assert!(w2 > w4 && w4 > w8);
    }

    #[test]
    fn mg1_with_exponential_service_equals_mm1() {
        let q = Mg1::new(4.0, Dist::exponential(10.0));
        let m = Mm1::new(4.0, 10.0);
        assert!((q.wq() - m.wq()).abs() < 1e-10);
        assert!((q.w() - m.w()).abs() < 1e-10);
    }

    #[test]
    fn mg1_deterministic_service_halves_wait() {
        // M/D/1 waits are half of M/M/1 at the same rates.
        let md1 = Mg1::new(4.0, Dist::deterministic(0.1));
        let mm1 = Mm1::new(4.0, 10.0);
        assert!((md1.wq() - mm1.wq() / 2.0).abs() < 1e-10);
    }

    #[test]
    fn mg1_heavy_tail_service_explodes_wait() {
        // Same mean service, higher variance → longer waits (the reason
        // exponential assumptions underestimate, §2.2).
        let light = Mg1::new(4.0, Dist::deterministic(0.1));
        let heavy = Mg1::new(4.0, Dist::lognormal_mean_cv(0.1, 4.0));
        assert!(heavy.wq() > 5.0 * light.wq());
    }

    #[test]
    fn erlang_b_recurrence_known_values() {
        // B(1, a) = a/(1+a).
        assert!((erlang_b(1, 2.0) - 2.0 / 3.0).abs() < 1e-12);
        // More servers → less blocking.
        assert!(erlang_b(5, 2.0) < erlang_b(2, 2.0));
        // Asymptotically no blocking.
        assert!(erlang_b(50, 2.0) < 1e-20);
    }

    #[test]
    fn erlang_c_bounds() {
        let c = erlang_c(4, 3.0);
        assert!((0.0..1.0).contains(&c));
        // Heavier load → more waiting.
        assert!(erlang_c(4, 3.9) > erlang_c(4, 2.0));
    }

    #[test]
    fn staffing_finds_minimal_servers() {
        // lambda=10, mu=4: need at least 3 servers for stability.
        let c = min_servers_for_wait(10.0, 4.0, 0.05);
        assert!(c >= 3);
        // It is minimal: one fewer violates either stability or the bound.
        if c > 3 {
            let fewer = c - 1;
            let unstable = 10.0 >= 4.0 * f64::from(fewer);
            let too_slow = !unstable && Mmc::new(10.0, 4.0, fewer).wq() > 0.05;
            assert!(unstable || too_slow);
        }
        assert!(Mmc::new(10.0, 4.0, c).wq() <= 0.05);
        // A lax bound needs only stability.
        assert_eq!(min_servers_for_wait(10.0, 4.0, 1e9), 3);
    }

    #[test]
    fn kingman_matches_mm1_for_poisson_exponential() {
        // ca² = cs² = 1 → Kingman is exact for M/M/1.
        let mm1 = Mm1::new(8.0, 10.0);
        let approx = kingman_gg1(8.0, 1.0, 0.1, 1.0);
        assert!((approx - mm1.wq()).abs() < 1e-12);
    }

    #[test]
    fn kingman_grows_with_variability() {
        let low = kingman_gg1(5.0, 0.5, 0.1, 0.5);
        let high = kingman_gg1(5.0, 4.0, 0.1, 4.0);
        assert!((high / low - 8.0).abs() < 1e-9);
    }

    #[test]
    fn allen_cunneen_reduces_to_mmc() {
        let mmc = Mmc::new(10.0, 4.0, 4);
        let ac = allen_cunneen_ggc(10.0, 4, 0.25, 1.0, 1.0);
        assert!((ac - mmc.wq()).abs() < 1e-12);
    }

    /// Direct factorial/power-sum Erlang C, only usable for small `c`;
    /// the recurrence must agree with it where both are finite.
    fn erlang_c_direct(c: u32, a: f64) -> f64 {
        let mut sum = 0.0;
        let mut term = 1.0; // a^k / k!
        for k in 0..c {
            sum += term;
            term *= a / f64::from(k + 1);
        }
        // term is now a^c / c!.
        let rho = a / f64::from(c);
        let top = term / (1.0 - rho);
        top / (sum + top)
    }

    #[test]
    fn erlang_c_recurrence_matches_direct_formula_small_c() {
        for c in 1..=20u32 {
            for &frac in &[0.1, 0.5, 0.9, 0.99] {
                let a = frac * f64::from(c);
                let direct = erlang_c_direct(c, a);
                let rec = erlang_c(c, a);
                assert!(
                    (rec - direct).abs() < 1e-10,
                    "c={c} a={a}: recurrence {rec} vs direct {direct}"
                );
            }
        }
    }

    #[test]
    fn erlang_c_finite_for_hundreds_of_servers() {
        // Direct factorial ratios overflow near c ≈ 170; the recurrence
        // must stay finite and sensible far beyond that.
        for &c in &[200u32, 500, 800] {
            let a = 0.95 * f64::from(c);
            let p = erlang_c(c, a);
            assert!(
                p.is_finite() && (0.0..1.0).contains(&p),
                "c={c}: p_wait={p}"
            );
            let q = Mmc::new(a, 1.0, c);
            assert!(q.wq().is_finite() && q.wq() >= 0.0);
            assert!(q.wq_quantile(0.99).is_finite());
        }
        // Larger pools at the same utilization pool better: less waiting.
        assert!(erlang_c(800, 0.95 * 800.0) < erlang_c(200, 0.95 * 200.0));
    }

    #[test]
    fn wq_quantile_zero_until_no_wait_mass_consumed() {
        let q = Mmc::new(2.0, 1.5, 4); // lightly loaded: most arrivals don't wait
        let p = q.p_wait();
        assert!(p < 0.5);
        // Below the no-wait mass the quantile is exactly zero…
        assert_eq!(q.wq_quantile(1.0 - p - 0.01), 0.0);
        // …and strictly positive just above it.
        assert!(q.wq_quantile(1.0 - p + 0.01) > 0.0);
    }

    #[test]
    fn wq_quantile_inverts_tail_probability() {
        let q = Mmc::new(10.0, 3.0, 5);
        let t = q.wq_quantile(0.99);
        // P(Wq > t) = C·exp(−(cμ−λ)t) should equal 1 % at the 99th pct.
        let rate = 5.0 * 3.0 - 10.0;
        let tail = q.p_wait() * (-rate * t).exp();
        assert!((tail - 0.01).abs() < 1e-12);
    }

    proptest::proptest! {
        /// More offered load at fixed μ, c → strictly more waiting
        /// (monotonicity of Erlang C in λ).
        #[test]
        fn erlang_c_monotone_in_lambda(
            c in 1u32..60,
            lo in 0.01f64..0.97,
            bump in 0.001f64..0.02,
        ) {
            let mu = 1.0;
            let l1 = lo * f64::from(c) * mu;
            let l2 = (lo + bump) * f64::from(c) * mu;
            let p1 = Mmc::new(l1, mu, c).p_wait();
            let p2 = Mmc::new(l2, mu, c).p_wait();
            proptest::prop_assert!(p2 >= p1, "p_wait fell: {p1} -> {p2}");
            let w1 = Mmc::new(l1, mu, c).wq_quantile(0.99);
            let w2 = Mmc::new(l2, mu, c).wq_quantile(0.99);
            proptest::prop_assert!(w2 >= w1, "wq_quantile fell: {w1} -> {w2}");
        }
    }
}
