//! # wt-analytic — analytical models (paper §2.2)
//!
//! The analytical toolbox the paper discusses as the *alternative* to
//! simulation, built here for two reasons the paper itself gives:
//!
//! 1. **Validation** (§4.3): "simple simulation models can be validated
//!    using analytical models" — experiment E5 checks the DES against
//!    M/M/1, M/M/c and M/G/1 closed forms, and the availability simulator
//!    against a birth–death Markov chain.
//! 2. **Demonstrating the limits**: the same experiment shows the closed
//!    forms drifting once failure/repair laws stop being exponential,
//!    which is the paper's case for the wind tunnel.
//!
//! * [`queueing`] — M/M/1, M/M/c (Erlang C), M/G/1 (Pollaczek–Khinchine),
//!   G/G/1 (Kingman), G/G/c (Allen–Cunneen), Erlang B.
//! * [`markov`] — birth–death availability chains for an n-replica object
//!   with serial or parallel repair, including exact mean time to data
//!   loss via first-step analysis.
//! * [`screen`] — conservative Pass/Fail/Unknown screens built from the
//!   two modules above, used by the guided sweep planner to resolve grid
//!   points without simulation (DESIGN.md §12).

pub mod markov;
pub mod queueing;
pub mod screen;

pub use markov::RepairableReplicas;
pub use queueing::{allen_cunneen_ggc, erlang_b, erlang_c, kingman_gg1, Mg1, Mm1, Mmc};
pub use screen::{decide, AvailabilityScreen, Bound, PerfScreen, Rel, ScreenVerdict};
