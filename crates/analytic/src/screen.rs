//! Conservative analytic screens for constrained sweeps.
//!
//! The guided sweep planner (DESIGN.md §12) asks, per grid point and per
//! SLA constraint, whether a closed-form model can already decide the
//! verdict without running the DES. The contract is *conservatism*: a
//! screen answers [`ScreenVerdict::Pass`] or [`ScreenVerdict::Fail`] only
//! when the bound it computed cannot be on the wrong side of the
//! threshold for the real (simulated) system, and [`ScreenVerdict::Unknown`]
//! otherwise. A guard margin can widen the Unknown band further; it never
//! makes a screen *more* willing to decide.
//!
//! Two screens are provided, mirroring the two DES layers:
//!
//! * [`AvailabilityScreen`] — bounds long-run object availability for a
//!   replicated/erasure-coded cluster from node MTTF, failure-detection
//!   delay, and the deterministic bandwidth-limited rebuild time.
//! * [`PerfScreen`] — bounds tenant latency quantiles from M/M/c wait
//!   quantiles at an optimistic (fastest-possible) service time.

use crate::markov::RepairableReplicas;
use crate::queueing::Mmc;

/// A two-sided bound on a metric: the true value lies in `[lo, hi]`.
///
/// Either side may be infinite/NaN-free trivial (`lo = 0`, `hi = ∞`-like)
/// when the screen can only bound one direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bound {
    /// Pessimistic floor: the metric is at least this.
    pub lo: f64,
    /// Optimistic ceiling: the metric is at most this.
    pub hi: f64,
}

impl Bound {
    /// A bound with both sides.
    pub fn new(lo: f64, hi: f64) -> Self {
        Bound { lo, hi }
    }

    /// Only a ceiling is known (`lo` trivially `-∞`).
    pub fn at_most(hi: f64) -> Self {
        Bound {
            lo: f64::NEG_INFINITY,
            hi,
        }
    }

    /// Only a floor is known (`hi` trivially `+∞`).
    pub fn at_least(lo: f64) -> Self {
        Bound {
            lo,
            hi: f64::INFINITY,
        }
    }
}

/// Direction of an SLA constraint on a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// Metric must be ≥ threshold (e.g. availability floor).
    Ge,
    /// Metric must be > threshold.
    Gt,
    /// Metric must be ≤ threshold (e.g. latency ceiling).
    Le,
    /// Metric must be < threshold.
    Lt,
}

/// What a screen concluded about one constraint at one grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScreenVerdict {
    /// The bound proves the constraint is satisfied.
    Pass,
    /// The bound proves the constraint is violated.
    Fail,
    /// The bound cannot decide; the DES must run.
    Unknown,
}

/// Decides a constraint `metric REL threshold` from a conservative bound.
///
/// `guard ≥ 0` widens the undecided band: a Pass/Fail fires only when the
/// bound clears the threshold by more than `guard`. Non-finite bound
/// sides never decide (NaN compares false everywhere, so the `Unknown`
/// arm wins by default).
pub fn decide(bound: Bound, rel: Rel, threshold: f64, guard: f64) -> ScreenVerdict {
    let g = guard.max(0.0);
    match rel {
        // metric ≥ T: even the floor clears it → Pass; even the ceiling
        // misses it → Fail.
        Rel::Ge | Rel::Gt => {
            if bound.lo >= threshold + g && bound.lo.is_finite() {
                ScreenVerdict::Pass
            } else if bound.hi < threshold - g {
                ScreenVerdict::Fail
            } else {
                ScreenVerdict::Unknown
            }
        }
        // metric ≤ T: mirrored.
        Rel::Le | Rel::Lt => {
            if bound.hi <= threshold - g && bound.hi.is_finite() {
                ScreenVerdict::Pass
            } else if bound.lo > threshold + g {
                ScreenVerdict::Fail
            } else {
                ScreenVerdict::Unknown
            }
        }
    }
}

/// Conservative availability bounds for one redundancy group.
///
/// Built from scenario parameters by `wt-cluster`'s extraction layer;
/// everything here is plain numbers so the bounds are unit-testable
/// without a Scenario in scope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityScreen {
    /// Stripe width: replicas for replication, `k+m` for erasure.
    pub width: usize,
    /// Fragments that must be reachable for a read (1 for replication,
    /// `k` for erasure).
    pub quorum: usize,
    /// Mean time to node failure, seconds.
    pub mttf_s: f64,
    /// Minimum downtime a destroyed fragment suffers: failure-detection
    /// delay plus the deterministic bandwidth-limited rebuild time.
    pub min_down_s: f64,
    /// The rebuild-stream duration alone, seconds.
    pub rebuild_s: f64,
    /// Simulated horizon, seconds.
    pub horizon_s: f64,
    /// Expected node failures over the horizon across the whole cluster
    /// (`n_nodes · horizon / mttf`). Screens are disabled when this is
    /// too small: with few failures the DES may measure availability
    /// exactly 1.0 and an analytic "Fail" would be unsound.
    pub expected_failures: f64,
    /// True when the scenario has failure sources the model does not
    /// capture (chaos faults, switch failures, disk failures). Disables
    /// Pass screening (those sources only hurt availability, so Fail
    /// screening stays sound).
    pub extra_failure_sources: bool,
    /// Minimum `expected_failures` for any screen to fire.
    pub min_expected_failures: f64,
}

impl AvailabilityScreen {
    /// Fragments that must be *lost* simultaneously to break the read
    /// quorum: `width − quorum + 1`.
    pub fn loss_exponent(&self) -> usize {
        self.width - self.quorum + 1
    }

    /// Conservative two-sided bound on long-run availability.
    ///
    /// **Ceiling** (`hi`, used for Fail screening): each fragment is a
    /// renewal process alternating up-time with mean ≥ `mttf_s` and
    /// down-time ≥ `min_down_s` (detection cannot be skipped, bandwidth
    /// rebuild cannot be beaten). Per-fragment unavailability is thus at
    /// least `d/(mttf+d)` with `d = min_down_s`, and the object is
    /// unavailable when any `loss_exponent` fragments are down
    /// simultaneously. Ignoring correlation (which only *increases*
    /// overlap), availability ≤ `1 − (d/(mttf+d))^e`.
    ///
    /// **Floor** (`lo`, used for Pass screening): the birth–death chain
    /// with repair rate `1/(detection + 2·rebuild)` — serial repair,
    /// half-rate rebuild — understates the simulator's repair capacity,
    /// minus an absorption penalty `horizon/MTTDL` because the DES
    /// treats data loss as absorbing (an object lost early is
    /// unavailable for the rest of the horizon) while the chain treats
    /// state 0 as recurrent. Disabled (trivial `-∞`) when
    /// `extra_failure_sources` is set.
    pub fn bound(&self) -> Bound {
        if self.expected_failures < self.min_expected_failures {
            // Too few failures for the asymptotic argument to bind the
            // finite-horizon DES; refuse to decide anything.
            return Bound::new(f64::NEG_INFINITY, f64::INFINITY);
        }
        let e = self.loss_exponent() as i32;
        let frac = self.min_down_s / (self.mttf_s + self.min_down_s);
        let hi = 1.0 - frac.powi(e);

        let lo = if self.extra_failure_sources {
            f64::NEG_INFINITY
        } else {
            let repair_rate = 1.0 / (self.min_down_s + self.rebuild_s);
            let chain = RepairableReplicas::new(
                self.width,
                1.0 / self.mttf_s,
                repair_rate,
                false, // serial repair understates parallel rebuild capacity
            );
            let steady = chain.availability(self.quorum);
            let absorption = self.horizon_s / chain.mean_time_to_data_loss();
            (steady - absorption).clamp(0.0, hi)
        };
        Bound::new(lo, hi)
    }

    /// Screens one availability constraint (`availability REL threshold`).
    pub fn screen(&self, rel: Rel, threshold: f64, guard: f64) -> ScreenVerdict {
        decide(self.bound(), rel, threshold, guard)
    }
}

/// Conservative latency-quantile bounds from an M/M/c view of the disk
/// service tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfScreen {
    /// Aggregate post-cache arrival rate at the disk tier, 1/s.
    pub lambda: f64,
    /// Number of disk servers.
    pub servers: u32,
    /// Fastest possible per-request service time, seconds (no screen may
    /// assume requests finish faster than this).
    pub min_service_s: f64,
}

impl PerfScreen {
    /// Optimistic ceiling on the `q`-quantile of request latency: the
    /// M/M/c wait quantile at the floor service time, plus the floor
    /// service time itself. The real system serves no faster than
    /// `min_service_s`, so a latency SLA violated even under this
    /// best-case model is certainly violated in the DES. Returns
    /// `Bound::at_least` — a *floor on the metric* — so only Fail
    /// screening can fire for ≤-constraints.
    ///
    /// If the optimistic system is already overloaded (`λ ≥ c/S_min`),
    /// the quantile floor is `+∞`: the queue grows without bound.
    pub fn bound(&self, q: f64) -> Bound {
        assert!((0.0..1.0).contains(&q));
        if self.lambda <= 0.0 || self.min_service_s <= 0.0 {
            return Bound::new(f64::NEG_INFINITY, f64::INFINITY);
        }
        let mu = 1.0 / self.min_service_s;
        if self.lambda >= mu * f64::from(self.servers) {
            return Bound::at_least(f64::INFINITY);
        }
        let mmc = Mmc::new(self.lambda, mu, self.servers);
        Bound::at_least(mmc.wq_quantile(q) + self.min_service_s)
    }

    /// Screens one latency constraint (`pXX REL threshold` with the
    /// quantile `q` matching the metric, e.g. `0.99` for p99).
    pub fn screen(&self, q: f64, rel: Rel, threshold: f64, guard: f64) -> ScreenVerdict {
        decide(self.bound(q), rel, threshold, guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: f64 = 86_400.0;
    const YEAR: f64 = 365.25 * DAY;

    fn avail(width: usize, quorum: usize, mttf: f64, det: f64, rebuild: f64) -> AvailabilityScreen {
        AvailabilityScreen {
            width,
            quorum,
            mttf_s: mttf,
            min_down_s: det + rebuild,
            rebuild_s: rebuild,
            horizon_s: 0.25 * YEAR,
            expected_failures: 100.0,
            extra_failure_sources: false,
            min_expected_failures: 10.0,
        }
    }

    #[test]
    fn decide_ge_pass_fail_unknown() {
        let b = Bound::new(0.995, 0.999);
        assert_eq!(decide(b, Rel::Ge, 0.99, 0.0), ScreenVerdict::Pass);
        assert_eq!(decide(b, Rel::Ge, 0.9999, 0.0), ScreenVerdict::Fail);
        assert_eq!(decide(b, Rel::Ge, 0.997, 0.0), ScreenVerdict::Unknown);
    }

    #[test]
    fn decide_le_mirrors_ge() {
        let b = Bound::new(0.010, 0.020);
        assert_eq!(decide(b, Rel::Le, 0.050, 0.0), ScreenVerdict::Pass);
        assert_eq!(decide(b, Rel::Le, 0.005, 0.0), ScreenVerdict::Fail);
        assert_eq!(decide(b, Rel::Le, 0.015, 0.0), ScreenVerdict::Unknown);
    }

    #[test]
    fn guard_only_widens_unknown() {
        let b = Bound::new(0.995, 0.999);
        // Pass at zero guard…
        assert_eq!(decide(b, Rel::Ge, 0.99, 0.0), ScreenVerdict::Pass);
        // …becomes Unknown once the guard swallows the margin.
        assert_eq!(decide(b, Rel::Ge, 0.99, 0.01), ScreenVerdict::Unknown);
        // A guard can never flip Pass to Fail or vice versa.
        for g in [0.0, 1e-4, 1e-2, 0.5] {
            let v = decide(b, Rel::Ge, 0.9999, g);
            assert!(v == ScreenVerdict::Fail || v == ScreenVerdict::Unknown);
        }
    }

    #[test]
    fn non_finite_bounds_never_decide() {
        let b = Bound::new(f64::NEG_INFINITY, f64::INFINITY);
        assert_eq!(decide(b, Rel::Ge, 0.5, 0.0), ScreenVerdict::Unknown);
        assert_eq!(decide(b, Rel::Le, 0.5, 0.0), ScreenVerdict::Unknown);
        let nan = Bound::new(f64::NAN, f64::NAN);
        assert_eq!(decide(nan, Rel::Ge, 0.5, 0.0), ScreenVerdict::Unknown);
        assert_eq!(decide(nan, Rel::Le, 0.5, 0.0), ScreenVerdict::Unknown);
        // An infinite metric floor CAN prove a ≤-constraint violated
        // (overloaded queue ⇒ latency past any ceiling).
        assert_eq!(
            decide(Bound::at_least(f64::INFINITY), Rel::Le, 1.0, 0.0),
            ScreenVerdict::Fail
        );
    }

    #[test]
    fn slow_detection_fails_tight_floor() {
        // e6-style numbers: mttf 40 days, detection 5 days — unavailable
        // ~11 % of the time per fragment. Replication 2 can't make
        // 0.99985.
        let s = avail(2, 1, 40.0 * DAY, 5.0 * DAY, 3000.0);
        let b = s.bound();
        assert!(b.hi < 0.999, "ceiling {}", b.hi);
        assert_eq!(s.screen(Rel::Ge, 0.99985, 0.0), ScreenVerdict::Fail);
        // Replication 5 survives: Unknown, the DES must decide.
        let s5 = avail(5, 1, 40.0 * DAY, 5.0 * DAY, 3000.0);
        assert_eq!(s5.screen(Rel::Ge, 0.99985, 0.0), ScreenVerdict::Unknown);
    }

    #[test]
    fn fast_detection_easy_floor_passes() {
        // Healthy regime: mttf 1 year, detection 60 s, quick rebuild,
        // lax floor 0.9 — the pessimistic chain still clears it.
        let s = avail(3, 1, YEAR, 60.0, 600.0);
        let b = s.bound();
        assert!(b.lo > 0.9, "floor {}", b.lo);
        assert!(b.lo <= b.hi);
        assert_eq!(s.screen(Rel::Ge, 0.9, 0.0), ScreenVerdict::Pass);
    }

    #[test]
    fn extra_failure_sources_disable_pass_not_fail() {
        let mut s = avail(2, 1, 40.0 * DAY, 5.0 * DAY, 3000.0);
        s.extra_failure_sources = true;
        // Fail screening still fires (extra failures only hurt)…
        assert_eq!(s.screen(Rel::Ge, 0.99985, 0.0), ScreenVerdict::Fail);
        // …but the floor is gone, so nothing can Pass.
        assert_eq!(s.bound().lo, f64::NEG_INFINITY);
        let mut easy = avail(3, 1, YEAR, 60.0, 600.0);
        easy.extra_failure_sources = true;
        assert_eq!(easy.screen(Rel::Ge, 0.9, 0.0), ScreenVerdict::Unknown);
    }

    #[test]
    fn few_expected_failures_refuse_to_screen() {
        let mut s = avail(2, 1, 40.0 * DAY, 5.0 * DAY, 3000.0);
        s.expected_failures = 0.5; // catalog-default regime
        assert_eq!(s.screen(Rel::Ge, 0.99985, 0.0), ScreenVerdict::Unknown);
        assert_eq!(s.screen(Rel::Ge, 0.9, 0.0), ScreenVerdict::Unknown);
    }

    #[test]
    fn erasure_exponent_uses_parity_plus_one() {
        // RS(4,2): width 6, quorum 4 → 3 simultaneous losses break reads.
        let s = avail(6, 4, 40.0 * DAY, 5.0 * DAY, 3000.0);
        assert_eq!(s.loss_exponent(), 3);
        // More parity tolerance than rep-2 (exponent 2) at equal rates.
        let rep2 = avail(2, 1, 40.0 * DAY, 5.0 * DAY, 3000.0);
        assert!(s.bound().hi > rep2.bound().hi);
    }

    #[test]
    fn floor_never_exceeds_ceiling() {
        for &(w, q) in &[(1usize, 1usize), (2, 1), (3, 1), (5, 1), (6, 4), (14, 10)] {
            for &det in &[60.0, 3600.0, DAY, 5.0 * DAY] {
                let s = avail(w, q, 40.0 * DAY, det, 3000.0);
                let b = s.bound();
                assert!(
                    b.lo <= b.hi,
                    "w={w} q={q} det={det}: lo {} > hi {}",
                    b.lo,
                    b.hi
                );
            }
        }
    }

    #[test]
    fn perf_screen_overload_is_infinite_floor() {
        // 20 req/s into 1 server that takes ≥ 100 ms → overloaded.
        let s = PerfScreen {
            lambda: 20.0,
            servers: 1,
            min_service_s: 0.1,
        };
        assert_eq!(s.bound(0.99).lo, f64::INFINITY);
        assert_eq!(s.screen(0.99, Rel::Le, 10.0, 0.0), ScreenVerdict::Fail);
    }

    #[test]
    fn perf_screen_stable_queue_fails_only_sub_service_slas() {
        let s = PerfScreen {
            lambda: 5.0,
            servers: 2,
            min_service_s: 0.05,
        };
        let b = s.bound(0.99);
        assert!(b.lo >= 0.05 && b.lo.is_finite());
        // An SLA below the service-time floor is analytically impossible.
        assert_eq!(s.screen(0.99, Rel::Le, 0.01, 0.0), ScreenVerdict::Fail);
        // A lax SLA is Unknown: the floor can't prove the real system meets it.
        assert_eq!(s.screen(0.99, Rel::Le, 10.0, 0.0), ScreenVerdict::Unknown);
    }

    proptest::proptest! {
        /// The availability ceiling is monotone: longer detection delay
        /// can only lower it, more redundancy can only raise it.
        #[test]
        fn ceiling_monotone(
            width in 2usize..8,
            det_h in 1.0f64..200.0,
            bump_h in 0.5f64..50.0,
        ) {
            let base = avail(width, 1, 40.0 * DAY, det_h * 3600.0, 3000.0);
            let slower = avail(width, 1, 40.0 * DAY, (det_h + bump_h) * 3600.0, 3000.0);
            proptest::prop_assert!(slower.bound().hi <= base.bound().hi);
            let wider = avail(width + 1, 1, 40.0 * DAY, det_h * 3600.0, 3000.0);
            proptest::prop_assert!(wider.bound().hi >= base.bound().hi);
        }
    }
}
