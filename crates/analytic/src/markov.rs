//! Birth–death Markov availability model for one n-replica object — the
//! kind of analytical model the paper says works *only* under exponential
//! assumptions (§2.2), built here to validate the simulator in that regime.
//!
//! State `k` = number of up replicas (`0..=n`). Each up replica fails at
//! rate `λ`; down replicas are rebuilt at rate `μ` each — serially (one
//! repair at a time: rate `μ` whenever `k < n`) or in parallel (rate
//! `(n−k)·μ`).

use serde::{Deserialize, Serialize};

/// An n-replica object with exponential failure/repair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepairableReplicas {
    /// Replication factor.
    pub n: usize,
    /// Per-replica failure rate, 1/s.
    pub fail_rate: f64,
    /// Per-repair-stream rebuild rate, 1/s.
    pub repair_rate: f64,
    /// Parallel repair (`(n−k)·μ`) vs. serial (`μ`).
    pub parallel_repair: bool,
}

impl RepairableReplicas {
    /// A model instance; all rates must be positive.
    pub fn new(n: usize, fail_rate: f64, repair_rate: f64, parallel_repair: bool) -> Self {
        assert!(n >= 1 && fail_rate > 0.0 && repair_rate > 0.0);
        RepairableReplicas {
            n,
            fail_rate,
            repair_rate,
            parallel_repair,
        }
    }

    /// Death rate out of state `k` (a replica fails).
    fn down_rate(&self, k: usize) -> f64 {
        k as f64 * self.fail_rate
    }

    /// Birth rate out of state `k` (a repair completes).
    fn up_rate(&self, k: usize) -> f64 {
        if k >= self.n {
            return 0.0;
        }
        if self.parallel_repair {
            (self.n - k) as f64 * self.repair_rate
        } else {
            self.repair_rate
        }
    }

    /// Steady-state distribution over states `0..=n` (index = up count),
    /// by the standard birth–death product form.
    pub fn steady_state(&self) -> Vec<f64> {
        let n = self.n;
        // π_k ∝ Π_{j=k}^{n-1} up(j+... — build from the top down:
        // balance: π_{k-1} · up(k-1) = π_k · down(k)
        // ⇒ π_{k-1} = π_k · down(k) / up(k-1).
        let mut pi = vec![0.0f64; n + 1];
        pi[n] = 1.0;
        for k in (1..=n).rev() {
            let up = self.up_rate(k - 1);
            assert!(up > 0.0);
            pi[k - 1] = pi[k] * self.down_rate(k) / up;
        }
        let total: f64 = pi.iter().sum();
        for p in &mut pi {
            *p /= total;
        }
        pi
    }

    /// Long-run probability that at least `quorum` replicas are up.
    pub fn availability(&self, quorum: usize) -> f64 {
        self.steady_state()[quorum..].iter().sum()
    }

    /// Long-run probability of total data loss state (0 up) — the
    /// "zero up-to-date copies" condition of §1.
    pub fn p_all_down(&self) -> f64 {
        self.steady_state()[0]
    }

    /// Exact mean time from all-up until first hitting state 0 (data
    /// loss), via first-step analysis on the transient states `1..=n`.
    ///
    /// Solves `(D - Q) h = 1` where `h_k` is the expected hitting time
    /// from state `k`; returns `h_n` in seconds.
    pub fn mean_time_to_data_loss(&self) -> f64 {
        let n = self.n;
        // Unknowns h_1..h_n. For state k (1 ≤ k ≤ n):
        // h_k = 1/r_k + (down_k/r_k) h_{k-1} + (up_k/r_k) h_{k+1}
        // with h_0 = 0 and up_n = 0. Rearranged into a tridiagonal system:
        // r_k h_k − down_k h_{k−1} − up_k h_{k+1} = 1.
        let mut a = vec![0.0f64; n + 1]; // sub-diagonal (−down)
        let mut b = vec![0.0f64; n + 1]; // diagonal (r)
        let mut c = vec![0.0f64; n + 1]; // super-diagonal (−up)
        let mut d = vec![0.0f64; n + 1]; // rhs
        for k in 1..=n {
            let down = self.down_rate(k);
            let up = self.up_rate(k);
            a[k] = -down;
            b[k] = down + up;
            c[k] = -up;
            d[k] = 1.0;
        }
        // h_0 = 0 ⇒ drop the a[1] coupling.
        a[1] = 0.0;
        // Thomas algorithm over k = 1..=n.
        for k in 2..=n {
            let w = a[k] / b[k - 1];
            b[k] -= w * c[k - 1];
            d[k] -= w * d[k - 1];
        }
        let mut h = vec![0.0f64; n + 1];
        h[n] = d[n] / b[n];
        for k in (1..n).rev() {
            h[k] = (d[k] - c[k] * h[k + 1]) / b[k];
        }
        h[n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_sums_to_one() {
        let m = RepairableReplicas::new(3, 1e-6, 1e-3, true);
        let pi = m.steady_state();
        assert_eq!(pi.len(), 4);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(pi.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn single_replica_matches_two_state_formula() {
        // Availability of a 1-replica system = μ/(λ+μ).
        let (l, mu) = (1e-5, 1e-3);
        let m = RepairableReplicas::new(1, l, mu, true);
        let want = mu / (l + mu);
        assert!((m.availability(1) - want).abs() < 1e-12);
    }

    #[test]
    fn higher_replication_higher_availability() {
        let avail = |n| RepairableReplicas::new(n, 1e-5, 1e-4, true).availability(n / 2 + 1);
        assert!(avail(3) > avail(1));
        assert!(avail(5) > avail(3));
    }

    #[test]
    fn parallel_repair_beats_serial() {
        // §1: parallel repairs decrease the probability of unavailability.
        let serial = RepairableReplicas::new(3, 1e-4, 1e-3, false);
        let parallel = RepairableReplicas::new(3, 1e-4, 1e-3, true);
        assert!(parallel.availability(2) > serial.availability(2));
        assert!(parallel.p_all_down() < serial.p_all_down());
        assert!(parallel.mean_time_to_data_loss() > serial.mean_time_to_data_loss());
    }

    #[test]
    fn faster_repair_raises_availability() {
        let slow = RepairableReplicas::new(3, 1e-4, 1e-4, true);
        let fast = RepairableReplicas::new(3, 1e-4, 1e-2, true);
        assert!(fast.availability(2) > slow.availability(2));
    }

    #[test]
    fn n_minus_1_with_fast_repair_can_beat_n_with_slow() {
        // The §1 worked example: n−1 replication + a better repair path can
        // exceed the availability of n-way with sluggish repair.
        let n5_slow = RepairableReplicas::new(5, 1e-4, 2e-4, false);
        let n4_fast = RepairableReplicas::new(4, 1e-4, 1e-2, true);
        assert!(
            n4_fast.availability(3) > n5_slow.availability(3),
            "n4-fast {} vs n5-slow {}",
            n4_fast.availability(3),
            n5_slow.availability(3)
        );
    }

    #[test]
    fn mttdl_single_replica_is_one_over_lambda() {
        let m = RepairableReplicas::new(1, 1e-4, 1.0, true);
        assert!((m.mean_time_to_data_loss() - 1e4).abs() / 1e4 < 1e-9);
    }

    #[test]
    fn mttdl_two_replicas_closed_form() {
        // For n=2 (parallel repair): MTTDL from state 2 =
        // (3λ + μ) / (2λ²)  [standard result for RAID-1 with λ≪μ:
        // ≈ μ/(2λ²)].
        let (l, mu) = (1e-5, 1e-2);
        let m = RepairableReplicas::new(2, l, mu, true);
        let want = (3.0 * l + mu) / (2.0 * l * l);
        let got = m.mean_time_to_data_loss();
        assert!((got - want).abs() / want < 1e-9, "got {got}, want {want}");
    }

    #[test]
    fn mttdl_grows_steeply_with_n() {
        let mttdl = |n| RepairableReplicas::new(n, 1e-5, 1e-2, true).mean_time_to_data_loss();
        let m1 = mttdl(1);
        let m2 = mttdl(2);
        let m3 = mttdl(3);
        assert!(m2 > 100.0 * m1, "m1={m1} m2={m2}");
        assert!(m3 > 100.0 * m2, "m2={m2} m3={m3}");
    }

    #[test]
    fn availability_monotone_in_quorum() {
        let m = RepairableReplicas::new(5, 1e-4, 1e-3, true);
        for q in 1..5 {
            assert!(m.availability(q) >= m.availability(q + 1));
        }
        assert!((m.availability(0) - 1.0).abs() < 1e-12);
    }
}
