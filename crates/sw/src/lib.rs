//! # wt-sw — software component models (paper §4.6)
//!
//! The software half of the hardware/software co-design space:
//!
//! * [`placement`] — replica placement policies: the Random and RoundRobin
//!   policies of the paper's Figure 1, plus Copyset placement as the
//!   natural extension.
//! * [`replication`] — n-way replication with quorum semantics (the
//!   quorum-based protocol Figure 1 assumes) and primary–backup.
//! * [`gf256`] / [`erasure`] — a complete Reed–Solomon erasure coder over
//!   GF(2⁸) (systematic Vandermonde construction), the paper's \[14\]
//!   "XORing elephants" design axis.
//! * [`repair`] — re-replication policy: serial vs. parallel repair, the
//!   §1 worked example of a software knob that trades against hardware.

pub mod erasure;
pub mod gf256;
pub mod placement;
pub mod repair;
pub mod replication;

pub use erasure::{ErasureCode, StripeSpec};
pub use placement::{Placement, Placer};
pub use repair::RepairPolicy;
pub use replication::{Durability, QuorumSpec, RedundancyScheme};
