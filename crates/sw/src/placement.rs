//! Replica placement policies.
//!
//! Figure 1 of the paper varies exactly this knob: Random (R) vs.
//! RoundRobin (RR) placement of `n` replicas across `N` nodes, and shows
//! that availability depends on it. Copyset placement (Cidon et al.) is
//! included as the natural third point on the axis: it minimizes the
//! number of distinct replica sets, trading scatter width for a lower
//! probability that *some* customer loses a quorum.

use serde::{Deserialize, Serialize};
use wt_des::rng::Stream;

/// A placement policy choice (serializable configuration surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// Each object's replicas land on `n` distinct uniformly random nodes.
    Random,
    /// Object `u` occupies nodes `u mod N, u+1 mod N, …, u+n−1 mod N`.
    RoundRobin,
    /// Objects are assigned to one of a small set of pre-built copysets.
    Copyset {
        /// Scatter width: how many distinct other nodes each node shares a
        /// copyset with.
        scatter_width: usize,
    },
    /// Random placement constrained to put each replica in a distinct
    /// rack (while racks ≥ replicas; excess replicas wrap around) —
    /// the standard defense against correlated rack-level failures.
    RackAware {
        /// Nodes per rack (node `i` lives in rack `i / nodes_per_rack`).
        nodes_per_rack: usize,
    },
}

impl Placement {
    /// Short label used in experiment output ("R", "RR", "CS").
    pub fn label(&self) -> &'static str {
        match self {
            Placement::Random => "R",
            Placement::RoundRobin => "RR",
            Placement::Copyset { .. } => "CS",
            Placement::RackAware { .. } => "RA",
        }
    }
}

/// A configured placer: policy × cluster size × replication factor.
///
/// Construction is deterministic given the RNG stream, so a scenario's
/// placement is reproducible and shared across what-if arms (common random
/// numbers).
#[derive(Debug, Clone)]
pub struct Placer {
    policy: Placement,
    n_nodes: usize,
    n_replicas: usize,
    /// Pre-built copysets (empty for other policies).
    copysets: Vec<Vec<usize>>,
    rng: Stream,
    /// Reusable rack-order buffer for `RackAware` placement.
    rack_scratch: Vec<usize>,
}

impl Placer {
    /// Builds a placer for `n_replicas`-way placement over `n_nodes` nodes.
    pub fn new(policy: Placement, n_nodes: usize, n_replicas: usize, mut rng: Stream) -> Self {
        assert!(n_replicas >= 1, "need at least one replica");
        assert!(
            n_replicas <= n_nodes,
            "cannot place {n_replicas} distinct replicas on {n_nodes} nodes"
        );
        let copysets = if let Placement::Copyset { scatter_width } = policy {
            build_copysets(n_nodes, n_replicas, scatter_width, &mut rng)
        } else {
            Vec::new()
        };
        if let Placement::RackAware { nodes_per_rack } = policy {
            assert!(
                nodes_per_rack >= 1 && n_nodes.is_multiple_of(nodes_per_rack),
                "RackAware needs n_nodes ({n_nodes}) divisible by nodes_per_rack ({nodes_per_rack})"
            );
        }
        Placer {
            policy,
            n_nodes,
            n_replicas,
            copysets,
            rng,
            rack_scratch: Vec::new(),
        }
    }

    /// The nodes holding object `obj`'s replicas (distinct, length
    /// `n_replicas`).
    pub fn place(&mut self, obj: u64) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.n_replicas);
        self.place_into(obj, &mut out);
        out
    }

    /// [`place`](Self::place) into a caller-owned buffer (cleared first):
    /// the allocation-free path million-object model construction uses.
    /// Identical RNG draw sequence to `place`.
    pub fn place_into(&mut self, obj: u64, out: &mut Vec<usize>) {
        out.clear();
        match self.policy {
            Placement::Random => self
                .rng
                .sample_indices_into(self.n_nodes, self.n_replicas, out),
            Placement::RoundRobin => {
                let start = (obj % self.n_nodes as u64) as usize;
                out.extend((0..self.n_replicas).map(|i| (start + i) % self.n_nodes));
            }
            Placement::Copyset { .. } => {
                let idx = (obj % self.copysets.len() as u64) as usize;
                out.extend_from_slice(&self.copysets[idx]);
            }
            Placement::RackAware { nodes_per_rack } => {
                let racks = self.n_nodes / nodes_per_rack;
                // Pick distinct racks (cycling if replicas > racks), then a
                // random node inside each chosen rack, avoiding duplicates
                // on wrap-around.
                let mut rack_order = std::mem::take(&mut self.rack_scratch);
                self.rng
                    .sample_indices_into(racks, racks.min(self.n_replicas), &mut rack_order);
                let mut i = 0;
                while out.len() < self.n_replicas {
                    let rack = rack_order[i % rack_order.len()];
                    let base = rack * nodes_per_rack;
                    // Rejection-sample a free node in this rack (always
                    // terminates: width ≤ n_nodes guarantees capacity).
                    loop {
                        let node = base + self.rng.index(nodes_per_rack);
                        if !out.contains(&node) {
                            out.push(node);
                            break;
                        }
                    }
                    i += 1;
                }
                self.rack_scratch = rack_order;
            }
        }
    }

    /// The distinct replica sets this placer can produce for `objects`
    /// object IDs (used to reason about the unavailability surface).
    pub fn distinct_sets(&mut self, objects: u64) -> usize {
        let mut sets: Vec<Vec<usize>> = Vec::new();
        for obj in 0..objects {
            let mut s = self.place(obj);
            s.sort_unstable();
            if !sets.contains(&s) {
                sets.push(s);
            }
        }
        sets.len()
    }

    /// Cluster size.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Replication factor.
    pub fn n_replicas(&self) -> usize {
        self.n_replicas
    }
}

/// Builds copysets by the permutation method of the Copysets paper:
/// `p = ceil(S / (n−1))` random permutations, each chopped into groups of
/// `n` (the last short group wraps with the permutation head).
fn build_copysets(
    n_nodes: usize,
    n: usize,
    scatter_width: usize,
    rng: &mut Stream,
) -> Vec<Vec<usize>> {
    assert!(n >= 1);
    if n == 1 {
        return (0..n_nodes).map(|i| vec![i]).collect();
    }
    let permutations = scatter_width.div_ceil(n - 1).max(1);
    let mut out = Vec::new();
    for _ in 0..permutations {
        let mut perm: Vec<usize> = (0..n_nodes).collect();
        rng.shuffle(&mut perm);
        let mut i = 0;
        while i + n <= n_nodes {
            out.push(perm[i..i + n].to_vec());
            i += n;
        }
        if i < n_nodes {
            // Wrap the tail with the head of the same permutation.
            let mut tail: Vec<usize> = perm[i..].to_vec();
            let mut j = 0;
            while tail.len() < n {
                if !tail.contains(&perm[j]) {
                    tail.push(perm[j]);
                }
                j += 1;
            }
            out.push(tail);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64) -> Stream {
        Stream::from_seed(seed)
    }

    #[test]
    fn random_places_distinct_nodes() {
        let mut p = Placer::new(Placement::Random, 10, 3, stream(1));
        for obj in 0..1000 {
            let nodes = p.place(obj);
            assert_eq!(nodes.len(), 3);
            let mut s = nodes.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 3, "duplicates in {nodes:?}");
            assert!(nodes.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn round_robin_is_deterministic_consecutive() {
        let mut p = Placer::new(Placement::RoundRobin, 10, 3, stream(1));
        assert_eq!(p.place(0), vec![0, 1, 2]);
        assert_eq!(p.place(7), vec![7, 8, 9]);
        assert_eq!(p.place(9), vec![9, 0, 1]);
        assert_eq!(p.place(13), vec![3, 4, 5]);
    }

    #[test]
    fn round_robin_has_exactly_n_distinct_sets() {
        // RR over N nodes yields at most N distinct replica sets — the
        // structural reason Fig. 1 separates RR from Random.
        let mut p = Placer::new(Placement::RoundRobin, 10, 3, stream(1));
        assert_eq!(p.distinct_sets(10_000), 10);
    }

    #[test]
    fn random_has_many_distinct_sets() {
        let mut p = Placer::new(Placement::Random, 30, 3, stream(2));
        let sets = p.distinct_sets(2_000);
        // C(30,3) = 4060 possible; with 2000 draws expect well over 1000.
        assert!(sets > 1000, "only {sets} distinct sets");
    }

    #[test]
    fn copysets_fewer_sets_than_random() {
        let mut cs = Placer::new(Placement::Copyset { scatter_width: 4 }, 30, 3, stream(3));
        let cs_sets = cs.distinct_sets(5_000);
        let mut r = Placer::new(Placement::Random, 30, 3, stream(3));
        let r_sets = r.distinct_sets(5_000);
        assert!(
            cs_sets * 10 < r_sets,
            "copysets should collapse the set space: {cs_sets} vs {r_sets}"
        );
    }

    #[test]
    fn copyset_members_distinct_and_sized() {
        let mut p = Placer::new(Placement::Copyset { scatter_width: 6 }, 20, 3, stream(4));
        for obj in 0..500 {
            let set = p.place(obj);
            assert_eq!(set.len(), 3);
            let mut s = set.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 3);
            assert!(set.iter().all(|&x| x < 20));
        }
    }

    #[test]
    fn same_seed_same_placement() {
        let seq = |seed| {
            let mut p = Placer::new(Placement::Random, 30, 5, stream(seed));
            (0..100).map(|o| p.place(o)).collect::<Vec<_>>()
        };
        assert_eq!(seq(9), seq(9));
        assert_ne!(seq(9), seq(10));
    }

    #[test]
    fn single_replica_allowed() {
        let mut p = Placer::new(Placement::RoundRobin, 5, 1, stream(1));
        assert_eq!(p.place(3), vec![3]);
        let mut c = Placer::new(Placement::Copyset { scatter_width: 2 }, 5, 1, stream(1));
        let set = c.place(2);
        assert_eq!(set.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn overful_replication_rejected() {
        let _ = Placer::new(Placement::Random, 3, 5, stream(1));
    }

    #[test]
    fn labels() {
        assert_eq!(Placement::Random.label(), "R");
        assert_eq!(Placement::RoundRobin.label(), "RR");
        assert_eq!(Placement::Copyset { scatter_width: 2 }.label(), "CS");
        assert_eq!(Placement::RackAware { nodes_per_rack: 5 }.label(), "RA");
    }

    #[test]
    fn rack_aware_spreads_across_racks() {
        // 6 racks × 5 nodes, 3 replicas: every object's replicas land in
        // three distinct racks.
        let mut p = Placer::new(Placement::RackAware { nodes_per_rack: 5 }, 30, 3, stream(8));
        for obj in 0..500 {
            let set = p.place(obj);
            let mut racks: Vec<usize> = set.iter().map(|&n| n / 5).collect();
            racks.sort_unstable();
            racks.dedup();
            assert_eq!(racks.len(), 3, "object {obj} not rack-diverse: {set:?}");
        }
    }

    #[test]
    fn rack_aware_wraps_when_replicas_exceed_racks() {
        // 2 racks × 4 nodes, 5 replicas: must still produce 5 distinct
        // nodes, at most 3 per rack (ceil(5/2)).
        let mut p = Placer::new(Placement::RackAware { nodes_per_rack: 4 }, 8, 5, stream(9));
        for obj in 0..200 {
            let set = p.place(obj);
            let mut s = set.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 5);
            let rack0 = set.iter().filter(|&&n| n < 4).count();
            assert!((2..=3).contains(&rack0), "{set:?}");
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rack_aware_requires_even_racks() {
        let _ = Placer::new(Placement::RackAware { nodes_per_rack: 4 }, 10, 3, stream(1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn placement_always_valid(
            policy_idx in 0usize..3,
            n_nodes in 3usize..60,
            seed in any::<u64>(),
            obj in any::<u64>()
        ) {
            let n_replicas = 3.min(n_nodes);
            let policy = match policy_idx {
                0 => Placement::Random,
                1 => Placement::RoundRobin,
                _ => Placement::Copyset { scatter_width: 4 },
            };
            let mut p = Placer::new(policy, n_nodes, n_replicas, Stream::from_seed(seed));
            let set = p.place(obj);
            prop_assert_eq!(set.len(), n_replicas);
            let mut s = set.clone();
            s.sort_unstable();
            s.dedup();
            prop_assert_eq!(s.len(), n_replicas, "distinct");
            prop_assert!(set.iter().all(|&x| x < n_nodes));
        }
    }
}
