//! Arithmetic over the Galois field GF(2⁸), the substrate for Reed–Solomon
//! coding.
//!
//! The field is GF(2)\[x\]/(x⁸+x⁴+x³+x²+1) (the 0x11D polynomial used by
//! every storage RS deployment), with log/antilog tables built once at
//! first use. Multiplication is two table lookups and an add — the classic
//! time/space trade-off; the `mul_notable` variant exists for the ablation
//! bench.

use std::sync::OnceLock;

/// The primitive polynomial x⁸+x⁴+x³+x²+1 (0x11D), generator α = 2.
const PRIM_POLY: u32 = 0x11D;

struct Tables {
    exp: [u8; 512], // doubled so exp[log a + log b] needs no mod
    log: [u16; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x: u32 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIM_POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Field addition (= subtraction = XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication via log/antilog tables.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Table-free multiplication (Russian-peasant); reference implementation
/// and ablation baseline.
pub fn mul_notable(a: u8, b: u8) -> u8 {
    let mut a = a as u32;
    let mut b = b as u32;
    let mut acc = 0u32;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a <<= 1;
        if a & 0x100 != 0 {
            a ^= PRIM_POLY;
        }
        b >>= 1;
    }
    acc as u8
}

/// Multiplicative inverse. Panics on 0.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "0 has no inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Field division `a / b`. Panics when `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// `base^exp` by table arithmetic.
pub fn pow(base: u8, exp: u32) -> u8 {
    if exp == 0 {
        return 1;
    }
    if base == 0 {
        return 0;
    }
    let t = tables();
    let l = (t.log[base as usize] as u64 * exp as u64) % 255;
    t.exp[l as usize]
}

/// `dst[i] ^= c * src[i]` — the inner loop of RS encoding.
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let t = tables();
    let lc = t.log[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[lc + t.log[*s as usize] as usize];
        }
    }
}

/// Invert a square matrix over GF(256) by Gauss–Jordan elimination.
/// Returns `None` if the matrix is singular.
pub fn invert_matrix(m: &[Vec<u8>]) -> Option<Vec<Vec<u8>>> {
    let n = m.len();
    assert!(m.iter().all(|row| row.len() == n), "matrix must be square");
    // Augmented [M | I].
    let mut a: Vec<Vec<u8>> = m
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut r = row.clone();
            r.extend((0..n).map(|j| u8::from(i == j)));
            r
        })
        .collect();

    for col in 0..n {
        // Find a pivot.
        let pivot = (col..n).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        // Normalize pivot row.
        let p = a[col][col];
        let pinv = inv(p);
        for x in a[col].iter_mut() {
            *x = mul(*x, pinv);
        }
        // Eliminate every other row.
        for row in 0..n {
            if row != col && a[row][col] != 0 {
                let factor = a[row][col];
                let (pivot_row, target_row) = if row < col {
                    let (lo, hi) = a.split_at_mut(col);
                    (&hi[0], &mut lo[row])
                } else {
                    let (lo, hi) = a.split_at_mut(row);
                    (&lo[col], &mut hi[0])
                };
                for (t, p) in target_row.iter_mut().zip(pivot_row) {
                    *t = add(*t, mul(factor, *p));
                }
            }
        }
    }
    Some(a.into_iter().map(|row| row[n..].to_vec()).collect())
}

/// Multiply two matrices over GF(256).
pub fn mat_mul(a: &[Vec<u8>], b: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let n = a.len();
    let k = b.len();
    let m = b[0].len();
    assert!(a.iter().all(|r| r.len() == k), "dimension mismatch");
    let mut out = vec![vec![0u8; m]; n];
    for i in 0..n {
        for (l, b_row) in b.iter().enumerate() {
            let c = a[i][l];
            if c != 0 {
                for j in 0..m {
                    out[i][j] = add(out[i][j], mul(c, b_row[j]));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_matches_reference() {
        for a in 0..=255u8 {
            for b in [0u8, 1, 2, 3, 7, 85, 170, 254, 255] {
                assert_eq!(mul(a, b), mul_notable(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn field_axioms_spot_checks() {
        for &(a, b, c) in &[(3u8, 7u8, 200u8), (255, 254, 1), (16, 32, 64)] {
            // Commutativity and associativity.
            assert_eq!(mul(a, b), mul(b, a));
            assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
            // Distributivity.
            assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }
    }

    #[test]
    fn every_nonzero_has_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn div_inverts_mul() {
        for a in [1u8, 5, 100, 255] {
            for b in [1u8, 7, 99, 254] {
                assert_eq!(div(mul(a, b), b), a);
            }
        }
    }

    #[test]
    fn pow_laws() {
        assert_eq!(pow(2, 0), 1);
        assert_eq!(pow(2, 1), 2);
        assert_eq!(pow(2, 8), mul(pow(2, 4), pow(2, 4)));
        // α has order 255.
        assert_eq!(pow(2, 255), 1);
        assert_ne!(pow(2, 85), 1);
        assert_ne!(pow(2, 51), 1);
    }

    #[test]
    fn mul_acc_slice_matches_scalar() {
        let src: Vec<u8> = (0..=255).collect();
        let mut dst = vec![0xAAu8; 256];
        let mut expect = dst.clone();
        mul_acc_slice(&mut dst, &src, 77);
        for (e, s) in expect.iter_mut().zip(&src) {
            *e ^= mul(77, *s);
        }
        assert_eq!(dst, expect);
        // c = 0 is a no-op; c = 1 is XOR.
        let before = dst.clone();
        mul_acc_slice(&mut dst, &src, 0);
        assert_eq!(dst, before);
        mul_acc_slice(&mut dst, &src, 1);
        for (d, (b, s)) in dst.iter().zip(before.iter().zip(&src)) {
            assert_eq!(*d, b ^ s);
        }
    }

    #[test]
    fn matrix_inverse_roundtrip() {
        let m = vec![vec![1u8, 2, 3], vec![4, 5, 6], vec![7, 8, 10]];
        let minv = invert_matrix(&m).expect("invertible");
        let prod = mat_mul(&m, &minv);
        for (i, row) in prod.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, u8::from(i == j), "prod[{i}][{j}]");
            }
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let m = vec![vec![1u8, 2], vec![2, 4]]; // row2 = 2 * row1 in GF
        assert!(invert_matrix(&m).is_none());
    }

    #[test]
    fn identity_inverts_to_identity() {
        let id = vec![vec![1u8, 0], vec![0, 1]];
        assert_eq!(invert_matrix(&id).unwrap(), id);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn table_mul_equals_reference(a in any::<u8>(), b in any::<u8>()) {
            prop_assert_eq!(mul(a, b), mul_notable(a, b));
        }

        #[test]
        fn mul_is_associative(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
            prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
        }

        #[test]
        fn distributive(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
            prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }

        #[test]
        fn random_matrices_invert(seed in any::<u64>()) {
            use wt_des::rng::Stream;
            let mut rng = Stream::from_seed(seed);
            let n = 4;
            let m: Vec<Vec<u8>> = (0..n)
                .map(|_| (0..n).map(|_| rng.below(256) as u8).collect())
                .collect();
            if let Some(minv) = invert_matrix(&m) {
                let prod = mat_mul(&m, &minv);
                for (i, row) in prod.iter().enumerate() {
                    for (j, &v) in row.iter().enumerate() {
                        prop_assert_eq!(v, u8::from(i == j));
                    }
                }
            }
        }
    }
}
