//! Replication protocols and redundancy schemes.
//!
//! Figure 1 assumes "a quorum-based protocol: if the majority of data
//! replicas of a given customer are unavailable, then the customer is not
//! able to operate on the data". [`QuorumSpec`] encodes that predicate and
//! its R/W-quorum generalization; [`RedundancyScheme`] unifies replication
//! and erasure coding behind the one question the simulator asks: *given
//! how many replicas/shards are up, can the customer operate, and is the
//! data still durable?*

use crate::erasure::StripeSpec;
use serde::{Deserialize, Serialize};

/// Read/write quorum configuration over `n` replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuorumSpec {
    /// Replication factor.
    pub n: usize,
    /// Replicas that must acknowledge a write.
    pub w: usize,
    /// Replicas that must respond to a read.
    pub r: usize,
}

impl QuorumSpec {
    /// Majority quorums: `w = r = ⌊n/2⌋ + 1` — the protocol of Figure 1.
    pub fn majority(n: usize) -> Self {
        assert!(n >= 1);
        let q = n / 2 + 1;
        QuorumSpec { n, w: q, r: q }
    }

    /// Arbitrary quorums. Enforces `w + r > n` (strong consistency) and
    /// `1 ≤ w, r ≤ n`.
    pub fn new(n: usize, w: usize, r: usize) -> Self {
        assert!(n >= 1 && (1..=n).contains(&w) && (1..=n).contains(&r));
        assert!(w + r > n, "w + r must exceed n for quorum intersection");
        QuorumSpec { n, w, r }
    }

    /// Can a client write with `up` replicas alive?
    pub fn write_available(&self, up: usize) -> bool {
        up >= self.w
    }

    /// Can a client read with `up` replicas alive?
    pub fn read_available(&self, up: usize) -> bool {
        up >= self.r
    }

    /// The Figure 1 predicate: the customer "is able to operate on the
    /// data" iff a majority (here: both quorums) is alive.
    pub fn operable(&self, up: usize) -> bool {
        self.write_available(up) && self.read_available(up)
    }
}

/// Durability outcome for one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Durability {
    /// All replicas/shards intact.
    Full,
    /// Some redundancy lost but the data is recoverable.
    Degraded,
    /// The data cannot be reconstructed from any surviving component.
    Lost,
}

/// A redundancy scheme: n-way replication with a quorum protocol, or
/// Reed–Solomon striping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RedundancyScheme {
    /// `n` full copies, quorum-based access.
    Replication(QuorumSpec),
    /// RS(k, m) striping; readable while ≥ k shards survive.
    Erasure(StripeSpec),
}

impl RedundancyScheme {
    /// Majority-quorum n-way replication.
    pub fn replication(n: usize) -> Self {
        RedundancyScheme::Replication(QuorumSpec::majority(n))
    }

    /// RS(k, m) erasure coding.
    pub fn erasure(k: usize, m: usize) -> Self {
        RedundancyScheme::Erasure(StripeSpec::new(k, m))
    }

    /// Number of placement targets one object needs (replicas or shards).
    pub fn width(&self) -> usize {
        match self {
            RedundancyScheme::Replication(q) => q.n,
            RedundancyScheme::Erasure(s) => s.total(),
        }
    }

    /// Storage overhead factor over the raw data size.
    pub fn overhead(&self) -> f64 {
        match self {
            RedundancyScheme::Replication(q) => q.n as f64,
            RedundancyScheme::Erasure(s) => s.overhead(),
        }
    }

    /// Is the object *operable* (clients can read and write) with `up` of
    /// `width()` targets alive?
    pub fn operable(&self, up: usize) -> bool {
        match self {
            RedundancyScheme::Replication(q) => q.operable(up),
            RedundancyScheme::Erasure(s) => s.available(up),
        }
    }

    /// Durability with `up` of `width()` targets alive. Replicated data
    /// survives while ≥ 1 copy exists; coded data while ≥ k shards exist.
    pub fn durability(&self, up: usize) -> Durability {
        let width = self.width();
        assert!(up <= width);
        if up == width {
            return Durability::Full;
        }
        let recoverable = match self {
            RedundancyScheme::Replication(_) => up >= 1,
            RedundancyScheme::Erasure(s) => up >= s.k,
        };
        if recoverable {
            Durability::Degraded
        } else {
            Durability::Lost
        }
    }

    /// Bytes that must be moved to repair one lost target holding
    /// `object_bytes` of raw data. Replication copies the object
    /// (`object_bytes`); RS must read k shards to rebuild one
    /// (`object_bytes` read traffic + one shard written) — the well-known
    /// repair-amplification cost of coding.
    pub fn repair_traffic_bytes(&self, object_bytes: u64) -> u64 {
        match self {
            RedundancyScheme::Replication(_) => object_bytes,
            RedundancyScheme::Erasure(s) => {
                let shard = object_bytes / s.k as u64;
                // Read k shards, write 1.
                object_bytes + shard
            }
        }
    }

    /// Short label for experiment output.
    pub fn label(&self) -> String {
        match self {
            RedundancyScheme::Replication(q) => format!("rep{}", q.n),
            RedundancyScheme::Erasure(s) => format!("rs({},{})", s.k, s.m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_quorum_sizes() {
        assert_eq!(QuorumSpec::majority(3), QuorumSpec { n: 3, w: 2, r: 2 });
        assert_eq!(QuorumSpec::majority(5), QuorumSpec { n: 5, w: 3, r: 3 });
        assert_eq!(QuorumSpec::majority(1), QuorumSpec { n: 1, w: 1, r: 1 });
        assert_eq!(QuorumSpec::majority(4), QuorumSpec { n: 4, w: 3, r: 3 });
    }

    #[test]
    fn figure1_operability_predicate() {
        // n=3: operable iff >= 2 up; n=5: iff >= 3 up.
        let q3 = QuorumSpec::majority(3);
        assert!(q3.operable(3) && q3.operable(2));
        assert!(!q3.operable(1) && !q3.operable(0));
        let q5 = QuorumSpec::majority(5);
        assert!(q5.operable(3));
        assert!(!q5.operable(2));
    }

    #[test]
    fn asymmetric_quorums() {
        // Write-one-read-all is not allowed (w+r must exceed n)...
        let q = QuorumSpec::new(3, 3, 1); // read-one-write-all is fine
        assert!(q.read_available(1));
        assert!(!q.write_available(2));
    }

    #[test]
    #[should_panic(expected = "quorum intersection")]
    fn weak_quorums_rejected() {
        let _ = QuorumSpec::new(3, 1, 1);
    }

    #[test]
    fn scheme_width_and_overhead() {
        assert_eq!(RedundancyScheme::replication(3).width(), 3);
        assert_eq!(RedundancyScheme::replication(3).overhead(), 3.0);
        let rs = RedundancyScheme::erasure(10, 4);
        assert_eq!(rs.width(), 14);
        assert!((rs.overhead() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn durability_ladder_replication() {
        let r3 = RedundancyScheme::replication(3);
        assert_eq!(r3.durability(3), Durability::Full);
        assert_eq!(r3.durability(2), Durability::Degraded);
        assert_eq!(r3.durability(1), Durability::Degraded);
        assert_eq!(r3.durability(0), Durability::Lost);
    }

    #[test]
    fn durability_ladder_erasure() {
        let rs = RedundancyScheme::erasure(6, 3);
        assert_eq!(rs.durability(9), Durability::Full);
        assert_eq!(rs.durability(6), Durability::Degraded);
        assert_eq!(rs.durability(5), Durability::Lost);
    }

    #[test]
    fn erasure_operability_vs_replication() {
        // rep3 and rs(6,3): same-ish fault tolerance story, different math.
        let r3 = RedundancyScheme::replication(3);
        let rs = RedundancyScheme::erasure(6, 3);
        // rep3 loses operability after 2 of 3 down.
        assert!(!r3.operable(1));
        // rs(6,3) tolerates exactly 3 of 9 down.
        assert!(rs.operable(6));
        assert!(!rs.operable(5));
    }

    #[test]
    fn repair_amplification() {
        let r3 = RedundancyScheme::replication(3);
        let rs = RedundancyScheme::erasure(10, 4);
        let obj = 1_000_000u64;
        assert_eq!(r3.repair_traffic_bytes(obj), obj);
        // RS repair reads the whole object worth of shards plus writes one.
        assert!(rs.repair_traffic_bytes(obj) > obj);
    }

    #[test]
    fn labels() {
        assert_eq!(RedundancyScheme::replication(5).label(), "rep5");
        assert_eq!(RedundancyScheme::erasure(6, 3).label(), "rs(6,3)");
    }
}
