//! Re-replication (repair) policy: the software knob of the paper's §1
//! worked example.
//!
//! When a node fails, every object it held becomes degraded. A
//! [`RepairPolicy`] decides how many repairs run concurrently and from how
//! many sources each repair streams — "by instantiating parallel repairs on
//! different machines, one can decrease the probability that the data will
//! become unavailable" (§1). The actual event scheduling lives in
//! `wt-cluster`; this module owns the policy math and the repair queue
//! bookkeeping.

use serde::{Deserialize, Serialize};

/// How the system re-replicates after a failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepairPolicy {
    /// Maximum repairs in flight cluster-wide. 1 = serial repair; large
    /// values spread the rebuild over many (source, destination) pairs.
    pub max_parallel: usize,
    /// Fraction of each source node's NIC bandwidth the repair is allowed
    /// to use (repair throttling to protect foreground traffic).
    pub bandwidth_share: f64,
    /// Delay before repair starts (failure-detection timeout), seconds.
    pub detection_delay_s: f64,
}

impl RepairPolicy {
    /// Serial repair with a 15-minute detection delay and half the NIC.
    pub fn serial() -> Self {
        RepairPolicy {
            max_parallel: 1,
            bandwidth_share: 0.5,
            detection_delay_s: 900.0,
        }
    }

    /// Parallel repair across `streams` pairs.
    pub fn parallel(streams: usize) -> Self {
        assert!(streams >= 1);
        RepairPolicy {
            max_parallel: streams,
            bandwidth_share: 0.5,
            detection_delay_s: 900.0,
        }
    }

    /// Time to move `total_bytes` of repair traffic when `pairs` disjoint
    /// (source, destination) pairs are available and each link sustains
    /// `link_gbps` for this repair. The effective parallelism is
    /// `min(max_parallel, pairs)`.
    pub fn repair_time_s(&self, total_bytes: u64, pairs: usize, link_gbps: f64) -> f64 {
        assert!(pairs >= 1, "need at least one repair pair");
        assert!(link_gbps > 0.0);
        let streams = self.max_parallel.min(pairs) as f64;
        let per_stream_bps = link_gbps * 1e9 / 8.0 * self.bandwidth_share;
        self.detection_delay_s + total_bytes as f64 / (per_stream_bps * streams)
    }
}

impl Default for RepairPolicy {
    fn default() -> Self {
        Self::serial()
    }
}

/// A degraded object awaiting repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairTask {
    /// Object identifier.
    pub object: u64,
    /// Bytes to move for this object's repair.
    pub bytes: u64,
}

/// FIFO queue of pending repairs with a concurrency cap — the state
/// machine `wt-cluster` drives.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepairQueue {
    policy: RepairPolicy,
    pending: Vec<RepairTask>,
    in_flight: usize,
    completed: u64,
}

impl RepairQueue {
    /// An empty queue under `policy`.
    pub fn new(policy: RepairPolicy) -> Self {
        RepairQueue {
            policy,
            pending: Vec::new(),
            in_flight: 0,
            completed: 0,
        }
    }

    /// The governing policy.
    pub fn policy(&self) -> RepairPolicy {
        self.policy
    }

    /// Enqueues a degraded object.
    pub fn enqueue(&mut self, task: RepairTask) {
        self.pending.push(task);
    }

    /// Replaces the concurrency cap in place (repair-bandwidth throttling;
    /// the chaos layer's throttle rules drive this). `0` pauses the queue.
    /// Repairs already in flight are not interrupted — a lowered cap only
    /// gates future `start_ready` calls.
    pub fn set_max_parallel(&mut self, max_parallel: usize) {
        self.policy.max_parallel = max_parallel;
    }

    /// Starts as many repairs as the concurrency cap allows; returns the
    /// tasks that just started (caller schedules their completion events).
    #[must_use = "started repairs must have completion events scheduled"]
    pub fn start_ready(&mut self) -> Vec<RepairTask> {
        let slots = self.policy.max_parallel.saturating_sub(self.in_flight);
        let take = slots.min(self.pending.len());
        let started: Vec<RepairTask> = self.pending.drain(..take).collect();
        self.in_flight += started.len();
        started
    }

    /// Marks one repair finished; typically followed by `start_ready`.
    pub fn complete_one(&mut self) {
        assert!(self.in_flight > 0, "no repair in flight");
        self.in_flight -= 1;
        self.completed += 1;
    }

    /// Drops any pending repair for `object` (e.g. the object's node came
    /// back before repair started). Returns true if one was removed.
    pub fn cancel(&mut self, object: u64) -> bool {
        if let Some(pos) = self.pending.iter().position(|t| t.object == object) {
            self.pending.remove(pos);
            true
        } else {
            false
        }
    }

    /// Repairs waiting to start.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Repairs currently running.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Total repairs finished.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// True when nothing is pending or running.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.in_flight == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_repair_is_faster() {
        let serial = RepairPolicy::serial();
        let par8 = RepairPolicy::parallel(8);
        let bytes = 4_000_000_000_000; // 4 TB node worth of data
        let t1 = serial.repair_time_s(bytes, 16, 10.0);
        let t8 = par8.repair_time_s(bytes, 16, 10.0);
        // 8 streams ≈ 8x the transfer rate (detection delay fixed).
        let transfer1 = t1 - serial.detection_delay_s;
        let transfer8 = t8 - par8.detection_delay_s;
        assert!((transfer1 / transfer8 - 8.0).abs() < 0.01);
    }

    #[test]
    fn parallelism_capped_by_available_pairs() {
        let p = RepairPolicy::parallel(64);
        let with_4_pairs = p.repair_time_s(1 << 30, 4, 10.0);
        let with_64_pairs = p.repair_time_s(1 << 30, 64, 10.0);
        assert!(with_4_pairs > with_64_pairs);
    }

    #[test]
    fn faster_network_shrinks_repair() {
        // §1: "the latency of the repair process can be reduced by using a
        // faster network (hardware), or by optimizing the repair algorithm
        // (software), or both".
        let p = RepairPolicy::serial();
        let slow = p.repair_time_s(1 << 40, 8, 1.0);
        let fast = p.repair_time_s(1 << 40, 8, 10.0);
        let transfer_slow = slow - p.detection_delay_s;
        let transfer_fast = fast - p.detection_delay_s;
        assert!((transfer_slow / transfer_fast - 10.0).abs() < 0.01);
    }

    #[test]
    fn queue_respects_concurrency_cap() {
        let mut q = RepairQueue::new(RepairPolicy::parallel(2));
        for i in 0..5 {
            q.enqueue(RepairTask {
                object: i,
                bytes: 100,
            });
        }
        let started = q.start_ready();
        assert_eq!(started.len(), 2);
        assert_eq!(q.in_flight(), 2);
        assert_eq!(q.pending_len(), 3);
        // Nothing more can start until a completion.
        assert!(q.start_ready().is_empty());
        q.complete_one();
        let next = q.start_ready();
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].object, 2);
        assert_eq!(q.completed(), 1);
    }

    #[test]
    fn queue_drains_to_idle() {
        let mut q = RepairQueue::new(RepairPolicy::serial());
        q.enqueue(RepairTask {
            object: 1,
            bytes: 1,
        });
        assert!(!q.is_idle());
        let s = q.start_ready();
        assert_eq!(s.len(), 1);
        q.complete_one();
        assert!(q.is_idle());
    }

    #[test]
    fn cancel_pending_repair() {
        let mut q = RepairQueue::new(RepairPolicy::serial());
        q.enqueue(RepairTask {
            object: 7,
            bytes: 1,
        });
        q.enqueue(RepairTask {
            object: 8,
            bytes: 1,
        });
        assert!(q.cancel(7));
        assert!(!q.cancel(7));
        assert_eq!(q.pending_len(), 1);
        let s = q.start_ready();
        assert_eq!(s[0].object, 8);
    }

    #[test]
    #[should_panic(expected = "no repair in flight")]
    fn complete_on_idle_panics() {
        let mut q = RepairQueue::new(RepairPolicy::serial());
        q.complete_one();
    }

    #[test]
    fn fifo_order_survives_combined_storm() {
        // The interleaving a combined switch + disk failure storm produces:
        // bursts of enqueues (objects degraded by a rack outage and by disk
        // deaths), interleaved cancels (rack comes back) and completions.
        // Start order must remain exactly enqueue order minus cancels.
        let mut q = RepairQueue::new(RepairPolicy::parallel(2));
        let mut started: Vec<u64> = Vec::new();
        // Wave 1: switch failure degrades objects 0..6.
        for i in 0..6 {
            q.enqueue(RepairTask {
                object: i,
                bytes: 1 << 20,
            });
        }
        started.extend(q.start_ready().iter().map(|t| t.object));
        // Wave 2: disk failures degrade 10..13 while the rack heals and
        // cancels two not-yet-started rack repairs.
        for i in 10..13 {
            q.enqueue(RepairTask {
                object: i,
                bytes: 1 << 20,
            });
        }
        assert!(q.cancel(3));
        assert!(q.cancel(5));
        while q.in_flight() > 0 || q.pending_len() > 0 {
            q.complete_one();
            started.extend(q.start_ready().iter().map(|t| t.object));
        }
        assert_eq!(started, vec![0, 1, 2, 4, 10, 11, 12]);
        assert_eq!(q.completed(), 7);
        assert!(q.is_idle());
    }

    #[test]
    fn throttle_and_restore_respect_caps() {
        // Chaos repair-throttle semantics: clamp the cap mid-storm, verify
        // in-flight never exceeds the live cap, then restore and drain.
        let mut q = RepairQueue::new(RepairPolicy::parallel(4));
        for i in 0..10 {
            q.enqueue(RepairTask {
                object: i,
                bytes: 1,
            });
        }
        assert_eq!(q.start_ready().len(), 4);
        q.set_max_parallel(1); // throttle while 4 are in flight
        q.complete_one();
        // 3 still in flight >= cap of 1: nothing new may start.
        assert!(q.start_ready().is_empty());
        q.complete_one();
        q.complete_one();
        q.complete_one();
        assert_eq!(q.in_flight(), 0);
        assert_eq!(q.start_ready().len(), 1);
        q.set_max_parallel(0); // breaker-style full pause
        q.complete_one();
        assert!(q.start_ready().is_empty());
        q.set_max_parallel(4); // restore
        assert_eq!(q.start_ready().len(), 4);
        q.complete_one();
        q.complete_one();
        q.complete_one();
        q.complete_one();
        assert_eq!(q.start_ready().len(), 1);
        q.complete_one();
        assert!(q.is_idle());
        assert_eq!(q.completed(), 10);
    }
}
