//! Systematic Reed–Solomon erasure coding — the paper's \[14\] design axis
//! for availability SLAs at lower storage overhead than replication.
//!
//! An RS(k, m) stripe splits an object into `k` data shards and computes
//! `m` parity shards; any `k` of the `k+m` survive-and-decode. The encoder
//! uses the standard systematic construction: a `(k+m)×k` Vandermonde
//! matrix, normalized by the inverse of its top `k×k` block so the first
//! `k` rows become the identity (data shards are stored verbatim).

use crate::gf256;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Shape of an erasure-coded stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StripeSpec {
    /// Data shards.
    pub k: usize,
    /// Parity shards.
    pub m: usize,
}

impl StripeSpec {
    /// A stripe shape. `k ≥ 1`, `m ≥ 0`, `k + m ≤ 255` (GF(256) limit).
    pub fn new(k: usize, m: usize) -> Self {
        assert!(k >= 1, "need at least one data shard");
        assert!(k + m <= 255, "k+m must fit in GF(256) evaluation points");
        StripeSpec { k, m }
    }

    /// Total shards per stripe.
    pub fn total(&self) -> usize {
        self.k + self.m
    }

    /// Storage overhead factor relative to the raw data (3-way replication
    /// is 3.0; RS(10,4) is 1.4 — the "XORing elephants" headline saving).
    pub fn overhead(&self) -> f64 {
        self.total() as f64 / self.k as f64
    }

    /// True if the stripe can be read/rebuilt with `up` shards alive.
    pub fn available(&self, up: usize) -> bool {
        up >= self.k
    }

    /// Number of shard losses the stripe tolerates.
    pub fn fault_tolerance(&self) -> usize {
        self.m
    }
}

/// A Reed–Solomon encoder/decoder for one stripe shape.
#[derive(Debug, Clone)]
pub struct ErasureCode {
    spec: StripeSpec,
    /// The systematic generator matrix: `(k+m) × k`; top `k` rows are I.
    gen: Vec<Vec<u8>>,
}

impl ErasureCode {
    /// Builds the systematic generator for `spec`.
    pub fn new(spec: StripeSpec) -> Self {
        let k = spec.k;
        let n = spec.total();
        // Vandermonde: row i = [α_i^0, α_i^1, ..., α_i^{k-1}] with distinct
        // evaluation points α_i = i (0..n). Any k rows are independent.
        let vand: Vec<Vec<u8>> = (0..n)
            .map(|i| (0..k).map(|j| gf256::pow(i as u8, j as u32)).collect())
            .collect();
        // Normalize: G = V · (top k×k of V)⁻¹ so the top block becomes I.
        let top: Vec<Vec<u8>> = vand[..k].to_vec();
        let top_inv = gf256::invert_matrix(&top).expect("Vandermonde block is invertible");
        let gen = gf256::mat_mul(&vand, &top_inv);
        debug_assert!((0..k).all(|i| (0..k).all(|j| gen[i][j] == u8::from(i == j))));
        ErasureCode { spec, gen }
    }

    /// The stripe shape.
    pub fn spec(&self) -> StripeSpec {
        self.spec
    }

    /// Encodes `data` into `k + m` shards. `data.len()` must be divisible
    /// by `k`; pad beforehand if needed. Returns all shards, data first.
    pub fn encode(&self, data: &[u8]) -> Vec<Bytes> {
        let k = self.spec.k;
        assert!(
            !data.is_empty() && data.len().is_multiple_of(k),
            "data length {} not divisible by k={k}",
            data.len()
        );
        let shard_len = data.len() / k;
        let data_shards: Vec<&[u8]> = data.chunks(shard_len).collect();
        let mut out: Vec<Bytes> = data_shards
            .iter()
            .map(|s| Bytes::copy_from_slice(s))
            .collect();
        for parity_row in &self.gen[k..] {
            let mut shard = vec![0u8; shard_len];
            for (j, src) in data_shards.iter().enumerate() {
                gf256::mul_acc_slice(&mut shard, src, parity_row[j]);
            }
            out.push(Bytes::from(shard));
        }
        out
    }

    /// Reconstructs the original data from any `k` surviving shards.
    /// `shards[i]` is `Some` if shard index `i` survived. Returns `None`
    /// if fewer than `k` shards are present.
    pub fn decode(&self, shards: &[Option<Bytes>]) -> Option<Vec<u8>> {
        let k = self.spec.k;
        assert_eq!(shards.len(), self.spec.total(), "shard vector wrong length");
        let present: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect();
        if present.len() < k {
            return None;
        }
        let use_rows = &present[..k];
        let shard_len = shards[use_rows[0]].as_ref().expect("present").len();
        assert!(
            use_rows
                .iter()
                .all(|&i| shards[i].as_ref().expect("present").len() == shard_len),
            "surviving shards have inconsistent lengths"
        );

        // Fast path: all k data shards survived.
        if use_rows
            .iter()
            .take(k)
            .eq((0..k).collect::<Vec<_>>().iter())
        {
            let mut data = Vec::with_capacity(k * shard_len);
            for shard in shards.iter().take(k) {
                data.extend_from_slice(shard.as_ref().expect("present"));
            }
            return Some(data);
        }

        // General path: invert the sub-generator of the surviving rows.
        let sub: Vec<Vec<u8>> = use_rows.iter().map(|&i| self.gen[i].clone()).collect();
        let sub_inv = gf256::invert_matrix(&sub).expect("any k generator rows are independent");
        let mut data = vec![0u8; k * shard_len];
        for (out_idx, inv_row) in sub_inv.iter().enumerate() {
            let dst = &mut data[out_idx * shard_len..(out_idx + 1) * shard_len];
            for (j, &row_idx) in use_rows.iter().enumerate() {
                let src = shards[row_idx].as_ref().expect("present");
                gf256::mul_acc_slice(dst, src, inv_row[j]);
            }
        }
        Some(data)
    }

    /// Rebuilds one lost shard (data or parity) from any `k` survivors —
    /// the unit of repair traffic in the cluster simulator.
    pub fn rebuild_shard(&self, shards: &[Option<Bytes>], idx: usize) -> Option<Bytes> {
        let data = self.decode(shards)?;
        let all = self.encode(&data);
        Some(all[idx].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wt_des::rng::Stream;

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = Stream::from_seed(seed);
        (0..len).map(|_| rng.below(256) as u8).collect()
    }

    #[test]
    fn encode_is_systematic() {
        let code = ErasureCode::new(StripeSpec::new(4, 2));
        let data = random_data(4 * 64, 1);
        let shards = code.encode(&data);
        assert_eq!(shards.len(), 6);
        for (i, chunk) in data.chunks(64).enumerate() {
            assert_eq!(&shards[i][..], chunk, "data shard {i} stored verbatim");
        }
    }

    #[test]
    fn decode_with_all_shards() {
        let code = ErasureCode::new(StripeSpec::new(6, 3));
        let data = random_data(6 * 100, 2);
        let shards: Vec<Option<Bytes>> = code.encode(&data).into_iter().map(Some).collect();
        assert_eq!(code.decode(&shards).unwrap(), data);
    }

    #[test]
    fn decode_with_any_k_survivors() {
        let spec = StripeSpec::new(4, 3);
        let code = ErasureCode::new(spec);
        let data = random_data(4 * 32, 3);
        let all = code.encode(&data);
        // Try every possible set of exactly m=3 losses.
        let n = spec.total();
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let mut shards: Vec<Option<Bytes>> = all.iter().cloned().map(Some).collect();
                    shards[a] = None;
                    shards[b] = None;
                    shards[c] = None;
                    let dec = code
                        .decode(&shards)
                        .unwrap_or_else(|| panic!("losses {a},{b},{c} should decode"));
                    assert_eq!(dec, data, "losses {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn too_many_losses_fail() {
        let code = ErasureCode::new(StripeSpec::new(4, 2));
        let data = random_data(4 * 16, 4);
        let all = code.encode(&data);
        let mut shards: Vec<Option<Bytes>> = all.into_iter().map(Some).collect();
        shards[0] = None;
        shards[2] = None;
        shards[5] = None; // 3 losses > m = 2
        assert!(code.decode(&shards).is_none());
    }

    #[test]
    fn rebuild_single_shard() {
        let code = ErasureCode::new(StripeSpec::new(5, 2));
        let data = random_data(5 * 48, 5);
        let all = code.encode(&data);
        for lost in 0..7 {
            let mut shards: Vec<Option<Bytes>> = all.iter().cloned().map(Some).collect();
            shards[lost] = None;
            let rebuilt = code.rebuild_shard(&shards, lost).unwrap();
            assert_eq!(rebuilt, all[lost], "rebuilt shard {lost}");
        }
    }

    #[test]
    fn rs_10_4_the_xoring_elephants_code() {
        let spec = StripeSpec::new(10, 4);
        assert!((spec.overhead() - 1.4).abs() < 1e-12);
        assert_eq!(spec.fault_tolerance(), 4);
        let code = ErasureCode::new(spec);
        let data = random_data(10 * 128, 6);
        let all = code.encode(&data);
        let mut shards: Vec<Option<Bytes>> = all.into_iter().map(Some).collect();
        for lost in [0, 3, 11, 13] {
            shards[lost] = None;
        }
        assert_eq!(code.decode(&shards).unwrap(), data);
    }

    #[test]
    fn availability_predicate() {
        let spec = StripeSpec::new(6, 3);
        assert!(spec.available(9));
        assert!(spec.available(6));
        assert!(!spec.available(5));
    }

    #[test]
    fn pure_replication_as_degenerate_code() {
        // RS(1, 2) = 3 identical copies.
        let code = ErasureCode::new(StripeSpec::new(1, 2));
        let data = random_data(40, 7);
        let shards = code.encode(&data);
        assert_eq!(&shards[0][..], &data[..]);
        assert_eq!(&shards[1][..], &data[..], "parity of k=1 is a copy");
        assert_eq!(&shards[2][..], &data[..]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn unpadded_data_rejected() {
        let code = ErasureCode::new(StripeSpec::new(4, 2));
        let _ = code.encode(&[1, 2, 3]);
    }

    #[test]
    fn overhead_comparison_replication_vs_rs() {
        // The paper's §3 availability-SLA axis: same fault tolerance,
        // very different storage bills.
        let three_way = StripeSpec::new(1, 2); // tolerates 2, overhead 3.0
        let rs_6_3 = StripeSpec::new(6, 3); // tolerates 3, overhead 1.5
        assert_eq!(three_way.fault_tolerance(), 2);
        assert_eq!(rs_6_3.fault_tolerance(), 3);
        assert!(rs_6_3.overhead() < three_way.overhead() / 1.9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use wt_des::rng::Stream;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Encode → lose any ≤ m random shards → decode recovers the data.
        #[test]
        fn erasure_roundtrip(k in 1usize..8, m in 0usize..5,
                             shard_len in 1usize..64, seed in any::<u64>()) {
            let spec = StripeSpec::new(k, m);
            let code = ErasureCode::new(spec);
            let mut rng = Stream::from_seed(seed);
            let data: Vec<u8> = (0..k * shard_len).map(|_| rng.below(256) as u8).collect();
            let all = code.encode(&data);
            prop_assert_eq!(all.len(), k + m);
            // Lose a random subset of exactly m shards.
            let lost = rng.sample_indices(k + m, m);
            let mut shards: Vec<Option<Bytes>> = all.into_iter().map(Some).collect();
            for l in lost {
                shards[l] = None;
            }
            prop_assert_eq!(code.decode(&shards).unwrap(), data);
        }
    }
}
