//! Farm progress reporting: runs done/total, throughput, ETA, and —
//! when per-run telemetry is fed in — cumulative event throughput and a
//! sketch-derived p99 of per-run wall time.

use crate::sketch::QuantileSketch;
use std::time::Instant;

/// A progress reporter for a sweep of known size.
///
/// The farm's fold thread calls [`Heartbeat::tick`] once per completed
/// run and prints whatever line it returns to **stderr** — the heartbeat
/// never runs on workers and never touches stdout, so enabling it cannot
/// perturb results or their bytes. Lines are rate-limited to one per
/// [`Heartbeat::interval_s`] (plus a final line at completion).
///
/// The counting/formatting core is pure ([`Heartbeat::tick_at`] takes
/// elapsed seconds explicitly), so cadence and arithmetic are unit
/// testable without a clock.
#[derive(Debug)]
pub struct Heartbeat {
    total: usize,
    done: usize,
    interval_s: f64,
    last_emit_s: f64,
    started: Instant,
    /// Cumulative simulation events across observed runs (see
    /// [`Heartbeat::observe_run`]).
    events: u64,
    /// Per-run wall times in microseconds; drives the line's p99.
    wall_us: QuantileSketch,
    /// Cumulative events per simulation partition, when runs are
    /// partitioned (see [`Heartbeat::observe_partitions`]). Empty — and
    /// the line unchanged — for unpartitioned sweeps.
    partition_events: Vec<u64>,
    /// Guided-planner totals `(screened, aborted, early-stopped)`, when a
    /// guided sweep feeds them (see [`Heartbeat::observe_guided`]).
    /// `None` — and the line unchanged — for exhaustive sweeps.
    guided: Option<(u64, u64, u64)>,
}

impl Heartbeat {
    /// A heartbeat over `total` runs, emitting at most one line a second.
    pub fn start(total: usize) -> Self {
        Heartbeat::with_interval(total, 1.0)
    }

    /// A heartbeat emitting at most one line per `interval_s` seconds.
    pub fn with_interval(total: usize, interval_s: f64) -> Self {
        Heartbeat {
            total,
            done: 0,
            interval_s,
            last_emit_s: 0.0,
            started: Instant::now(),
            events: 0,
            wall_us: QuantileSketch::new(),
            partition_events: Vec::new(),
            guided: None,
        }
    }

    /// Feeds one completed run's telemetry into the heartbeat: its
    /// simulation event count and its wall-clock duration in
    /// microseconds. Once any run has been observed, progress lines gain
    /// a cumulative `ev/s` figure and a sketch-derived p99 of per-run
    /// wall time; without observations the line format is unchanged.
    /// Purely observational — the heartbeat only ever writes to stderr,
    /// so feeding it cannot perturb results or their bytes.
    pub fn observe_run(&mut self, events: u64, wall_us: u64) {
        self.events += events;
        self.wall_us.record(wall_us as f64);
    }

    /// Feeds one partitioned run's per-partition event totals (partition
    /// order). Once observed, progress lines gain a `parts=N [...]`
    /// segment with cumulative events per partition — the quick skew
    /// check for partitioned execution. Stderr-only like everything else
    /// here, so result bytes are untouched.
    pub fn observe_partitions(&mut self, part_events: &[u64]) {
        if self.partition_events.len() < part_events.len() {
            self.partition_events.resize(part_events.len(), 0);
        }
        for (acc, ev) in self.partition_events.iter_mut().zip(part_events) {
            *acc += ev;
        }
    }

    /// Feeds the guided planner's running totals — points screened out
    /// analytically, runs aborted at the probe horizon, points whose
    /// replications early-stopped. Once fed, progress lines gain a
    /// `guided scr/abr/stop` segment (totals, not deltas: callers pass
    /// their counters' current values and the latest call wins).
    /// Stderr-only like everything else here; result bytes untouched.
    pub fn observe_guided(&mut self, screened: u64, aborted: u64, early_stopped: u64) {
        self.guided = Some((screened, aborted, early_stopped));
    }

    /// The emission interval in seconds.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// Runs completed so far.
    pub fn done(&self) -> usize {
        self.done
    }

    /// Records one completed run against the wall clock; returns a
    /// progress line when one is due.
    pub fn tick(&mut self) -> Option<String> {
        let elapsed = self.started.elapsed().as_secs_f64();
        self.tick_at(elapsed)
    }

    /// [`Heartbeat::tick`] with the clock injected: records one
    /// completed run at `elapsed_s` seconds since the sweep started.
    /// Emits when the interval has passed since the last line, or when
    /// the sweep completes.
    pub fn tick_at(&mut self, elapsed_s: f64) -> Option<String> {
        self.done += 1;
        let finished = self.done >= self.total;
        if !finished && elapsed_s - self.last_emit_s < self.interval_s {
            return None;
        }
        self.last_emit_s = elapsed_s;
        Some(self.line_at(elapsed_s))
    }

    /// The progress line for `elapsed_s` seconds in.
    pub fn line_at(&self, elapsed_s: f64) -> String {
        let pct = if self.total == 0 {
            100.0
        } else {
            100.0 * self.done as f64 / self.total as f64
        };
        let rate = if elapsed_s > 0.0 {
            self.done as f64 / elapsed_s
        } else {
            0.0
        };
        let remaining = self.total.saturating_sub(self.done);
        let eta = if remaining == 0 {
            format!("done in {elapsed_s:.1}s")
        } else if rate > 0.0 {
            format!("ETA {:.0}s", remaining as f64 / rate)
        } else {
            "ETA --".to_string()
        };
        let mut line = format!(
            "[farm] {}/{} runs ({pct:.0}%) · {rate:.1} runs/s · {eta}",
            self.done, self.total
        );
        if self.events > 0 && elapsed_s > 0.0 {
            line.push_str(&format!(
                " · {} ev/s",
                fmt_si(self.events as f64 / elapsed_s)
            ));
        }
        if self.wall_us.count() > 0 {
            line.push_str(&format!(" · p99 run {:.1}ms", self.wall_us.p99() / 1_000.0));
        }
        if !self.partition_events.is_empty() {
            let per_part: Vec<String> = self
                .partition_events
                .iter()
                .map(|&e| fmt_si(e as f64))
                .collect();
            line.push_str(&format!(
                " · parts={} [{}]",
                self.partition_events.len(),
                per_part.join(" ")
            ));
        }
        if let Some((scr, abr, stop)) = self.guided {
            line.push_str(&format!(" · guided {scr}scr/{abr}abr/{stop}stop"));
        }
        line
    }
}

/// Compact SI formatting for rates: `850`, `12.4k`, `3.1M`.
fn fmt_si(x: f64) -> String {
    if x >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_limits_to_interval() {
        let mut hb = Heartbeat::with_interval(100, 1.0);
        // 10 runs in the first half-second: silent.
        for i in 0..10 {
            assert_eq!(hb.tick_at(i as f64 * 0.05), None);
        }
        // Crossing the interval emits, then goes quiet again.
        let line = hb.tick_at(1.1).expect("line due");
        assert!(line.contains("11/100"), "{line}");
        assert!(line.contains("(11%)"), "{line}");
        assert_eq!(hb.tick_at(1.2), None);
    }

    #[test]
    fn completion_always_emits() {
        let mut hb = Heartbeat::with_interval(3, 1000.0);
        assert_eq!(hb.tick_at(0.1), None);
        assert_eq!(hb.tick_at(0.2), None);
        let line = hb.tick_at(0.3).expect("final line");
        assert!(line.contains("3/3"), "{line}");
        assert!(line.contains("done in 0.3s"), "{line}");
    }

    #[test]
    fn rate_and_eta_arithmetic() {
        let mut hb = Heartbeat::with_interval(60, 0.0);
        // 20 runs by t=10s → 2 runs/s, 40 left → ETA 20s.
        for i in 1..=19 {
            hb.tick_at(i as f64 * 0.5);
        }
        let line = hb.tick_at(10.0).expect("interval 0 always emits");
        assert!(line.contains("20/60"), "{line}");
        assert!(line.contains("2.0 runs/s"), "{line}");
        assert!(line.contains("ETA 20s"), "{line}");
    }

    #[test]
    fn zero_elapsed_has_no_rate() {
        let hb = Heartbeat::with_interval(5, 1.0);
        let line = hb.line_at(0.0);
        assert!(line.contains("ETA --"), "{line}");
    }

    #[test]
    fn unobserved_line_has_no_telemetry_segments() {
        let mut hb = Heartbeat::with_interval(2, 0.0);
        let line = hb.tick_at(1.0).expect("interval 0 always emits");
        assert!(!line.contains("ev/s"), "{line}");
        assert!(!line.contains("p99 run"), "{line}");
    }

    #[test]
    fn observed_runs_enrich_the_line() {
        let mut hb = Heartbeat::with_interval(4, 0.0);
        // 3 runs × 1000 events, wall times 2ms/2ms/10ms by t=2s.
        for _ in 0..3 {
            hb.observe_run(1_000, 2_000);
        }
        hb.tick_at(0.5);
        hb.tick_at(1.0);
        let line = hb.tick_at(2.0).expect("line due");
        assert!(line.contains("1.5k ev/s"), "{line}");
        // All wall samples equal → the p99 sits on the 2ms sample,
        // within DDSketch relative error.
        assert!((p99_ms(&line) - 2.0).abs() < 0.1, "{line}");
        // A slow straggler drags the p99.
        hb.observe_run(1_000, 10_000);
        let line = hb.tick_at(4.0).expect("final line");
        assert!(line.contains("1.0k ev/s"), "{line}");
        assert!((p99_ms(&line) - 10.0).abs() < 0.3, "{line}");
    }

    fn p99_ms(line: &str) -> f64 {
        line.split("p99 run ")
            .nth(1)
            .expect("p99 segment present")
            .trim_end_matches("ms")
            .parse()
            .expect("numeric p99")
    }

    #[test]
    fn partitioned_runs_report_counts_per_partition() {
        let mut hb = Heartbeat::with_interval(3, 0.0);
        // Unpartitioned runs never show the segment.
        hb.observe_run(500, 1_000);
        let line = hb.tick_at(1.0).expect("interval 0 always emits");
        assert!(!line.contains("parts="), "{line}");
        // Two partitioned runs accumulate per-partition totals.
        hb.observe_run(3_000, 2_000);
        hb.observe_partitions(&[1_000, 2_000]);
        hb.observe_run(3_000, 2_000);
        hb.observe_partitions(&[1_500, 1_500]);
        hb.tick_at(2.0);
        let line = hb.tick_at(3.0).expect("final line");
        assert!(line.contains("parts=2 [2.5k 3.5k]"), "{line}");
    }

    #[test]
    fn guided_totals_append_a_segment() {
        let mut hb = Heartbeat::with_interval(3, 0.0);
        // Exhaustive sweeps never show the segment.
        let line = hb.tick_at(1.0).expect("interval 0 always emits");
        assert!(!line.contains("guided"), "{line}");
        // Totals replace, not accumulate: callers pass counter snapshots.
        hb.observe_guided(2, 0, 1);
        hb.observe_guided(5, 1, 2);
        let line = hb.tick_at(2.0).expect("line due");
        assert!(line.contains("guided 5scr/1abr/2stop"), "{line}");
    }

    #[test]
    fn si_rate_formatting() {
        assert_eq!(fmt_si(850.0), "850");
        assert_eq!(fmt_si(12_400.0), "12.4k");
        assert_eq!(fmt_si(3_100_000.0), "3.1M");
    }
}
