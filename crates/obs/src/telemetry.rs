//! The per-run telemetry summary stored alongside results.

use crate::sketch::{Hll, QuantileSketch};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A log2-bucketed latency histogram for handler wall times.
///
/// `buckets[i]` counts samples whose nanosecond value has bit length `i`
/// (so bucket 0 is exactly 0 ns, bucket 1 is 1 ns, bucket 11 is
/// 1.0–2.0 µs, …). The vector is grown on demand, keeping serialized
/// records small for fast handlers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WallHist {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples, in nanoseconds.
    pub total_ns: u64,
    /// Largest sample, in nanoseconds.
    pub max_ns: u64,
    /// Log2 bucket counts (see type docs).
    pub buckets: Vec<u64>,
}

impl WallHist {
    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
        let idx = (64 - ns.leading_zeros()) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Mean sample in nanoseconds.
    ///
    /// Edge contract: a histogram with zero samples reports 0.0 (not
    /// NaN), matching `Histogram::quantile`'s defined-empty convention.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Per-label mergeable sketches distilled from a run's observation
/// stream: quantile sketches for model-emitted values (`Ctx::observe`)
/// and HLLs for model-touched keys (`Ctx::touch`).
///
/// Everything here is a pure function of the simulated event sequence
/// (the sketches' bucket/register state is order-independent, and each
/// run records its observations in event order), so sketch-bearing
/// telemetry stays bitwise-identical across worker counts and queue
/// backends. Merging across runs happens in the farm's ordered fold.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SketchSet {
    /// Quantile sketches by observation label.
    pub values: BTreeMap<String, QuantileSketch>,
    /// Distinct-key HLLs by touch label.
    pub distincts: BTreeMap<String, Hll>,
}

impl SketchSet {
    /// True when no observation of either kind was recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty() && self.distincts.is_empty()
    }

    /// Merges another set label-wise; labels absent here are cloned in.
    pub fn merge(&mut self, other: &SketchSet) {
        for (label, sketch) in &other.values {
            match self.values.get_mut(label) {
                Some(s) => s.merge(sketch),
                None => {
                    self.values.insert(label.clone(), sketch.clone());
                }
            }
        }
        for (label, hll) in &other.distincts {
            match self.distincts.get_mut(label) {
                Some(h) => h.merge(hll),
                None => {
                    self.distincts.insert(label.clone(), hll.clone());
                }
            }
        }
    }
}

/// The wall-clock side of a run's telemetry, segregated from the
/// sim-derived fields so determinism tests can mask it: everything in
/// here varies run to run, nothing in here is derived from the
/// simulation's event sequence.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WallTelemetry {
    /// Wall-clock duration of the run, in microseconds.
    pub wall_us: u64,
    /// Per-handler wall-time histograms. Empty unless the engine was
    /// built with its `wall-time` feature.
    pub handlers: BTreeMap<String, WallHist>,
}

/// What one simulation run did: the summary a [`crate::SimProbe`]
/// distills from the event stream, attached to each result-store record.
///
/// Every field except [`RunTelemetry::wall`] is a pure function of the
/// simulated event sequence and therefore bitwise-identical across
/// worker counts and schedules.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunTelemetry {
    /// Events the run executed.
    pub events: u64,
    /// Simulated time reached when the run stopped, in seconds.
    pub horizon_s: f64,
    /// Deepest the future-event list got.
    pub peak_queue_depth: u64,
    /// Time-weighted mean pending-event count over the run.
    pub mean_queue_depth: f64,
    /// Why the engine returned (`"QueueEmpty"`, `"HorizonReached"`,
    /// `"StoppedByModel"`, `"EventBudgetExhausted"`).
    pub stop_reason: String,
    /// Events executed, by model-assigned label.
    pub events_by_label: BTreeMap<String, u64>,
    /// Model-emitted custom marks (see the engine's `Ctx::mark`).
    pub marks: BTreeMap<String, u64>,
    /// Future-event-list backend the run used (`"heap"`, `"calendar"`),
    /// recorded as provenance. `None` on records written before the
    /// backend became selectable. Purely informational: both backends
    /// produce bitwise-identical event streams, so this never affects
    /// any simulation-derived field.
    pub queue: Option<String>,
    /// Mergeable per-label sketches (quantiles of `Ctx::observe` values,
    /// HLL cardinalities of `Ctx::touch` keys). `None` on records
    /// written before sketches existed, and on runs that observed
    /// nothing — both deserialize identically.
    pub sketches: Option<SketchSet>,
    /// Wall-clock measurements — the only nondeterministic fields.
    pub wall: WallTelemetry,
}

impl RunTelemetry {
    /// This telemetry with the wall-clock side zeroed — what determinism
    /// tests compare, since everything else is scheduling-independent.
    pub fn masked(&self) -> Self {
        let mut t = self.clone();
        t.mask_wall();
        t
    }

    /// Zeroes the wall-clock side in place.
    pub fn mask_wall(&mut self) {
        self.wall = WallTelemetry::default();
    }

    /// Folds another partition's telemetry of the *same run* into this
    /// one — the order-deterministic merge partitioned execution uses
    /// (fold partitions in partition order, exactly like farm shards fold
    /// in run order). Counters and label maps sum; `peak_queue_depth`
    /// takes the max over partitions (each partition owns a disjoint
    /// queue); `mean_queue_depth` sums, because the time-weighted means
    /// of disjoint queues add up to the mean total pending count;
    /// `horizon_s` takes the max; sketches merge label-wise (bucket and
    /// register merges are associative and commutative, so the merged
    /// set is invariant to the partition count). Wall handler histograms
    /// sum; `wall_us` is left to the caller, which measures the whole
    /// partitioned run with one clock.
    pub fn absorb_partition(&mut self, other: &RunTelemetry) {
        self.events += other.events;
        self.horizon_s = self.horizon_s.max(other.horizon_s);
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.mean_queue_depth += other.mean_queue_depth;
        if self.stop_reason.is_empty() {
            self.stop_reason = other.stop_reason.clone();
        }
        for (label, n) in &other.events_by_label {
            *self.events_by_label.entry(label.clone()).or_insert(0) += n;
        }
        for (label, n) in &other.marks {
            *self.marks.entry(label.clone()).or_insert(0) += n;
        }
        if self.queue.is_none() {
            self.queue = other.queue.clone();
        }
        if let Some(theirs) = &other.sketches {
            match &mut self.sketches {
                Some(mine) => mine.merge(theirs),
                None => self.sketches = Some(theirs.clone()),
            }
        }
        for (name, hist) in &other.wall.handlers {
            let mine = self.wall.handlers.entry(name.clone()).or_default();
            mine.count += hist.count;
            mine.total_ns += hist.total_ns;
            mine.max_ns = mine.max_ns.max(hist.max_ns);
            if mine.buckets.len() < hist.buckets.len() {
                mine.buckets.resize(hist.buckets.len(), 0);
            }
            for (b, n) in hist.buckets.iter().enumerate() {
                mine.buckets[b] += n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_hist_buckets_by_bit_length() {
        let mut h = WallHist::default();
        h.record(0);
        h.record(1);
        h.record(1500); // 11 bits
        h.record(1800); // 11 bits
        assert_eq!(h.count, 4);
        assert_eq!(h.max_ns, 1800);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[11], 2);
        assert!((h.mean_ns() - (3301.0 / 4.0)).abs() < 1e-9);
    }

    #[test]
    fn wall_hist_mean_of_zero_count_is_zero_not_nan() {
        let h = WallHist::default();
        assert_eq!(h.count, 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert!(!h.mean_ns().is_nan());
    }

    #[test]
    fn masked_zeroes_only_wall_fields() {
        let mut t = RunTelemetry {
            events: 10,
            horizon_s: 5.0,
            peak_queue_depth: 3,
            mean_queue_depth: 1.5,
            stop_reason: "HorizonReached".into(),
            ..RunTelemetry::default()
        };
        t.events_by_label.insert("NodeFail".into(), 10);
        t.wall.wall_us = 12345;
        t.wall
            .handlers
            .insert("NodeFail".into(), WallHist::default());
        let m = t.masked();
        assert_eq!(m.wall, WallTelemetry::default());
        assert_eq!(m.events, 10);
        assert_eq!(m.events_by_label, t.events_by_label);
        // Masking in place agrees.
        t.mask_wall();
        assert_eq!(t, m);
    }

    #[test]
    fn serde_roundtrip() {
        let mut t = RunTelemetry {
            events: 42,
            horizon_s: 3.25,
            peak_queue_depth: 7,
            mean_queue_depth: 2.125,
            stop_reason: "QueueEmpty".into(),
            ..RunTelemetry::default()
        };
        t.events_by_label.insert("Arrival".into(), 40);
        t.events_by_label.insert("DiskDone".into(), 2);
        t.marks.insert("object_lost".into(), 1);
        t.wall.wall_us = 99;
        let mut set = SketchSet::default();
        let mut s = QuantileSketch::new();
        s.record(0.25);
        s.record(4.0);
        set.values.insert("rebuild_wait_s".into(), s);
        let mut h = Hll::new();
        h.insert(7);
        set.distincts.insert("objects_touched".into(), h);
        t.sketches = Some(set);
        let json = serde_json::to_string(&t).unwrap();
        let back: RunTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn absorb_partition_merges_order_deterministically() {
        let mk = |events: u64, label: &str, peak: u64, mean: f64, sketch_v: f64| {
            let mut t = RunTelemetry {
                events,
                horizon_s: 10.0,
                peak_queue_depth: peak,
                mean_queue_depth: mean,
                stop_reason: "HorizonReached".into(),
                queue: Some("heap".into()),
                ..RunTelemetry::default()
            };
            t.events_by_label.insert(label.into(), events);
            t.marks.insert("object_lost".into(), 1);
            let mut set = SketchSet::default();
            let mut s = QuantileSketch::new();
            s.record(sketch_v);
            set.values.insert("wait_s".into(), s);
            t.sketches = Some(set);
            t
        };
        let parts = [
            mk(5, "A", 3, 1.0, 0.5),
            mk(7, "B", 9, 2.5, 4.0),
            mk(2, "A", 1, 0.25, 8.0),
        ];
        let mut merged = RunTelemetry::default();
        for p in &parts {
            merged.absorb_partition(p);
        }
        assert_eq!(merged.events, 14);
        assert_eq!(merged.peak_queue_depth, 9);
        assert_eq!(merged.mean_queue_depth, 3.75);
        assert_eq!(merged.horizon_s, 10.0);
        assert_eq!(merged.stop_reason, "HorizonReached");
        assert_eq!(merged.queue.as_deref(), Some("heap"));
        assert_eq!(merged.events_by_label["A"], 7);
        assert_eq!(merged.events_by_label["B"], 7);
        assert_eq!(merged.marks["object_lost"], 3);
        // Sketch merge sees all three observations.
        let sk = &merged.sketches.as_ref().unwrap().values["wait_s"];
        assert_eq!(sk.count(), 3);
        // Partition-count invariance in miniature: fold (0+1) then 2
        // equals fold 0 then (1+2) — the merges are associative.
        let mut left = parts[0].clone();
        left.absorb_partition(&parts[1]);
        left.absorb_partition(&parts[2]);
        let mut right_tail = parts[1].clone();
        right_tail.absorb_partition(&parts[2]);
        let mut right = parts[0].clone();
        right.absorb_partition(&right_tail);
        assert_eq!(left.masked(), right.masked());
    }

    #[test]
    fn pre_sketch_json_loads_with_none_sketches() {
        // A record serialized before the `sketches` field existed: the
        // field is simply absent, and must deserialize as `None` (the
        // same backward-compat contract `queue` honors).
        let json = r#"{
            "events": 5,
            "horizon_s": 1.5,
            "peak_queue_depth": 2,
            "mean_queue_depth": 0.5,
            "stop_reason": "HorizonReached",
            "events_by_label": {"NodeFail": 5},
            "marks": {},
            "queue": null,
            "wall": {"wall_us": 10, "handlers": {}}
        }"#;
        let t: RunTelemetry = serde_json::from_str(json).unwrap();
        assert_eq!(t.events, 5);
        assert_eq!(t.sketches, None);
    }
}
