//! Mergeable, fixed-size sketches: distinct counts and quantiles in O(1)
//! memory per metric.
//!
//! The farm aggregates statistics shard → ordered fold → sweep point, so
//! every summary it carries must honor the same contract `Counter` and
//! `Tally` pin in `wt-des`: `merge` is associative, commutative, and a
//! pure function of the observation multiset — the result is
//! bitwise-identical for any worker count or merge tree. Retained-sample
//! percentiles break that contract's *memory* half (they grow with the
//! event count); these two sketches restore it:
//!
//! * [`Hll`] — HyperLogLog distinct counter. A fixed array of 2^p 6-bit
//!   ranks (stored as bytes); `merge` is register-wise max. Standard
//!   error ≈ 1.04/√2^p — about 1.6% at the default precision 12
//!   (4 KiB of registers).
//! * [`QuantileSketch`] — DDSketch-style relative-error quantile sketch.
//!   Geometric buckets `(γ^(i-1), γ^i]` with γ = (1+α)/(1−α) guarantee
//!   every reported quantile is within relative error α of the exact
//!   sample quantile at the same rank. A collapsing bound caps the
//!   bucket count; collapse is *canonical* (fold everything below the
//!   m-th-highest distinct bucket into that bucket), which keeps `merge`
//!   a pure function of the union multiset even across pre-collapsed
//!   inputs.
//!
//! Both types serde-round-trip exactly: every stored float is either an
//! input parameter or a sum of inputs, and the vendored `serde_json`
//! prints shortest-round-trip floats.

use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// HyperLogLog
// ---------------------------------------------------------------------------

/// Default HLL precision: 2^12 = 4096 registers, ~1.6% standard error.
pub const HLL_DEFAULT_PRECISION: u8 = 12;

/// HyperLogLog distinct counter over `u64` keys.
///
/// Keys are scrambled through a 64-bit finalizer before use, so
/// structured inputs (sequential object ids) estimate as well as random
/// ones. Two sketches of the same precision merge by register-wise max:
/// the merge of any partition of a key stream equals the sketch of the
/// whole stream, bit for bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hll {
    precision: u8,
    registers: Vec<u8>,
}

impl Default for Hll {
    fn default() -> Self {
        Self::new()
    }
}

/// The splitmix64 finalizer: a full-avalanche 64-bit scrambler.
fn scramble(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Hll {
    /// An empty sketch at [`HLL_DEFAULT_PRECISION`].
    pub fn new() -> Self {
        Self::with_precision(HLL_DEFAULT_PRECISION)
    }

    /// An empty sketch with `2^precision` registers (`4 ≤ precision ≤ 16`).
    pub fn with_precision(precision: u8) -> Self {
        assert!(
            (4..=16).contains(&precision),
            "HLL precision {precision} outside 4..=16"
        );
        Hll {
            precision,
            registers: vec![0; 1 << precision],
        }
    }

    /// Register-array precision.
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Inserts one key (idempotent: re-inserting changes nothing).
    #[inline]
    pub fn insert(&mut self, key: u64) {
        let h = scramble(key);
        let idx = (h >> (64 - self.precision)) as usize;
        // Rank of the first set bit in the remaining 64-p bits (1-based);
        // an all-zero remainder gets the maximum rank 64-p+1.
        let rest = h << self.precision;
        let rank = if rest == 0 {
            64 - self.precision + 1
        } else {
            rest.leading_zeros() as u8 + 1
        };
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// True when no key has ever been inserted.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// Estimated number of distinct keys inserted.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            n => 0.7213 / (1.0 + 1.079 / n as f64),
        };
        let mut sum = 0.0;
        let mut zeros = 0u32;
        for &r in &self.registers {
            sum += f64::powi(2.0, -(r as i32));
            if r == 0 {
                zeros += 1;
            }
        }
        let raw = alpha * m * m / sum;
        // Small-range correction: linear counting while registers are
        // mostly empty (the raw estimator biases high there).
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Register-wise max merge. The result equals the sketch of the
    /// concatenated key streams, regardless of split or order.
    pub fn merge(&mut self, other: &Hll) {
        assert_eq!(
            self.precision, other.precision,
            "HLL precision mismatch in merge"
        );
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            if b > *a {
                *a = b;
            }
        }
    }

    /// Heap + inline footprint in bytes (for overhead reporting).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.registers.capacity()
    }
}

// ---------------------------------------------------------------------------
// Quantile sketch
// ---------------------------------------------------------------------------

/// Default relative accuracy: quantiles within 1% of the exact value.
pub const SKETCH_DEFAULT_ALPHA: f64 = 0.01;

/// Default collapsing bound (DDSketch's own default). 2048 buckets at
/// α = 1% span a value ratio of γ^2048 ≈ e^41 ≈ 6·10^17 before any
/// collapsing starts — nanoseconds to days with room to spare — while
/// capping the parallel vectors at ~24 KiB.
pub const SKETCH_DEFAULT_MAX_BUCKETS: usize = 2048;

/// DDSketch-style quantile sketch with relative-error guarantee α and a
/// canonical collapsing bound.
///
/// Values ≤ 0 (and denormally small positives) land in a dedicated zero
/// bucket and report as 0. Everything else maps to bucket
/// `i = ceil(ln(x)/ln γ)`, whose representative value `2γ^i/(γ+1)` is
/// within relative error α of every value in the bucket.
///
/// `merge` sums bucket counts and re-applies the canonical collapse, so
/// any merge tree over any partition of the observations yields the same
/// bytes — the contract the farm's ordered fold relies on.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    /// Relative accuracy α.
    alpha: f64,
    /// Bucket base γ = (1+α)/(1−α), stored so the mapping never depends
    /// on recomputation (f64 round-trips exactly through our JSON).
    gamma: f64,
    /// Collapsing bound on the number of distinct non-zero buckets.
    max_buckets: usize,
    /// Distinct bucket indices, ascending.
    keys: Vec<i32>,
    /// Count per bucket, parallel to `keys` (parallel vectors rather
    /// than a map: JSON object keys must be strings).
    counts: Vec<u64>,
    /// Observations at or below zero.
    zero_count: u64,
    /// Total observations (including zeros).
    count: u64,
    /// Sum of all observations.
    sum: f64,
    /// Smallest observation (+inf when empty).
    min: f64,
    /// Largest observation (−inf when empty).
    max: f64,
    // --- Transient acceleration state: derived from the fields above,
    // --- excluded from PartialEq and serde (see the manual impls below).
    /// 1/ln γ, so the hot `key_of` is a multiply instead of an `ln`.
    inv_ln_gamma: f64,
    /// Exclusive lower bound of the last-touched bucket, shrunk a hair
    /// inside the true bucket so a cache hit can never misattribute a
    /// boundary value (+inf when invalid).
    cache_lo: f64,
    /// Inclusive upper bound of the last-touched bucket, shrunk likewise
    /// (−inf when invalid).
    cache_hi: f64,
    /// Position of that bucket in `keys`/`counts`. Only valid while no
    /// insert/collapse/merge has shifted positions — all of which go
    /// through the slow path, which refreshes or invalidates the cache.
    cache_pos: usize,
    /// Key of the last slow-path bucket: bounds are only computed (they
    /// cost a `powi`) when the same bucket misses twice running, so
    /// scattered streams never pay for a cache they would not hit.
    cache_key: i32,
}

/// Equality is over the logical sketch state only — the transient
/// acceleration fields are derived and never serialized, so two sketches
/// that saw the same observations compare equal regardless of access
/// pattern (e.g. before vs after a serde round-trip).
impl PartialEq for QuantileSketch {
    fn eq(&self, other: &Self) -> bool {
        self.alpha == other.alpha
            && self.gamma == other.gamma
            && self.max_buckets == other.max_buckets
            && self.keys == other.keys
            && self.counts == other.counts
            && self.zero_count == other.zero_count
            && self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
    }
}

// Manual serde: the wire format is exactly the ten logical fields the
// derive used to emit (same names, same order), keeping every JSONL
// record readable across this change; the acceleration fields are
// rebuilt on load.
impl Serialize for QuantileSketch {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("alpha".into(), self.alpha.to_value()),
            ("gamma".into(), self.gamma.to_value()),
            ("max_buckets".into(), self.max_buckets.to_value()),
            ("keys".into(), self.keys.to_value()),
            ("counts".into(), self.counts.to_value()),
            ("zero_count".into(), self.zero_count.to_value()),
            ("count".into(), self.count.to_value()),
            ("sum".into(), self.sum.to_value()),
            ("min".into(), self.min.to_value()),
            ("max".into(), self.max.to_value()),
        ])
    }
}

impl Deserialize for QuantileSketch {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| -> Result<&serde::Value, serde::Error> {
            v.get(name)
                .ok_or_else(|| serde::Error::custom(format!("QuantileSketch missing `{name}`")))
        };
        let gamma = f64::from_value(field("gamma")?)?;
        Ok(QuantileSketch {
            alpha: f64::from_value(field("alpha")?)?,
            gamma,
            max_buckets: usize::from_value(field("max_buckets")?)?,
            keys: Vec::<i32>::from_value(field("keys")?)?,
            counts: Vec::<u64>::from_value(field("counts")?)?,
            zero_count: u64::from_value(field("zero_count")?)?,
            count: u64::from_value(field("count")?)?,
            sum: f64::from_value(field("sum")?)?,
            min: f64::from_value(field("min")?)?,
            max: f64::from_value(field("max")?)?,
            inv_ln_gamma: gamma.ln().recip(),
            cache_lo: f64::INFINITY,
            cache_hi: f64::NEG_INFINITY,
            cache_pos: 0,
            cache_key: i32::MIN,
        })
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

/// Mantissa-split table for the fast bucket mapping: entry `i` holds
/// `(1/m_hi, ln m_hi)` for `m_hi = 1 + i/256`, so a mantissa `m` in
/// `[m_hi, m_hi + 1/256)` decomposes as `ln m = ln m_hi + ln(m/m_hi)`
/// with the residual ratio within `2^−8` of 1.
static LOG_TABLE: std::sync::LazyLock<[(f64, f64); 256]> = std::sync::LazyLock::new(|| {
    std::array::from_fn(|i| {
        let m_hi = 1.0 + i as f64 / 256.0;
        let inv = 1.0 / m_hi;
        (inv, -inv.ln())
    })
});

impl QuantileSketch {
    /// An empty sketch at [`SKETCH_DEFAULT_ALPHA`] accuracy.
    pub fn new() -> Self {
        Self::with_accuracy(SKETCH_DEFAULT_ALPHA, SKETCH_DEFAULT_MAX_BUCKETS)
    }

    /// An empty sketch with explicit relative accuracy and bucket bound.
    pub fn with_accuracy(alpha: f64, max_buckets: usize) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "relative accuracy {alpha} outside (0, 1)"
        );
        assert!(max_buckets >= 2, "need at least 2 buckets");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            gamma,
            max_buckets,
            keys: Vec::new(),
            counts: Vec::new(),
            zero_count: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            inv_ln_gamma: gamma.ln().recip(),
            cache_lo: f64::INFINITY,
            cache_hi: f64::NEG_INFINITY,
            cache_pos: 0,
            cache_key: i32::MIN,
        }
    }

    /// Configured relative accuracy α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Bucket index of a positive value: `ceil(ln x / ln γ)`.
    ///
    /// The defining expression is [`Self::key_of_exact`]; this fast path
    /// computes the same integer from the float's bit pattern — mantissa
    /// split against a 256-entry log table plus a short `ln(1+r)` series
    /// — and defers to the exact expression whenever the approximation
    /// lands within 1e−6 of a bucket boundary. The combined error of the
    /// table decomposition and series truncation is below 1e−10 in key
    /// units, four orders of magnitude inside that guard band, so the
    /// two paths can never disagree on a key.
    fn key_of(&self, x: f64) -> i32 {
        let bits = x.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32;
        // Subnormals and non-finite values: callers exclude them, but
        // the mantissa decomposition below would mangle them silently.
        if exp == 0 || exp == 0x7ff {
            return self.key_of_exact(x);
        }
        let (inv, ln_hi) = LOG_TABLE[((bits >> 44) & 0xff) as usize];
        let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
        // m = m_hi · (1 + r) with r ∈ [0, 2^−8): ln m = ln m_hi + ln(1+r).
        let r = m * inv - 1.0;
        let ln_m = ln_hi + r * (1.0 - r * (0.5 - r * (1.0 / 3.0 - r * 0.25)));
        let k = ((exp - 1023) as f64 * core::f64::consts::LN_2 + ln_m) * self.inv_ln_gamma;
        let kc = k.ceil();
        if kc - k > 1e-6 && k - (kc - 1.0) > 1e-6 {
            kc as i32
        } else {
            self.key_of_exact(x)
        }
    }

    /// The reference bucket mapping (the slow, obviously-correct form).
    fn key_of_exact(&self, x: f64) -> i32 {
        (x.ln() * self.inv_ln_gamma).ceil() as i32
    }

    /// Representative value of bucket `key`: the γ-midpoint of
    /// `(γ^(k-1), γ^k]`, within relative error α of the whole bucket.
    fn value_of(&self, key: i32) -> f64 {
        2.0 * self.gamma.powi(key) / (self.gamma + 1.0)
    }

    /// Records one observation. The hot path is the bucket cache:
    /// simulation observations (request latencies, rebuild durations)
    /// cluster heavily, so the last-touched bucket usually absorbs the
    /// next value with two compares and an increment, no logarithm.
    ///
    /// `#[inline]` (like on [`Self::record_n`] and [`Hll::insert`]): the
    /// fast path is a handful of instructions recorded from other
    /// crates' per-event hot loops, and the workspace builds without
    /// LTO, so without the hint every observation would pay a full
    /// cross-crate call.
    #[inline]
    pub fn record(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "NaN observation");
        self.count += 1;
        self.sum += x;
        // Branchless (minsd/maxsd); identical for the non-NaN inputs the
        // debug_assert admits.
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x > self.cache_lo && x <= self.cache_hi {
            self.counts[self.cache_pos] += 1;
            return;
        }
        self.record_slow(x, 1);
    }

    /// Records the same observation `n` times in one step — the bucket
    /// bookkeeping is per distinct value, so batching identical values
    /// (e.g. a wave of rebuilds started by the same event) costs the same
    /// as one record. Equivalent to `n` calls of [`Self::record`] except
    /// that `sum` accrues `x·n` in a single operation, whose last bits
    /// can differ from `n` separate additions.
    #[inline]
    pub fn record_n(&mut self, x: f64, n: u64) {
        if n == 0 {
            return;
        }
        debug_assert!(!x.is_nan(), "NaN observation");
        self.count += n;
        self.sum += x * n as f64;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x > self.cache_lo && x <= self.cache_hi {
            self.counts[self.cache_pos] += n;
            return;
        }
        self.record_slow(x, n);
    }

    /// Cache-miss path of [`Self::record`]: the value's own bucket
    /// membership (and any structural change to the bucket vectors)
    /// happens here, then the cache is pointed at the touched bucket.
    #[cold]
    fn record_slow(&mut self, x: f64, n: u64) {
        // Subnormals underflow ln(); anything that small is zero here.
        if x < f64::MIN_POSITIVE {
            self.zero_count += n;
            return;
        }
        let key = self.key_of(x);
        // Position hint before the binary search: ramping streams (e.g.
        // queueing waits climbing through a burst) land on the last
        // touched position or its right neighbor far more often than not.
        let hint = self.cache_pos;
        if self.keys.get(hint) == Some(&key) {
            self.counts[hint] += n;
            self.note_bucket(key, hint);
            return;
        }
        if self.keys.get(hint + 1) == Some(&key) {
            self.counts[hint + 1] += n;
            self.note_bucket(key, hint + 1);
            return;
        }
        match self.keys.binary_search(&key) {
            Ok(i) => {
                self.counts[i] += n;
                self.note_bucket(key, i);
            }
            Err(i) => {
                self.keys.insert(i, key);
                self.counts.insert(i, n);
                if self.keys.len() > self.max_buckets {
                    self.collapse();
                    self.invalidate_cache();
                } else {
                    self.note_bucket(key, i);
                }
            }
        }
    }

    /// Remembers the slow-path bucket just touched. Bounds (a `powi`)
    /// are only computed on the second consecutive touch of the same
    /// bucket: clustered streams arm the cache once and then hit it,
    /// while scattered streams never pay the bounds computation.
    fn note_bucket(&mut self, key: i32, pos: usize) {
        if key == self.cache_key {
            self.set_cache(key, pos);
        } else {
            self.cache_key = key;
            self.cache_lo = f64::INFINITY;
            self.cache_hi = f64::NEG_INFINITY;
            // Keep the position current even unarmed: the slow path uses
            // it as a search hint (guarded by a key compare, so a stale
            // value costs two compares, never a wrong bucket).
            self.cache_pos = pos;
        }
    }

    /// Points the bucket cache at bucket `key` (position `pos`). The
    /// cached interval is the true bucket `(γ^(k−1), γ^k]` shrunk by a
    /// relative 1e−9 on both ends: `powi` rounding and `key_of`'s own
    /// evaluation noise are both orders of magnitude below that margin,
    /// so any value inside the cached interval is guaranteed to map to
    /// `key` — a hit can never disagree with the slow path.
    fn set_cache(&mut self, key: i32, pos: usize) {
        let hi = self.gamma.powi(key);
        self.cache_lo = (hi / self.gamma) * (1.0 + 1e-9);
        self.cache_hi = hi * (1.0 - 1e-9);
        self.cache_pos = pos;
    }

    /// Forgets the cached bucket (positions shifted or were rebuilt).
    fn invalidate_cache(&mut self) {
        self.cache_lo = f64::INFINITY;
        self.cache_hi = f64::NEG_INFINITY;
        self.cache_pos = 0;
        self.cache_key = i32::MIN;
    }

    /// Canonical collapse: fold every bucket below the `max_buckets`-th
    /// highest distinct key into that key. Applied after every insert and
    /// merge, so a sketch's bytes are a pure function of its observation
    /// multiset — the property that makes `merge` order-independent.
    fn collapse(&mut self) {
        if self.keys.len() <= self.max_buckets {
            return;
        }
        let cut = self.keys.len() - self.max_buckets;
        let folded: u64 = self.counts[..=cut].iter().sum();
        self.keys.drain(..cut);
        self.counts.drain(..cut);
        self.counts[0] = folded;
    }

    /// Number of observations (including zeros).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact smallest observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact largest observation (−inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Distinct non-zero buckets currently held.
    pub fn buckets(&self) -> usize {
        self.keys.len()
    }

    /// The `q`-quantile. `q` is clamped into [0, 1]; an empty sketch
    /// reports 0 — the same conventions `Histogram::quantile` defines.
    ///
    /// Uses the rank `ceil(q·n)` (1-based, minimum 1), matching an exact
    /// oracle `sorted[ceil(q·n).max(1) - 1]`; the reported value is
    /// within relative error α of that oracle (collapsed buckets
    /// excepted).
    pub fn quantile(&self, q: f64) -> f64 {
        debug_assert!(!q.is_nan(), "NaN quantile");
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        if rank <= self.zero_count {
            return 0.0;
        }
        let mut seen = self.zero_count;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.value_of(self.keys[i]);
            }
        }
        // All counts seen (rank == count rounding edge): top bucket.
        match self.keys.last() {
            Some(&k) => self.value_of(k),
            None => 0.0,
        }
    }

    /// Convenience: median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Convenience: 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Convenience: 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Convenience: 99.9th percentile.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Merges another sketch with identical parameters. The bucket
    /// state (keys, counts, zeros, min, max) is a pure function of the
    /// observation multiset — even when the inputs already collapsed,
    /// because counts only ever fold *downward* into keys that stay
    /// below every later collapse cut. `sum` rounds per f64 addition
    /// order, so merge in a fixed order for bitwise-identical bytes —
    /// the same contract `Tally::merge` pins, honored by the farm's
    /// ordered fold.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.alpha == other.alpha && self.max_buckets == other.max_buckets,
            "quantile sketch parameter mismatch in merge"
        );
        if other.count == 0 {
            return;
        }
        // Two-pointer merge of the sorted key lists.
        let mut keys = Vec::with_capacity(self.keys.len() + other.keys.len());
        let mut counts = Vec::with_capacity(keys.capacity());
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() || j < other.keys.len() {
            let take_self =
                j >= other.keys.len() || (i < self.keys.len() && self.keys[i] <= other.keys[j]);
            if take_self {
                let k = self.keys[i];
                let mut c = self.counts[i];
                i += 1;
                if j < other.keys.len() && other.keys[j] == k {
                    c += other.counts[j];
                    j += 1;
                }
                keys.push(k);
                counts.push(c);
            } else {
                keys.push(other.keys[j]);
                counts.push(other.counts[j]);
                j += 1;
            }
        }
        self.keys = keys;
        self.counts = counts;
        self.zero_count += other.zero_count;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.collapse();
        self.invalidate_cache();
    }

    /// Heap + inline footprint in bytes (for overhead reporting).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.keys.capacity() * std::mem::size_of::<i32>()
            + self.counts.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_key_mapping_matches_exact() {
        let s = QuantileSketch::new();
        // Magnitude sweep across the full normal range.
        let mut x = 1e-300;
        while x < 1e300 {
            assert_eq!(s.key_of(x), s.key_of_exact(x), "x={x}");
            x *= 1.618_033_988_749;
        }
        // Values engineered onto and around bucket boundaries, where the
        // fast path must defer to the exact expression.
        for k in -600..600 {
            let b = s.gamma.powi(k);
            for d in [-1e-7, -1e-12, 0.0, 1e-12, 1e-7] {
                let v = b * (1.0 + d);
                if v.is_finite() && v >= f64::MIN_POSITIVE {
                    assert_eq!(s.key_of(v), s.key_of_exact(v), "v={v}");
                }
            }
        }
    }

    #[test]
    fn record_n_matches_repeated_records() {
        let mut batched = QuantileSketch::new();
        let mut single = QuantileSketch::new();
        for &(x, n) in &[
            (0.5, 3u64),
            (12.0, 1),
            (0.0, 2),
            (12.0, 5),
            (1e-310, 4),
            (0.5, 2),
        ] {
            batched.record_n(x, n);
            for _ in 0..n {
                single.record(x);
            }
        }
        batched.record_n(9.9, 0); // no-op
        assert_eq!(batched.count(), single.count());
        assert_eq!(batched.min(), single.min());
        assert_eq!(batched.max(), single.max());
        // Sums agree up to addition-order rounding (x·n vs n additions).
        assert!((batched.sum() - single.sum()).abs() <= 1e-9 * single.sum().abs());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(batched.quantile(q), single.quantile(q), "q={q}");
        }
    }

    #[test]
    fn hll_empty_estimates_zero() {
        let h = Hll::new();
        assert!(h.is_empty());
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn hll_accuracy_within_two_percent() {
        // Standard error at precision 12 is ~1.6%; small n rides the
        // linear-counting path whose fluctuation can reach ~2σ.
        for &(n, tol) in &[(100u64, 0.04), (10_000, 0.02), (100_000, 0.02)] {
            let mut h = Hll::new();
            for k in 0..n {
                h.insert(k);
            }
            let est = h.estimate();
            let rel = (est - n as f64).abs() / n as f64;
            assert!(rel < tol, "n={n}: estimate {est}, rel error {rel}");
        }
    }

    #[test]
    fn hll_insert_is_idempotent() {
        let mut a = Hll::new();
        let mut b = Hll::new();
        for k in 0..1000u64 {
            a.insert(k);
            b.insert(k);
            b.insert(k); // duplicates change nothing
        }
        assert_eq!(a, b);
    }

    #[test]
    fn hll_merge_equals_union() {
        let mut whole = Hll::new();
        let mut a = Hll::new();
        let mut b = Hll::new();
        for k in 0..5000u64 {
            whole.insert(k);
            // Overlapping halves: merge must still equal the union sketch.
            if k < 3000 {
                a.insert(k);
            }
            if k >= 2000 {
                b.insert(k);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn hll_merge_rejects_precision_mismatch() {
        let mut a = Hll::with_precision(10);
        a.merge(&Hll::with_precision(12));
    }

    #[test]
    fn quantile_sketch_empty_and_clamping() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.quantile(-1.0), 0.0);
        assert_eq!(s.quantile(2.0), 0.0);
        let mut s = QuantileSketch::new();
        s.record(5.0);
        // Out-of-range q clamps instead of panicking.
        assert_eq!(s.quantile(-0.5), s.quantile(0.0));
        assert_eq!(s.quantile(1.5), s.quantile(1.0));
    }

    #[test]
    fn quantile_sketch_zero_and_negative_bucket() {
        let mut s = QuantileSketch::new();
        s.record(0.0);
        s.record(0.0);
        s.record(10.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.quantile(0.5), 0.0);
        let p100 = s.quantile(1.0);
        assert!((p100 - 10.0).abs() / 10.0 < 0.01, "p100 = {p100}");
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn quantile_sketch_relative_error() {
        let mut s = QuantileSketch::new();
        let mut xs: Vec<f64> = Vec::new();
        // Deterministic skewed data spanning 5 decades.
        let mut u = 0.37f64;
        for _ in 0..20_000 {
            u = (u * 997.0 + 0.123).fract();
            let x = 1e-4 * (u * 11.5).exp();
            xs.push(x);
            s.record(x);
        }
        xs.sort_by(f64::total_cmp);
        for &q in &[0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999] {
            let rank = ((q * xs.len() as f64).ceil().max(1.0)) as usize;
            let exact = xs[rank - 1];
            let est = s.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= s.alpha() * 1.01 + 1e-12,
                "q={q}: est {est}, exact {exact}, rel {rel}"
            );
        }
    }

    #[test]
    fn quantile_sketch_merge_equals_whole_and_commutes() {
        let mut whole = QuantileSketch::new();
        let mut parts: Vec<QuantileSketch> = (0..4).map(|_| QuantileSketch::new()).collect();
        // Integer-valued observations keep every f64 sum exact, so the
        // sequential sketch and any merge order agree bit for bit.
        for i in 0..8000u64 {
            let x = (i.wrapping_mul(2_654_435_761) % 100_000 + 1) as f64;
            whole.record(x);
            parts[(i % 4) as usize].record(x);
        }
        // Left fold in order.
        let mut fwd = parts[0].clone();
        for p in &parts[1..] {
            fwd.merge(p);
        }
        // Reverse fold.
        let mut rev = parts[3].clone();
        for p in parts[..3].iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, whole);
        assert_eq!(rev, whole);
    }

    #[test]
    fn quantile_sketch_collapse_is_canonical() {
        // Tiny bound so collapsing definitely fires, in different orders.
        let make = || QuantileSketch::with_accuracy(0.05, 8);
        // Exact integer squares span ~200 buckets at α = 5% while keeping
        // sums order-independent.
        let xs: Vec<f64> = (1..=200).map(|i: i64| (i * i * 40_000) as f64).collect();
        let mut whole = make();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = make();
        let mut b = make();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(
            ab, whole,
            "collapse must be a pure function of the multiset"
        );
        assert_eq!(ba, whole);
        assert!(whole.buckets() <= 8);
        assert_eq!(whole.count(), 200);
    }

    #[test]
    #[should_panic(expected = "parameter mismatch")]
    fn quantile_sketch_merge_rejects_mismatch() {
        let mut a = QuantileSketch::with_accuracy(0.01, 512);
        a.merge(&QuantileSketch::with_accuracy(0.02, 512));
    }

    #[test]
    fn serde_roundtrips_exactly() {
        let mut s = QuantileSketch::new();
        let mut h = Hll::new();
        let mut u = 0.29f64;
        for k in 0..2000u64 {
            u = (u * 997.0 + 0.123).fract();
            s.record(u * 123.456);
            h.insert(k.wrapping_mul(0x9e37_79b9));
        }
        s.record(0.0);
        let s2: QuantileSketch = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(s2, s);
        let h2: Hll = serde_json::from_str(&serde_json::to_string(&h).unwrap()).unwrap();
        assert_eq!(h2, h);
    }

    #[test]
    fn sketch_sizes_are_fixed() {
        let mut s = QuantileSketch::new();
        let mut h = Hll::new();
        for i in 0..100_000u64 {
            s.record(1e-3 + (i % 977) as f64);
            h.insert(i);
        }
        // 4096 one-byte registers plus the struct itself.
        assert!(h.size_bytes() < 5 * 1024, "hll {} bytes", h.size_bytes());
        // At most max_buckets entries in each parallel vec.
        assert!(
            s.size_bytes() < 32 * 1024,
            "quantile sketch {} bytes",
            s.size_bytes()
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn quantile_within_configured_relative_error(
            xs in proptest::collection::vec(1e-6f64..1e6, 1..400),
        ) {
            let mut s = QuantileSketch::new();
            for &x in &xs { s.record(x); }
            let mut sorted = xs.clone();
            sorted.sort_by(f64::total_cmp);
            for &q in &[0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let rank = ((q * sorted.len() as f64).ceil().max(1.0)) as usize;
                let exact = sorted[rank - 1];
                let est = s.quantile(q);
                let rel = (est - exact).abs() / exact;
                prop_assert!(
                    rel <= s.alpha() * 1.01 + 1e-12,
                    "q={}: est {}, exact {}, rel {}", q, est, exact, rel
                );
            }
        }

        #[test]
        fn quantile_monotone_in_q(
            xs in proptest::collection::vec(1e-6f64..1e6, 1..200),
        ) {
            let mut s = QuantileSketch::new();
            for &x in &xs { s.record(x); }
            let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            for w in qs.windows(2) {
                prop_assert!(s.quantile(w[0]) <= s.quantile(w[1]));
            }
        }

        #[test]
        fn quantile_merge_any_split_matches_whole(
            xs in proptest::collection::vec(1u32..1_000_000, 2..300),
            cut in 0usize..299,
        ) {
            // Integer-valued observations keep sums exact, so split+merge
            // must reproduce the sequential sketch bit for bit.
            let cut = cut % xs.len();
            let mut whole = QuantileSketch::new();
            let mut a = QuantileSketch::new();
            let mut b = QuantileSketch::new();
            for (i, &x) in xs.iter().enumerate() {
                whole.record(x as f64);
                if i < cut { a.record(x as f64); } else { b.record(x as f64); }
            }
            a.merge(&b);
            prop_assert_eq!(a, whole);
        }

        #[test]
        fn hll_estimate_within_bounds(n in 1u64..20_000) {
            let mut h = Hll::new();
            for k in 0..n {
                h.insert(k.wrapping_mul(0x2545_f491_4f6c_dd1d));
            }
            let est = h.estimate();
            let rel = (est - n as f64).abs() / n as f64;
            // ~3σ of the 1.6% standard error at precision 12.
            prop_assert!(rel < 0.05, "n={}: est {}, rel {}", n, est, rel);
        }

        #[test]
        fn hll_merge_any_split_matches_whole(
            keys in proptest::collection::vec(0u64..u64::MAX, 1..500),
            cut in 0usize..499,
        ) {
            let cut = cut % keys.len();
            let mut whole = Hll::new();
            let mut a = Hll::new();
            let mut b = Hll::new();
            for (i, &k) in keys.iter().enumerate() {
                whole.insert(k);
                if i < cut { a.insert(k); } else { b.insert(k); }
            }
            a.merge(&b);
            prop_assert_eq!(a, whole);
        }
    }
}
