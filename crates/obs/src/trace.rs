//! Chrome trace-event export: one span per handled event plus a queue
//! depth counter track, loadable in `about:tracing` or Perfetto.

use crate::probe::Probe;
use std::io::{self, Write};

/// One handled event, rendered as a complete (`"ph":"X"`) span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Span {
    label: &'static str,
    ts_us: u64,
    dur_us: u64,
}

/// A probe that records the run for offline inspection.
///
/// Sim time maps to trace time (1 simulated µs = 1 trace µs). A handled
/// event's span stretches from its own timestamp to the next event's —
/// in a DES nothing happens between events, so this renders the run's
/// structure (bursts, quiet stretches, rebuild storms) faithfully; the
/// final event gets duration 0. Every event also pushes a `queue_depth`
/// counter sample, giving Perfetto a depth track above the spans.
#[derive(Debug, Default)]
pub struct TraceProbe {
    pending: Option<(&'static str, u64, usize)>,
    spans: Vec<Span>,
    counters: Vec<(u64, usize)>,
}

impl TraceProbe {
    /// A fresh trace.
    pub fn new() -> Self {
        TraceProbe::default()
    }

    /// Spans recorded, including the not-yet-flushed final event. Equals
    /// the run's `events_executed` — the round-trip CI smoke checks this
    /// against the JSON.
    pub fn span_count(&self) -> usize {
        self.spans.len() + usize::from(self.pending.is_some())
    }

    fn flush_pending(&mut self) {
        if let Some((label, ts_us, _)) = self.pending.take() {
            self.spans.push(Span {
                label,
                ts_us,
                dur_us: 0,
            });
        }
    }

    /// Writes the trace as Chrome trace-event JSON
    /// (`{"traceEvents":[...]}`). Consumes the pending final span.
    pub fn write_chrome_json<W: Write>(&mut self, w: &mut W) -> io::Result<()> {
        self.flush_pending();
        w.write_all(b"{\"traceEvents\":[")?;
        let mut first = true;
        for s in &self.spans {
            if !first {
                w.write_all(b",")?;
            }
            first = false;
            write!(
                w,
                "{{\"name\":\"{}\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":{},\"dur\":{}}}",
                escape(s.label),
                s.ts_us,
                s.dur_us
            )?;
        }
        for &(ts_us, depth) in &self.counters {
            if !first {
                w.write_all(b",")?;
            }
            first = false;
            write!(
                w,
                "{{\"name\":\"queue_depth\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":{ts_us},\"args\":{{\"depth\":{depth}}}}}"
            )?;
        }
        w.write_all(b"]}")
    }
}

/// Escapes a label for direct embedding in a JSON string. Labels are
/// code literals, so this is belt-and-braces, not a full JSON encoder.
fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl Probe for TraceProbe {
    fn on_event(&mut self, label: &'static str, now_s: f64, queue_depth: usize) {
        let ts_us = (now_s * 1e6) as u64;
        self.counters.push((ts_us, queue_depth));
        if let Some((pl, pts, _)) = self.pending.replace((label, ts_us, queue_depth)) {
            self.spans.push(Span {
                label: pl,
                ts_us: pts,
                dur_us: ts_us.saturating_sub(pts),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_stretch_to_next_event() {
        let mut t = TraceProbe::new();
        t.on_event("a", 1.0, 2);
        t.on_event("b", 3.5, 1);
        t.on_event("a", 3.5, 0);
        assert_eq!(t.span_count(), 3);
        let mut buf = Vec::new();
        t.write_chrome_json(&mut buf).unwrap();
        let json = String::from_utf8(buf).unwrap();
        // a: [1s, 3.5s) = 2.5e6 µs; b: zero-width (same timestamp);
        // final a: flushed with dur 0.
        assert!(json.contains("\"name\":\"a\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1000000,\"dur\":2500000"));
        assert!(json.contains("\"ts\":3500000,\"dur\":0"));
        assert!(json.contains("\"name\":\"queue_depth\""));
        assert!(json.contains("\"args\":{\"depth\":2}"));
    }

    #[test]
    fn output_parses_as_json_and_counts_round_trip() {
        let mut t = TraceProbe::new();
        for i in 0..10 {
            t.on_event(if i % 2 == 0 { "even" } else { "odd" }, i as f64, i);
        }
        let recorded = t.span_count();
        let mut buf = Vec::new();
        t.write_chrome_json(&mut buf).unwrap();
        let json = String::from_utf8(buf).unwrap();
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v.as_object().unwrap();
        let (_, list) = events.iter().find(|(k, _)| k == "traceEvents").unwrap();
        let spans = list
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| {
                e.as_object()
                    .unwrap()
                    .iter()
                    .any(|(k, v)| k == "ph" && v.as_str() == Some("X"))
            })
            .count();
        assert_eq!(spans, 10);
        assert_eq!(recorded, 10);
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let mut t = TraceProbe::new();
        let mut buf = Vec::new();
        t.write_chrome_json(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "{\"traceEvents\":[]}");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
