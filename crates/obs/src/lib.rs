//! # wt-obs — observability for the wind tunnel
//!
//! The paper's "simulation at scale" and "validation" challenges (§4.2,
//! §4.3) both presuppose that you can *see inside* a sweep: where
//! simulated and wall-clock time go, which runs dominate cost, and
//! whether the simulator's internal behaviour (event rates, queue
//! depths) matches expectations. This crate is the shared vocabulary for
//! that: it sits at the bottom of the dependency graph (the DES kernel,
//! the farm, and the store all speak it) and defines
//!
//! * [`Probe`] — the hook the engine calls after every handled event.
//!   Implementations must not perturb the simulation: a probe sees the
//!   event stream, it never feeds back into it, so attaching one cannot
//!   change results.
//! * [`SimProbe`] — the always-on summary probe: events by label, a
//!   time-weighted queue-depth gauge, peak depth, and (only when the
//!   engine's `wall-time` feature routes timings in) per-handler
//!   wall-time histograms. Finishes into a [`RunTelemetry`].
//! * [`RunTelemetry`] — the per-run summary attached to result-store
//!   records. Everything in it except the [`WallTelemetry`] sub-struct
//!   is a pure function of the event sequence, hence bitwise-identical
//!   across worker counts; determinism tests mask the wall side with
//!   [`RunTelemetry::masked`].
//! * [`TraceProbe`] — records one span per handled event and a queue
//!   depth counter track, exported as Chrome trace-event JSON loadable
//!   in `about:tracing` / [Perfetto](https://ui.perfetto.dev).
//! * [`Heartbeat`] — farm progress lines (done/total, runs/s, ETA) for
//!   the fold thread to print to stderr.

pub mod heartbeat;
pub mod probe;
pub mod sketch;
pub mod snapshot;
pub mod telemetry;
pub mod trace;

pub use heartbeat::Heartbeat;
pub use probe::{Probe, SimProbe, Tee};
pub use sketch::{Hll, QuantileSketch};
pub use snapshot::MetricsSnapshot;
pub use telemetry::{RunTelemetry, SketchSet, WallHist, WallTelemetry};
pub use trace::TraceProbe;
