//! A point-in-time metrics snapshot with a Prometheus-style text
//! exposition.
//!
//! [`MetricsSnapshot`] is the read side of the sketch pipeline: counters
//! and gauges for scalar state, [`QuantileSketch`]es for distributions,
//! [`Hll`]s for cardinalities — collected from a farm or sweep in flight
//! (via the heartbeat) or from a finished result store (via
//! `wt-store`'s builder). [`MetricsSnapshot::render`] writes the
//! [text exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/)
//! scrapers and humans both read:
//!
//! ```text
//! # TYPE wt_runs_total counter
//! wt_runs_total 24
//! # TYPE wt_rebuild_wait_s summary
//! wt_rebuild_wait_s{quantile="0.5"} 0.0123
//! ...
//! wt_rebuild_wait_s_count 512
//! # TYPE wt_objects_touched_distinct gauge
//! wt_objects_touched_distinct 1989
//! ```
//!
//! Everything renders in `BTreeMap` order with shortest-round-trip float
//! formatting, so a snapshot built from worker-count-invariant inputs
//! renders byte-identically at any worker count — CI diffs exactly that.

use crate::sketch::{Hll, QuantileSketch};
use crate::telemetry::SketchSet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The quantiles every summary exposes, in exposition order.
pub const SNAPSHOT_QUANTILES: [(f64, &str); 4] = [
    (0.5, "0.5"),
    (0.95, "0.95"),
    (0.99, "0.99"),
    (0.999, "0.999"),
];

/// A mergeable bundle of counters, gauges, quantile sketches, and
/// distinct-count sketches, renderable as a text exposition.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone counts (events handled, runs completed, ...).
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous levels (mean queue depth, store capacity, ...).
    pub gauges: BTreeMap<String, f64>,
    /// Value distributions, exposed as summaries with p50/p95/p99/p999.
    pub quantiles: BTreeMap<String, QuantileSketch>,
    /// Distinct-key cardinalities, exposed as `<name>_distinct` gauges.
    pub distincts: BTreeMap<String, Hll>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to counter `name` (creating it at zero).
    pub fn add_counter(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Sets gauge `name` to `v` (last write wins).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Merges a quantile sketch into the summary `name`.
    pub fn merge_quantile(&mut self, name: &str, sketch: &QuantileSketch) {
        match self.quantiles.get_mut(name) {
            Some(s) => s.merge(sketch),
            None => {
                self.quantiles.insert(name.to_string(), sketch.clone());
            }
        }
    }

    /// Merges an HLL into the cardinality `name`.
    pub fn merge_distinct(&mut self, name: &str, hll: &Hll) {
        match self.distincts.get_mut(name) {
            Some(h) => h.merge(hll),
            None => {
                self.distincts.insert(name.to_string(), hll.clone());
            }
        }
    }

    /// Folds one run's [`SketchSet`] in, label by label.
    pub fn merge_sketch_set(&mut self, set: &SketchSet) {
        for (label, sketch) in &set.values {
            self.merge_quantile(label, sketch);
        }
        for (label, hll) in &set.distincts {
            self.merge_distinct(label, hll);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.quantiles.is_empty()
            && self.distincts.is_empty()
    }

    /// Renders the Prometheus text exposition. Metric names are
    /// sanitized to `[a-zA-Z0-9_:]` and, unless already prefixed, get a
    /// `wt_` namespace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = metric_name(name);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = metric_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {}", fmt_f64(*v));
        }
        for (name, s) in &self.quantiles {
            let n = metric_name(name);
            let _ = writeln!(out, "# TYPE {n} summary");
            for (q, qs) in SNAPSHOT_QUANTILES {
                let _ = writeln!(out, "{n}{{quantile=\"{qs}\"}} {}", fmt_f64(s.quantile(q)));
            }
            let _ = writeln!(out, "{n}_sum {}", fmt_f64(s.sum()));
            let _ = writeln!(out, "{n}_count {}", s.count());
        }
        for (name, h) in &self.distincts {
            let n = metric_name(name);
            let _ = writeln!(
                out,
                "# TYPE {n}_distinct gauge\n{n}_distinct {}",
                fmt_f64(h.estimate().round())
            );
        }
        out
    }
}

/// Sanitizes a label into a legal, namespaced metric name.
fn metric_name(label: &str) -> String {
    let mut n = String::with_capacity(label.len() + 3);
    if !label.starts_with("wt_") {
        n.push_str("wt_");
    }
    for (i, c) in label.chars().enumerate() {
        let legal = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        // A digit can't lead a bare name, but after the prefix it's fine.
        if legal && !(i == 0 && n.is_empty() && c.is_ascii_digit()) {
            n.push(c);
        } else if !legal {
            n.push('_');
        }
    }
    n
}

/// Shortest-round-trip float, with non-finite values in Prometheus
/// spelling (`+Inf`, `-Inf`, `NaN`).
fn fmt_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".into()
    } else if x == f64::INFINITY {
        "+Inf".into()
    } else if x == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_orders_and_namespaces() {
        let mut snap = MetricsSnapshot::new();
        snap.add_counter("runs_total", 3);
        snap.add_counter("events_total", 100);
        snap.set_gauge("mean queue depth", 1.5);
        let mut s = QuantileSketch::new();
        for i in 1..=100 {
            s.record(i as f64);
        }
        snap.merge_quantile("latency_s", &s);
        let mut h = Hll::new();
        for k in 0..50u64 {
            h.insert(k);
        }
        snap.merge_distinct("objects", &h);

        let text = snap.render();
        // Counters sort alphabetically; illegal chars sanitize.
        assert!(text.contains("# TYPE wt_events_total counter\nwt_events_total 100\n"));
        assert!(text.contains("wt_runs_total 3"));
        assert!(text.contains("wt_mean_queue_depth 1.5"));
        assert!(text.contains("# TYPE wt_latency_s summary"));
        assert!(text.contains("wt_latency_s{quantile=\"0.99\"}"));
        assert!(text.contains("wt_latency_s_count 100"));
        assert!(text.contains("wt_objects_distinct 50"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line: {line}");
        }
    }

    #[test]
    fn merge_quantile_accumulates() {
        let mut snap = MetricsSnapshot::new();
        let mut a = QuantileSketch::new();
        a.record(1.0);
        let mut b = QuantileSketch::new();
        b.record(2.0);
        snap.merge_quantile("x", &a);
        snap.merge_quantile("x", &b);
        assert_eq!(snap.quantiles["x"].count(), 2);
    }

    #[test]
    fn counter_adds_and_empty_reports() {
        let mut snap = MetricsSnapshot::new();
        assert!(snap.is_empty());
        snap.add_counter("c", 1);
        snap.add_counter("c", 2);
        assert_eq!(snap.counters["c"], 3);
        assert!(!snap.is_empty());
    }
}
