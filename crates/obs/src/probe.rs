//! The engine-side probe hook and the always-on summary probe.

use crate::sketch::{Hll, QuantileSketch};
use crate::telemetry::{RunTelemetry, SketchSet, WallHist};

/// Observer of a simulation run. The engine calls [`Probe::on_event`]
/// after every handled event; models can emit custom [`Probe::on_mark`]
/// counters through their scheduling context.
///
/// Probes are strictly one-way: they see the event stream but cannot
/// schedule, consume randomness, or otherwise feed back into the run, so
/// attaching one never changes simulation results.
pub trait Probe {
    /// An event labeled `label` was just handled at simulated time
    /// `now_s`; `queue_depth` pending events remain after its handler ran.
    fn on_event(&mut self, label: &'static str, now_s: f64, queue_depth: usize);

    /// A model-emitted custom counter (via the engine's `Ctx::mark`).
    fn on_mark(&mut self, _label: &'static str) {}

    /// A model-emitted scalar observation (via the engine's
    /// `Ctx::observe`) — a rebuild wait, a request latency. Summary
    /// probes fold these into per-label quantile sketches.
    fn on_value(&mut self, _label: &'static str, _value: f64) {}

    /// A model-touched entity key (via the engine's `Ctx::touch`) — an
    /// object id, a request key. Summary probes fold these into
    /// per-label HLLs for distinct counts.
    fn on_distinct(&mut self, _label: &'static str, _key: u64) {}

    /// Wall-clock nanoseconds the handler for `label` just took. Only
    /// called when the engine is built with its `wall-time` feature —
    /// wall timing is off the determinism path by construction.
    fn on_handler_wall(&mut self, _label: &'static str, _ns: u64) {}
}

/// Fans one event stream out to two probes — e.g. a [`SimProbe`] for the
/// telemetry summary plus a [`crate::TraceProbe`] for export.
pub struct Tee<'a, 'b>(pub &'a mut dyn Probe, pub &'b mut dyn Probe);

impl Probe for Tee<'_, '_> {
    fn on_event(&mut self, label: &'static str, now_s: f64, queue_depth: usize) {
        self.0.on_event(label, now_s, queue_depth);
        self.1.on_event(label, now_s, queue_depth);
    }
    fn on_mark(&mut self, label: &'static str) {
        self.0.on_mark(label);
        self.1.on_mark(label);
    }
    fn on_value(&mut self, label: &'static str, value: f64) {
        self.0.on_value(label, value);
        self.1.on_value(label, value);
    }
    fn on_distinct(&mut self, label: &'static str, key: u64) {
        self.0.on_distinct(label, key);
        self.1.on_distinct(label, key);
    }
    fn on_handler_wall(&mut self, label: &'static str, ns: u64) {
        self.0.on_handler_wall(label, ns);
        self.1.on_handler_wall(label, ns);
    }
}

/// The always-on summary probe: per-label event counts, a time-weighted
/// queue-depth gauge, peak depth, custom marks, and (when fed by a
/// `wall-time` engine) per-handler wall histograms.
///
/// Label tables are small vectors scanned with a pointer-equality fast
/// path — model labels are `&'static str` literals, so the same variant
/// always presents the same pointer and the common case is a handful of
/// pointer compares, not string hashing. This is what keeps the probe
/// affordable on the per-event hot path.
#[derive(Debug, Default)]
pub struct SimProbe {
    events: u64,
    labels: Vec<(&'static str, u64)>,
    marks: Vec<(&'static str, u64)>,
    peak_depth: usize,
    prev_t: f64,
    prev_depth: usize,
    depth_area: f64,
    values: Vec<(&'static str, QuantileSketch)>,
    distincts: Vec<(&'static str, Hll)>,
    wall: Vec<(&'static str, WallHist)>,
}

/// Finds `label` in a small label table, keeping hot labels near the
/// front: a hit one step deep swaps the entry forward (transposition),
/// so the busiest one or two labels settle at the head and the common
/// case is a single pointer compare. Table order is a scan detail only —
/// everything user-visible is folded into sorted maps by `finish`.
#[inline]
fn find_label<T>(table: &mut Vec<(&'static str, T)>, label: &'static str) -> Option<usize> {
    for i in 0..table.len() {
        let k = table[i].0;
        if std::ptr::eq(k.as_ptr(), label.as_ptr()) || k == label {
            if i > 1 {
                table.swap(i, i - 1);
                return Some(i - 1);
            }
            return Some(i);
        }
    }
    None
}

fn bump(table: &mut Vec<(&'static str, u64)>, label: &'static str) {
    match find_label(table, label) {
        Some(i) => table[i].1 += 1,
        None => table.push((label, 1)),
    }
}

impl SimProbe {
    /// A fresh probe.
    pub fn new() -> Self {
        SimProbe::default()
    }

    /// Events observed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Deepest the queue has been after any handled event.
    pub fn peak_queue_depth(&self) -> usize {
        self.peak_depth
    }

    /// Distills the run into a [`RunTelemetry`]. `end_s` is the simulated
    /// time the run stopped at (the engine clock after the run call) and
    /// closes the queue-depth integral; `stop_reason` is the engine's
    /// stop reason rendered as a string. Wall-clock duration is the
    /// *caller's* to fill in ([`RunTelemetry::wall`]): the probe only
    /// sees simulated time.
    pub fn finish(&self, end_s: f64, stop_reason: &str) -> RunTelemetry {
        let mut t = RunTelemetry {
            events: self.events,
            horizon_s: end_s,
            peak_queue_depth: self.peak_depth as u64,
            mean_queue_depth: self.mean_queue_depth(end_s),
            stop_reason: stop_reason.to_string(),
            ..RunTelemetry::default()
        };
        for &(k, v) in &self.labels {
            t.events_by_label.insert(k.to_string(), v);
        }
        for &(k, v) in &self.marks {
            t.marks.insert(k.to_string(), v);
        }
        for (k, h) in &self.wall {
            t.wall.handlers.insert(k.to_string(), h.clone());
        }
        if !self.values.is_empty() || !self.distincts.is_empty() {
            let mut set = SketchSet::default();
            for (k, s) in &self.values {
                set.values.insert(k.to_string(), s.clone());
            }
            for (k, h) in &self.distincts {
                set.distincts.insert(k.to_string(), h.clone());
            }
            t.sketches = Some(set);
        }
        t
    }

    /// Time-weighted mean queue depth over `[0, end_s]`, holding the
    /// depth constant from the last event to `end_s`.
    pub fn mean_queue_depth(&self, end_s: f64) -> f64 {
        if end_s <= 0.0 {
            return 0.0;
        }
        let tail = (end_s - self.prev_t).max(0.0) * self.prev_depth as f64;
        (self.depth_area + tail) / end_s
    }
}

impl Probe for SimProbe {
    // Inlined into the engine's (generic) probed event loop — the body
    // is a few compares and adds, and the workspace builds without LTO.
    #[inline]
    fn on_event(&mut self, label: &'static str, now_s: f64, queue_depth: usize) {
        self.events += 1;
        bump(&mut self.labels, label);
        self.depth_area += (now_s - self.prev_t).max(0.0) * self.prev_depth as f64;
        self.prev_t = now_s;
        self.prev_depth = queue_depth;
        self.peak_depth = self.peak_depth.max(queue_depth);
    }

    fn on_mark(&mut self, label: &'static str) {
        bump(&mut self.marks, label);
    }

    fn on_value(&mut self, label: &'static str, value: f64) {
        match find_label(&mut self.values, label) {
            Some(i) => self.values[i].1.record(value),
            None => {
                let mut s = QuantileSketch::new();
                s.record(value);
                self.values.push((label, s));
            }
        }
    }

    fn on_distinct(&mut self, label: &'static str, key: u64) {
        match find_label(&mut self.distincts, label) {
            Some(i) => self.distincts[i].1.insert(key),
            None => {
                let mut h = Hll::new();
                h.insert(key);
                self.distincts.push((label, h));
            }
        }
    }

    fn on_handler_wall(&mut self, label: &'static str, ns: u64) {
        match find_label(&mut self.wall, label) {
            Some(i) => self.wall[i].1.record(ns),
            None => {
                let mut h = WallHist::default();
                h.record(ns);
                self.wall.push((label, h));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_events_by_label() {
        let mut p = SimProbe::new();
        p.on_event("a", 1.0, 0);
        p.on_event("b", 2.0, 0);
        p.on_event("a", 3.0, 0);
        let t = p.finish(3.0, "QueueEmpty");
        assert_eq!(t.events, 3);
        assert_eq!(t.events_by_label["a"], 2);
        assert_eq!(t.events_by_label["b"], 1);
        assert_eq!(t.stop_reason, "QueueEmpty");
    }

    #[test]
    fn queue_depth_gauge_is_time_weighted() {
        let mut p = SimProbe::new();
        // Depth 0 over [0,1), 2 over [1,3), 1 over [3,4).
        p.on_event("e", 1.0, 2);
        p.on_event("e", 3.0, 1);
        let t = p.finish(4.0, "HorizonReached");
        assert_eq!(t.peak_queue_depth, 2);
        // (0*1 + 2*2 + 1*1) / 4 = 1.25
        assert!((t.mean_queue_depth - 1.25).abs() < 1e-12, "{t:?}");
        assert_eq!(t.horizon_s, 4.0);
    }

    #[test]
    fn marks_and_wall_accumulate() {
        let mut p = SimProbe::new();
        p.on_mark("lost");
        p.on_mark("lost");
        p.on_handler_wall("e", 100);
        p.on_handler_wall("e", 300);
        let t = p.finish(0.0, "QueueEmpty");
        assert_eq!(t.marks["lost"], 2);
        assert_eq!(t.wall.handlers["e"].count, 2);
        assert_eq!(t.wall.handlers["e"].total_ns, 400);
    }

    #[test]
    fn tee_forwards_to_both() {
        let mut a = SimProbe::new();
        let mut b = SimProbe::new();
        {
            let mut tee = Tee(&mut a, &mut b);
            tee.on_event("x", 1.0, 1);
            tee.on_mark("m");
        }
        assert_eq!(a.events(), 1);
        assert_eq!(b.events(), 1);
        assert_eq!(a.finish(1.0, "s").marks["m"], 1);
    }

    #[test]
    fn empty_probe_finishes_clean() {
        let t = SimProbe::new().finish(0.0, "QueueEmpty");
        assert_eq!(t.events, 0);
        assert_eq!(t.mean_queue_depth, 0.0);
        assert!(t.events_by_label.is_empty());
    }
}
