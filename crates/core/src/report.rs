//! Shared output formatting for experiment binaries and sweep reports.
//!
//! These helpers used to live in `wt-bench`, but the declarative sweep
//! layer ([`crate::sweep`]) renders its own tables, so the formatting now
//! sits one level down in `wt-core`; `wt-bench` re-exports everything here
//! for the binaries.

use std::fmt::Write as _;

/// A fixed-width text table, printed to stdout by the experiment binaries
/// so EXPERIMENTS.md can paste results directly.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String], widths: &[usize]| {
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(out, "{cell:>w$}  ");
            }
            out.push('\n');
        };
        line(&mut out, &self.headers, &widths);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row, &widths);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a probability with enough digits to see tails.
pub fn fmt_p(p: f64) -> String {
    if p == 0.0 {
        "0".into()
    } else if p >= 0.01 {
        format!("{p:.3}")
    } else {
        format!("{p:.2e}")
    }
}

/// Formats seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.2}h", s / 3600.0)
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.2}ms", s * 1000.0)
    }
}

/// Banner printed at the top of each experiment binary.
pub fn banner(id: &str, claim: &str) {
    println!("=== {id} ===");
    println!("paper expectation: {claim}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["f", "P(unavail)"]);
        t.row(vec!["0".into(), "0".into()]);
        t.row(vec!["10".into(), "1.000".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("P(unavail)"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_p(0.0), "0");
        assert_eq!(fmt_p(0.5), "0.500");
        assert!(fmt_p(1e-4).contains('e'));
        assert_eq!(fmt_secs(2.0), "2.00s");
        assert_eq!(fmt_secs(7200.0), "2.00h");
        assert_eq!(fmt_secs(0.01), "10.00ms");
    }
}
