//! Declarative parameter sweeps (paper §4.1, "declarative simulation
//! processing").
//!
//! The paper's first research challenge is that a designer should *state*
//! a parameter exploration — "availability of 3 redundancy schemes over
//! 120 days, 3 replications each" — and have the system plan and execute
//! it. This module is that layer:
//!
//! * [`SweepSpec`] declares named axes and turns them into a
//!   deterministic grid. Canonicalization makes the grid — including
//!   every per-point seed — independent of the order in which axes or
//!   values were declared: axes are sorted by name, values are sorted
//!   and deduplicated, and each point's seed is a [`substream_seed`] of
//!   a content hash of its assignment, not of its enumeration index.
//! * [`SweepRunner`] executes a grid over the existing [`Farm`]: every
//!   (point × replication) pair becomes one farm item, records flow
//!   through per-worker [`wt_store::StoreShard`]s into the
//!   [`SharedStore`] in item
//!   order (ids bitwise-stable at any worker count), and replication
//!   metrics are aggregated per point with [`wt_des::Tally`] merges.
//! * [`SweepReport`] renders a [`SweepOutcome`] as the fixed-width
//!   [`Table`] the experiment binaries print.
//!
//! The WTQL executor (`wt-wtql`) runs its `EXPLORE` grids through
//! [`SweepRunner::run_points`] — the query language and the `e*`
//! binaries share this one execution path.
//!
//! ```
//! use std::collections::BTreeMap;
//! use windtunnel::sweep::{SweepRunner, SweepSpec};
//! use wt_store::SharedStore;
//!
//! let spec = SweepSpec::new("doc")
//!     .axis("replication", [2usize, 3])
//!     .axis("parallel", [false, true])
//!     .seed(7)
//!     .replications(2);
//! let store = SharedStore::new();
//! let out = SweepRunner::serial().run(&spec, &store, |point, rep, sink| {
//!     let x = point.axis_num("replication") * (rep.seed % 5) as f64;
//!     sink.record(point.record("doc", rep.seed).metric("x", x));
//!     BTreeMap::from([("x".to_string(), x)])
//! });
//! assert_eq!(out.rows.len(), 4); // 2 × 2 grid
//! assert_eq!(store.len(), 8); // one record per (point × replication)
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::Instant;

use crate::farm::{substream_seed, Farm, RunCtx};
use crate::report::Table;
use wt_des::{QuantileSketch, Tally};
use wt_store::{ParamValue, RecordSink, RunRecord, SharedStore, StoreShard};

/// One grid point's configuration: `(axis name, value)` pairs.
pub type Assignment = Vec<(String, ParamValue)>;

/// How per-replication seeds are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedMode {
    /// Each point gets independent replication streams:
    /// `substream_seed(point.seed, rep)`. The statistical default.
    PerPoint,
    /// Common random numbers: replication `r` uses the *same* seed at
    /// every grid point, so arms face identical failure traces and
    /// their differences are attributable to the configuration alone —
    /// the variance-reduction technique the comparison experiments
    /// (e2, e8, e10, e11, e12) rely on.
    CommonRandomNumbers,
}

/// How a metric's replications collapse into the reported value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricAgg {
    /// Arithmetic mean over replications (the default).
    Mean,
    /// Sum over replications (event and loss counters).
    Sum,
    /// Minimum over replications.
    Min,
    /// Maximum over replications.
    Max,
    /// The given quantile over replications, estimated with a
    /// [`QuantileSketch`] fed in replication order — the sketch's
    /// order-independent bucket state plus the farm's ordered fold keep
    /// the result bitwise worker-count-invariant, and large replication
    /// counts stay constant-memory.
    Quantile(f64),
}

/// A declarative sweep: named axes × seeds × replications.
///
/// Declaration order never matters — [`SweepSpec::grid`] canonicalizes
/// axes and values, and seeds derive from assignment *content*.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    name: String,
    axes: Vec<(String, Vec<ParamValue>)>,
    root_seed: u64,
    replications: usize,
    seed_mode: SeedMode,
    aggs: Vec<(String, MetricAgg)>,
}

impl SweepSpec {
    /// A sweep named after its experiment family, with no axes yet,
    /// root seed 0, one replication, and per-point seeding.
    pub fn new(name: impl Into<String>) -> Self {
        SweepSpec {
            name: name.into(),
            axes: Vec::new(),
            root_seed: 0,
            replications: 1,
            seed_mode: SeedMode::PerPoint,
            aggs: Vec::new(),
        }
    }

    /// Adds a named axis. Values may repeat or arrive unsorted — the
    /// grid deduplicates and canonically orders them.
    pub fn axis<V: Into<ParamValue>>(
        mut self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        self.axes
            .push((name.into(), values.into_iter().map(Into::into).collect()));
        self
    }

    /// Sets the root seed all point and replication seeds derive from.
    pub fn seed(mut self, root: u64) -> Self {
        self.root_seed = root;
        self
    }

    /// Sets the number of replications per grid point (min 1).
    pub fn replications(mut self, n: usize) -> Self {
        self.replications = n.max(1);
        self
    }

    /// Switches replication seeding to common random numbers (see
    /// [`SeedMode::CommonRandomNumbers`]).
    pub fn common_random_numbers(mut self) -> Self {
        self.seed_mode = SeedMode::CommonRandomNumbers;
        self
    }

    /// Registers how `metric` aggregates across replications
    /// (unregistered metrics default to [`MetricAgg::Mean`]).
    pub fn aggregate(mut self, metric: impl Into<String>, agg: MetricAgg) -> Self {
        self.aggs.push((metric.into(), agg));
        self
    }

    /// The sweep's experiment-family name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enumerates the canonical grid: axes sorted by name, values
    /// sorted and deduplicated, points in odometer order (last axis
    /// fastest), each point's seed derived from its assignment content.
    pub fn grid(&self) -> SweepGrid {
        let mut axes: Vec<(String, Vec<ParamValue>)> = self.axes.clone();
        axes.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, values) in &mut axes {
            values.sort_by(cmp_values);
            values.dedup();
        }
        assert!(
            axes.iter().all(|(_, v)| !v.is_empty()),
            "sweep axis with no values"
        );
        let total: usize = axes.iter().map(|(_, v)| v.len()).product();
        let mut assignments = Vec::with_capacity(total);
        let mut odometer = vec![0usize; axes.len()];
        for _ in 0..total {
            assignments.push(
                axes.iter()
                    .zip(&odometer)
                    .map(|((name, values), &i)| (name.clone(), values[i].clone()))
                    .collect::<Assignment>(),
            );
            for d in (0..axes.len()).rev() {
                odometer[d] += 1;
                if odometer[d] < axes[d].1.len() {
                    break;
                }
                odometer[d] = 0;
            }
        }
        let mut grid = SweepGrid::explicit(&self.name, self.root_seed, assignments);
        grid.replications = self.replications;
        grid.seed_mode = self.seed_mode;
        grid.aggs = self.aggs.clone();
        grid
    }
}

/// One point of a sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Position in the grid's execution order.
    pub index: usize,
    /// The point's `(axis, value)` configuration.
    pub assignment: Assignment,
    /// The point's seed: `substream_seed(root, content_hash(assignment))`
    /// — a function of *what* the point is, not where it sits in the
    /// enumeration, so reordering or extending axes never reseeds an
    /// existing configuration.
    pub seed: u64,
}

impl SweepPoint {
    /// The value of axis `name`, if present.
    pub fn axis(&self, name: &str) -> Option<&ParamValue> {
        self.assignment
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// The string value of axis `name` (panics if absent; non-string
    /// values render via `Display`).
    pub fn axis_str(&self, name: &str) -> String {
        self.axis(name)
            .unwrap_or_else(|| panic!("sweep point has no axis '{name}'"))
            .to_string()
    }

    /// The numeric value of axis `name` (panics if absent or not
    /// numeric).
    pub fn axis_num(&self, name: &str) -> f64 {
        match self.axis(name) {
            Some(ParamValue::Num(x)) => *x,
            other => panic!("axis '{name}' is not numeric: {other:?}"),
        }
    }

    /// The boolean value of axis `name` (panics if absent or not
    /// boolean).
    pub fn axis_bool(&self, name: &str) -> bool {
        match self.axis(name) {
            Some(ParamValue::Bool(b)) => *b,
            other => panic!("axis '{name}' is not boolean: {other:?}"),
        }
    }

    /// `"axis=value, axis=value"` — the point's display label.
    pub fn label(&self) -> String {
        self.assignment
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// A [`RunRecord`] builder with every axis pre-filled as a param.
    pub fn record(&self, experiment: impl Into<String>, seed: u64) -> RunRecord {
        let mut r = RunRecord::new(experiment, seed);
        for (k, v) in &self.assignment {
            r = r.param(k.clone(), v.clone());
        }
        r
    }
}

/// An enumerated grid ready to execute: points in execution order plus
/// the seeding discipline.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Experiment-family name (used for progress/report labels).
    pub name: String,
    /// The root seed point and replication seeds derive from.
    pub root_seed: u64,
    /// Points in execution order.
    pub points: Vec<SweepPoint>,
    replications: usize,
    seed_mode: SeedMode,
    aggs: Vec<(String, MetricAgg)>,
}

/// Domain-separation tag for common-random-number replication streams,
/// so they cannot collide with any point's content-derived stream.
const CRN_STREAM: u64 = 0x4352_4e5f_5354_5245; // "CRN_STRE"

impl SweepGrid {
    /// A grid over caller-supplied assignments, *preserving their
    /// order* — the escape hatch for planners (like WTQL's best-first
    /// optimizer) that compute their own execution order. Seeds are
    /// still content-derived, so two routes to the same configuration
    /// agree on its seed.
    pub fn explicit(name: impl Into<String>, root_seed: u64, assignments: Vec<Assignment>) -> Self {
        let points = assignments
            .into_iter()
            .enumerate()
            .map(|(index, assignment)| {
                let seed = substream_seed(root_seed, assignment_hash(&assignment));
                SweepPoint {
                    index,
                    assignment,
                    seed,
                }
            })
            .collect();
        SweepGrid {
            name: name.into(),
            root_seed,
            points,
            replications: 1,
            seed_mode: SeedMode::PerPoint,
            aggs: Vec::new(),
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Replications per point.
    pub fn replications(&self) -> usize {
        self.replications
    }

    /// The seed replication `rep` of `point` runs with, per the grid's
    /// [`SeedMode`].
    pub fn rep_seed(&self, point: &SweepPoint, rep: usize) -> u64 {
        match self.seed_mode {
            SeedMode::PerPoint => substream_seed(point.seed, rep as u64),
            SeedMode::CommonRandomNumbers => {
                substream_seed(self.root_seed ^ CRN_STREAM, rep as u64)
            }
        }
    }

    fn agg_for(&self, metric: &str) -> MetricAgg {
        self.aggs
            .iter()
            .find(|(m, _)| m == metric)
            .map(|(_, a)| *a)
            .unwrap_or(MetricAgg::Mean)
    }
}

/// Stable content hash of an assignment: keys are visited in sorted
/// order, values hash by type tag + canonical bytes (`f64::to_bits` for
/// numbers), so any declaration order of the same configuration hashes
/// identically.
fn assignment_hash(assignment: &Assignment) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    fn feed(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(FNV_PRIME);
        }
    }
    let mut pairs: Vec<&(String, ParamValue)> = assignment.iter().collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut h = FNV_OFFSET;
    for (key, value) in pairs {
        feed(&mut h, key.as_bytes());
        feed(&mut h, &[0xff]);
        match value {
            ParamValue::Num(x) => {
                feed(&mut h, &[1]);
                feed(&mut h, &x.to_bits().to_le_bytes());
            }
            ParamValue::Str(s) => {
                feed(&mut h, &[2]);
                feed(&mut h, s.as_bytes());
            }
            ParamValue::Bool(b) => {
                feed(&mut h, &[3, *b as u8]);
            }
        }
        feed(&mut h, &[0xfe]);
    }
    h
}

fn value_rank(v: &ParamValue) -> u8 {
    match v {
        ParamValue::Num(_) => 0,
        ParamValue::Str(_) => 1,
        ParamValue::Bool(_) => 2,
    }
}

/// Canonical value order: numbers (by total order), then strings
/// (lexicographic), then booleans (`false` < `true`).
fn cmp_values(a: &ParamValue, b: &ParamValue) -> std::cmp::Ordering {
    match (a, b) {
        (ParamValue::Num(x), ParamValue::Num(y)) => x.total_cmp(y),
        (ParamValue::Str(x), ParamValue::Str(y)) => x.cmp(y),
        (ParamValue::Bool(x), ParamValue::Bool(y)) => x.cmp(y),
        _ => value_rank(a).cmp(&value_rank(b)),
    }
}

/// Per-replication context handed to the evaluation closure.
#[derive(Debug, Clone, Copy)]
pub struct RepCtx {
    /// Replication number within the point, `0..replications`.
    pub rep: usize,
    /// The replication's RNG seed (see [`SweepGrid::rep_seed`]).
    pub seed: u64,
}

/// One grid point's aggregated results.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The point this row aggregates.
    pub point: SweepPoint,
    /// Aggregated metrics (per the spec's [`MetricAgg`] registry).
    pub metrics: BTreeMap<String, f64>,
    /// Full replication statistics per metric, for spread inspection.
    pub tallies: BTreeMap<String, Tally>,
    /// Replication-value sketches, one per metric registered with
    /// [`MetricAgg::Quantile`], fed in replication order. Lets callers
    /// read further quantiles of the same metric without re-running.
    pub sketches: BTreeMap<String, QuantileSketch>,
}

impl SweepRow {
    /// The display value of axis `name` (panics if absent).
    pub fn axis_display(&self, name: &str) -> String {
        self.point.axis_str(name)
    }

    /// Whether this row's point has `(axis, value)`.
    pub fn matches<V: Into<ParamValue>>(&self, axis: &str, value: V) -> bool {
        self.point.axis(axis) == Some(&value.into())
    }

    /// The aggregated value of `key` (panics with the metric name if
    /// the evaluation closure never produced it).
    pub fn metric(&self, key: &str) -> f64 {
        self.try_metric(key)
            .unwrap_or_else(|| panic!("sweep row has no metric '{key}'"))
    }

    /// The aggregated value of `key`, if produced.
    pub fn try_metric(&self, key: &str) -> Option<f64> {
        self.metrics.get(key).copied()
    }
}

/// The result of executing a sweep: one aggregated row per grid point,
/// in grid order.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Aggregated rows, one per point, in grid order.
    pub rows: Vec<SweepRow>,
    /// Replications each point ran.
    pub replications: usize,
    /// Wall-clock seconds the farm spent (report on stderr only —
    /// stdout must stay byte-identical across worker counts).
    pub wall_s: f64,
}

impl SweepOutcome {
    /// The first row whose point has `(axis, value)` (panics if none).
    pub fn row_where<V: Into<ParamValue>>(&self, axis: &str, value: V) -> &SweepRow {
        let value = value.into();
        self.rows
            .iter()
            .find(|r| r.point.axis(axis) == Some(&value))
            .unwrap_or_else(|| panic!("no sweep row with {axis}={value}"))
    }

    /// The aggregated `metric` at the row where `axis == value`.
    pub fn metric_where<V: Into<ParamValue>>(&self, axis: &str, value: V, metric: &str) -> f64 {
        self.row_where(axis, value).metric(metric)
    }

    /// Starts a [`SweepReport`] over this outcome.
    pub fn report(&self) -> SweepReport<'_> {
        SweepReport::new(self)
    }
}

/// Live counters for a guided sweep's planner decisions (DESIGN.md §12).
///
/// The evaluation closure increments them as the planner resolves points
/// without full simulation; the guided runner reads them into the stderr
/// heartbeat, and callers read the totals for their summary lines. Purely
/// observational — nothing in the execution path branches on them.
#[derive(Debug, Default)]
pub struct GuidedCounters {
    screened: AtomicU64,
    aborted: AtomicU64,
    early_stopped: AtomicU64,
}

impl GuidedCounters {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a point resolved by an analytic screen (no DES run).
    pub fn note_screened(&self) {
        self.screened.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a run aborted early at the sketch probe horizon.
    pub fn note_aborted(&self) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a point whose replications stopped early on a confident
    /// interval.
    pub fn note_early_stopped(&self) {
        self.early_stopped.fetch_add(1, Ordering::Relaxed);
    }

    /// Points resolved by analytic screening.
    pub fn screened(&self) -> u64 {
        self.screened.load(Ordering::Relaxed)
    }

    /// Runs aborted at the sketch probe horizon.
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Points whose replications early-stopped.
    pub fn early_stopped(&self) -> u64 {
        self.early_stopped.load(Ordering::Relaxed)
    }
}

/// Mutable scheduler state for the guided runner, held under one mutex.
struct GuidedSched {
    /// Eligible, unclaimed point indices.
    ready: Vec<usize>,
    /// Unfinished-dependency count per point.
    remaining: Vec<usize>,
    /// Points claimed by a worker so far (issued ⇒ eventually completes).
    issued: usize,
}

/// Picks the position in `ready` of the point maximizing `rank`, breaking
/// ties toward the lowest index (`f64::total_cmp`, so a NaN-scoring rank
/// is still deterministic). `None` on an empty ready set.
fn pick_ready(ready: &[usize], rank: &(dyn Fn(usize) -> f64 + Sync)) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (pos, &i) in ready.iter().enumerate() {
        let score = rank(i);
        let better = match best {
            None => true,
            Some((bpos, bscore)) => match score.total_cmp(&bscore) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => i < ready[bpos],
                std::cmp::Ordering::Less => false,
            },
        };
        if better {
            best = Some((pos, score));
        }
    }
    best.map(|(pos, _)| pos)
}

/// Executes sweep grids on a [`Farm`].
///
/// Every (point × replication) pair is one farm item; the farm's
/// deterministic fold keeps record ids and row order independent of the
/// worker count.
pub struct SweepRunner {
    farm: Farm,
}

impl SweepRunner {
    /// A runner over an explicit farm.
    pub fn new(farm: Farm) -> Self {
        SweepRunner { farm }
    }

    /// A runner sized from the environment (`WT_WORKERS`, host cores).
    pub fn from_env() -> Self {
        SweepRunner::new(Farm::from_env())
    }

    /// A single-worker runner (tests, doc examples).
    pub fn serial() -> Self {
        SweepRunner::new(Farm::new(1))
    }

    /// Worker count of the underlying farm.
    pub fn workers(&self) -> usize {
        self.farm.workers()
    }

    /// The underlying farm.
    pub fn farm(&self) -> &Farm {
        &self.farm
    }

    /// Declares-and-runs: enumerates `spec`'s grid, evaluates every
    /// (point × replication) on the farm with sharded recording into
    /// `store`, and aggregates each point's replications with
    /// [`Tally`] merges in replication order.
    ///
    /// The closure returns the metrics of one replication; the outcome
    /// holds their per-point aggregates (per the spec's
    /// [`MetricAgg`] registry, mean by default).
    pub fn run<F>(&self, spec: &SweepSpec, store: &SharedStore, eval: F) -> SweepOutcome
    where
        F: Fn(&SweepPoint, RepCtx, &dyn RecordSink) -> BTreeMap<String, f64> + Sync,
    {
        self.run_grid(&spec.grid(), store, eval)
    }

    /// [`SweepRunner::run`] over an already-enumerated grid.
    pub fn run_grid<F>(&self, grid: &SweepGrid, store: &SharedStore, eval: F) -> SweepOutcome
    where
        F: Fn(&SweepPoint, RepCtx, &dyn RecordSink) -> BTreeMap<String, f64> + Sync,
    {
        let reps = grid.replications;
        let items: Vec<(usize, usize)> = (0..grid.points.len())
            .flat_map(|p| (0..reps).map(move |r| (p, r)))
            .collect();
        let t0 = Instant::now();
        let per_rep: Vec<BTreeMap<String, f64>> =
            self.farm
                .run_recorded(grid.root_seed, &items, store, |&(p, r), _ctx, shard| {
                    let point = &grid.points[p];
                    let rep = RepCtx {
                        rep: r,
                        seed: grid.rep_seed(point, r),
                    };
                    eval(point, rep, shard)
                });
        let wall_s = t0.elapsed().as_secs_f64();

        // Aggregate per point, in replication order (farm output is in
        // item order, which is point-major), reusing the deterministic
        // wt-des Tally merge discipline.
        let rows = grid
            .points
            .iter()
            .zip(per_rep.chunks(reps))
            .map(|(point, chunk)| {
                let mut tallies: BTreeMap<String, Tally> = BTreeMap::new();
                let mut sketches: BTreeMap<String, QuantileSketch> = BTreeMap::new();
                for rep_metrics in chunk {
                    for (metric, value) in rep_metrics {
                        tallies.entry(metric.clone()).or_default().record(*value);
                        if matches!(grid.agg_for(metric), MetricAgg::Quantile(_)) {
                            sketches.entry(metric.clone()).or_default().record(*value);
                        }
                    }
                }
                let metrics = tallies
                    .iter()
                    .map(|(metric, tally)| {
                        let v = match grid.agg_for(metric) {
                            MetricAgg::Mean => tally.mean(),
                            MetricAgg::Sum => tally.sum(),
                            MetricAgg::Min => tally.min(),
                            MetricAgg::Max => tally.max(),
                            MetricAgg::Quantile(q) => sketches[metric].quantile(q),
                        };
                        (metric.clone(), v)
                    })
                    .collect();
                SweepRow {
                    point: point.clone(),
                    metrics,
                    tallies,
                    sketches,
                }
            })
            .collect();
        SweepOutcome {
            rows,
            replications: reps,
            wall_s,
        }
    }

    /// The generic recorded path: one closure call per grid *point*
    /// (no replication fan-out, no aggregation), returning whatever the
    /// closure returns, in grid order. WTQL's executor runs its planned
    /// configuration order through this.
    pub fn run_points<R, F>(&self, grid: &SweepGrid, store: &SharedStore, eval: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&SweepPoint, RunCtx, &dyn RecordSink) -> R + Sync,
    {
        self.farm
            .run_recorded(grid.root_seed, &grid.points, store, |point, ctx, shard| {
                eval(point, ctx, shard)
            })
    }

    /// The guided recorded path: [`SweepRunner::run_points`] with a
    /// runtime-chosen execution order (DESIGN.md §12).
    ///
    /// `deps[i]` lists point indices that must complete before point `i`
    /// may start — each must be **strictly smaller** than `i` (asserted),
    /// which makes the dependency graph acyclic and the scheduler
    /// stall-free. Among eligible points, the one maximizing `rank(index)`
    /// runs next (ties break toward the lowest index); `rank` is consulted
    /// at every claim, so a surrogate that re-ranks as results land steers
    /// the frontier immediately.
    ///
    /// Ordering is a *performance* lever, never a correctness one: every
    /// point's seed derives from its grid index exactly as in
    /// [`SweepRunner::run_points`], each point records into a private
    /// [`StoreShard`], and shards merge into `store` in grid-index order
    /// after all points finish — so for a fixed evaluation closure the
    /// returned vector and the store bytes are identical to the exhaustive
    /// path at any worker count and under any rank function. (A closure
    /// that consults earlier verdicts — dominance pruning — is exactly
    /// what `deps` sequences.)
    ///
    /// `counters` feed the stderr heartbeat (when the farm has one) with
    /// screened/aborted/early-stopped totals; pass a fresh
    /// [`GuidedCounters`] if the closure never increments any.
    pub fn run_points_guided<R, F>(
        &self,
        grid: &SweepGrid,
        store: &SharedStore,
        deps: &[Vec<usize>],
        rank: &(dyn Fn(usize) -> f64 + Sync),
        counters: &GuidedCounters,
        eval: F,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(&SweepPoint, RunCtx, &dyn RecordSink) -> R + Sync,
    {
        let n = grid.points.len();
        assert_eq!(deps.len(), n, "one dependency list per grid point");
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut remaining: Vec<usize> = vec![0; n];
        for (i, ds) in deps.iter().enumerate() {
            remaining[i] = ds.len();
            for &d in ds {
                assert!(d < i, "guided dep {d} of point {i} is not strictly earlier");
                dependents[d].push(i);
            }
        }
        let ready: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
        let root = grid.root_seed;
        let ctx = |index: usize| RunCtx {
            index,
            seed: substream_seed(root, index as u64),
        };
        let mut beat = self
            .farm
            .heartbeat_enabled()
            .then(|| wt_obs::Heartbeat::start(n));
        let pulse = |shard: &StoreShard, beat: &mut Option<wt_obs::Heartbeat>| {
            if let Some(b) = beat.as_mut() {
                shard.peek(|rec| {
                    if let Some(t) = &rec.telemetry {
                        b.observe_run(t.events, t.wall.wall_us);
                    }
                });
                b.observe_guided(
                    counters.screened(),
                    counters.aborted(),
                    counters.early_stopped(),
                );
                if let Some(line) = b.tick() {
                    eprintln!("{line}");
                }
            }
        };

        let mut slots: Vec<Option<(R, StoreShard)>> = (0..n).map(|_| None).collect();
        if self.farm.workers() == 1 || n <= 1 {
            let mut ready = ready;
            let mut remaining = remaining;
            for _ in 0..n {
                let pos = pick_ready(&ready, rank).expect("guided scheduler stalled");
                let i = ready.swap_remove(pos);
                let shard = StoreShard::new();
                let r = eval(&grid.points[i], ctx(i), &shard);
                pulse(&shard, &mut beat);
                slots[i] = Some((r, shard));
                for &j in &dependents[i] {
                    remaining[j] -= 1;
                    if remaining[j] == 0 {
                        ready.push(j);
                    }
                }
            }
        } else {
            let state = Mutex::new(GuidedSched {
                ready,
                remaining,
                issued: 0,
            });
            let cv = Condvar::new();
            let (tx, rx) = mpsc::channel::<(usize, R, StoreShard)>();
            std::thread::scope(|scope| {
                for _ in 0..self.farm.workers().min(n) {
                    let tx = tx.clone();
                    let (state, cv) = (&state, &cv);
                    let (eval, dependents) = (&eval, &dependents);
                    scope.spawn(move || loop {
                        let i = {
                            let mut s = state.lock().unwrap();
                            loop {
                                if s.issued == n {
                                    return;
                                }
                                if let Some(pos) = pick_ready(&s.ready, rank) {
                                    s.issued += 1;
                                    break s.ready.swap_remove(pos);
                                }
                                // Ready set is empty but points remain:
                                // some issued point is still running (deps
                                // chain down to an initially-ready point)
                                // and will notify on completion.
                                s = cv.wait(s).unwrap();
                            }
                        };
                        let shard = StoreShard::new();
                        let r = eval(&grid.points[i], ctx(i), &shard);
                        {
                            let mut s = state.lock().unwrap();
                            for &j in &dependents[i] {
                                s.remaining[j] -= 1;
                                if s.remaining[j] == 0 {
                                    s.ready.push(j);
                                }
                            }
                        }
                        cv.notify_all();
                        if tx.send((i, r, shard)).is_err() {
                            return; // receiver gone: caller is unwinding
                        }
                    });
                }
                drop(tx); // the receive loop ends when the last worker exits
                for (i, r, shard) in rx {
                    pulse(&shard, &mut beat);
                    slots[i] = Some((r, shard));
                }
            });
        }

        // Merge in grid-index order: record ids and snapshot order match
        // the exhaustive path bitwise, whatever order execution took.
        let mut results = Vec::with_capacity(n);
        for slot in slots {
            let (r, shard) = slot.expect("guided scheduler lost a point");
            store.merge_shard(shard);
            results.push(r);
        }
        results
    }

    /// The unrecorded path: one closure call per grid point with no
    /// result store (pure computations like fig1's analytic curves).
    pub fn map_points<R, F>(&self, grid: &SweepGrid, eval: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&SweepPoint, RunCtx) -> R + Sync,
    {
        self.farm.run(grid.root_seed, &grid.points, eval)
    }
}

type CellFn<'a> = Box<dyn Fn(&SweepRow) -> String + 'a>;

/// A column-by-column table builder over a [`SweepOutcome`], replacing
/// the per-binary row-formatting loops.
pub struct SweepReport<'a> {
    outcome: &'a SweepOutcome,
    headers: Vec<String>,
    cells: Vec<CellFn<'a>>,
}

impl<'a> SweepReport<'a> {
    fn new(outcome: &'a SweepOutcome) -> Self {
        SweepReport {
            outcome,
            headers: Vec::new(),
            cells: Vec::new(),
        }
    }

    /// A column showing axis `axis` under header `header`.
    pub fn axis_column(self, header: &str, axis: &'a str) -> Self {
        self.column(header, move |row| row.axis_display(axis))
    }

    /// A column showing aggregated metric `key` formatted by `fmt`.
    pub fn metric_column(
        self,
        header: &str,
        key: &'a str,
        fmt: impl Fn(f64) -> String + 'a,
    ) -> Self {
        self.column(header, move |row| fmt(row.metric(key)))
    }

    /// A free-form column computed from the row.
    pub fn column(mut self, header: &str, cell: impl Fn(&SweepRow) -> String + 'a) -> Self {
        self.headers.push(header.to_string());
        self.cells.push(Box::new(cell));
        self
    }

    /// Renders the report as a [`Table`].
    pub fn table(&self) -> Table {
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        let mut table = Table::new(&headers);
        for row in &self.outcome.rows {
            table.row(self.cells.iter().map(|cell| cell(row)).collect());
        }
        table
    }

    /// Prints the report to stdout.
    pub fn print(&self) {
        self.table().print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> SweepSpec {
        SweepSpec::new("t")
            .axis("b", [1usize, 2])
            .axis("a", ["y", "x"])
            .seed(42)
    }

    #[test]
    fn grid_is_declaration_order_independent() {
        let g1 = demo_spec().grid();
        let g2 = SweepSpec::new("t")
            .axis("a", ["x", "y"])
            .axis("b", [2usize, 1, 2]) // duplicate collapses
            .seed(42)
            .grid();
        assert_eq!(g1.points, g2.points);
        assert_eq!(g1.len(), 4);
        // Axes sorted by name, odometer order with last axis fastest.
        assert_eq!(g1.points[0].label(), "a=x, b=1");
        assert_eq!(g1.points[1].label(), "a=x, b=2");
        assert_eq!(g1.points[3].label(), "a=y, b=2");
    }

    #[test]
    fn point_seeds_are_content_derived() {
        let g = demo_spec().grid();
        // Same configuration via an explicit grid in reversed pair
        // order still lands on the same seed.
        let explicit = SweepGrid::explicit(
            "t",
            42,
            vec![vec![
                ("b".to_string(), ParamValue::Num(1.0)),
                ("a".to_string(), ParamValue::from("x")),
            ]],
        );
        assert_eq!(explicit.points[0].seed, g.points[0].seed);
        // Distinct configurations land on distinct seeds.
        let seeds: Vec<u64> = g.points.iter().map(|p| p.seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
        // And the root seed matters.
        let other = demo_spec().seed(43).grid();
        assert_ne!(other.points[0].seed, g.points[0].seed);
    }

    #[test]
    fn rep_seeds_follow_seed_mode() {
        let per_point = demo_spec().replications(3).grid();
        let a = &per_point.points[0];
        let b = &per_point.points[1];
        assert_ne!(per_point.rep_seed(a, 0), per_point.rep_seed(b, 0));
        assert_ne!(per_point.rep_seed(a, 0), per_point.rep_seed(a, 1));

        let crn = demo_spec().replications(3).common_random_numbers().grid();
        let a = &crn.points[0];
        let b = &crn.points[1];
        assert_eq!(crn.rep_seed(a, 0), crn.rep_seed(b, 0));
        assert_ne!(crn.rep_seed(a, 0), crn.rep_seed(a, 1));
    }

    #[test]
    fn explicit_grid_preserves_caller_order() {
        let assignments: Vec<Assignment> = vec![
            vec![("k".to_string(), ParamValue::Num(9.0))],
            vec![("k".to_string(), ParamValue::Num(1.0))],
        ];
        let g = SweepGrid::explicit("t", 0, assignments);
        assert_eq!(g.points[0].axis_num("k"), 9.0);
        assert_eq!(g.points[1].axis_num("k"), 1.0);
        assert_eq!(g.points[0].index, 0);
    }

    #[test]
    fn run_aggregates_and_records() {
        let spec = SweepSpec::new("agg")
            .axis("x", [1usize, 2])
            .replications(3)
            .aggregate("events", MetricAgg::Sum)
            .aggregate("worst", MetricAgg::Max)
            .seed(5);
        let store = SharedStore::new();
        let out = SweepRunner::serial().run(&spec, &store, |point, rep, sink| {
            let x = point.axis_num("x");
            sink.record(point.record("agg", rep.seed).metric("v", x));
            BTreeMap::from([
                ("v".to_string(), x * (rep.rep + 1) as f64),
                ("events".to_string(), 1.0),
                ("worst".to_string(), rep.rep as f64),
            ])
        });
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.replications, 3);
        let r = out.row_where("x", 1usize);
        assert_eq!(r.metric("v"), 2.0); // mean of 1, 2, 3
        assert_eq!(r.metric("events"), 3.0); // sum
        assert_eq!(r.metric("worst"), 2.0); // max
        assert_eq!(r.tallies["v"].count(), 3);
        assert_eq!(out.metric_where("x", 2usize, "v"), 4.0);
        // One record per (point × replication), ids in item order.
        assert_eq!(store.len(), 6);
        let ids: Vec<u64> = store.snapshot().iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn quantile_agg_uses_sketch_and_exposes_it() {
        let spec = SweepSpec::new("q")
            .axis("x", [1usize])
            .replications(100)
            .aggregate("lat", MetricAgg::Quantile(0.95))
            .seed(3);
        let store = SharedStore::new();
        let out = SweepRunner::serial().run(&spec, &store, |_point, rep, _sink| {
            BTreeMap::from([("lat".to_string(), (rep.rep + 1) as f64)])
        });
        let row = &out.rows[0];
        // p95 of 1..=100 within the sketch's 1% relative error.
        let p95 = row.metric("lat");
        assert!((p95 - 95.0).abs() / 95.0 < 0.011, "p95 {p95}");
        // The sketch itself is exposed for further quantiles.
        let s = &row.sketches["lat"];
        assert_eq!(s.count(), 100);
        let p50 = s.p50();
        assert!((p50 - 50.0).abs() / 50.0 < 0.011, "p50 {p50}");
        // Non-quantile metrics don't pay for a sketch.
        assert_eq!(row.sketches.len(), 1);
    }

    #[test]
    fn quantile_agg_is_worker_count_invariant() {
        let spec = SweepSpec::new("qinv")
            .axis("n", 1usize..=4)
            .replications(8)
            .aggregate("v", MetricAgg::Quantile(0.99))
            .seed(11);
        let eval = |point: &SweepPoint, rep: RepCtx, _sink: &dyn RecordSink| {
            BTreeMap::from([(
                "v".to_string(),
                (point.axis_num("n") as u64 ^ rep.seed) as f64,
            )])
        };
        let store1 = SharedStore::new();
        let out1 = SweepRunner::new(Farm::new(1)).run(&spec, &store1, eval);
        let store4 = SharedStore::new();
        let out4 = SweepRunner::new(Farm::new(4)).run(&spec, &store4, eval);
        for (a, b) in out1.rows.iter().zip(&out4.rows) {
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.sketches, b.sketches);
        }
    }

    #[test]
    fn run_is_worker_count_invariant() {
        let spec = SweepSpec::new("inv")
            .axis("n", 1usize..=6)
            .replications(2)
            .seed(9);
        let eval = |point: &SweepPoint, rep: RepCtx, sink: &dyn RecordSink| {
            let v = (point.axis_num("n") as u64 ^ rep.seed) as f64;
            sink.record(point.record("inv", rep.seed).metric("v", v));
            BTreeMap::from([("v".to_string(), v)])
        };
        let store1 = SharedStore::new();
        let out1 = SweepRunner::new(Farm::new(1)).run(&spec, &store1, eval);
        let store4 = SharedStore::new();
        let out4 = SweepRunner::new(Farm::new(4)).run(&spec, &store4, eval);
        let rows = |o: &SweepOutcome| {
            o.rows
                .iter()
                .map(|r| (r.point.clone(), r.metrics.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(rows(&out1), rows(&out4));
        assert_eq!(store1.snapshot(), store4.snapshot());
    }

    #[test]
    fn report_renders_columns() {
        let spec = SweepSpec::new("rep").axis("mode", ["a", "b"]).seed(1);
        let store = SharedStore::new();
        let out = SweepRunner::serial().run(&spec, &store, |point, _rep, _sink| {
            BTreeMap::from([(
                "score".to_string(),
                if point.axis_str("mode") == "a" {
                    1.0
                } else {
                    2.0
                },
            )])
        });
        let rendered = out
            .report()
            .axis_column("mode", "mode")
            .metric_column("score", "score", |v| format!("{v:.1}"))
            .column("twice", |row| format!("{}", row.metric("score") * 2.0))
            .table()
            .render();
        assert!(rendered.contains("mode"));
        assert!(rendered.contains("1.0"));
        assert!(rendered.contains('4')); // 2.0 doubled
    }

    #[test]
    fn point_record_prefills_params() {
        let g = demo_spec().grid();
        let r = g.points[0].record("exp", 7);
        assert_eq!(r.params.len(), 2);
        assert_eq!(r.params["a"], ParamValue::from("x"));
        assert_eq!(r.params["b"], ParamValue::Num(1.0));
        assert_eq!(r.seed, 7);
    }

    #[test]
    #[should_panic(expected = "no values")]
    fn empty_axis_rejected() {
        let _ = SweepSpec::new("t").axis("a", Vec::<f64>::new()).grid();
    }

    fn guided_demo_grid(n: usize) -> SweepGrid {
        let assignments: Vec<Assignment> = (0..n)
            .map(|i| vec![("k".to_string(), ParamValue::Num(i as f64))])
            .collect();
        SweepGrid::explicit("guided", 21, assignments)
    }

    fn guided_eval(point: &SweepPoint, ctx: RunCtx, sink: &dyn RecordSink) -> u64 {
        // Two records per point (exercises merge alignment) and a value
        // derived from the index-keyed seed.
        let v = ctx.seed ^ point.axis_num("k") as u64;
        sink.record(point.record("guided", ctx.seed).metric("v", v as f64));
        sink.record(
            point
                .record("guided", ctx.seed)
                .metric("v2", (v / 2) as f64),
        );
        v
    }

    #[test]
    fn guided_matches_exhaustive_for_any_workers_and_rank() {
        let grid = guided_demo_grid(20);
        let deps = vec![Vec::new(); grid.len()];
        let gold_store = SharedStore::new();
        let gold = SweepRunner::serial().run_points(&grid, &gold_store, guided_eval);
        // Rank functions that reverse, scramble, and degenerate (NaN):
        // none may perturb results or record bytes, at any worker count.
        let ranks: Vec<Box<dyn Fn(usize) -> f64 + Sync>> = vec![
            Box::new(|i| i as f64),
            Box::new(|i| -(i as f64)),
            Box::new(|i| ((i * 7919) % 13) as f64),
            Box::new(|_| f64::NAN),
        ];
        for workers in [1, 4] {
            for rank in &ranks {
                let store = SharedStore::new();
                let counters = GuidedCounters::new();
                let out = SweepRunner::new(Farm::new(workers)).run_points_guided(
                    &grid,
                    &store,
                    &deps,
                    rank.as_ref(),
                    &counters,
                    guided_eval,
                );
                assert_eq!(out, gold, "results diverged at {workers} workers");
                assert_eq!(
                    store.snapshot(),
                    gold_store.snapshot(),
                    "records diverged at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn guided_rank_steers_serial_execution_order() {
        let grid = guided_demo_grid(6);
        let deps = vec![Vec::new(); grid.len()];
        let order = Mutex::new(Vec::new());
        let store = SharedStore::new();
        SweepRunner::serial().run_points_guided(
            &grid,
            &store,
            &deps,
            &|i| i as f64,
            &GuidedCounters::new(),
            |point, _ctx, _sink| order.lock().unwrap().push(point.index),
        );
        // Highest rank first: descending index order.
        assert_eq!(*order.lock().unwrap(), vec![5, 4, 3, 2, 1, 0]);
        // A constant rank breaks ties toward the lowest index.
        let order = Mutex::new(Vec::new());
        SweepRunner::serial().run_points_guided(
            &grid,
            &store,
            &deps,
            &|_| 0.0,
            &GuidedCounters::new(),
            |point, _ctx, _sink| order.lock().unwrap().push(point.index),
        );
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn guided_deps_gate_execution() {
        use std::sync::atomic::AtomicBool;
        let grid = guided_demo_grid(12);
        // Even points are free; each odd point depends on every earlier
        // even point. Rank pushes dependents first, so the scheduler must
        // actually hold them back.
        let deps: Vec<Vec<usize>> = (0..12)
            .map(|i| {
                if i % 2 == 1 {
                    (0..i).filter(|d| d % 2 == 0).collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let finished: Vec<AtomicBool> = (0..12).map(|_| AtomicBool::new(false)).collect();
        for workers in [1, 4] {
            for f in &finished {
                f.store(false, Ordering::SeqCst);
            }
            let store = SharedStore::new();
            SweepRunner::new(Farm::new(workers)).run_points_guided(
                &grid,
                &store,
                &deps,
                &|i| if i % 2 == 1 { 1.0 } else { 0.0 },
                &GuidedCounters::new(),
                |point, _ctx, _sink| {
                    for &d in &deps[point.index] {
                        assert!(
                            finished[d].load(Ordering::SeqCst),
                            "point {} ran before its dep {d} ({workers} workers)",
                            point.index
                        );
                    }
                    finished[point.index].store(true, Ordering::SeqCst);
                },
            );
        }
    }

    #[test]
    #[should_panic(expected = "not strictly earlier")]
    fn guided_rejects_forward_deps() {
        let grid = guided_demo_grid(2);
        let deps = vec![vec![1], Vec::new()];
        let store = SharedStore::new();
        SweepRunner::serial().run_points_guided(
            &grid,
            &store,
            &deps,
            &|_| 0.0,
            &GuidedCounters::new(),
            |_p, _c, _s| (),
        );
    }

    #[test]
    fn guided_counters_accumulate_and_empty_grid_is_fine() {
        let counters = GuidedCounters::new();
        counters.note_screened();
        counters.note_screened();
        counters.note_aborted();
        counters.note_early_stopped();
        assert_eq!(counters.screened(), 2);
        assert_eq!(counters.aborted(), 1);
        assert_eq!(counters.early_stopped(), 1);

        let grid = guided_demo_grid(0);
        let store = SharedStore::new();
        let out: Vec<()> = SweepRunner::new(Farm::new(4)).run_points_guided(
            &grid,
            &store,
            &[],
            &|_| 0.0,
            &counters,
            |_p, _c, _s| (),
        );
        assert!(out.is_empty());
        assert_eq!(store.len(), 0);
    }
}
