//! A cheap deterministic surrogate model for guided sweeps.
//!
//! Regularized least squares (ridge regression) over the sweep's numeric
//! axes, fit on the grid points already simulated and used to *rank* the
//! remaining frontier — nothing more. Predictions never touch a verdict:
//! the guided planner only reorders work with them (DESIGN.md §12), so a
//! terrible fit costs wall-clock, not correctness. That contract is why
//! this can be a 100-line pure-Rust solver instead of a real learner.
//!
//! Determinism: the fit is a closed-form solve of the normal equations
//! `(XᵀX + λI) w = Xᵀy` by Gaussian elimination with partial pivoting —
//! no RNG, no iteration-order dependence — so the same completed-point
//! set always yields the same ranking.

/// A fitted ridge-regression surrogate over standardized features.
#[derive(Debug, Clone, PartialEq)]
pub struct Surrogate {
    /// Per-feature means (for standardization).
    means: Vec<f64>,
    /// Per-feature scales (std dev, floored to 1 when degenerate).
    scales: Vec<f64>,
    /// Weights over `[1, x̃_1, …, x̃_d]` (intercept first).
    weights: Vec<f64>,
}

impl Surrogate {
    /// Fits `y ≈ w·[1, x̃]` with ridge penalty `lambda > 0` on the
    /// non-intercept weights. Returns `None` when there are no samples,
    /// no features, ragged rows, or non-finite inputs — callers fall
    /// back to their default ordering.
    pub fn fit(xs: &[&[f64]], ys: &[f64], lambda: f64) -> Option<Surrogate> {
        let n = xs.len();
        if n == 0 || n != ys.len() || lambda <= 0.0 {
            return None;
        }
        let d = xs[0].len();
        if d == 0 || xs.iter().any(|x| x.len() != d) {
            return None;
        }
        if xs.iter().any(|x| x.iter().any(|v| !v.is_finite())) || ys.iter().any(|y| !y.is_finite())
        {
            return None;
        }

        // Standardize features: sweeps mix axes spanning 10⁰ to 10¹²
        // (replication counts vs byte sizes), and the normal equations
        // square those magnitudes.
        let mut means = vec![0.0f64; d];
        let mut scales = vec![0.0f64; d];
        for x in xs {
            for (j, v) in x.iter().enumerate() {
                means[j] += v;
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        for x in xs {
            for (j, v) in x.iter().enumerate() {
                scales[j] += (v - means[j]).powi(2);
            }
        }
        for s in &mut scales {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: ridge zeroes its weight
            }
        }
        let feat = |x: &[f64], j: usize| (x[j] - means[j]) / scales[j];

        // Normal equations over [1, x̃]: A = XᵀX + λI (intercept
        // unpenalized), b = Xᵀy.
        let k = d + 1;
        let mut a = vec![0.0f64; k * k];
        let mut b = vec![0.0f64; k];
        for (x, &y) in xs.iter().zip(ys) {
            for r in 0..k {
                let xr = if r == 0 { 1.0 } else { feat(x, r - 1) };
                b[r] += xr * y;
                for c in 0..k {
                    let xc = if c == 0 { 1.0 } else { feat(x, c - 1) };
                    a[r * k + c] += xr * xc;
                }
            }
        }
        for j in 1..k {
            a[j * k + j] += lambda;
        }

        let weights = solve(&mut a, &mut b, k)?;
        Some(Surrogate {
            means,
            scales,
            weights,
        })
    }

    /// Predicted response at `x` (must have the fitted dimensionality).
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.means.len(), "feature dimension mismatch");
        let mut y = self.weights[0];
        for (j, xj) in x.iter().enumerate() {
            y += self.weights[j + 1] * (xj - self.means[j]) / self.scales[j];
        }
        y
    }
}

/// Solves the dense symmetric system `A w = b` (row-major `k×k`) in place
/// by Gaussian elimination with partial pivoting. `None` on a (numerically)
/// singular matrix — can't happen once the ridge term is added, but the
/// guard keeps a pathological fit from poisoning the planner with NaNs.
fn solve(a: &mut [f64], b: &mut [f64], k: usize) -> Option<Vec<f64>> {
    for col in 0..k {
        let pivot = (col..k).max_by(|&r1, &r2| {
            a[r1 * k + col]
                .abs()
                .partial_cmp(&a[r2 * k + col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot * k + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for j in 0..k {
                a.swap(col * k + j, pivot * k + j);
            }
            b.swap(col, pivot);
        }
        for row in (col + 1)..k {
            let f = a[row * k + col] / a[col * k + col];
            for j in col..k {
                a[row * k + j] -= f * a[col * k + j];
            }
            b[row] -= f * b[col];
        }
    }
    let mut w = vec![0.0f64; k];
    for row in (0..k).rev() {
        let mut acc = b[row];
        for j in (row + 1)..k {
            acc -= a[row * k + j] * w[j];
        }
        w[row] = acc / a[row * k + row];
    }
    if w.iter().all(|v| v.is_finite()) {
        Some(w)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAMBDA: f64 = 1e-3;

    #[test]
    fn recovers_a_linear_function() {
        // y = 2 + 3a − b on a small grid.
        let grid: Vec<[f64; 2]> = (0..5)
            .flat_map(|a| (0..5).map(move |b| [a as f64, b as f64]))
            .collect();
        let xs: Vec<&[f64]> = grid.iter().map(|g| &g[..]).collect();
        let ys: Vec<f64> = grid.iter().map(|g| 2.0 + 3.0 * g[0] - g[1]).collect();
        let s = Surrogate::fit(&xs, &ys, LAMBDA).unwrap();
        for (x, y) in grid.iter().zip(&ys) {
            assert!(
                (s.predict(x) - y).abs() < 1e-3,
                "{x:?}: {} vs {y}",
                s.predict(x)
            );
        }
    }

    #[test]
    fn ranking_orders_by_risk() {
        // Fit on a monotone response; the surrogate must rank unseen
        // points in the same order.
        let xs_own: Vec<[f64; 1]> = (0..6).map(|i| [i as f64]).collect();
        let xs: Vec<&[f64]> = xs_own.iter().map(|g| &g[..]).collect();
        let ys: Vec<f64> = (0..6).map(|i| 10.0 - i as f64).collect();
        let s = Surrogate::fit(&xs, &ys, LAMBDA).unwrap();
        assert!(s.predict(&[0.5]) > s.predict(&[2.5]));
        assert!(s.predict(&[2.5]) > s.predict(&[4.5]));
    }

    #[test]
    fn deterministic_across_fits() {
        let xs_own: Vec<[f64; 2]> = vec![[1.0, 9.0], [2.0, 4.0], [3.0, 1.0], [5.0, 7.0]];
        let xs: Vec<&[f64]> = xs_own.iter().map(|g| &g[..]).collect();
        let ys = [0.5, 0.2, 0.9, 0.4];
        let a = Surrogate::fit(&xs, &ys, LAMBDA).unwrap();
        let b = Surrogate::fit(&xs, &ys, LAMBDA).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a.predict(&[4.0, 4.0]).to_bits(),
            b.predict(&[4.0, 4.0]).to_bits()
        );
    }

    #[test]
    fn wildly_scaled_features_stay_finite() {
        // Axis magnitudes mimic object_bytes vs replication.
        let xs_own: Vec<[f64; 2]> = vec![
            [2.0, 4.0e12],
            [3.0, 4.0e12],
            [2.0, 8.0e12],
            [5.0, 8.0e12],
            [4.0, 1.6e13],
        ];
        let xs: Vec<&[f64]> = xs_own.iter().map(|g| &g[..]).collect();
        let ys = [0.1, 0.2, 0.3, 0.4, 0.5];
        let s = Surrogate::fit(&xs, &ys, LAMBDA).unwrap();
        for x in &xs_own {
            assert!(s.predict(x).is_finite());
        }
    }

    #[test]
    fn degenerate_inputs_refuse_to_fit() {
        assert!(Surrogate::fit(&[], &[], LAMBDA).is_none(), "no samples");
        let xs_own = [[1.0f64, 2.0]];
        let xs: Vec<&[f64]> = xs_own.iter().map(|g| &g[..]).collect();
        assert!(
            Surrogate::fit(&xs, &[1.0, 2.0], LAMBDA).is_none(),
            "ragged y"
        );
        assert!(Surrogate::fit(&xs, &[f64::NAN], LAMBDA).is_none(), "NaN y");
        let bad_own = [[f64::INFINITY, 2.0]];
        let bad: Vec<&[f64]> = bad_own.iter().map(|g| &g[..]).collect();
        assert!(Surrogate::fit(&bad, &[1.0], LAMBDA).is_none(), "inf x");
        assert!(Surrogate::fit(&xs, &[1.0], 0.0).is_none(), "no ridge");
    }

    #[test]
    fn constant_features_fit_the_mean() {
        // All-identical feature rows: the ridge zeroes the slope and the
        // intercept carries the mean.
        let xs_own: Vec<[f64; 1]> = vec![[3.0]; 4];
        let xs: Vec<&[f64]> = xs_own.iter().map(|g| &g[..]).collect();
        let ys = [1.0, 2.0, 3.0, 4.0];
        let s = Surrogate::fit(&xs, &ys, LAMBDA).unwrap();
        assert!((s.predict(&[3.0]) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_fits_without_blowing_up() {
        // One completed point is enough to start ranking (constant model).
        let xs_own = [[2.0f64, 7.0]];
        let xs: Vec<&[f64]> = xs_own.iter().map(|g| &g[..]).collect();
        let s = Surrogate::fit(&xs, &[0.7], LAMBDA).unwrap();
        assert!((s.predict(&[2.0, 7.0]) - 0.7).abs() < 1e-6);
        assert!(s.predict(&[9.0, 9.0]).is_finite());
    }
}
