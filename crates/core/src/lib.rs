//! # windtunnel — a simulation-based wind tunnel for data center design
//!
//! An implementation of the system envisioned in *"Towards Building Wind
//! Tunnels for Data Center Design"* (Floratou, Bertsch, Patel, Laskaris —
//! PVLDB 7(9), 2014): an integrated hardware/software simulator in which
//! data center design becomes a systematic, queryable process.
//!
//! The facade exposes three layers:
//!
//! * **Scenario construction** — [`ScenarioBuilder`] assembles a design
//!   point: topology (racks × nodes × disk/NIC/switch models from
//!   [`hw::catalog`]), redundancy scheme, placement policy, repair policy,
//!   tenant workloads, limpware.
//! * **SLAs** — [`Sla`]/[`SlaSet`] express the user-facing requirements
//!   (availability, durability, latency percentile) a design must meet.
//! * **The tunnel** — [`WindTunnel`] runs scenarios through the simulation
//!   engines (`wt-cluster`), checks SLAs, attaches costs, and records
//!   every run into the result store (`wt-store`) for §4.4-style
//!   exploration.
//!
//! * **Declarative sweeps** — [`sweep::SweepSpec`] declares a parameter
//!   grid and [`sweep::SweepRunner`] executes it deterministically over
//!   the run [`farm`] with sharded recording; every experiment binary
//!   and the WTQL executor share this one execution path (paper §4.1).
//!
//! Declarative what-if *queries* over scenario spaces live one level up,
//! in the `wt-wtql` crate.
//!
//! ```
//! use windtunnel::prelude::*;
//!
//! let scenario = ScenarioBuilder::new("quick")
//!     .racks(1)
//!     .nodes_per_rack(10)
//!     .replication(3)
//!     .objects(500)
//!     .seed(7)
//!     .build();
//! let tunnel = WindTunnel::new();
//! let result = tunnel.run_availability(&scenario);
//! assert!(result.availability > 0.99);
//! assert_eq!(tunnel.store().len(), 1); // the run was recorded
//! ```

pub mod builder;
pub mod farm;
pub mod knobs;
pub mod report;
pub mod runner;
pub mod sla;
pub mod surrogate;
pub mod sweep;

pub use builder::ScenarioBuilder;
pub use farm::{Farm, RunCtx};
pub use runner::{t_quantile_975, Assessment, MeanInterval, ReplicatedAvailability, WindTunnel};
pub use sla::{Sla, SlaSet};
pub use surrogate::Surrogate;
pub use sweep::{GuidedCounters, SweepOutcome, SweepReport, SweepRunner, SweepSpec};

// Re-export the subsystem crates under stable names so downstream users
// depend on `windtunnel` alone.
pub use wt_analytic as analytic;
pub use wt_cluster as cluster;
pub use wt_des as des;
pub use wt_dist as dist;
pub use wt_hw as hw;
pub use wt_obs as obs;
pub use wt_store as store;
pub use wt_sw as sw;
pub use wt_workload as workload;

/// Everything a scenario author typically needs.
pub mod prelude {
    pub use crate::builder::ScenarioBuilder;
    pub use crate::farm::{Farm, RunCtx};
    pub use crate::runner::{Assessment, WindTunnel};
    pub use crate::sla::{Sla, SlaSet};
    pub use crate::sweep::{MetricAgg, SweepRunner, SweepSpec};
    pub use wt_cluster::{AvailabilityResult, PerfResult, Scenario, UnavailabilityExperiment};
    pub use wt_des::QueueBackend;
    pub use wt_dist::Dist;
    pub use wt_hw::catalog;
    pub use wt_hw::{CostModel, LimpwareSpec};
    pub use wt_sw::{Placement, RedundancyScheme, RepairPolicy};
    pub use wt_workload::TenantWorkload;
}
