//! Count-valued environment knobs, parsed one way everywhere.
//!
//! `WT_WORKERS` (farm worker threads) and `WT_PARTITIONS` (partitions
//! inside one simulation run) are the same kind of knob: an optional
//! positive count that should fall back loudly — once — when set to
//! something unusable, never silently. [`parse_count`] is the shared
//! pure core (unit-testable without touching the process environment);
//! [`env_count`] adds the environment read and the warn-once fallback.

/// Interprets a count-valued knob: `Ok(Some(n))` for a usable count,
/// `Ok(None)` when unset, `Err` with a human-readable reason when the
/// value is set but unusable (not a number, or zero). `noun` names the
/// counted thing in the zero-value message ("worker", "partition").
pub fn parse_count(name: &str, noun: &str, var: Option<&str>) -> Result<Option<usize>, String> {
    match var {
        None => Ok(None),
        Some(v) => match v.trim().parse::<usize>() {
            Ok(0) => Err(format!("{name}={v} is zero; need at least 1 {noun}")),
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(format!("{name}={v} is not a number")),
        },
    }
}

/// Reads the environment knob `name`, returning `Some(n)` for a usable
/// count and `None` when unset. A set-but-unusable value warns once per
/// knob on stderr (naming `fallback` as what will be used instead) and
/// returns `None` — the caller's fallback applies either way.
pub fn env_count(name: &'static str, noun: &str, fallback: &str) -> Option<usize> {
    match parse_count(name, noun, std::env::var(name).ok().as_deref()) {
        Ok(n) => n,
        Err(reason) => {
            warn_once(name, &reason, fallback);
            None
        }
    }
}

/// One warning per knob per process, so a farm constructed in a loop
/// does not spam stderr.
fn warn_once(name: &'static str, reason: &str, fallback: &str) {
    static WARNED: std::sync::Mutex<Vec<&'static str>> = std::sync::Mutex::new(Vec::new());
    let mut warned = WARNED.lock().expect("knob warn list lock");
    if !warned.contains(&name) {
        warned.push(name);
        eprintln!("[farm] warning: {reason}; using {fallback}");
    }
}

/// Partition count from `WT_PARTITIONS`: 1 (the serial oracle) when
/// unset or unusable. The CLI `--partitions` flag, where an experiment
/// binary offers one, takes precedence over this knob.
pub fn partitions_from_env() -> usize {
    env_count(
        "WT_PARTITIONS",
        "partition",
        "serial execution (1 partition)",
    )
    .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_garbage() {
        assert_eq!(parse_count("WT_WORKERS", "worker", None), Ok(None));
        assert_eq!(parse_count("WT_WORKERS", "worker", Some("4")), Ok(Some(4)));
        assert_eq!(
            parse_count("WT_WORKERS", "worker", Some(" 8 ")),
            Ok(Some(8))
        );
        let zero = parse_count("WT_WORKERS", "worker", Some("0")).unwrap_err();
        assert!(zero.contains("WT_WORKERS=0"), "message: {zero}");
        assert!(zero.contains("worker"), "message: {zero}");
        let junk = parse_count("WT_WORKERS", "worker", Some("many")).unwrap_err();
        assert!(junk.contains("not a number"), "message: {junk}");
    }

    #[test]
    fn partitions_mirror_workers() {
        // The two knobs share one parser, so they accept and reject the
        // same shapes — only the variable name and noun differ.
        for raw in [None, Some("1"), Some("4"), Some(" 2 ")] {
            assert_eq!(
                parse_count("WT_PARTITIONS", "partition", raw),
                parse_count("WT_WORKERS", "worker", raw),
                "value {raw:?}"
            );
        }
        for raw in ["0", "-1", "lots", "2.5"] {
            let p = parse_count("WT_PARTITIONS", "partition", Some(raw)).unwrap_err();
            let w = parse_count("WT_WORKERS", "worker", Some(raw)).unwrap_err();
            assert!(p.starts_with("WT_PARTITIONS="), "message: {p}");
            assert!(w.starts_with("WT_WORKERS="), "message: {w}");
            // Same reason, different knob name.
            assert_eq!(
                p.trim_start_matches("WT_PARTITIONS")
                    .replace("partition", "worker"),
                w.trim_start_matches("WT_WORKERS"),
                "value {raw}"
            );
        }
    }
}
