//! The tunnel itself: run scenarios, check SLAs, attach cost, record runs.

use crate::sla::SlaSet;
use serde::{Deserialize, Serialize};
use wt_cluster::availability::{DiskFailureModel, SwitchFailureModel};
use wt_cluster::chaos::ChaosConfig;
use wt_cluster::{
    AvailabilityModel, AvailabilityResult, PartitionedAvailability, PerfModel, PerfResult,
    RebuildModel, Scenario,
};
use wt_des::obs::{Probe, RunTelemetry};
use wt_des::time::SimDuration;
use wt_hw::CostModel;
use wt_store::{RecordSink, RunRecord, SharedStore};

/// The wind tunnel: a facade over the simulation engines plus the result
/// store and cost model.
#[derive(Debug, Clone, Default)]
pub struct WindTunnel {
    store: SharedStore,
    cost: CostModel,
}

/// Student-t 97.5% quantile for `df` degrees of freedom (normal
/// approximation beyond 30 df) — the multiplier behind every 95%
/// confidence half-width in the tunnel.
pub fn t_quantile_975(df: usize) -> f64 {
    const T: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    assert!(df >= 1, "confidence interval needs at least 2 samples");
    if df <= 30 {
        T[df - 1]
    } else {
        1.96
    }
}

/// A sample mean with an approximate 95% confidence half-width — the
/// common shape behind replicated availability and the guided planner's
/// per-constraint early-stop decisions.
///
/// All `confidently_*` tests require a real interval (`n ≥ 2` and a
/// finite half-width); a degenerate interval resolves nothing, in either
/// direction — the PR-4 NaN-guard contract.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanInterval {
    /// Sample mean.
    pub mean: f64,
    /// Approximate 95% confidence half-width of the mean.
    pub half_width_95: f64,
    /// Number of samples.
    pub n: usize,
}

impl MeanInterval {
    /// Builds the interval from a tally of `n ≥ 2` samples.
    pub fn from_tally(tally: &wt_des::Tally) -> Self {
        let n = tally.count() as usize;
        assert!(n >= 2, "confidence intervals need at least 2 samples");
        let t = t_quantile_975(n - 1);
        MeanInterval {
            mean: tally.mean(),
            half_width_95: t * (tally.variance() / n as f64).sqrt(),
            n,
        }
    }

    /// Is there a usable interval at all?
    fn resolved(&self) -> bool {
        self.n >= 2 && self.half_width_95.is_finite() && self.mean.is_finite()
    }

    /// The whole interval sits at or above `bound`.
    pub fn confidently_at_least(&self, bound: f64) -> bool {
        self.resolved() && self.mean - self.half_width_95 >= bound
    }

    /// The whole interval sits strictly above `bound`.
    pub fn confidently_above(&self, bound: f64) -> bool {
        self.resolved() && self.mean - self.half_width_95 > bound
    }

    /// The whole interval sits at or below `bound`.
    pub fn confidently_at_most(&self, bound: f64) -> bool {
        self.resolved() && self.mean + self.half_width_95 <= bound
    }

    /// The whole interval sits strictly below `bound`.
    pub fn confidently_below(&self, bound: f64) -> bool {
        self.resolved() && self.mean + self.half_width_95 < bound
    }
}

/// Availability over independent replications, with uncertainty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedAvailability {
    /// Mean availability across replications.
    pub mean_availability: f64,
    /// Approximate 95% confidence half-width of the mean.
    pub half_width_95: f64,
    /// Worst replication.
    pub min_availability: f64,
    /// Best replication.
    pub max_availability: f64,
    /// The individual replication results.
    pub replications: Vec<AvailabilityResult>,
}

impl ReplicatedAvailability {
    /// True if the availability floor is met even at the pessimistic edge
    /// of the confidence interval.
    ///
    /// A degenerate interval must fail outright: with 0 or 1
    /// replications there is no variance estimate (a hand-built value
    /// can carry `half_width_95` of 0.0 or NaN), and treating such an
    /// interval as "confident" would let a single noisy run vacuously
    /// pass an SLA.
    pub fn confidently_meets(&self, floor: f64) -> bool {
        self.interval().confidently_at_least(floor)
    }

    /// True if the availability floor is missed even at the optimistic
    /// edge of the confidence interval — the early-stop dual of
    /// [`Self::confidently_meets`], with the same degenerate-interval
    /// guard.
    pub fn confidently_fails(&self, floor: f64) -> bool {
        self.interval().confidently_below(floor)
    }

    /// The mean ± half-width as a [`MeanInterval`].
    pub fn interval(&self) -> MeanInterval {
        MeanInterval {
            mean: self.mean_availability,
            half_width_95: self.half_width_95,
            n: self.replications.len(),
        }
    }
}

/// The verdict on one scenario against an SLA set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assessment {
    /// Scenario name.
    pub scenario: String,
    /// Availability result, if an availability run was needed.
    pub availability: Option<AvailabilityResult>,
    /// Performance result, if a perf run was needed.
    pub perf: Option<PerfResult>,
    /// Yearly TCO of the hardware.
    pub tco_usd_per_year: f64,
    /// Human-readable SLA violations; empty = design passes.
    pub violations: Vec<String>,
}

impl Assessment {
    /// True when every SLA clause held.
    pub fn passes(&self) -> bool {
        self.violations.is_empty()
    }
}

impl WindTunnel {
    /// A tunnel with a fresh store and default cost model.
    pub fn new() -> Self {
        Self::default()
    }

    /// A tunnel writing into an existing shared store.
    pub fn with_store(store: SharedStore) -> Self {
        WindTunnel {
            store,
            cost: CostModel::default(),
        }
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The result store.
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// The cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Derives the availability engine configuration from a scenario:
    /// node reliability from the node spec, rebuild bandwidth from the
    /// NIC and repair policy.
    pub fn availability_model(scenario: &Scenario) -> AvailabilityModel {
        AvailabilityModel {
            n_nodes: scenario.topology.node_count(),
            redundancy: scenario.redundancy,
            placement: scenario.placement,
            objects: scenario.objects,
            object_bytes: scenario.object_bytes,
            node_ttf: scenario.topology.node.ttf.clone(),
            node_replace: scenario.topology.node.repair.clone(),
            rebuild: RebuildModel::Bandwidth {
                link_gbps: scenario.topology.node.nic.bandwidth_gbps,
                share: scenario.repair.bandwidth_share,
            },
            repair: scenario.repair,
            switches: scenario.switch_failures.then(|| SwitchFailureModel {
                nodes_per_rack: scenario.topology.nodes_per_rack,
                ttf: scenario.topology.tor.ttf.clone(),
                repair: scenario.topology.tor.repair.clone(),
            }),
            disks: scenario.disk_failures.then(|| DiskFailureModel {
                per_node: scenario.topology.node.disks.len().max(1),
                ttf: scenario.topology.node.disks[0].ttf.clone(),
                replace: scenario.topology.node.disks[0].repair.clone(),
            }),
            queue: scenario.queue_backend_for(scenario.availability_pending_estimate()),
            chaos: Self::chaos_config(scenario),
        }
    }

    /// Derives the performance engine configuration from a scenario.
    pub fn perf_model(scenario: &Scenario, inject_failures: bool) -> PerfModel {
        PerfModel {
            topology: scenario.topology.clone(),
            redundancy: scenario.redundancy,
            placement: scenario.placement,
            tenants: scenario.tenants.clone(),
            limpware: scenario.limpware.clone(),
            inject_failures,
            node_ttf: None,
            horizon_s: (scenario.horizon_years * 365.0 * 86_400.0).min(600.0),
            queue: scenario.queue_backend_for(scenario.perf_pending_estimate()),
            chaos: Self::chaos_config(scenario),
        }
    }

    /// The chaos configuration both engines compile, when the scenario
    /// declares a non-empty fault schedule.
    fn chaos_config(scenario: &Scenario) -> Option<ChaosConfig> {
        scenario.fault_schedule().map(|s| ChaosConfig {
            schedule: s.clone(),
            nodes_per_rack: scenario.topology.nodes_per_rack,
        })
    }

    fn base_record(scenario: &Scenario, experiment: &str) -> RunRecord {
        RunRecord::new(experiment, scenario.seed)
            .param("scenario", scenario.name.as_str())
            .param("nodes", scenario.topology.node_count())
            .param("racks", scenario.topology.racks)
            .param("disk", scenario.topology.node.disks[0].name.as_str())
            .param("nic_gbps", scenario.topology.node.nic.bandwidth_gbps)
            .param("mem_gb", scenario.topology.node.mem.capacity_gb)
            .param("redundancy", scenario.redundancy.label().as_str())
            .param("placement", scenario.placement.label())
            .param("repair_parallel", scenario.repair.max_parallel)
            .param("objects", scenario.objects as usize)
    }

    /// Runs the availability engine over the scenario's horizon and
    /// records the outcome into the tunnel's own store.
    pub fn run_availability(&self, scenario: &Scenario) -> AvailabilityResult {
        self.run_availability_into(scenario, &self.store)
    }

    /// [`Self::run_availability`] recording into an explicit sink — the
    /// lock-free path: farm workers pass their private `StoreShard` here
    /// so recording never contends on the shared store.
    pub fn run_availability_into(
        &self,
        scenario: &Scenario,
        sink: &dyn RecordSink,
    ) -> AvailabilityResult {
        self.run_availability_observed_into(scenario, sink, None).0
    }

    /// [`Self::run_availability_into`] with the engine probe surfaced:
    /// returns the run's [`RunTelemetry`] (also attached to the record)
    /// and forwards the event stream to `extra` when given (e.g. a
    /// `TraceProbe`). The telemetry's simulation-derived fields are
    /// deterministic; only `telemetry.wall` carries wall-clock state,
    /// measured here around the engine call.
    pub fn run_availability_observed_into(
        &self,
        scenario: &Scenario,
        sink: &dyn RecordSink,
        extra: Option<&mut dyn Probe>,
    ) -> (AvailabilityResult, RunTelemetry) {
        let model = Self::availability_model(scenario);
        let horizon = SimDuration::from_years(scenario.horizon_years);
        let started = std::time::Instant::now();
        let (result, mut telemetry) = model.run_observed(scenario.seed, horizon, extra);
        telemetry.wall.wall_us = started.elapsed().as_micros() as u64;
        let record = Self::base_record(scenario, "availability")
            .metric("availability", result.availability)
            .metric("unavailability_events", result.unavailability_events as f64)
            .metric("objects_lost", result.objects_lost as f64)
            .metric("node_failures", result.node_failures as f64)
            .metric(
                "tco_usd_per_year",
                self.cost.cost(&scenario.topology).tco_usd_per_year,
            )
            .telemetry(telemetry.clone());
        sink.record(record);
        (result, telemetry)
    }

    /// Derives the partitioned availability engine configuration from a
    /// scenario: the same reliability/rebuild parameters as
    /// [`Self::availability_model`], with the wire-latency half of the
    /// conservative lookahead taken from the topology (the NIC → ToR →
    /// agg → ToR → NIC floor of any inter-rack path).
    pub fn partitioned_availability_model(scenario: &Scenario) -> PartitionedAvailability {
        PartitionedAvailability {
            racks: scenario.topology.racks,
            nodes_per_rack: scenario.topology.nodes_per_rack,
            replication: scenario.redundancy.width(),
            objects: scenario.objects,
            object_bytes: scenario.object_bytes,
            node_ttf: scenario.topology.node.ttf.clone(),
            node_replace: scenario.topology.node.repair.clone(),
            rebuild: RebuildModel::Bandwidth {
                link_gbps: scenario.topology.node.nic.bandwidth_gbps,
                share: scenario.repair.bandwidth_share,
            },
            repair: scenario.repair,
            wire_latency_s: scenario.topology.min_cross_latency_s(),
            queue: scenario.queue_backend_for(scenario.availability_pending_estimate()),
            chaos: Self::chaos_config(scenario),
        }
    }

    /// Runs the rack-sharded availability engine over `partitions`
    /// conservative-lookahead partitions on `threads` worker threads and
    /// records the outcome into the tunnel's own store. `partitions == 1`
    /// is the serial oracle; any higher partition count produces
    /// bitwise-identical results at any thread count.
    pub fn run_availability_partitioned(
        &self,
        scenario: &Scenario,
        partitions: usize,
        threads: usize,
    ) -> AvailabilityResult {
        self.run_availability_partitioned_into(scenario, partitions, threads, &self.store)
            .0
    }

    /// [`Self::run_availability_partitioned`] recording into an explicit
    /// sink, with the run's folded [`RunTelemetry`] surfaced. Records
    /// under the experiment name `availability_partitioned` (with a
    /// `partitions` param) so the serial engine's `availability` records
    /// stay comparable across PRs.
    pub fn run_availability_partitioned_into(
        &self,
        scenario: &Scenario,
        partitions: usize,
        threads: usize,
        sink: &dyn RecordSink,
    ) -> (AvailabilityResult, RunTelemetry) {
        let model = Self::partitioned_availability_model(scenario);
        let horizon_s = SimDuration::from_years(scenario.horizon_years).as_secs();
        let started = std::time::Instant::now();
        let (result, mut telemetry) =
            model.run_observed(scenario.seed, horizon_s, partitions, threads);
        telemetry.wall.wall_us = started.elapsed().as_micros() as u64;
        let record = Self::base_record(scenario, "availability_partitioned")
            .param("partitions", partitions)
            .metric("availability", result.availability)
            .metric("unavailability_events", result.unavailability_events as f64)
            .metric("objects_lost", result.objects_lost as f64)
            .metric("node_failures", result.node_failures as f64)
            .metric(
                "tco_usd_per_year",
                self.cost.cost(&scenario.topology).tco_usd_per_year,
            )
            .telemetry(telemetry.clone());
        sink.record(record);
        (result, telemetry)
    }

    /// Runs the performance engine (capped at 600 simulated seconds — a
    /// latency measurement, not a reliability horizon) and records it
    /// into the tunnel's own store.
    pub fn run_perf(&self, scenario: &Scenario, inject_failures: bool) -> PerfResult {
        self.run_perf_into(scenario, inject_failures, &self.store)
    }

    /// [`Self::run_perf`] recording into an explicit sink (see
    /// [`Self::run_availability_into`]).
    pub fn run_perf_into(
        &self,
        scenario: &Scenario,
        inject_failures: bool,
        sink: &dyn RecordSink,
    ) -> PerfResult {
        self.run_perf_observed_into(scenario, inject_failures, sink, None)
            .0
    }

    /// [`Self::run_perf_into`] with the engine probe surfaced (see
    /// [`Self::run_availability_observed_into`]).
    pub fn run_perf_observed_into(
        &self,
        scenario: &Scenario,
        inject_failures: bool,
        sink: &dyn RecordSink,
        extra: Option<&mut dyn Probe>,
    ) -> (PerfResult, RunTelemetry) {
        let model = Self::perf_model(scenario, inject_failures);
        let started = std::time::Instant::now();
        let (result, mut telemetry) = model.run_observed(scenario.seed, extra);
        telemetry.wall.wall_us = started.elapsed().as_micros() as u64;
        let mut record = Self::base_record(scenario, "perf")
            .metric(
                "tco_usd_per_year",
                self.cost.cost(&scenario.topology).tco_usd_per_year,
            )
            .telemetry(telemetry.clone());
        for t in &result.tenants {
            record = record
                .metric(format!("{}_p95_s", t.name), t.p95_s)
                .metric(format!("{}_p99_s", t.name), t.p99_s)
                .metric(format!("{}_throughput", t.name), t.throughput);
        }
        sink.record(record);
        (result, telemetry)
    }

    /// Runs the availability engine over `reps` independent replications
    /// (seeds derived from the scenario's) and returns the mean
    /// availability with an approximate 95% confidence half-width —
    /// availability under bursty failures is heavy-tailed across
    /// replications, so a single-run point estimate can be badly
    /// misleading (see EXPERIMENTS.md E10 notes).
    pub fn run_availability_replicated(
        &self,
        scenario: &Scenario,
        reps: usize,
    ) -> ReplicatedAvailability {
        self.run_availability_replicated_into(scenario, reps, &self.store)
    }

    /// [`Self::run_availability_replicated`] recording into an explicit
    /// sink (see [`Self::run_availability_into`]).
    pub fn run_availability_replicated_into(
        &self,
        scenario: &Scenario,
        reps: usize,
        sink: &dyn RecordSink,
    ) -> ReplicatedAvailability {
        assert!(
            reps >= 2,
            "confidence intervals need at least 2 replications"
        );
        let mut tally = wt_des::Tally::new();
        let mut results = Vec::with_capacity(reps);
        for rep in 0..reps {
            let s = scenario.with_seed(scenario.seed.wrapping_add(rep as u64 * 7919));
            let r = self.run_availability_into(&s, sink);
            tally.record(r.availability);
            results.push(r);
        }
        let interval = MeanInterval::from_tally(&tally);
        ReplicatedAvailability {
            mean_availability: interval.mean,
            half_width_95: interval.half_width_95,
            min_availability: tally.min(),
            max_availability: tally.max(),
            replications: results,
        }
    }

    /// Runs exactly the engines the SLA set needs and returns the verdict
    /// with cost attached — the unit of work a declarative query executes
    /// per configuration.
    pub fn assess(&self, scenario: &Scenario, slas: &SlaSet) -> Assessment {
        self.assess_into(scenario, slas, &self.store)
    }

    /// [`Self::assess`] recording into an explicit sink (see
    /// [`Self::run_availability_into`]).
    pub fn assess_into(
        &self,
        scenario: &Scenario,
        slas: &SlaSet,
        sink: &dyn RecordSink,
    ) -> Assessment {
        let availability = slas
            .needs_availability()
            .then(|| self.run_availability_into(scenario, sink));
        let perf = (slas.needs_perf() && !scenario.tenants.is_empty())
            .then(|| self.run_perf_into(scenario, false, sink));
        let violations = slas.violations(availability.as_ref(), perf.as_ref(), scenario.objects);
        Assessment {
            scenario: scenario.name.clone(),
            availability,
            perf,
            tco_usd_per_year: self.cost.cost(&scenario.topology).tco_usd_per_year,
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScenarioBuilder;
    use wt_workload::TenantWorkload;

    fn small() -> Scenario {
        ScenarioBuilder::new("small")
            .racks(1)
            .nodes_per_rack(10)
            .objects(300)
            .horizon_years(0.5)
            .seed(11)
            .build()
    }

    #[test]
    fn run_availability_records() {
        let tunnel = WindTunnel::new();
        let r = tunnel.run_availability(&small());
        assert!(r.availability > 0.9);
        assert_eq!(tunnel.store().len(), 1);
        let rec = tunnel.store().snapshot().pop().unwrap();
        assert_eq!(rec.experiment, "availability");
        assert!(rec.get_metric("availability").is_some());
        assert!(rec.get_metric("tco_usd_per_year").unwrap() > 0.0);
        // Every recorded run carries telemetry.
        let t = rec.telemetry.expect("telemetry attached");
        assert_eq!(t.events, r.sim_events);
        assert_eq!(t.stop_reason, "HorizonReached");
        assert!(t.wall.wall_us > 0, "runner measures wall time");
    }

    #[test]
    fn telemetry_sim_side_is_identical_across_repeats() {
        // The wall sub-struct is the only nondeterministic part: two runs
        // of the same scenario agree after mask_wall().
        let tunnel = WindTunnel::new();
        let (_, a) = tunnel.run_availability_observed_into(&small(), tunnel.store(), None);
        let (_, b) = tunnel.run_availability_observed_into(&small(), tunnel.store(), None);
        assert_eq!(a.masked(), b.masked());
    }

    #[test]
    fn run_perf_attaches_telemetry() {
        let tunnel = WindTunnel::new();
        let sc = ScenarioBuilder::new("perf-obs")
            .racks(1)
            .nodes_per_rack(10)
            .disk(wt_hw::catalog::ssd_sata_1t())
            .disks_per_node(4)
            .tenant(TenantWorkload::oltp("shop", 50.0, 1_000))
            .horizon_years(0.001)
            .build();
        tunnel.run_perf(&sc, false);
        let rec = tunnel.store().snapshot().pop().unwrap();
        let t = rec.telemetry.expect("telemetry attached");
        assert!(t.events > 0);
        assert!(t.events_by_label.contains_key("Arrival"));
    }

    #[test]
    fn recorded_runs_carry_sketch_telemetry() {
        let tunnel = WindTunnel::new();
        // Availability engine: rebuild sketches + distinct objects.
        let mut sc = small();
        sc.topology.node.ttf = wt_dist::Dist::exponential_mean(15.0 * 86_400.0);
        tunnel.run_availability(&sc);
        let rec = tunnel.store().snapshot().pop().unwrap();
        let set = rec
            .telemetry
            .expect("telemetry attached")
            .sketches
            .expect("sketches attached");
        assert!(set.values["rebuild_wait_s"].count() > 0);
        assert!(set.values.contains_key("rebuild_duration_s"));
        assert!(!set.distincts["objects_rebuilt"].is_empty());

        // Perf engine: request latency sketch + distinct keys.
        let psc = ScenarioBuilder::new("perf-sketch")
            .racks(1)
            .nodes_per_rack(10)
            .disk(wt_hw::catalog::ssd_sata_1t())
            .disks_per_node(4)
            .tenant(TenantWorkload::oltp("shop", 50.0, 1_000))
            .horizon_years(0.001)
            .build();
        let r = tunnel.run_perf(&psc, false);
        let rec = tunnel.store().snapshot().pop().unwrap();
        let set = rec.telemetry.unwrap().sketches.expect("sketches attached");
        let lat = &set.values["request_latency_s"];
        assert_eq!(lat.count(), r.tenants[0].completed);
        // The sketch the telemetry carries is the same one TenantPerf's
        // sketch percentiles come from.
        assert_eq!(Some(lat.p99()), r.tenants[0].sketch_p99_s);
        assert!(!set.distincts["request_keys"].is_empty());
    }

    #[test]
    fn sketch_telemetry_is_worker_count_invariant() {
        // A sketch-bearing sweep — observed availability runs recorded
        // through farm shards — must merge to bitwise-identical records
        // and exposition text for any worker count. Only the wall-clock
        // sub-struct may differ (masked below).
        use crate::farm::Farm;
        use crate::sweep::{SweepRunner, SweepSpec};
        use wt_store::SharedStore;
        let run = |workers: usize| {
            let store = SharedStore::new();
            let spec = SweepSpec::new("wc-sketch")
                .axis("ttf_days", [20.0, 45.0])
                .replications(2)
                .seed(7);
            SweepRunner::new(Farm::new(workers)).run(&spec, &store, |point, rep, sink| {
                let mut sc = ScenarioBuilder::new("wc-sketch")
                    .racks(1)
                    .nodes_per_rack(10)
                    .objects(200)
                    .horizon_years(0.25)
                    .seed(rep.seed)
                    .build();
                sc.topology.node.ttf =
                    wt_dist::Dist::exponential_mean(point.axis_num("ttf_days") * 86_400.0);
                let tunnel = WindTunnel::new();
                let (r, _t) = tunnel.run_availability_observed_into(&sc, sink, None);
                [("availability".to_string(), r.availability)].into()
            });
            let exposition = store.metrics_snapshot().render();
            let mut records = store.snapshot();
            for rec in &mut records {
                if let Some(t) = &mut rec.telemetry {
                    t.mask_wall();
                }
            }
            (exposition, records)
        };
        let (gold_text, gold_records) = run(1);
        assert!(
            gold_records
                .iter()
                .any(|r| r.telemetry.as_ref().is_some_and(|t| t.sketches.is_some())),
            "sweep must actually produce sketch-bearing telemetry"
        );
        for workers in [4, 8] {
            let (text, records) = run(workers);
            assert_eq!(text, gold_text, "exposition diverged at {workers} workers");
            assert_eq!(
                records, gold_records,
                "records diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn run_perf_records_per_tenant_metrics() {
        let tunnel = WindTunnel::new();
        let sc = ScenarioBuilder::new("perf")
            .racks(1)
            .nodes_per_rack(10)
            .disk(wt_hw::catalog::ssd_sata_1t())
            .disks_per_node(4)
            .tenant(TenantWorkload::oltp("shop", 50.0, 1_000))
            .horizon_years(0.001)
            .build();
        let r = tunnel.run_perf(&sc, false);
        assert_eq!(r.tenants.len(), 1);
        let rec = tunnel.store().snapshot().pop().unwrap();
        assert!(rec.get_metric("shop_p95_s").is_some());
    }

    #[test]
    fn assess_runs_only_needed_engines() {
        let tunnel = WindTunnel::new();
        let slas = SlaSet::new().availability(0.9);
        let a = tunnel.assess(&small(), &slas);
        assert!(a.availability.is_some());
        assert!(a.perf.is_none());
        assert!(a.tco_usd_per_year > 0.0);
    }

    #[test]
    fn assess_flags_violations() {
        let tunnel = WindTunnel::new();
        // An impossible availability floor.
        let slas = SlaSet::new().availability(1.1_f64.min(1.0));
        let mut sc = small();
        // Make failures certain to dent availability.
        sc.topology.node.ttf = wt_dist::Dist::exponential_mean(86_400.0 * 5.0);
        sc.repair = wt_sw::RepairPolicy {
            max_parallel: 1,
            bandwidth_share: 0.1,
            detection_delay_s: 3600.0,
        };
        let a = tunnel.assess(&sc, &slas);
        assert!(!a.passes(), "availability {:?}", a.availability);
    }

    #[test]
    fn empty_sla_passes_without_running_engines() {
        let tunnel = WindTunnel::new();
        let a = tunnel.assess(&small(), &SlaSet::new());
        assert!(a.passes());
        assert!(a.availability.is_none() && a.perf.is_none());
        assert_eq!(tunnel.store().len(), 0);
    }

    #[test]
    fn replicated_availability_reports_uncertainty() {
        let tunnel = WindTunnel::new();
        let mut sc = small();
        sc.topology.node.ttf = wt_dist::Dist::weibull_mean(0.8, 30.0 * 86_400.0);
        let r = tunnel.run_availability_replicated(&sc, 5);
        assert_eq!(r.replications.len(), 5);
        assert!(r.half_width_95 >= 0.0);
        assert!((0.0..=1.0).contains(&r.mean_availability));
        assert!(r.min_availability <= r.mean_availability);
        assert!(r.mean_availability <= r.max_availability);
        // All five runs were recorded.
        assert_eq!(tunnel.store().len(), 5);
        // An absurd floor is confidently missed; a trivial one is met.
        assert!(!r.confidently_meets(1.1_f64.min(1.0 + 1e-9)));
        assert!(r.confidently_meets(0.0));
    }

    #[test]
    fn degenerate_confidence_interval_never_passes() {
        let tunnel = WindTunnel::new();
        let base = tunnel.run_availability_replicated(&small(), 2);
        assert!(base.confidently_meets(0.0), "sane interval passes");

        // 0 or 1 replications: no variance estimate, no confidence —
        // even a perfect mean with zero half-width must fail.
        let mut degenerate = base.clone();
        degenerate.mean_availability = 1.0;
        degenerate.half_width_95 = 0.0;
        degenerate.replications.truncate(1);
        assert!(!degenerate.confidently_meets(0.999));
        degenerate.replications.clear();
        assert!(!degenerate.confidently_meets(0.0));

        // A NaN half-width (pathological variance) must fail, not pass.
        let mut poisoned = base.clone();
        poisoned.half_width_95 = f64::NAN;
        assert!(!poisoned.confidently_meets(0.0));
        poisoned.half_width_95 = f64::INFINITY;
        assert!(!poisoned.confidently_meets(0.0));
        // The same guard applies to the failing direction: a degenerate
        // interval can't confidently fail anything either.
        assert!(!poisoned.confidently_fails(1.0));
    }

    #[test]
    fn mean_interval_resolves_both_directions() {
        let mut tally = wt_des::Tally::new();
        for x in [0.90, 0.92, 0.91, 0.93] {
            tally.record(x);
        }
        let iv = MeanInterval::from_tally(&tally);
        assert_eq!(iv.n, 4);
        assert!(iv.half_width_95 > 0.0);
        // Far bounds resolve confidently on the right side.
        assert!(iv.confidently_at_least(0.5) && iv.confidently_above(0.5));
        assert!(iv.confidently_at_most(0.99) && iv.confidently_below(0.99));
        // A bound inside the interval resolves neither way.
        assert!(!iv.confidently_at_least(iv.mean));
        assert!(!iv.confidently_at_most(iv.mean - 1e-12));
        // Degenerate intervals resolve nothing.
        let bad = MeanInterval {
            mean: 1.0,
            half_width_95: f64::NAN,
            n: 4,
        };
        assert!(!bad.confidently_at_least(0.0) && !bad.confidently_at_most(2.0));
        let single = MeanInterval {
            mean: 1.0,
            half_width_95: 0.0,
            n: 1,
        };
        assert!(!single.confidently_at_least(0.0));
    }

    #[test]
    fn t_quantile_matches_table_and_tail() {
        assert!((t_quantile_975(1) - 12.706).abs() < 1e-9);
        assert!((t_quantile_975(4) - 2.776).abs() < 1e-9);
        assert!((t_quantile_975(30) - 2.042).abs() < 1e-9);
        assert!((t_quantile_975(31) - 1.96).abs() < 1e-9);
        // Monotone decreasing toward the normal quantile.
        for df in 1..40 {
            assert!(t_quantile_975(df) >= t_quantile_975(df + 1));
        }
    }

    #[test]
    fn confidently_fails_is_the_dual_of_meets() {
        let tunnel = WindTunnel::new();
        let mut sc = small();
        // Guarantee real unavailability so the interval sits well below 1.
        sc.topology.node.ttf = wt_dist::Dist::weibull_mean(0.8, 10.0 * 86_400.0);
        sc.repair.detection_delay_s = 5.0 * 86_400.0;
        let r = tunnel.run_availability_replicated(&sc, 4);
        // An unreachable floor is confidently failed, a trivial one is not.
        assert!(r.confidently_fails(1.0 - 1e-12) || r.mean_availability >= 1.0 - 1e-9);
        assert!(!r.confidently_fails(0.0));
        // meets and fails can never both hold for the same floor.
        for floor in [0.0, 0.9, 0.99, 0.999, 1.0] {
            assert!(!(r.confidently_meets(floor) && r.confidently_fails(floor)));
        }
    }

    #[test]
    fn switch_failures_flow_through_the_scenario() {
        let mut sc = ScenarioBuilder::new("sw")
            .racks(3)
            .nodes_per_rack(10)
            .objects(200)
            .switch_failures(true)
            .horizon_years(2.0)
            .seed(13)
            .build();
        // Make ToR outages frequent enough to observe.
        sc.topology.tor.ttf = wt_dist::Dist::exponential_mean(30.0 * 86_400.0);
        let tunnel = WindTunnel::new();
        let r = tunnel.run_availability(&sc);
        assert!(
            r.switch_failures > 10,
            "switch failures: {}",
            r.switch_failures
        );
        // Off by default.
        let mut calm = sc.clone();
        calm.switch_failures = false;
        let rc = tunnel.run_availability(&calm);
        assert_eq!(rc.switch_failures, 0);
        assert!(rc.availability >= r.availability);
    }

    #[test]
    fn adaptive_backend_reaches_the_derived_models() {
        use wt_des::QueueBackend;
        // Small scenario, no explicit queue: both engines keep the heap.
        let sc = small();
        assert_eq!(sc.queue, None);
        assert_eq!(
            WindTunnel::availability_model(&sc).queue,
            QueueBackend::Heap
        );
        assert_eq!(WindTunnel::perf_model(&sc, false).queue, QueueBackend::Heap);

        // Scale past the adaptive threshold: the inferred calendar backend
        // lands in the derived model (and from there into telemetry).
        let mut big = small();
        big.topology.racks = 600;
        assert_eq!(
            WindTunnel::availability_model(&big).queue,
            QueueBackend::Calendar
        );
        assert_eq!(
            WindTunnel::perf_model(&big, false).queue,
            QueueBackend::Calendar
        );

        // An explicit choice is never overridden.
        big.queue = Some(QueueBackend::Heap);
        assert_eq!(
            WindTunnel::availability_model(&big).queue,
            QueueBackend::Heap
        );
    }

    #[test]
    fn partitioned_availability_records_and_matches_serial_oracle() {
        let tunnel = WindTunnel::new();
        let sc = ScenarioBuilder::new("part")
            .racks(6)
            .nodes_per_rack(8)
            .objects(300)
            .horizon_years(0.25)
            .seed(23)
            .build();
        // The serial oracle (1 partition) and a 3-partition run agree on
        // the result and on everything partitioning-invariant in the
        // telemetry (events, labels); queue-depth gauges and sketch f64
        // sums are partitioning-dependent by construction.
        let (oracle, to) = tunnel.run_availability_partitioned_into(&sc, 1, 1, tunnel.store());
        let (split, ts) = tunnel.run_availability_partitioned_into(&sc, 3, 2, tunnel.store());
        assert_eq!(oracle, split);
        assert_eq!(to.events, ts.events);
        assert_eq!(to.events_by_label, ts.events_by_label);
        // Partitioned runs carry per-partition event marks that sum to
        // the total.
        let part_total: u64 = ts
            .marks
            .iter()
            .filter(|(k, _)| k.starts_with("partition/"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(part_total, ts.events);
        // Both runs were recorded under the partitioned experiment name
        // with the partition count as a param.
        let recs = tunnel.store().snapshot();
        assert_eq!(recs.len(), 2);
        for (rec, parts) in recs.iter().zip([1.0, 3.0]) {
            assert_eq!(rec.experiment, "availability_partitioned");
            assert_eq!(
                rec.params.get("partitions"),
                Some(&wt_store::ParamValue::Num(parts))
            );
            assert!(rec.get_metric("availability").is_some());
            assert!(rec.telemetry.is_some());
        }
    }

    #[test]
    fn partitioned_model_mapping_mirrors_serial() {
        let sc = small();
        let serial = WindTunnel::availability_model(&sc);
        let m = WindTunnel::partitioned_availability_model(&sc);
        assert_eq!(m.racks * m.nodes_per_rack, serial.n_nodes);
        assert_eq!(m.replication, serial.redundancy.width());
        assert_eq!(m.objects, serial.objects);
        assert_eq!(m.rebuild, serial.rebuild);
        assert_eq!(m.queue, serial.queue);
        assert_eq!(m.wire_latency_s, sc.topology.min_cross_latency_s());
        assert!(m.lookahead_s() >= m.wire_latency_s);
    }

    #[test]
    fn availability_model_mapping() {
        let sc = small();
        let m = WindTunnel::availability_model(&sc);
        assert_eq!(m.n_nodes, 10);
        assert_eq!(m.objects, 300);
        match m.rebuild {
            RebuildModel::Bandwidth { link_gbps, .. } => assert_eq!(link_gbps, 10.0),
            _ => panic!("expected bandwidth rebuild"),
        }
    }
}
