//! Fluent scenario construction with sensible catalog defaults.

use wt_cluster::{FaultSchedule, Scenario};
use wt_des::QueueBackend;
use wt_hw::{catalog, DiskSpec, LimpwareSpec, NicSpec, SwitchSpec, TopologySpec};
use wt_sw::{Placement, RedundancyScheme, RepairPolicy};
use wt_workload::TenantWorkload;

/// Builds a [`Scenario`] step by step. Every knob has a production-shaped
/// default: 10G network, 12×4 TB HDDs per node, 3-way majority-quorum
/// replication, random placement, serial repair, 10,000 objects of 1 GB.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    racks: usize,
    nodes_per_rack: usize,
    disk: DiskSpec,
    disks_per_node: usize,
    nic: NicSpec,
    tor: SwitchSpec,
    agg: SwitchSpec,
    oversubscription: f64,
    memory_gb: f64,
    redundancy: RedundancyScheme,
    placement: Placement,
    repair: RepairPolicy,
    objects: u64,
    object_bytes: u64,
    tenants: Vec<TenantWorkload>,
    limpware: Option<LimpwareSpec>,
    switch_failures: bool,
    disk_failures: bool,
    horizon_years: f64,
    seed: u64,
    queue: Option<QueueBackend>,
    faults: Option<FaultSchedule>,
}

impl ScenarioBuilder {
    /// A builder with the defaults described on the type.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioBuilder {
            name: name.into(),
            racks: 1,
            nodes_per_rack: 10,
            disk: catalog::hdd_7200_4t(),
            disks_per_node: 12,
            nic: catalog::nic_10g(),
            tor: catalog::switch_tor_48x10g(),
            agg: catalog::switch_agg_32x40g(),
            oversubscription: 4.0,
            memory_gb: 64.0,
            redundancy: RedundancyScheme::replication(3),
            placement: Placement::Random,
            repair: RepairPolicy::serial(),
            objects: 10_000,
            object_bytes: 1 << 30,
            tenants: Vec::new(),
            limpware: None,
            switch_failures: false,
            disk_failures: false,
            horizon_years: 1.0,
            seed: 42,
            queue: None,
            faults: None,
        }
    }

    /// Number of racks.
    pub fn racks(mut self, racks: usize) -> Self {
        self.racks = racks;
        self
    }

    /// Servers per rack.
    pub fn nodes_per_rack(mut self, n: usize) -> Self {
        self.nodes_per_rack = n;
        self
    }

    /// Disk model for every node.
    pub fn disk(mut self, disk: DiskSpec) -> Self {
        self.disk = disk;
        self
    }

    /// Disks per node.
    pub fn disks_per_node(mut self, n: usize) -> Self {
        self.disks_per_node = n;
        self
    }

    /// NIC model for every node.
    pub fn nic(mut self, nic: NicSpec) -> Self {
        self.nic = nic;
        self
    }

    /// Top-of-rack switch model.
    pub fn tor(mut self, tor: SwitchSpec) -> Self {
        self.tor = tor;
        self
    }

    /// ToR uplink oversubscription factor.
    pub fn oversubscription(mut self, factor: f64) -> Self {
        self.oversubscription = factor;
        self
    }

    /// DRAM per node, GB (the E4 provisioning axis).
    pub fn memory_gb(mut self, gb: f64) -> Self {
        self.memory_gb = gb;
        self
    }

    /// n-way majority-quorum replication.
    pub fn replication(mut self, n: usize) -> Self {
        self.redundancy = RedundancyScheme::replication(n);
        self
    }

    /// RS(k, m) erasure coding.
    pub fn erasure(mut self, k: usize, m: usize) -> Self {
        self.redundancy = RedundancyScheme::erasure(k, m);
        self
    }

    /// Explicit redundancy scheme.
    pub fn redundancy(mut self, scheme: RedundancyScheme) -> Self {
        self.redundancy = scheme;
        self
    }

    /// Placement policy.
    pub fn placement(mut self, p: Placement) -> Self {
        self.placement = p;
        self
    }

    /// Repair policy.
    pub fn repair(mut self, r: RepairPolicy) -> Self {
        self.repair = r;
        self
    }

    /// Number of customer objects.
    pub fn objects(mut self, n: u64) -> Self {
        self.objects = n;
        self
    }

    /// Object size in bytes.
    pub fn object_bytes(mut self, bytes: u64) -> Self {
        self.object_bytes = bytes;
        self
    }

    /// Object size in GB.
    pub fn object_gb(mut self, gb: f64) -> Self {
        self.object_bytes = (gb * (1u64 << 30) as f64) as u64;
        self
    }

    /// Adds a tenant workload.
    pub fn tenant(mut self, t: TenantWorkload) -> Self {
        self.tenants.push(t);
        self
    }

    /// Injects limpware.
    pub fn limpware(mut self, spec: LimpwareSpec) -> Self {
        self.limpware = Some(spec);
        self
    }

    /// Enables correlated rack outages (ToR switch failures, reliability
    /// from the ToR spec in the catalog).
    pub fn switch_failures(mut self, on: bool) -> Self {
        self.switch_failures = on;
        self
    }

    /// Enables per-disk failures (reliability from the disk spec) on top
    /// of whole-node failures.
    pub fn disk_failures(mut self, on: bool) -> Self {
        self.disk_failures = on;
        self
    }

    /// Simulation horizon in years.
    pub fn horizon_years(mut self, years: f64) -> Self {
        self.horizon_years = years;
        self
    }

    /// Root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Future-event-list backend for the engines. Affects wall-clock time
    /// only — results are bitwise-identical across backends.
    pub fn queue(mut self, backend: QueueBackend) -> Self {
        self.queue = Some(backend);
        self
    }

    /// Declarative chaos: a schedule of typed fault injections the engines
    /// compile into deterministic scheduled events.
    pub fn faults(mut self, schedule: FaultSchedule) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// Assembles the scenario (validates the topology).
    pub fn build(self) -> Scenario {
        let node =
            catalog::node_with_memory(self.disk, self.disks_per_node, self.nic, self.memory_gb);
        let topology = TopologySpec {
            racks: self.racks,
            nodes_per_rack: self.nodes_per_rack,
            node,
            tor: self.tor,
            agg: self.agg,
            oversubscription: self.oversubscription,
        };
        // Validate early: building the topology checks port counts etc.
        let _ = topology.build();
        assert!(
            self.redundancy.width() <= topology.node_count(),
            "redundancy width {} exceeds cluster size {}",
            self.redundancy.width(),
            topology.node_count()
        );
        Scenario {
            name: self.name,
            topology,
            redundancy: self.redundancy,
            placement: self.placement,
            repair: self.repair,
            objects: self.objects,
            object_bytes: self.object_bytes,
            tenants: self.tenants,
            limpware: self.limpware,
            switch_failures: self.switch_failures,
            disk_failures: self.disk_failures,
            horizon_years: self.horizon_years,
            seed: self.seed,
            queue: self.queue,
            faults: self.faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_valid_scenario() {
        let s = ScenarioBuilder::new("d").build();
        assert_eq!(s.topology.node_count(), 10);
        assert_eq!(s.redundancy.width(), 3);
        assert_eq!(s.objects, 10_000);
        assert_eq!(s.topology.node.disks.len(), 12);
    }

    #[test]
    fn knobs_propagate() {
        let s = ScenarioBuilder::new("k")
            .racks(3)
            .nodes_per_rack(8)
            .disk(catalog::ssd_sata_1t())
            .disks_per_node(4)
            .nic(catalog::nic_40g())
            .memory_gb(256.0)
            .erasure(6, 3)
            .placement(Placement::RoundRobin)
            .repair(RepairPolicy::parallel(8))
            .objects(123)
            .object_gb(2.0)
            .horizon_years(0.5)
            .seed(9)
            .queue(QueueBackend::Calendar)
            .build();
        assert_eq!(s.topology.racks, 3);
        assert_eq!(s.topology.node.disks[0].name, "ssd-sata-1t");
        assert_eq!(s.topology.node.nic.name, "nic-40g");
        assert_eq!(s.topology.node.mem.capacity_gb, 256.0);
        assert_eq!(s.redundancy.width(), 9);
        assert_eq!(s.placement, Placement::RoundRobin);
        assert_eq!(s.repair.max_parallel, 8);
        assert_eq!(s.objects, 123);
        assert_eq!(s.object_bytes, 2 << 30);
        assert_eq!(s.horizon_years, 0.5);
        assert_eq!(s.seed, 9);
        assert_eq!(s.queue_backend(), QueueBackend::Calendar);
    }

    #[test]
    fn queue_backend_defaults_to_heap() {
        let s = ScenarioBuilder::new("q").build();
        assert_eq!(s.queue, None);
        assert_eq!(s.queue_backend(), QueueBackend::Heap);
    }

    #[test]
    #[should_panic(expected = "exceeds cluster size")]
    fn overwide_redundancy_rejected() {
        let _ = ScenarioBuilder::new("bad")
            .racks(1)
            .nodes_per_rack(5)
            .erasure(10, 4)
            .build();
    }

    #[test]
    fn tenants_accumulate() {
        let s = ScenarioBuilder::new("t")
            .tenant(TenantWorkload::oltp("a", 10.0, 100))
            .tenant(TenantWorkload::analytics("b", 1.0, 10))
            .build();
        assert_eq!(s.tenants.len(), 2);
    }
}
