//! The run farm: a deterministic parallel executor for simulation runs.
//!
//! Every entry point that sweeps a set of runs — the figure binaries, the
//! experiment (`e*`) binaries, and the WTQL executor — funnels through
//! [`Farm`] instead of hand-rolling a thread pool. The farm guarantees a
//! property the bespoke pools could not: **results are bitwise-identical
//! regardless of worker count or scheduling**, because
//!
//! 1. every run's RNG seed is derived from the *item index* alone (a
//!    splitmix64 substream of the root seed, see [`substream_seed`]), not
//!    from which worker picks the item up, and
//! 2. per-run results are folded **in item order**: workers stream
//!    `(index, result)` pairs to the caller, which holds a small reorder
//!    buffer and applies the fold callback strictly at the next expected
//!    index — a streaming merge, with no `Vec<RunResult>` barrier and no
//!    lock around the aggregate.
//!
//! Work distribution is chunked self-scheduling: idle workers claim the
//! next fixed-size chunk of indices from a shared atomic cursor, so a
//! worker that lands a cheap chunk immediately steals more work instead
//! of idling behind a static partition. Chunk boundaries depend only on
//! the item count, never on the worker count.
//!
//! ```
//! use windtunnel::farm::Farm;
//!
//! let farm = Farm::new(4);
//! let squares = farm.run(42, &[1u64, 2, 3, 4, 5], |&x, _ctx| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use wt_store::{SharedStore, StoreShard};

/// Per-run context handed to the work closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunCtx {
    /// This run's position in the item slice (also the fold order).
    pub index: usize,
    /// This run's RNG seed: a substream of the farm call's root seed,
    /// derived from `index` alone so scheduling cannot perturb it.
    pub seed: u64,
}

/// Derives the seed for run `index` from `root`: both words pass through
/// splitmix64 finalizers, so adjacent indices (and adjacent roots) land on
/// uncorrelated streams. Matches the engine convention of one independent
/// RNG substream per run.
pub fn substream_seed(root: u64, index: u64) -> u64 {
    mix64(root ^ mix64(index.wrapping_add(0x9e37_79b9_7f4a_7c15)))
}

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A parallel run executor with a fixed worker count.
#[derive(Debug, Clone)]
pub struct Farm {
    workers: usize,
    heartbeat: bool,
}

impl Default for Farm {
    /// A farm sized to the host (`from_env`).
    fn default() -> Self {
        Farm::from_env()
    }
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Farm {
    /// A farm with `workers` threads (0 is clamped to 1).
    pub fn new(workers: usize) -> Self {
        Farm {
            workers: workers.max(1),
            heartbeat: false,
        }
    }

    /// A single-threaded farm (runs on the caller's thread).
    pub fn serial() -> Self {
        Farm::new(1)
    }

    /// Worker count from the `WT_WORKERS` environment variable when set,
    /// otherwise the host's available parallelism. A set-but-unusable
    /// value (non-numeric, or `0`) falls back to the host count and warns
    /// once on stderr instead of being silently swallowed — the shared
    /// [`crate::knobs`] behavior, mirrored by `WT_PARTITIONS`. Setting
    /// `WT_PROGRESS` (to anything but `0`) additionally turns on the
    /// [heartbeat](Self::with_heartbeat).
    pub fn from_env() -> Self {
        let workers = crate::knobs::env_count("WT_WORKERS", "worker", "host parallelism")
            .unwrap_or_else(host_parallelism);
        let progress = std::env::var("WT_PROGRESS").is_ok_and(|v| v != "0");
        Farm::new(workers).with_heartbeat(progress)
    }

    /// Enables (or disables) the stderr progress heartbeat: roughly one
    /// line per second from the fold thread — runs done/total, rate, ETA.
    /// Purely observational: workers never see it and result bytes are
    /// unaffected (see `heartbeat_does_not_change_results`).
    pub fn with_heartbeat(mut self, on: bool) -> Self {
        self.heartbeat = on;
        self
    }

    /// Number of worker threads this farm uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether the stderr progress heartbeat is enabled. Execution paths
    /// that schedule work themselves (the guided sweep runner) read this
    /// to decide whether to drive their own [`wt_obs::Heartbeat`].
    pub fn heartbeat_enabled(&self) -> bool {
        self.heartbeat
    }

    /// Runs `work` over every item and collects the results in item order.
    ///
    /// `root_seed` seeds each run's [`RunCtx::seed`] substream. The output
    /// is bitwise-identical for any worker count.
    pub fn run<T, R, F>(&self, root_seed: u64, items: &[T], work: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T, RunCtx) -> R + Sync,
    {
        let acc = Vec::with_capacity(items.len());
        self.run_fold(root_seed, items, work, acc, |mut v, _idx, r| {
            v.push(r);
            v
        })
    }

    /// Runs `work` over every item with a private [`StoreShard`] per run,
    /// merging each shard into `store` **in item order** as results
    /// stream in — the lock-free recording path.
    ///
    /// Workers never touch the shared store: every record a run emits is
    /// a plain `Vec` push into its own shard, and the fold thread merges
    /// shards (one `SharedStore` lock acquisition per run, uncontended)
    /// strictly at the next expected index. Record ids and snapshot
    /// order in `store` are therefore bitwise-identical for any worker
    /// count, exactly like the run results themselves.
    ///
    /// ```
    /// use windtunnel::farm::Farm;
    /// use wt_store::{RecordSink, RunRecord, SharedStore};
    ///
    /// let store = SharedStore::new();
    /// let items: Vec<u64> = (0..10).collect();
    /// let out = Farm::new(4).run_recorded(7, &items, &store, |&x, ctx, shard| {
    ///     shard.record(RunRecord::new("sweep", ctx.seed).metric("x", x as f64));
    ///     x * 2
    /// });
    /// assert_eq!(out.len(), 10);
    /// // Ids follow item order regardless of which worker ran what.
    /// let ids: Vec<u64> = store.snapshot().iter().map(|r| r.id).collect();
    /// assert_eq!(ids, (0..10).collect::<Vec<_>>());
    /// ```
    pub fn run_recorded<T, R, F>(
        &self,
        root_seed: u64,
        items: &[T],
        store: &SharedStore,
        work: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T, RunCtx, &StoreShard) -> R + Sync,
    {
        let results = Vec::with_capacity(items.len());
        self.run_fold_with(
            root_seed,
            items,
            |item, ctx| {
                let shard = StoreShard::new();
                let result = work(item, ctx, &shard);
                (result, shard)
            },
            results,
            |mut v, _idx, (result, shard)| {
                store.merge_shard(shard);
                v.push(result);
                v
            },
            // Recorded runs carry telemetry, so the heartbeat (when on)
            // skims event counts and per-run wall time off each shard
            // before it merges — the progress line gains cumulative ev/s
            // and a p99 run time, plus per-partition event totals when
            // runs are partitioned. Stderr only; result bytes unaffected.
            |(_, shard), beat| {
                shard.peek(|r| {
                    if let Some(t) = &r.telemetry {
                        beat.observe_run(t.events, t.wall.wall_us);
                        observe_partition_marks(beat, &t.marks);
                    }
                });
            },
        )
    }

    /// Runs `work` over every item, folding each result into `init` **in
    /// item order** as results stream in (no barrier: the fold for item
    /// `i` runs as soon as items `0..=i` have all completed, while later
    /// items are still executing).
    ///
    /// The fold runs on the calling thread, so the accumulator needs no
    /// synchronization; combined with index-derived seeds this makes the
    /// final accumulator bitwise-identical for any worker count.
    pub fn run_fold<T, R, A, F, G>(
        &self,
        root_seed: u64,
        items: &[T],
        work: F,
        init: A,
        fold: G,
    ) -> A
    where
        T: Sync,
        R: Send,
        F: Fn(&T, RunCtx) -> R + Sync,
        G: FnMut(A, usize, R) -> A,
    {
        self.run_fold_with(root_seed, items, work, init, fold, |_, _| {})
    }

    /// [`Farm::run_fold`] with a heartbeat observer: when the heartbeat
    /// is enabled, `observe` sees each result on the fold thread (in
    /// item order, just before `fold` consumes it) and can feed run
    /// telemetry into the [`wt_obs::Heartbeat`]. With the heartbeat off,
    /// `observe` is never called.
    fn run_fold_with<T, R, A, F, G, O>(
        &self,
        root_seed: u64,
        items: &[T],
        work: F,
        init: A,
        mut fold: G,
        mut observe: O,
    ) -> A
    where
        T: Sync,
        R: Send,
        F: Fn(&T, RunCtx) -> R + Sync,
        G: FnMut(A, usize, R) -> A,
        O: FnMut(&R, &mut wt_obs::Heartbeat),
    {
        let n = items.len();
        let ctx = |index: usize| RunCtx {
            index,
            seed: substream_seed(root_seed, index as u64),
        };
        // Heartbeat lives on the fold/caller thread only: workers cannot
        // see it, and it writes to stderr, so result bytes are unaffected.
        let mut beat = self.heartbeat.then(|| wt_obs::Heartbeat::start(n));
        let mut pulse = move |r: &R| {
            if let Some(b) = beat.as_mut() {
                observe(r, b);
                if let Some(line) = b.tick() {
                    eprintln!("{line}");
                }
            }
        };
        if self.workers == 1 || n <= 1 {
            let mut acc = init;
            for (i, item) in items.iter().enumerate() {
                let result = work(item, ctx(i));
                pulse(&result);
                acc = fold(acc, i, result);
            }
            return acc;
        }

        let chunk = chunk_size(n);
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        // `Option` dance: the scope closure mutably captures the
        // accumulator but must move it through the fold callback.
        let mut acc = Some(init);
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                let tx = tx.clone();
                let cursor = &cursor;
                let work = &work;
                scope.spawn(move || loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        return;
                    }
                    let end = (start + chunk).min(n);
                    for (i, item) in items.iter().enumerate().take(end).skip(start) {
                        let result = work(item, ctx(i));
                        if tx.send((i, result)).is_err() {
                            return; // receiver gone: caller is unwinding
                        }
                    }
                });
            }
            drop(tx); // the receive loop ends when the last worker exits

            let mut pending: BTreeMap<usize, R> = BTreeMap::new();
            let mut next = 0usize;
            for (i, result) in rx {
                pending.insert(i, result);
                while let Some(ready) = pending.remove(&next) {
                    pulse(&ready);
                    let a = acc.take().expect("accumulator in flight");
                    acc = Some(fold(a, next, ready));
                    next += 1;
                }
            }
            assert_eq!(next, n, "farm lost {} result(s)", n - next);
        });
        acc.expect("accumulator present after scope")
    }
}

/// Chunk size for self-scheduling: a pure function of the item count so
/// chunk boundaries never depend on worker count. Small enough to balance
/// uneven run times, large enough to keep cursor traffic negligible.
fn chunk_size(n: usize) -> usize {
    (n / 64).clamp(1, 32)
}

/// Feeds a partitioned run's `partition/<i>` telemetry marks into the
/// heartbeat as per-partition event totals. Indices are parsed
/// numerically — the marks map is ordered by string, which would put
/// `partition/10` before `partition/2`. Runs without partition marks
/// (serial execution) feed nothing and leave the progress line as is.
fn observe_partition_marks(beat: &mut wt_obs::Heartbeat, marks: &BTreeMap<String, u64>) {
    let mut per_part: Vec<u64> = Vec::new();
    for (key, &events) in marks {
        let Some(idx) = key
            .strip_prefix("partition/")
            .and_then(|i| i.parse::<usize>().ok())
        else {
            continue;
        };
        if per_part.len() <= idx {
            per_part.resize(idx + 1, 0);
        }
        per_part[idx] = events;
    }
    if !per_part.is_empty() {
        beat.observe_partitions(&per_part);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn collects_in_item_order() {
        let items: Vec<u64> = (0..500).collect();
        let farm = Farm::new(8);
        let out = farm.run(7, &items, |&x, _| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn identical_results_for_any_worker_count() {
        let items: Vec<u64> = (0..200).collect();
        let gold = Farm::new(1).run(99, &items, |&x, ctx| {
            (ctx.index, ctx.seed, x.wrapping_mul(ctx.seed))
        });
        for workers in [2, 3, 8] {
            let got = Farm::new(workers).run(99, &items, |&x, ctx| {
                (ctx.index, ctx.seed, x.wrapping_mul(ctx.seed))
            });
            assert_eq!(got, gold, "worker count {workers} diverged");
        }
    }

    #[test]
    fn fold_sees_indices_in_order_without_barrier() {
        let items: Vec<u64> = (0..300).collect();
        let farm = Farm::new(4);
        let seen = farm.run_fold(
            0,
            &items,
            |&x, _| x,
            Vec::new(),
            |mut seen: Vec<usize>, idx, _| {
                seen.push(idx);
                seen
            },
        );
        assert_eq!(seen, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_are_index_derived_and_distinct() {
        let a = substream_seed(1, 0);
        let b = substream_seed(1, 1);
        let c = substream_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stable across calls.
        assert_eq!(a, substream_seed(1, 0));
    }

    #[test]
    fn all_items_executed_exactly_once() {
        let hits = AtomicU64::new(0);
        let items: Vec<u64> = (0..1000).collect();
        Farm::new(6).run(3, &items, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn recorded_run_ids_are_worker_independent() {
        use wt_store::{RecordSink, RunRecord, SharedStore};
        let items: Vec<u64> = (0..100).collect();
        let gold_store = SharedStore::new();
        let gold = Farm::new(1).run_recorded(5, &items, &gold_store, |&x, ctx, shard| {
            // Variable record count per run: exercises merge alignment.
            for rep in 0..=(x % 3) {
                shard.record(
                    RunRecord::new("farm-test", ctx.seed)
                        .param("x", x as f64)
                        .metric("rep", rep as f64),
                );
            }
            x
        });
        let gold_snap = gold_store.snapshot();
        for workers in [4, 8] {
            let store = SharedStore::new();
            let out = Farm::new(workers).run_recorded(5, &items, &store, |&x, ctx, shard| {
                for rep in 0..=(x % 3) {
                    shard.record(
                        RunRecord::new("farm-test", ctx.seed)
                            .param("x", x as f64)
                            .metric("rep", rep as f64),
                    );
                }
                x
            });
            assert_eq!(out, gold, "results diverged at {workers} workers");
            assert_eq!(
                store.snapshot(),
                gold_snap,
                "record ids/order diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn empty_and_single_item() {
        let farm = Farm::new(4);
        let empty: Vec<u64> = Vec::new();
        assert!(farm.run(0, &empty, |&x, _| x).is_empty());
        assert_eq!(farm.run(0, &[5u64], |&x, _| x + 1), vec![6]);
    }

    #[test]
    fn wt_workers_parsing_accepts_counts_and_flags_garbage() {
        // `Farm::from_env` parses WT_WORKERS through the shared knob
        // helper; pin the farm-facing messages here.
        let parse = |v| crate::knobs::parse_count("WT_WORKERS", "worker", v);
        assert_eq!(parse(None), Ok(None));
        assert_eq!(parse(Some("4")), Ok(Some(4)));
        assert_eq!(parse(Some(" 8 ")), Ok(Some(8)));
        // Set-but-unusable values are reported, not silently swallowed.
        let zero = parse(Some("0")).unwrap_err();
        assert!(zero.contains("WT_WORKERS=0"), "message: {zero}");
        assert!(zero.contains("worker"), "message: {zero}");
        let junk = parse(Some("many")).unwrap_err();
        assert!(junk.contains("not a number"), "message: {junk}");
        let negative = parse(Some("-2")).unwrap_err();
        assert!(negative.contains("not a number"), "message: {negative}");
    }

    #[test]
    fn heartbeat_does_not_change_results() {
        let items: Vec<u64> = (0..200).collect();
        let quiet = Farm::new(4).run(17, &items, |&x, ctx| x.wrapping_mul(ctx.seed));
        let chatty = Farm::new(4)
            .with_heartbeat(true)
            .run(17, &items, |&x, ctx| x.wrapping_mul(ctx.seed));
        assert_eq!(chatty, quiet);
        // And on the serial path too.
        let serial = Farm::serial()
            .with_heartbeat(true)
            .run(17, &items, |&x, ctx| x.wrapping_mul(ctx.seed));
        assert_eq!(serial, quiet);
    }

    #[test]
    fn recorded_heartbeat_skims_telemetry_without_changing_results() {
        use wt_obs::RunTelemetry;
        use wt_store::{RecordSink, RunRecord, SharedStore};
        let items: Vec<u64> = (0..50).collect();
        let work = |&x: &u64, ctx: RunCtx, shard: &StoreShard| {
            let mut t = RunTelemetry {
                events: 100 + x,
                ..Default::default()
            };
            t.wall.wall_us = 1_000;
            shard.record(
                RunRecord::new("hb-test", ctx.seed)
                    .metric("x", x as f64)
                    .telemetry(t),
            );
            x
        };
        let quiet_store = SharedStore::new();
        let quiet = Farm::new(4).run_recorded(11, &items, &quiet_store, work);
        for workers in [1, 4] {
            let store = SharedStore::new();
            let out = Farm::new(workers)
                .with_heartbeat(true)
                .run_recorded(11, &items, &store, work);
            assert_eq!(out, quiet, "heartbeat changed results at {workers} workers");
            assert_eq!(
                store.snapshot(),
                quiet_store.snapshot(),
                "heartbeat changed records at {workers} workers"
            );
        }
    }

    #[test]
    fn partition_marks_feed_heartbeat_without_changing_results() {
        use wt_obs::RunTelemetry;
        use wt_store::{RecordSink, RunRecord, SharedStore};
        let items: Vec<u64> = (0..30).collect();
        let work = |&x: &u64, ctx: RunCtx, shard: &StoreShard| {
            let mut t = RunTelemetry {
                events: 600 + x,
                ..Default::default()
            };
            t.wall.wall_us = 2_000;
            t.marks.insert("partition/0".into(), 200);
            t.marks.insert("partition/1".into(), 400 + x);
            shard.record(
                RunRecord::new("hb-part-test", ctx.seed)
                    .metric("x", x as f64)
                    .telemetry(t),
            );
            x
        };
        let quiet_store = SharedStore::new();
        let quiet = Farm::new(4).run_recorded(13, &items, &quiet_store, work);
        let store = SharedStore::new();
        let out = Farm::new(4)
            .with_heartbeat(true)
            .run_recorded(13, &items, &store, work);
        assert_eq!(out, quiet, "partition skim changed results");
        assert_eq!(
            store.snapshot(),
            quiet_store.snapshot(),
            "partition skim changed records"
        );
    }

    #[test]
    fn partition_marks_parse_numerically() {
        // `partition/10` sorts before `partition/2` in the marks map;
        // the skim must order by numeric index, not string order, and
        // must ignore non-partition and malformed keys.
        let mut beat = wt_obs::Heartbeat::with_interval(1, 0.0);
        let mut marks = BTreeMap::new();
        for (k, v) in [
            ("partition/0", 1u64),
            ("partition/2", 3),
            ("partition/10", 11),
            ("partition/oops", 99),
            ("object_lost", 7),
        ] {
            marks.insert(k.to_string(), v);
        }
        observe_partition_marks(&mut beat, &marks);
        let line = beat.tick_at(1.0).expect("interval 0 always emits");
        assert!(line.contains("parts=11 "), "{line}");
        // Index 10 landed in slot 10 (value 11), not slot 2.
        assert!(line.ends_with("0 0 0 0 0 0 0 11]"), "{line}");

        // Serial runs (no partition marks) feed nothing.
        let mut beat = wt_obs::Heartbeat::with_interval(1, 0.0);
        let mut plain = BTreeMap::new();
        plain.insert("object_lost".to_string(), 7u64);
        observe_partition_marks(&mut beat, &plain);
        let line = beat.tick_at(1.0).expect("interval 0 always emits");
        assert!(!line.contains("parts="), "{line}");
    }

    #[test]
    fn chunking_is_worker_independent() {
        // Indirectly covered by identical_results_for_any_worker_count;
        // here pin the function itself so a refactor can't silently make
        // it depend on anything but n.
        assert_eq!(chunk_size(1), 1);
        assert_eq!(chunk_size(64), 1);
        assert_eq!(chunk_size(640), 10);
        assert_eq!(chunk_size(1 << 20), 32);
    }
}
