//! Service-level agreements: the user-side constraints every wind tunnel
//! query is ultimately judged against (§1, §3).

use serde::{Deserialize, Serialize};
use wt_cluster::{AvailabilityResult, PerfResult};

/// One SLA clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Sla {
    /// Long-run fraction of time the average object must be operable,
    /// e.g. `0.9999`.
    Availability {
        /// Minimum acceptable availability.
        min: f64,
    },
    /// Maximum acceptable fraction of objects lost over the horizon
    /// (0.0 = no loss tolerated).
    Durability {
        /// Maximum fraction of objects in the `Lost` state.
        max_loss_fraction: f64,
    },
    /// A tenant's latency bound at a quantile, e.g. p95 ≤ 50 ms.
    Latency {
        /// Tenant name the clause applies to.
        tenant: String,
        /// Quantile in (0, 1).
        quantile: f64,
        /// Bound in seconds.
        max_s: f64,
    },
}

impl Sla {
    /// True if this clause needs an availability run to evaluate.
    pub fn needs_availability(&self) -> bool {
        matches!(self, Sla::Availability { .. } | Sla::Durability { .. })
    }

    /// True if this clause needs a performance run to evaluate.
    pub fn needs_perf(&self) -> bool {
        matches!(self, Sla::Latency { .. })
    }
}

/// A conjunction of SLA clauses.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SlaSet {
    clauses: Vec<Sla>,
}

impl SlaSet {
    /// An empty set (always satisfied).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an availability floor.
    pub fn availability(mut self, min: f64) -> Self {
        assert!((0.0..=1.0).contains(&min));
        self.clauses.push(Sla::Availability { min });
        self
    }

    /// Adds a durability cap.
    pub fn durability(mut self, max_loss_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&max_loss_fraction));
        self.clauses.push(Sla::Durability { max_loss_fraction });
        self
    }

    /// Adds a latency bound.
    pub fn latency(mut self, tenant: &str, quantile: f64, max_s: f64) -> Self {
        assert!((0.0..1.0).contains(&quantile) && max_s > 0.0);
        self.clauses.push(Sla::Latency {
            tenant: tenant.to_string(),
            quantile,
            max_s,
        });
        self
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Sla] {
        &self.clauses
    }

    /// True if any clause needs an availability run.
    pub fn needs_availability(&self) -> bool {
        self.clauses.iter().any(Sla::needs_availability)
    }

    /// True if any clause needs a performance run.
    pub fn needs_perf(&self) -> bool {
        self.clauses.iter().any(Sla::needs_perf)
    }

    /// The strictest availability floor in the set, if any — the number
    /// the guided planner's analytic screens and replication early-stop
    /// compare against (DESIGN.md §12).
    pub fn availability_floor(&self) -> Option<f64> {
        self.clauses
            .iter()
            .filter_map(|c| match c {
                Sla::Availability { min } => Some(*min),
                _ => None,
            })
            .fold(None, |acc, m| Some(acc.map_or(m, |a: f64| a.max(m))))
    }

    /// The tightest latency bound per tenant at each quantile:
    /// `(tenant, quantile, max_s)` triples, deduplicated to the strictest
    /// bound. Screens iterate these to test each against the analytic
    /// wait-quantile floor.
    pub fn latency_bounds(&self) -> Vec<(&str, f64, f64)> {
        let mut out: Vec<(&str, f64, f64)> = Vec::new();
        for c in &self.clauses {
            if let Sla::Latency {
                tenant,
                quantile,
                max_s,
            } = c
            {
                match out
                    .iter_mut()
                    .find(|(t, q, _)| *t == tenant.as_str() && *q == *quantile)
                {
                    Some(entry) => entry.2 = entry.2.min(*max_s),
                    None => out.push((tenant.as_str(), *quantile, *max_s)),
                }
            }
        }
        out
    }

    /// Evaluates every clause against the available results; clauses whose
    /// required result is missing are reported as violations (the caller
    /// didn't run the needed engine). Returns human-readable violations;
    /// empty = all SLAs met.
    pub fn violations(
        &self,
        avail: Option<&AvailabilityResult>,
        perf: Option<&PerfResult>,
        total_objects: u64,
    ) -> Vec<String> {
        let mut out = Vec::new();
        for clause in &self.clauses {
            match clause {
                Sla::Availability { min } => match avail {
                    Some(a) if a.availability >= *min => {}
                    Some(a) => out.push(format!(
                        "availability {:.6} below SLA floor {:.6}",
                        a.availability, min
                    )),
                    None => out.push("availability SLA present but no availability run".into()),
                },
                Sla::Durability { max_loss_fraction } => match avail {
                    Some(a) => {
                        let frac = a.objects_lost as f64 / total_objects.max(1) as f64;
                        if frac > *max_loss_fraction {
                            out.push(format!(
                                "lost {:.4}% of objects, SLA allows {:.4}%",
                                frac * 100.0,
                                max_loss_fraction * 100.0
                            ));
                        }
                    }
                    None => out.push("durability SLA present but no availability run".into()),
                },
                Sla::Latency {
                    tenant,
                    quantile,
                    max_s,
                } => match perf.and_then(|p| p.tenant(tenant)) {
                    Some(t) => {
                        // Use the closest precomputed quantile.
                        let observed = if *quantile <= 0.5 {
                            t.p50_s
                        } else if *quantile <= 0.95 {
                            t.p95_s
                        } else {
                            t.p99_s
                        };
                        if observed > *max_s {
                            out.push(format!(
                                "{tenant} p{:.0} = {:.4}s exceeds SLA {:.4}s",
                                quantile * 100.0,
                                observed,
                                max_s
                            ));
                        }
                    }
                    None => out.push(format!(
                        "latency SLA for unknown tenant '{tenant}' or missing perf run"
                    )),
                },
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wt_cluster::results::TenantPerf;

    fn avail(availability: f64, lost: u64) -> AvailabilityResult {
        AvailabilityResult {
            availability,
            nines: AvailabilityResult::nines_of(availability),
            unavailability_events: 0,
            objects_lost: lost,
            node_failures: 0,
            switch_failures: 0,
            disk_failures: 0,
            rebuilds_completed: 0,
            mean_rebuild_wait_s: 0.0,
            horizon_s: 1.0,
            sim_events: 0,
        }
    }

    fn perf(p95: f64) -> PerfResult {
        PerfResult {
            tenants: vec![TenantPerf {
                name: "shop".into(),
                completed: 1,
                failed: 0,
                mean_s: p95 / 2.0,
                p50_s: p95 / 2.0,
                p95_s: p95,
                p99_s: p95 * 2.0,
                sketch_p50_s: None,
                sketch_p95_s: None,
                sketch_p99_s: None,
                sketch_sla_met: None,
                throughput: 1.0,
                sla_met: None,
            }],
            node_failures: 0,
            mean_disk_utilization: 0.0,
            mean_nic_utilization: 0.0,
            horizon_s: 1.0,
        }
    }

    #[test]
    fn empty_set_always_satisfied() {
        let s = SlaSet::new();
        assert!(s.violations(None, None, 100).is_empty());
        assert!(!s.needs_availability());
        assert!(!s.needs_perf());
    }

    #[test]
    fn availability_clause() {
        let s = SlaSet::new().availability(0.999);
        assert!(s.needs_availability());
        assert!(s.violations(Some(&avail(0.9999, 0)), None, 100).is_empty());
        let v = s.violations(Some(&avail(0.99, 0)), None, 100);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("below SLA floor"));
    }

    #[test]
    fn durability_clause() {
        let s = SlaSet::new().durability(0.0);
        assert!(s.violations(Some(&avail(1.0, 0)), None, 100).is_empty());
        let v = s.violations(Some(&avail(1.0, 2)), None, 100);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("lost"));
    }

    #[test]
    fn latency_clause() {
        let s = SlaSet::new().latency("shop", 0.95, 0.050);
        assert!(s.needs_perf());
        assert!(s.violations(None, Some(&perf(0.040)), 1).is_empty());
        let v = s.violations(None, Some(&perf(0.060)), 1);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("exceeds SLA"));
    }

    #[test]
    fn missing_runs_are_violations() {
        let s = SlaSet::new().availability(0.9).latency("shop", 0.95, 1.0);
        let v = s.violations(None, None, 1);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn unknown_tenant_flagged() {
        let s = SlaSet::new().latency("nobody", 0.95, 1.0);
        let v = s.violations(None, Some(&perf(0.01)), 1);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("unknown tenant"));
    }

    #[test]
    fn conjunction_of_clauses() {
        let s = SlaSet::new().availability(0.999).durability(0.01);
        let v = s.violations(Some(&avail(0.99, 5)), None, 100);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn availability_floor_is_the_strictest() {
        assert_eq!(SlaSet::new().availability_floor(), None);
        assert_eq!(
            SlaSet::new().durability(0.0).availability_floor(),
            None,
            "durability is not an availability floor"
        );
        let s = SlaSet::new().availability(0.99).availability(0.9999);
        assert_eq!(s.availability_floor(), Some(0.9999));
    }

    #[test]
    fn latency_bounds_dedupe_to_strictest() {
        let s = SlaSet::new()
            .latency("shop", 0.95, 0.050)
            .latency("shop", 0.95, 0.030)
            .latency("shop", 0.99, 0.200)
            .latency("reports", 0.95, 1.0);
        let b = s.latency_bounds();
        assert_eq!(b.len(), 3);
        assert!(b.contains(&("shop", 0.95, 0.030)));
        assert!(b.contains(&("shop", 0.99, 0.200)));
        assert!(b.contains(&("reports", 0.95, 1.0)));
    }
}
