//! Flat arena storage for the cluster engines' hot state.
//!
//! At the paper's §4.2 "simulation at scale" sizes (a million disks), the
//! old `Vec<Vec<u32>>` per-node object lists are a pointer-chasing sprawl:
//! one heap allocation per node, no locality across nodes, and realloc
//! churn on every rebuild. [`NodeLists`] replaces them with chunked
//! per-node lists over **one** flat `u32` pool — the mutable cousin of a
//! CSR adjacency structure (pool + per-node offset chains instead of
//! prefix offsets, because membership changes during the run).
//!
//! The contract that matters for determinism: a node's list iterates in
//! exact **insertion order**, and draining re-yields that order — the
//! same order the old `Vec` push/take produced. Event scheduling order,
//! and therefore every downstream RNG draw, hangs off this.

/// Entries per chunk. 32 × `u32` = 128 B — two cache lines, so a node
/// with a handful of objects touches one or two lines instead of a
/// scattered `Vec` header + heap block.
const CHUNK: usize = 32;
/// Null chunk index.
const NONE: u32 = u32::MAX;

/// Chunked per-node object lists over one flat `u32` pool.
///
/// Supports exactly the operations the availability engine's hot path
/// needs: append (`push`), ordered drain (`drain_into`), and ordered
/// copy-out (`extend_into`). Freed chunks go on a free list and are
/// reused, so steady-state mutation allocates nothing.
#[derive(Debug, Clone)]
pub struct NodeLists {
    /// The flat pool, in `CHUNK`-sized slots.
    pool: Vec<u32>,
    /// Per-chunk: index of the next chunk in its chain (`NONE` = tail).
    next: Vec<u32>,
    /// Per-node: first chunk of its chain (`NONE` = empty list).
    heads: Vec<u32>,
    /// Per-node: last chunk of its chain (`NONE` = empty list).
    tails: Vec<u32>,
    /// Per-node: entries used in the tail chunk.
    tail_len: Vec<u32>,
    /// Per-node: total entries.
    lens: Vec<u32>,
    /// Recycled chunk indices.
    free: Vec<u32>,
}

impl NodeLists {
    /// Empty lists for `n_nodes` nodes.
    pub fn new(n_nodes: usize) -> Self {
        Self::with_capacity(n_nodes, 0)
    }

    /// Empty lists with pool room for `entries` total entries, so bulk
    /// construction does not regrow the pool.
    pub fn with_capacity(n_nodes: usize, entries: usize) -> Self {
        let chunks = entries.div_ceil(CHUNK) + n_nodes;
        NodeLists {
            pool: Vec::with_capacity(chunks * CHUNK),
            next: Vec::with_capacity(chunks),
            heads: vec![NONE; n_nodes],
            tails: vec![NONE; n_nodes],
            tail_len: vec![0; n_nodes],
            lens: vec![0; n_nodes],
            free: Vec::new(),
        }
    }

    fn alloc_chunk(&mut self) -> u32 {
        if let Some(c) = self.free.pop() {
            self.next[c as usize] = NONE;
            return c;
        }
        let c = self.next.len() as u32;
        self.pool.resize(self.pool.len() + CHUNK, 0);
        self.next.push(NONE);
        c
    }

    /// Appends `value` to `node`'s list.
    pub fn push(&mut self, node: usize, value: u32) {
        let tail = self.tails[node];
        let tail = if tail == NONE {
            let c = self.alloc_chunk();
            self.heads[node] = c;
            self.tails[node] = c;
            self.tail_len[node] = 0;
            c
        } else if self.tail_len[node] as usize == CHUNK {
            let c = self.alloc_chunk();
            self.next[tail as usize] = c;
            self.tails[node] = c;
            self.tail_len[node] = 0;
            c
        } else {
            tail
        };
        self.pool[tail as usize * CHUNK + self.tail_len[node] as usize] = value;
        self.tail_len[node] += 1;
        self.lens[node] += 1;
    }

    /// Number of entries in `node`'s list.
    pub fn len(&self, node: usize) -> usize {
        self.lens[node] as usize
    }

    /// True when `node`'s list is empty.
    pub fn is_empty(&self, node: usize) -> bool {
        self.lens[node] == 0
    }

    /// Appends `node`'s entries to `out` in insertion order (the list is
    /// unchanged). `out` is *not* cleared.
    pub fn extend_into(&self, node: usize, out: &mut Vec<u32>) {
        let mut c = self.heads[node];
        while c != NONE {
            let n = if c == self.tails[node] {
                self.tail_len[node] as usize
            } else {
                CHUNK
            };
            let base = c as usize * CHUNK;
            out.extend_from_slice(&self.pool[base..base + n]);
            c = self.next[c as usize];
        }
    }

    /// Moves `node`'s entries to `out` in insertion order, leaving the
    /// list empty and recycling its chunks. `out` is *not* cleared.
    pub fn drain_into(&mut self, node: usize, out: &mut Vec<u32>) {
        let mut c = self.heads[node];
        while c != NONE {
            let n = if c == self.tails[node] {
                self.tail_len[node] as usize
            } else {
                CHUNK
            };
            let base = c as usize * CHUNK;
            out.extend_from_slice(&self.pool[base..base + n]);
            self.free.push(c);
            c = self.next[c as usize];
        }
        self.heads[node] = NONE;
        self.tails[node] = NONE;
        self.tail_len[node] = 0;
        self.lens[node] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(l: &NodeLists, node: usize) -> Vec<u32> {
        let mut out = Vec::new();
        l.extend_into(node, &mut out);
        out
    }

    #[test]
    fn push_preserves_insertion_order_across_chunks() {
        let mut l = NodeLists::new(2);
        let many: Vec<u32> = (0..(3 * CHUNK as u32 + 7)).collect();
        for &v in &many {
            l.push(0, v);
        }
        l.push(1, 99);
        assert_eq!(collect(&l, 0), many);
        assert_eq!(collect(&l, 1), vec![99]);
        assert_eq!(l.len(0), many.len());
        assert_eq!(l.len(1), 1);
    }

    #[test]
    fn drain_yields_order_and_empties() {
        let mut l = NodeLists::new(1);
        for v in 0..100u32 {
            l.push(0, v);
        }
        let mut out = vec![7u32]; // drain appends, never clears
        l.drain_into(0, &mut out);
        assert_eq!(out[0], 7);
        assert_eq!(&out[1..], (0..100u32).collect::<Vec<_>>().as_slice());
        assert!(l.is_empty(0));
        assert_eq!(collect(&l, 0), Vec::<u32>::new());
    }

    #[test]
    fn chunks_are_recycled_after_drain() {
        let mut l = NodeLists::new(2);
        for v in 0..(2 * CHUNK as u32) {
            l.push(0, v);
        }
        let pool_size = l.pool.len();
        let mut sink = Vec::new();
        l.drain_into(0, &mut sink);
        // Refilling a different node reuses the freed chunks: no growth.
        for v in 0..(2 * CHUNK as u32) {
            l.push(1, v);
        }
        assert_eq!(l.pool.len(), pool_size, "freed chunks must be reused");
        assert_eq!(collect(&l, 1), (0..(2 * CHUNK as u32)).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_drain_matches_vec_of_vecs() {
        // Deterministic op mix over a few nodes, mirrored against the
        // old representation.
        let nodes = 5usize;
        let mut arena = NodeLists::new(nodes);
        let mut model: Vec<Vec<u32>> = vec![Vec::new(); nodes];
        let mut x = 0x9e37u32;
        for step in 0..10_000u32 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let node = (x >> 8) as usize % nodes;
            if step % 97 == 96 {
                let mut got = Vec::new();
                arena.drain_into(node, &mut got);
                let want = std::mem::take(&mut model[node]);
                assert_eq!(got, want, "drain order diverged at step {step}");
            } else {
                arena.push(node, x);
                model[node].push(x);
            }
        }
        for (node, want) in model.iter().enumerate() {
            assert_eq!(&collect(&arena, node), want);
            assert_eq!(arena.len(node), want.len());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Push(u8, u32),
        Drain(u8),
        Copy(u8),
    }

    fn arb_op(nodes: u8) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..nodes, any::<u32>()).prop_map(|(n, v)| Op::Push(n, v)),
            (0..nodes, any::<u32>()).prop_map(|(n, v)| Op::Push(n, v)),
            (0..nodes, any::<u32>()).prop_map(|(n, v)| Op::Push(n, v)),
            (0..nodes, any::<u32>()).prop_map(|(n, v)| Op::Push(n, v)),
            (0..nodes).prop_map(Op::Drain),
            (0..nodes).prop_map(Op::Copy),
        ]
    }

    proptest! {
        /// Arbitrary op sequences: the arena agrees with `Vec<Vec<u32>>`
        /// on contents *and order* after every drain/copy.
        #[test]
        fn agrees_with_vec_of_vecs(ops in proptest::collection::vec(arb_op(6), 0..400)) {
            let nodes = 6usize;
            let mut arena = NodeLists::new(nodes);
            let mut model: Vec<Vec<u32>> = vec![Vec::new(); nodes];
            for op in ops {
                match op {
                    Op::Push(n, v) => {
                        arena.push(n as usize, v);
                        model[n as usize].push(v);
                    }
                    Op::Drain(n) => {
                        let mut got = Vec::new();
                        arena.drain_into(n as usize, &mut got);
                        let want = std::mem::take(&mut model[n as usize]);
                        prop_assert_eq!(got, want);
                    }
                    Op::Copy(n) => {
                        let mut got = Vec::new();
                        arena.extend_into(n as usize, &mut got);
                        prop_assert_eq!(&got, &model[n as usize]);
                        prop_assert_eq!(arena.len(n as usize), model[n as usize].len());
                    }
                }
            }
            for (n, want) in model.iter().enumerate() {
                let mut got = Vec::new();
                arena.extend_into(n, &mut got);
                prop_assert_eq!(&got, want);
            }
        }
    }
}
