//! Serializable simulation outputs — the data the §4.4 result store keeps.

use serde::{Deserialize, Serialize};

/// One point of the Figure 1 curve: with `failures` nodes down, the
/// probability that at least one customer lost their quorum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnavailabilityPoint {
    /// Number of simultaneously failed nodes.
    pub failures: usize,
    /// P(≥1 customer unavailable), estimated over the experiment's trials.
    pub p_unavailable: f64,
    /// Expected fraction of customers unavailable (a finer-grained view).
    pub mean_affected_fraction: f64,
}

/// Output of a time-domain availability run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityResult {
    /// Mean over objects of the fraction of time the object was operable.
    pub availability: f64,
    /// Number of "nines" of the mean availability.
    pub nines: f64,
    /// Count of operability-loss episodes across all objects.
    pub unavailability_events: u64,
    /// Objects that hit the `Lost` durability state (unrecoverable).
    pub objects_lost: u64,
    /// Total node failures injected.
    pub node_failures: u64,
    /// Total switch (rack) failures injected.
    pub switch_failures: u64,
    /// Total individual disk failures injected.
    pub disk_failures: u64,
    /// Total replica rebuilds completed.
    pub rebuilds_completed: u64,
    /// Mean time a degraded object waited for rebuild, seconds.
    pub mean_rebuild_wait_s: f64,
    /// Simulated horizon, seconds.
    pub horizon_s: f64,
    /// Discrete events the engine executed (the wind tunnel's cost unit,
    /// used to account early-abort savings in §4.2 experiments).
    pub sim_events: u64,
}

impl AvailabilityResult {
    /// Converts an availability fraction into "nines".
    pub fn nines_of(avail: f64) -> f64 {
        if avail >= 1.0 {
            f64::INFINITY
        } else {
            -(1.0 - avail).log10()
        }
    }
}

/// Per-tenant performance outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantPerf {
    /// Tenant name.
    pub name: String,
    /// Completed requests.
    pub completed: u64,
    /// Requests that found no live replica.
    pub failed: u64,
    /// Mean latency, seconds.
    pub mean_s: f64,
    /// Median latency, seconds.
    pub p50_s: f64,
    /// 95th percentile latency, seconds.
    pub p95_s: f64,
    /// 99th percentile latency, seconds.
    pub p99_s: f64,
    /// Median latency from the mergeable DDSketch path, seconds. The
    /// `p*_s` fields above come from the exact retained-bucket histogram
    /// and act as the accuracy oracle; these fields are what a
    /// sketch-only (constant-memory) pipeline reports. `None` on records
    /// written before the sketch pipeline existed.
    pub sketch_p50_s: Option<f64>,
    /// 95th percentile latency from the sketch path, seconds.
    pub sketch_p95_s: Option<f64>,
    /// 99th percentile latency from the sketch path, seconds.
    pub sketch_p99_s: Option<f64>,
    /// SLA verdict evaluated at the sketch-derived quantile. Must agree
    /// with `sla_met` whenever the SLA threshold is not inside the
    /// sketch's relative-error band of the true quantile.
    pub sketch_sla_met: Option<bool>,
    /// Throughput over the horizon, requests/second.
    pub throughput: f64,
    /// Whether the tenant's latency SLA (if any) was met at its quantile.
    pub sla_met: Option<bool>,
}

/// Output of a performance run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfResult {
    /// One entry per tenant, in scenario order.
    pub tenants: Vec<TenantPerf>,
    /// Node failures injected during the run.
    pub node_failures: u64,
    /// Mean disk utilization across nodes.
    pub mean_disk_utilization: f64,
    /// Mean NIC utilization across nodes.
    pub mean_nic_utilization: f64,
    /// Simulated horizon, seconds.
    pub horizon_s: f64,
}

impl PerfResult {
    /// The tenant entry by name.
    pub fn tenant(&self, name: &str) -> Option<&TenantPerf> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// True if every tenant with an SLA met it.
    pub fn all_slas_met(&self) -> bool {
        self.tenants.iter().all(|t| t.sla_met.unwrap_or(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nines() {
        assert!((AvailabilityResult::nines_of(0.999) - 3.0).abs() < 1e-9);
        assert!((AvailabilityResult::nines_of(0.99999) - 5.0).abs() < 1e-6);
        assert_eq!(AvailabilityResult::nines_of(1.0), f64::INFINITY);
    }

    #[test]
    fn perf_result_lookup_and_sla() {
        let r = PerfResult {
            tenants: vec![
                TenantPerf {
                    name: "a".into(),
                    completed: 10,
                    failed: 0,
                    mean_s: 0.01,
                    p50_s: 0.01,
                    p95_s: 0.02,
                    p99_s: 0.03,
                    sketch_p50_s: None,
                    sketch_p95_s: None,
                    sketch_p99_s: None,
                    sketch_sla_met: None,
                    throughput: 1.0,
                    sla_met: Some(true),
                },
                TenantPerf {
                    name: "b".into(),
                    completed: 10,
                    failed: 0,
                    mean_s: 0.01,
                    p50_s: 0.01,
                    p95_s: 0.02,
                    p99_s: 0.03,
                    sketch_p50_s: None,
                    sketch_p95_s: None,
                    sketch_p99_s: None,
                    sketch_sla_met: None,
                    throughput: 1.0,
                    sla_met: None,
                },
            ],
            node_failures: 0,
            mean_disk_utilization: 0.5,
            mean_nic_utilization: 0.2,
            horizon_s: 100.0,
        };
        assert!(r.tenant("a").is_some());
        assert!(r.tenant("zzz").is_none());
        assert!(r.all_slas_met());
    }

    #[test]
    fn sla_violation_detected() {
        let mut r = PerfResult {
            tenants: vec![TenantPerf {
                name: "a".into(),
                completed: 1,
                failed: 0,
                mean_s: 1.0,
                p50_s: 1.0,
                p95_s: 1.0,
                p99_s: 1.0,
                sketch_p50_s: None,
                sketch_p95_s: None,
                sketch_p99_s: None,
                sketch_sla_met: None,
                throughput: 1.0,
                sla_met: Some(false),
            }],
            node_failures: 0,
            mean_disk_utilization: 0.0,
            mean_nic_utilization: 0.0,
            horizon_s: 1.0,
        };
        assert!(!r.all_slas_met());
        r.tenants[0].sla_met = Some(true);
        assert!(r.all_slas_met());
    }
}
