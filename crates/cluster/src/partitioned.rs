//! Topology-sharded engines for partitioned parallel execution.
//!
//! One simulation run, many partitions: the cluster is sharded along the
//! hardware topology (contiguous rack ranges, the shape
//! [`wt_hw::Topology::partition_by`] produces for racks, pods and power
//! domains alike), each shard owns its racks' state and random streams
//! outright, and the only traffic between shards is what would cross the
//! aggregation layer in the real datacenter: replica-loss notifications,
//! re-replication placements, and remote reads. Those all ride network
//! and detection latencies, which is exactly the conservative lookahead
//! [`wt_des::PartitionedSimulation`] synchronizes on.
//!
//! **Partition-count invariance.** Both engines here are written so the
//! number of partitions is semantically invisible: every piece of
//! mutable state and every RNG stream is keyed by *rack* (derived by
//! content hash from the run seed, never from the partition index), all
//! cross-rack messages go through [`wt_des::PartCtx::send`] even when
//! sender and receiver land in the same partition, and every message
//! carries the sender's rack id as its delivery tag. `--partitions 1` is
//! therefore the bitwise-determinism oracle for any partition/thread
//! count — results and merged telemetry agree byte-for-byte.
//!
//! **The availability shard model.** Objects are homed round-robin
//! across racks (`home = object % racks`); an object keeps `w - 1`
//! replicas on distinct nodes of its home rack plus one *mirror* replica
//! in the buddy rack `(home + 1) % racks`. All placement and repair of
//! home replicas is rack-local (same dynamics as
//! [`crate::availability`]); losing the mirror triggers the
//! cross-partition protocol: `MirrorLost` → home decides → buddy places
//! a fresh mirror (`MirrorPlaceReq`/`MirrorPlaced`), with retry backoff
//! when the buddy has no live node. Rack-wide chaos windows additionally
//! publish `BuddyDark`/`BuddyLit` so homes count an unreachable buddy
//! against operability. Mirror reachability is tracked at rack
//! granularity (a full-rack outage darkens hosted mirrors; a single
//! node's chaos window does not) — the fidelity note for this engine.
//!
//! **The perf shard model.** Tenants are homed round-robin across racks;
//! a request queues at a home-rack disk, streams through the node NIC,
//! and with probability `remote_read_fraction` takes a cross-rack leg to
//! the buddy rack (disk read there, transfer back). The lookahead is the
//! minimum inter-rack path latency straight from
//! [`wt_hw::Topology::partition_by`].

use crate::arena::NodeLists;
use crate::availability::RebuildModel;
use crate::chaos::{ChaosConfig, FaultEffect};
use crate::results::{AvailabilityResult, PerfResult, TenantPerf};
use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::sync::Arc;
use wt_des::obs::{RunTelemetry, SimProbe};
use wt_des::prelude::*;
use wt_des::rng::RngFactory;
use wt_des::{CalendarQueue, EventQueue, ServerPool};
use wt_dist::Dist;
use wt_hw::{PartitionGranularity, TopologySpec};
use wt_sw::repair::{RepairQueue, RepairTask};
use wt_sw::{RedundancyScheme, RepairPolicy};
use wt_workload::{TenantWorkload, Zipf};

/// Balanced contiguous rack ranges: rack `r` belongs to partition
/// `part_of[r]`. Same split as [`PartitionGranularity::Count`], kept
/// callable without a full `Topology` in hand.
fn balanced_ranges(racks: usize, partitions: usize) -> Vec<Range<usize>> {
    let n = partitions.clamp(1, racks.max(1));
    (0..n)
        .map(|i| (i * racks / n)..((i + 1) * racks / n))
        .collect()
}

fn part_of_rack_table(ranges: &[Range<usize>], racks: usize) -> Vec<u32> {
    let mut table = vec![0u32; racks];
    for (p, range) in ranges.iter().enumerate() {
        for r in range.clone() {
            table[r] = p as u32;
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Availability engine
// ---------------------------------------------------------------------------

/// Time-domain availability with rack-sharded state: the partitioned
/// counterpart of [`crate::AvailabilityModel`]. See the module docs for
/// the replica/mirror layout and the cross-partition protocol.
#[derive(Debug, Clone)]
pub struct PartitionedAvailability {
    /// Number of racks (the sharding unit).
    pub racks: usize,
    /// Nodes per rack.
    pub nodes_per_rack: usize,
    /// Total replicas per object: `w - 1` in the home rack plus one
    /// mirror in the buddy rack (all `w` local when `racks == 1`).
    pub replication: usize,
    /// Object count, homed round-robin across racks.
    pub objects: u64,
    /// Object size, bytes (drives bandwidth-model rebuild times).
    pub object_bytes: u64,
    /// Node time-to-failure distribution, seconds.
    pub node_ttf: Dist,
    /// Node replacement distribution, seconds.
    pub node_replace: Dist,
    /// Rebuild duration model for home-rack re-replication.
    pub rebuild: RebuildModel,
    /// Repair concurrency/detection policy (per rack).
    pub repair: RepairPolicy,
    /// One-way inter-rack network latency, seconds. Every cross-rack
    /// message costs at least this; it is the network half of the
    /// lookahead.
    pub wire_latency_s: f64,
    /// Future-event-list backend for every partition's queue.
    pub queue: QueueBackend,
    /// Optional chaos schedule, routed to owning racks at setup.
    pub chaos: Option<ChaosConfig>,
}

impl PartitionedAvailability {
    /// A small default: mostly useful as a test/bench starting point.
    pub fn example(racks: usize, nodes_per_rack: usize, objects: u64) -> Self {
        PartitionedAvailability {
            racks,
            nodes_per_rack,
            replication: 3,
            objects,
            object_bytes: 64 << 20,
            node_ttf: Dist::exponential_mean(30.0 * 86_400.0),
            node_replace: Dist::exponential_mean(6.0 * 3_600.0),
            rebuild: RebuildModel::Timed(Dist::exponential_mean(1_800.0)),
            repair: RepairPolicy::parallel(4),
            wire_latency_s: 1e-4,
            queue: QueueBackend::Heap,
            chaos: None,
        }
    }

    /// Transfer-time estimate for shipping one object cross-rack, used
    /// for mirror placement delays. Falls back to the detection delay
    /// for timed rebuild models (no link speed to derive it from).
    fn transfer_estimate_s(&self) -> f64 {
        match &self.rebuild {
            RebuildModel::Bandwidth { link_gbps, share } => {
                self.object_bytes as f64 * 8.0 / (link_gbps * 1e9 * share)
            }
            RebuildModel::Timed(_) => self.repair.detection_delay_s,
        }
    }

    /// The conservative lookahead: wire latency plus the fastest thing a
    /// cross-rack message ever rides (detection or transfer). Keeping
    /// detection in the floor keeps synchronization windows at protocol
    /// cadence — minutes, not microseconds.
    pub fn lookahead_s(&self) -> f64 {
        self.wire_latency_s
            + self
                .repair
                .detection_delay_s
                .min(self.transfer_estimate_s())
    }

    /// Runs and returns the folded result. `partitions == 1` (any
    /// `threads`) is the serial oracle; higher partition counts must
    /// match it bitwise.
    pub fn run(
        &self,
        seed: u64,
        horizon_s: f64,
        partitions: usize,
        threads: usize,
    ) -> AvailabilityResult {
        match self.queue {
            QueueBackend::Heap => {
                self.run_on::<EventQueue<AvailEv>>(seed, horizon_s, partitions, threads)
            }
            QueueBackend::Calendar => {
                self.run_on::<CalendarQueue<AvailEv>>(seed, horizon_s, partitions, threads)
            }
        }
    }

    /// [`PartitionedAvailability::run`] with per-partition probes folded
    /// into one [`RunTelemetry`] (order-deterministic merge, plus
    /// `partition/<i>` marks carrying each partition's event total).
    pub fn run_observed(
        &self,
        seed: u64,
        horizon_s: f64,
        partitions: usize,
        threads: usize,
    ) -> (AvailabilityResult, RunTelemetry) {
        match self.queue {
            QueueBackend::Heap => {
                self.run_observed_on::<EventQueue<AvailEv>>(seed, horizon_s, partitions, threads)
            }
            QueueBackend::Calendar => {
                self.run_observed_on::<CalendarQueue<AvailEv>>(seed, horizon_s, partitions, threads)
            }
        }
    }

    fn run_on<Q: PendingEvents<AvailEv> + Default + Send>(
        &self,
        seed: u64,
        horizon_s: f64,
        partitions: usize,
        threads: usize,
    ) -> AvailabilityResult {
        let mut sim = self.build::<Q>(seed, partitions);
        sim.run_until_threaded(SimTime::from_secs(horizon_s), threads);
        self.finish(&sim)
    }

    fn run_observed_on<Q: PendingEvents<AvailEv> + Default + Send>(
        &self,
        seed: u64,
        horizon_s: f64,
        partitions: usize,
        threads: usize,
    ) -> (AvailabilityResult, RunTelemetry) {
        let mut sim = self.build::<Q>(seed, partitions);
        let mut probes: Vec<SimProbe> = (0..sim.parts()).map(|_| SimProbe::new()).collect();
        let reason = sim.run_until_probed(SimTime::from_secs(horizon_s), threads, &mut probes);
        let telemetry = fold_partition_telemetry(
            &probes,
            &sim.part_events(),
            sim.now().as_secs(),
            reason.as_str(),
            self.queue,
        );
        (self.finish(&sim), telemetry)
    }

    /// Builds the sharded simulation: rack cells with placement, boot
    /// failure timers, and chaos faults routed to their owning racks.
    fn build<Q: PendingEvents<AvailEv> + Default + Send>(
        &self,
        seed: u64,
        partitions: usize,
    ) -> PartitionedSimulation<AvailShard, Q> {
        assert!(self.racks > 0 && self.nodes_per_rack > 0, "empty topology");
        assert!(self.replication >= 1, "replication >= 1");
        assert!(self.objects < u32::MAX as u64, "object ids must fit in u32");
        let local_w = if self.racks > 1 {
            self.replication - 1
        } else {
            self.replication
        };
        assert!(
            local_w <= self.nodes_per_rack,
            "home rack too small for {} local replicas",
            local_w
        );
        let la_s = self.lookahead_s();
        assert!(la_s > 0.0, "lookahead must be positive (wire + detection)");

        let ranges = balanced_ranges(self.racks, partitions);
        let shared = Arc::new(AvailShared {
            racks: self.racks,
            nodes_per_rack: self.nodes_per_rack,
            local_w,
            has_mirror: self.racks > 1,
            object_bytes: self.object_bytes,
            node_ttf: self.node_ttf.clone(),
            node_replace: self.node_replace.clone(),
            rebuild: self.rebuild.clone(),
            redundancy: RedundancyScheme::replication(self.replication),
            detection_s: self.repair.detection_delay_s,
            d_notify: SimDuration::from_secs(self.wire_latency_s + self.repair.detection_delay_s),
            d_place: SimDuration::from_secs(self.wire_latency_s + self.transfer_estimate_s()),
            part_of_rack: part_of_rack_table(&ranges, self.racks),
        });

        // Build every rack cell in global rack order, then wire mirror
        // hosting (which spans rack pairs) before grouping into shards.
        let mut boot: Vec<(usize, SimTime, AvailEv)> = Vec::new();
        let mut cells: Vec<RackCell> = (0..self.racks)
            .map(|r| self.build_cell(r, seed, &shared, &mut boot))
            .collect();
        if shared.has_mirror {
            for rack in 0..self.racks {
                let n_local = local_object_count(self.objects, self.racks, rack);
                let buddy = (rack + 1) % self.racks;
                for lo in 0..n_local {
                    let g = lo as u64 * self.racks as u64 + rack as u64;
                    let node = lo % self.nodes_per_rack;
                    cells[buddy].hosted.push(node, g as u32);
                }
            }
        }

        let shards: Vec<AvailShard> = ranges
            .iter()
            .map(|range| AvailShard {
                shared: Arc::clone(&shared),
                first_rack: range.start,
                cells: cells.drain(..range.len()).collect(),
            })
            .collect();
        let mut sim = PartitionedSimulation::new(shards, seed, Lookahead::from_secs(la_s));
        for (part, at, ev) in boot {
            sim.schedule_at(part, at, ev);
        }
        sim
    }

    /// One rack's initial state: placement, boot failure timers, and the
    /// rack's slice of the chaos schedule. All streams are rack-keyed.
    fn build_cell(
        &self,
        rack: usize,
        seed: u64,
        shared: &AvailShared,
        boot: &mut Vec<(usize, SimTime, AvailEv)>,
    ) -> RackCell {
        let npr = self.nodes_per_rack;
        let part = shared.part_of_rack[rack] as usize;
        let factory = RngFactory::new(seed).subfactory("rack", rack as u64);
        let mut place = factory.stream("placement");
        let mut init = factory.stream("boot");
        let n_local = local_object_count(self.objects, self.racks, rack);

        let mut cell = RackCell {
            node_up: vec![true; npr],
            chaos_down: vec![0; npr],
            node_objects: NodeLists::with_capacity(npr, n_local * shared.local_w),
            hosted: NodeLists::new(npr),
            holders: vec![0u16; n_local * shared.local_w],
            holder_len: vec![shared.local_w as u8; n_local],
            mirror_exists: vec![shared.has_mirror; n_local],
            operable: vec![true; n_local],
            lost: vec![false; n_local],
            became_unavailable: vec![SimTime::ZERO; n_local],
            unavail_s: vec![0.0; n_local],
            queue: RepairQueue::new(self.repair),
            pending_mirror: VecDeque::new(),
            rebuild_waits: Tally::new(),
            rng: factory.stream("dynamics"),
            buddy_dark: false,
            dark_windows: 0,
            faults: Vec::new(),
            slowdowns: Vec::new(),
            saved_parallel: None,
            node_failures: 0,
            unavailability_events: 0,
            rebuilds_completed: 0,
            scratch: Vec::new(),
        };

        // Home-rack replica placement: `local_w` distinct nodes per object.
        let mut picks = Vec::new();
        for lo in 0..n_local {
            place.sample_indices_into(npr, shared.local_w, &mut picks);
            for (k, &n) in picks.iter().enumerate() {
                cell.holders[lo * shared.local_w + k] = n as u16;
                cell.node_objects.push(n, lo as u32);
            }
        }
        // Boot failure timers.
        for n in 0..npr {
            let t = SimTime::from_secs(self.node_ttf.sample(&mut init));
            boot.push((
                part,
                t,
                AvailEv::NodeFail {
                    rack: rack as u32,
                    node: n as u16,
                },
            ));
        }
        // This rack's slice of the chaos schedule.
        if let Some(chaos) = &self.chaos {
            for fault in chaos.compile(self.racks * npr, seed) {
                let locals = match &fault.effect {
                    FaultEffect::NodesDown { nodes } => local_nodes_of(nodes, rack, npr),
                    FaultEffect::RacksDown { racks } => {
                        // Chaos racks are spans of `chaos.nodes_per_rack`
                        // nodes; expand and regroup by hardware rack.
                        let cnpr = chaos.nodes_per_rack.max(1);
                        let nodes: Vec<usize> = racks
                            .iter()
                            .flat_map(|&cr| (cr * cnpr)..((cr + 1) * cnpr))
                            .filter(|&n| n < self.racks * npr)
                            .collect();
                        local_nodes_of(&nodes, rack, npr)
                    }
                    // Gray storms and throttles act on every rack's
                    // repair machinery, scaled by the aggregate factor.
                    FaultEffect::Limp { aggregate, .. } => {
                        push_fault(
                            &mut cell,
                            boot,
                            part,
                            rack,
                            fault.mark,
                            fault.at_s,
                            fault.until_s,
                            LocalEffect::Slowdown(*aggregate),
                        );
                        continue;
                    }
                    FaultEffect::RepairThrottle {
                        max_parallel,
                        breaker_pending,
                    } => {
                        push_fault(
                            &mut cell,
                            boot,
                            part,
                            rack,
                            fault.mark,
                            fault.at_s,
                            fault.until_s,
                            LocalEffect::Throttle {
                                max_parallel: *max_parallel,
                                breaker_pending: *breaker_pending,
                            },
                        );
                        continue;
                    }
                };
                if locals.is_empty() {
                    continue;
                }
                let full_rack = locals.len() == npr;
                push_fault(
                    &mut cell,
                    boot,
                    part,
                    rack,
                    fault.mark,
                    fault.at_s,
                    fault.until_s,
                    LocalEffect::NodesDown { locals, full_rack },
                );
            }
        }
        cell
    }

    /// Folds shard state into one result, racks in global order.
    fn finish<Q: PendingEvents<AvailEv> + Default + Send>(
        &self,
        sim: &PartitionedSimulation<AvailShard, Q>,
    ) -> AvailabilityResult {
        let end = sim.now();
        let horizon_s = end.since(SimTime::ZERO).as_secs();
        let mut total_unavail = 0.0f64;
        let mut objects_lost = 0u64;
        let mut node_failures = 0u64;
        let mut unavailability_events = 0u64;
        let mut rebuilds_completed = 0u64;
        let mut waits = Tally::new();
        for shard in sim.models() {
            for cell in &shard.cells {
                for lo in 0..cell.operable.len() {
                    let mut u = cell.unavail_s[lo];
                    if !cell.operable[lo] {
                        u += end.since(cell.became_unavailable[lo]).as_secs();
                    }
                    total_unavail += u;
                }
                objects_lost += cell.lost.iter().filter(|&&l| l).count() as u64;
                node_failures += cell.node_failures;
                unavailability_events += cell.unavailability_events;
                rebuilds_completed += cell.rebuilds_completed;
                waits.merge(&cell.rebuild_waits);
            }
        }
        let denom = self.objects as f64 * horizon_s;
        let availability = if denom > 0.0 {
            1.0 - total_unavail / denom
        } else {
            1.0
        };
        AvailabilityResult {
            availability,
            nines: AvailabilityResult::nines_of(availability),
            unavailability_events,
            objects_lost,
            node_failures,
            switch_failures: 0,
            disk_failures: 0,
            rebuilds_completed,
            mean_rebuild_wait_s: waits.mean(),
            horizon_s,
            sim_events: sim.events_executed(),
        }
    }
}

/// Objects homed at `rack` under round-robin assignment.
fn local_object_count(objects: u64, racks: usize, rack: usize) -> usize {
    let (q, rem) = (objects / racks as u64, objects % racks as u64);
    (q + u64::from((rack as u64) < rem)) as usize
}

/// The subset of global `nodes` that live in `rack`, as local indices.
fn local_nodes_of(nodes: &[usize], rack: usize, npr: usize) -> Vec<u16> {
    nodes
        .iter()
        .filter(|&&n| n / npr == rack)
        .map(|&n| (n % npr) as u16)
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn push_fault(
    cell: &mut RackCell,
    boot: &mut Vec<(usize, SimTime, AvailEv)>,
    part: usize,
    rack: usize,
    mark: &'static str,
    at_s: f64,
    until_s: f64,
    effect: LocalEffect,
) {
    let idx = cell.faults.len() as u32;
    cell.faults.push(LocalFault {
        mark,
        until_s,
        effect,
    });
    boot.push((
        part,
        SimTime::from_secs(at_s),
        AvailEv::ChaosStart {
            rack: rack as u32,
            fault: idx,
        },
    ));
}

/// Folds per-partition probes into one telemetry record: partition-order
/// deterministic, with `partition/<i>` marks for the heartbeat's skew
/// readout and the queue backend stamped for provenance.
fn fold_partition_telemetry(
    probes: &[SimProbe],
    part_events: &[u64],
    end_s: f64,
    stop_reason: &str,
    queue: QueueBackend,
) -> RunTelemetry {
    let mut telemetry = RunTelemetry::default();
    for probe in probes {
        telemetry.absorb_partition(&probe.finish(end_s, stop_reason));
    }
    for (i, &ev) in part_events.iter().enumerate() {
        telemetry.marks.insert(format!("partition/{i}"), ev);
    }
    telemetry.queue = Some(queue.as_str().to_string());
    telemetry
}

/// Config shared read-only by every shard.
#[derive(Debug)]
struct AvailShared {
    racks: usize,
    nodes_per_rack: usize,
    /// Replicas kept in the home rack.
    local_w: usize,
    /// False only for single-rack clusters (all replicas local).
    has_mirror: bool,
    object_bytes: u64,
    node_ttf: Dist,
    node_replace: Dist,
    rebuild: RebuildModel,
    redundancy: RedundancyScheme,
    detection_s: f64,
    /// Delay of loss/placement/dark notifications: wire + detection.
    d_notify: SimDuration,
    /// Delay of a mirror placement request: wire + transfer estimate.
    d_place: SimDuration,
    part_of_rack: Vec<u32>,
}

impl AvailShared {
    fn home_rack(&self, object: u64) -> usize {
        (object % self.racks as u64) as usize
    }
    fn local_of(&self, object: u64) -> usize {
        (object / self.racks as u64) as usize
    }
    fn buddy(&self, rack: usize) -> usize {
        (rack + 1) % self.racks
    }
    fn prev(&self, rack: usize) -> usize {
        (rack + self.racks - 1) % self.racks
    }
    fn part_of(&self, rack: usize) -> usize {
        self.part_of_rack[rack] as usize
    }
}

/// Availability events. Every variant either carries its destination
/// rack or derives it from the object id (home = `object % racks`).
#[derive(Debug, Clone)]
pub enum AvailEv {
    /// A home-rack node dies (replicas on it destroyed).
    NodeFail { rack: u32, node: u16 },
    /// The node returns to service (empty).
    NodeBack { rack: u32, node: u16 },
    /// Detection fires: queue a home-replica rebuild.
    EnqueueRebuild { object: u64 },
    /// A rebuild stream finished; place the new replica.
    RebuildDone { object: u64 },
    /// Placement retry with exponential backoff.
    RetryPlace { object: u64, delay_s: f64 },
    /// Buddy → home: the hosted mirror's node died.
    MirrorLost { object: u64 },
    /// Home → buddy: place a fresh mirror.
    MirrorPlaceReq { object: u64 },
    /// Buddy → home: placement verdict.
    MirrorPlaced { object: u64, ok: bool },
    /// Home-local backoff before re-requesting a mirror.
    MirrorRetry { object: u64 },
    /// Buddy → home-of-its-mirrors: a full-rack outage started there.
    BuddyDark { rack: u32 },
    /// ... and ended.
    BuddyLit { rack: u32 },
    /// A chaos window opens on this rack's slice of the fault.
    ChaosStart { rack: u32, fault: u32 },
    /// The window closes.
    ChaosEnd { rack: u32, fault: u32 },
}

#[derive(Debug)]
struct LocalFault {
    mark: &'static str,
    until_s: f64,
    effect: LocalEffect,
}

#[derive(Debug, Clone)]
enum LocalEffect {
    /// Local nodes unreachable (data intact). `full_rack` windows also
    /// darken hosted mirrors via `BuddyDark`.
    NodesDown { locals: Vec<u16>, full_rack: bool },
    /// Rebuild streams stretched by this factor while active.
    Slowdown(f64),
    /// Repair concurrency clamp with a backlog breaker.
    Throttle {
        max_parallel: usize,
        breaker_pending: usize,
    },
}

/// One rack's entire mutable state. Object ids are rack-local (`lo`);
/// the global id is `lo * racks + rack`.
#[derive(Debug)]
struct RackCell {
    node_up: Vec<bool>,
    /// Overlapping chaos windows per node (reachability, not durability).
    chaos_down: Vec<u32>,
    /// node → local objects with a home replica there.
    node_objects: NodeLists,
    /// node → *global* object ids whose mirror this rack hosts.
    hosted: NodeLists,
    /// Home-replica holders, stride `local_w`.
    holders: Vec<u16>,
    holder_len: Vec<u8>,
    mirror_exists: Vec<bool>,
    operable: Vec<bool>,
    lost: Vec<bool>,
    became_unavailable: Vec<SimTime>,
    unavail_s: Vec<f64>,
    queue: RepairQueue,
    /// `(global object, enqueue time)` for wait accounting.
    pending_mirror: VecDeque<(u64, SimTime)>,
    rebuild_waits: Tally,
    /// Rack dynamics stream (failure rearm, rebuild draws, target picks).
    rng: Stream,
    /// Our buddy rack (hosting our mirrors) is in a full-rack outage.
    buddy_dark: bool,
    /// Our own active full-rack chaos windows.
    dark_windows: u32,
    faults: Vec<LocalFault>,
    slowdowns: Vec<(u32, f64)>,
    /// `(fault, saved max_parallel, breaker_pending)` while throttled.
    saved_parallel: Option<(u32, usize, usize)>,
    node_failures: u64,
    unavailability_events: u64,
    rebuilds_completed: u64,
    scratch: Vec<u32>,
}

impl RackCell {
    fn reachable(&self, node: usize) -> bool {
        self.node_up[node] && self.chaos_down[node] == 0
    }

    /// Recomputes operability/durability of one object; returns true if
    /// it just became lost (caller marks and cancels repairs).
    fn update_object(&mut self, sh: &AvailShared, lo: usize, now: SimTime) -> bool {
        let len = self.holder_len[lo] as usize;
        let base = lo * sh.local_w;
        let mut up = 0usize;
        for k in 0..len {
            if self.reachable(self.holders[base + k] as usize) {
                up += 1;
            }
        }
        if self.mirror_exists[lo] && !self.buddy_dark {
            up += 1;
        }
        let operable = !self.lost[lo] && sh.redundancy.operable(up);
        if operable != self.operable[lo] {
            if operable {
                self.unavail_s[lo] += now.since(self.became_unavailable[lo]).as_secs();
            } else {
                self.became_unavailable[lo] = now;
                self.unavailability_events += 1;
            }
            self.operable[lo] = operable;
        }
        // Durability: all home replicas destroyed and no mirror. Zero
        // intact replicas also means zero reachable ones, so the
        // operability transition above has already fired.
        let newly_lost = !self.lost[lo] && len == 0 && !self.mirror_exists[lo];
        if newly_lost {
            self.lost[lo] = true;
        }
        newly_lost
    }

    fn remove_holder(&mut self, sh: &AvailShared, lo: usize, node: u16) {
        let base = lo * sh.local_w;
        let len = self.holder_len[lo] as usize;
        if let Some(k) = (0..len).position(|k| self.holders[base + k] == node) {
            self.holders[base + k] = self.holders[base + len - 1];
            self.holder_len[lo] -= 1;
        }
    }

    /// A live local node not already holding `lo`, drawn from the rack
    /// stream; `None` when the rack has no eligible node right now.
    fn pick_target(&mut self, sh: &AvailShared, lo: usize) -> Option<u16> {
        let base = lo * sh.local_w;
        let len = self.holder_len[lo] as usize;
        self.scratch.clear();
        for n in 0..sh.nodes_per_rack {
            let held = (0..len).any(|k| self.holders[base + k] as usize == n);
            if !held && self.reachable(n) {
                self.scratch.push(n as u32);
            }
        }
        if self.scratch.is_empty() {
            return None;
        }
        let pick = self.scratch[self.rng.index(self.scratch.len())] as u16;
        Some(pick)
    }

    fn place_replica(&mut self, sh: &AvailShared, lo: usize, node: u16, now: SimTime) {
        let base = lo * sh.local_w;
        let len = self.holder_len[lo] as usize;
        self.holders[base + len] = node;
        self.holder_len[lo] += 1;
        self.node_objects.push(node as usize, lo as u32);
        self.rebuilds_completed += 1;
        self.update_object(sh, lo, now);
    }

    fn cancel_repairs(&mut self, object: u64) {
        self.queue.cancel(object);
        self.pending_mirror.retain(|&(o, _)| o != object);
    }

    fn rebuild_duration(&mut self, sh: &AvailShared) -> SimDuration {
        let base = match &sh.rebuild {
            RebuildModel::Timed(d) => d.sample(&mut self.rng),
            RebuildModel::Bandwidth { link_gbps, share } => {
                let traffic = sh.redundancy.repair_traffic_bytes(sh.object_bytes);
                traffic as f64 / (link_gbps * 1e9 / 8.0 * share)
            }
        };
        let slow: f64 = self.slowdowns.iter().map(|(_, f)| f).product();
        SimDuration::from_secs(base * slow)
    }
}

/// One partition's worth of racks.
#[derive(Debug)]
pub struct AvailShard {
    shared: Arc<AvailShared>,
    first_rack: usize,
    cells: Vec<RackCell>,
}

impl AvailShard {
    fn dest_rack(sh: &AvailShared, ev: &AvailEv) -> usize {
        match ev {
            AvailEv::NodeFail { rack, .. }
            | AvailEv::NodeBack { rack, .. }
            | AvailEv::ChaosStart { rack, .. }
            | AvailEv::ChaosEnd { rack, .. } => *rack as usize,
            AvailEv::BuddyDark { rack } | AvailEv::BuddyLit { rack } => sh.prev(*rack as usize),
            AvailEv::MirrorPlaceReq { object } => sh.buddy(sh.home_rack(*object)),
            AvailEv::EnqueueRebuild { object }
            | AvailEv::RebuildDone { object }
            | AvailEv::RetryPlace { object, .. }
            | AvailEv::MirrorLost { object }
            | AvailEv::MirrorPlaced { object, .. }
            | AvailEv::MirrorRetry { object } => sh.home_rack(*object),
        }
    }

    fn start_rebuilds(
        sh: &AvailShared,
        cell: &mut RackCell,
        now: SimTime,
        ctx: &mut PartCtx<'_, AvailEv>,
    ) {
        let started = cell.queue.start_ready();
        for task in started {
            let wait = match cell
                .pending_mirror
                .iter()
                .position(|&(o, _)| o == task.object)
            {
                Some(i) => {
                    let (_, at) = cell.pending_mirror.remove(i).expect("index in range");
                    now.since(at).as_secs()
                }
                None => 0.0,
            };
            cell.rebuild_waits.record(wait);
            ctx.observe("rebuild_wait_s", wait);
            let dur = cell.rebuild_duration(sh);
            ctx.schedule_in(
                dur,
                AvailEv::RebuildDone {
                    object: task.object,
                },
            );
        }
    }
}

impl PartitionModel for AvailShard {
    type Event = AvailEv;

    fn label(ev: &AvailEv) -> &'static str {
        match ev {
            AvailEv::NodeFail { .. } => "node_fail",
            AvailEv::NodeBack { .. } => "node_back",
            AvailEv::EnqueueRebuild { .. } => "enqueue_rebuild",
            AvailEv::RebuildDone { .. } => "rebuild_done",
            AvailEv::RetryPlace { .. } => "retry_place",
            AvailEv::MirrorLost { .. } => "mirror_lost",
            AvailEv::MirrorPlaceReq { .. } => "mirror_place_req",
            AvailEv::MirrorPlaced { .. } => "mirror_placed",
            AvailEv::MirrorRetry { .. } => "mirror_retry",
            AvailEv::BuddyDark { .. } => "buddy_dark",
            AvailEv::BuddyLit { .. } => "buddy_lit",
            AvailEv::ChaosStart { .. } => "chaos_start",
            AvailEv::ChaosEnd { .. } => "chaos_end",
        }
    }

    fn handle(&mut self, ev: AvailEv, ctx: &mut PartCtx<'_, AvailEv>) {
        let now = ctx.now();
        let sh = Arc::clone(&self.shared);
        let rack = Self::dest_rack(&sh, &ev);
        let cell = &mut self.cells[rack - self.first_rack];
        match ev {
            AvailEv::NodeFail { node, .. } => {
                let n = node as usize;
                if !cell.node_up[n] {
                    return;
                }
                cell.node_up[n] = false;
                cell.node_failures += 1;
                // Home replicas on the node are destroyed.
                let mut lost_objs = std::mem::take(&mut cell.scratch);
                lost_objs.clear();
                cell.node_objects.drain_into(n, &mut lost_objs);
                for &lo32 in &lost_objs {
                    let lo = lo32 as usize;
                    cell.remove_holder(&sh, lo, node);
                    let g = lo as u64 * sh.racks as u64 + rack as u64;
                    if cell.update_object(&sh, lo, now) {
                        ctx.mark("object_lost");
                        cell.cancel_repairs(g);
                    } else if !cell.lost[lo] {
                        ctx.schedule_in(
                            SimDuration::from_secs(sh.detection_s),
                            AvailEv::EnqueueRebuild { object: g },
                        );
                    }
                }
                cell.scratch = lost_objs;
                // Hosted mirrors are destroyed too: notify each home.
                let mut mirrors = Vec::new();
                cell.hosted.drain_into(n, &mut mirrors);
                for &g32 in &mirrors {
                    let g = g32 as u64;
                    ctx.send(
                        sh.part_of(sh.home_rack(g)),
                        sh.d_notify,
                        rack as u64,
                        AvailEv::MirrorLost { object: g },
                    );
                }
                let back = SimDuration::from_secs(sh.node_replace.sample(&mut cell.rng));
                ctx.schedule_in(
                    back,
                    AvailEv::NodeBack {
                        rack: rack as u32,
                        node,
                    },
                );
            }
            AvailEv::NodeBack { node, .. } => {
                cell.node_up[node as usize] = true;
                let next = SimDuration::from_secs(sh.node_ttf.sample(&mut cell.rng));
                ctx.schedule_in(
                    next,
                    AvailEv::NodeFail {
                        rack: rack as u32,
                        node,
                    },
                );
            }
            AvailEv::EnqueueRebuild { object } => {
                let lo = sh.local_of(object);
                if cell.lost[lo] || cell.holder_len[lo] as usize >= sh.local_w {
                    return;
                }
                cell.queue.enqueue(RepairTask {
                    object,
                    bytes: sh.object_bytes,
                });
                cell.pending_mirror.push_back((object, now));
                if let Some((_, saved, breaker)) = cell.saved_parallel {
                    if cell.queue.pending_len() > breaker {
                        cell.queue.set_max_parallel(saved);
                        cell.saved_parallel = None;
                    }
                }
                Self::start_rebuilds(&sh, cell, now, ctx);
            }
            AvailEv::RebuildDone { object } => {
                cell.queue.complete_one();
                let lo = sh.local_of(object);
                if !cell.lost[lo] && (cell.holder_len[lo] as usize) < sh.local_w {
                    match cell.pick_target(&sh, lo) {
                        Some(n) => {
                            cell.place_replica(&sh, lo, n, now);
                            ctx.touch("objects_rebuilt", object);
                        }
                        None => ctx.schedule_in(
                            SimDuration::from_secs(60.0),
                            AvailEv::RetryPlace {
                                object,
                                delay_s: 60.0,
                            },
                        ),
                    }
                }
                Self::start_rebuilds(&sh, cell, now, ctx);
            }
            AvailEv::RetryPlace { object, delay_s } => {
                let lo = sh.local_of(object);
                if cell.lost[lo] || cell.holder_len[lo] as usize >= sh.local_w {
                    return;
                }
                match cell.pick_target(&sh, lo) {
                    Some(n) => {
                        cell.place_replica(&sh, lo, n, now);
                        ctx.touch("objects_rebuilt", object);
                    }
                    None => {
                        let next = (delay_s * 2.0).min(86_400.0);
                        ctx.schedule_in(
                            SimDuration::from_secs(next),
                            AvailEv::RetryPlace {
                                object,
                                delay_s: next,
                            },
                        );
                    }
                }
            }
            AvailEv::MirrorLost { object } => {
                let lo = sh.local_of(object);
                if cell.lost[lo] {
                    return;
                }
                cell.mirror_exists[lo] = false;
                if cell.update_object(&sh, lo, now) {
                    ctx.mark("object_lost");
                    cell.cancel_repairs(object);
                } else {
                    ctx.send(
                        sh.part_of(sh.buddy(rack)),
                        sh.d_place,
                        rack as u64,
                        AvailEv::MirrorPlaceReq { object },
                    );
                }
            }
            AvailEv::MirrorPlaceReq { object } => {
                // We are the buddy: host a fresh mirror on a live node.
                cell.scratch.clear();
                for n in 0..sh.nodes_per_rack {
                    if cell.reachable(n) {
                        cell.scratch.push(n as u32);
                    }
                }
                let ok = !cell.scratch.is_empty();
                if ok {
                    let n = cell.scratch[cell.rng.index(cell.scratch.len())] as usize;
                    cell.hosted.push(n, object as u32);
                }
                ctx.send(
                    sh.part_of(sh.home_rack(object)),
                    sh.d_notify,
                    rack as u64,
                    AvailEv::MirrorPlaced { object, ok },
                );
            }
            AvailEv::MirrorPlaced { object, ok } => {
                let lo = sh.local_of(object);
                if cell.lost[lo] {
                    return;
                }
                if ok {
                    cell.mirror_exists[lo] = true;
                    cell.update_object(&sh, lo, now);
                } else {
                    ctx.schedule_in(
                        SimDuration::from_secs(3_600.0),
                        AvailEv::MirrorRetry { object },
                    );
                }
            }
            AvailEv::MirrorRetry { object } => {
                let lo = sh.local_of(object);
                if cell.lost[lo] || cell.mirror_exists[lo] {
                    return;
                }
                ctx.send(
                    sh.part_of(sh.buddy(rack)),
                    sh.d_place,
                    rack as u64,
                    AvailEv::MirrorPlaceReq { object },
                );
            }
            AvailEv::BuddyDark { .. } => {
                cell.buddy_dark = true;
                for lo in 0..cell.operable.len() {
                    if cell.mirror_exists[lo] {
                        cell.update_object(&sh, lo, now);
                    }
                }
            }
            AvailEv::BuddyLit { .. } => {
                cell.buddy_dark = false;
                for lo in 0..cell.operable.len() {
                    if cell.mirror_exists[lo] {
                        cell.update_object(&sh, lo, now);
                    }
                }
            }
            AvailEv::ChaosStart { fault, .. } => {
                let lf = &cell.faults[fault as usize];
                ctx.mark(lf.mark);
                let until = lf.until_s;
                let effect = lf.effect.clone();
                match effect {
                    LocalEffect::NodesDown { locals, full_rack } => {
                        for &n in &locals {
                            cell.chaos_down[n as usize] += 1;
                        }
                        reassess_nodes(&sh, cell, &locals, now);
                        if full_rack {
                            cell.dark_windows += 1;
                            if cell.dark_windows == 1 && sh.has_mirror {
                                ctx.send(
                                    sh.part_of(sh.prev(rack)),
                                    sh.d_notify,
                                    rack as u64,
                                    AvailEv::BuddyDark { rack: rack as u32 },
                                );
                            }
                        }
                    }
                    LocalEffect::Slowdown(f) => {
                        cell.slowdowns.push((fault, f));
                    }
                    LocalEffect::Throttle {
                        max_parallel,
                        breaker_pending,
                    } => {
                        if cell.saved_parallel.is_none() {
                            let saved = cell.queue.policy().max_parallel;
                            cell.saved_parallel = Some((fault, saved, breaker_pending));
                            cell.queue.set_max_parallel(max_parallel);
                        }
                    }
                }
                ctx.schedule_at(
                    SimTime::from_secs(until).max(now),
                    AvailEv::ChaosEnd {
                        rack: rack as u32,
                        fault,
                    },
                );
            }
            AvailEv::ChaosEnd { fault, .. } => {
                ctx.mark("chaos_restore");
                let effect = cell.faults[fault as usize].effect.clone();
                match effect {
                    LocalEffect::NodesDown { locals, full_rack } => {
                        for &n in &locals {
                            cell.chaos_down[n as usize] -= 1;
                        }
                        reassess_nodes(&sh, cell, &locals, now);
                        if full_rack {
                            cell.dark_windows -= 1;
                            if cell.dark_windows == 0 && sh.has_mirror {
                                ctx.send(
                                    sh.part_of(sh.prev(rack)),
                                    sh.d_notify,
                                    rack as u64,
                                    AvailEv::BuddyLit { rack: rack as u32 },
                                );
                            }
                        }
                    }
                    LocalEffect::Slowdown(_) => {
                        cell.slowdowns.retain(|&(i, _)| i != fault);
                    }
                    LocalEffect::Throttle { .. } => {
                        if let Some((i, saved, _)) = cell.saved_parallel {
                            if i == fault {
                                cell.queue.set_max_parallel(saved);
                                cell.saved_parallel = None;
                                Self::start_rebuilds(&sh, cell, now, ctx);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Re-derives operability for every object with a home replica on any of
/// `nodes` (reachability changed; durability did not).
fn reassess_nodes(sh: &AvailShared, cell: &mut RackCell, nodes: &[u16], now: SimTime) {
    let mut affected = std::mem::take(&mut cell.scratch);
    affected.clear();
    for &n in nodes {
        cell.node_objects.extend_into(n as usize, &mut affected);
    }
    affected.sort_unstable();
    affected.dedup();
    for &lo in &affected {
        cell.update_object(sh, lo as usize, now);
    }
    cell.scratch = affected;
}

// ---------------------------------------------------------------------------
// Performance engine
// ---------------------------------------------------------------------------

/// Request-level performance with rack-sharded state: the partitioned
/// counterpart of [`crate::PerfModel`]. Tenants are homed round-robin on
/// racks; a configurable fraction of reads takes a cross-rack leg
/// (remote disk read in the buddy rack plus the transfer back), which is
/// the only cross-partition traffic. Lookahead comes straight from
/// [`wt_hw::Topology::partition_by`]'s minimum inter-rack path latency.
#[derive(Debug, Clone)]
pub struct PartitionedPerf {
    /// Hardware build-out (racks are the sharding unit).
    pub topology: TopologySpec,
    /// Tenant workloads, homed round-robin across racks.
    pub tenants: Vec<TenantWorkload>,
    /// Fraction of reads served from the buddy rack.
    pub remote_read_fraction: f64,
    /// Future-event-list backend for every partition's queue.
    pub queue: QueueBackend,
}

impl PartitionedPerf {
    /// Runs and returns per-tenant latency/throughput plus cluster
    /// utilizations. `partitions == 1` is the serial oracle.
    pub fn run(&self, seed: u64, horizon_s: f64, partitions: usize, threads: usize) -> PerfResult {
        match self.queue {
            QueueBackend::Heap => {
                self.run_on::<EventQueue<PerfEv>>(seed, horizon_s, partitions, threads)
            }
            QueueBackend::Calendar => {
                self.run_on::<CalendarQueue<PerfEv>>(seed, horizon_s, partitions, threads)
            }
        }
    }

    /// [`PartitionedPerf::run`] with folded per-partition telemetry.
    pub fn run_observed(
        &self,
        seed: u64,
        horizon_s: f64,
        partitions: usize,
        threads: usize,
    ) -> (PerfResult, RunTelemetry) {
        match self.queue {
            QueueBackend::Heap => {
                self.run_observed_on::<EventQueue<PerfEv>>(seed, horizon_s, partitions, threads)
            }
            QueueBackend::Calendar => {
                self.run_observed_on::<CalendarQueue<PerfEv>>(seed, horizon_s, partitions, threads)
            }
        }
    }

    fn run_on<Q: PendingEvents<PerfEv> + Default + Send>(
        &self,
        seed: u64,
        horizon_s: f64,
        partitions: usize,
        threads: usize,
    ) -> PerfResult {
        let mut sim = self.build::<Q>(seed, partitions);
        sim.run_until_threaded(SimTime::from_secs(horizon_s), threads);
        self.finish(&sim)
    }

    fn run_observed_on<Q: PendingEvents<PerfEv> + Default + Send>(
        &self,
        seed: u64,
        horizon_s: f64,
        partitions: usize,
        threads: usize,
    ) -> (PerfResult, RunTelemetry) {
        let mut sim = self.build::<Q>(seed, partitions);
        let mut probes: Vec<SimProbe> = (0..sim.parts()).map(|_| SimProbe::new()).collect();
        let reason = sim.run_until_probed(SimTime::from_secs(horizon_s), threads, &mut probes);
        let telemetry = fold_partition_telemetry(
            &probes,
            &sim.part_events(),
            sim.now().as_secs(),
            reason.as_str(),
            self.queue,
        );
        (self.finish(&sim), telemetry)
    }

    fn build<Q: PendingEvents<PerfEv> + Default + Send>(
        &self,
        seed: u64,
        partitions: usize,
    ) -> PartitionedSimulation<PerfShard, Q> {
        let racks = self.topology.racks;
        let npr = self.topology.nodes_per_rack;
        assert!(racks > 0 && npr > 0, "empty topology");
        let topo = self.topology.build();
        let parting = topo.partition_by(PartitionGranularity::Count(partitions));
        let shared = Arc::new(PerfShared {
            racks,
            nodes_per_rack: npr,
            topology: self.topology.clone(),
            remote_read_fraction: self.remote_read_fraction,
            tenants: self.tenants.clone(),
            d_wire: SimDuration::from_secs(parting.min_cross_latency_s),
            part_of_rack: part_of_rack_table(&parting.rack_ranges, racks),
        });
        let mut boot: Vec<(usize, SimTime, PerfEv)> = Vec::new();
        let mut cells: Vec<PerfCell> = (0..racks)
            .map(|r| {
                let factory = RngFactory::new(seed).subfactory("rack", r as u64);
                PerfCell {
                    rack: r as u32,
                    disk: (0..npr)
                        .map(|_| {
                            ServerPool::new(self.topology.node.disks.len().max(1), SimTime::ZERO)
                        })
                        .collect(),
                    nic: (0..npr)
                        .map(|_| ServerPool::new(1, SimTime::ZERO))
                        .collect(),
                    reqs: HashMap::new(),
                    remote: HashMap::new(),
                    tenants: Vec::new(),
                    rng: factory.stream("dynamics"),
                    next_rid: 0,
                }
            })
            .collect();
        // Tenants homed round-robin; first arrival drawn from the home
        // rack's stream so partitioning never reorders draws.
        for (t, tw) in self.tenants.iter().enumerate() {
            let home = t % racks;
            let cell = &mut cells[home];
            cell.tenants.push(TenantCell {
                zipf: tw.mix.make_zipf(),
                lat: Histogram::new(),
                sketch: QuantileSketch::new(),
                completed: 0,
            });
            let gap = tw.arrivals.next_gap(&mut cell.rng);
            boot.push((
                shared.part_of(home),
                SimTime::from_secs(gap),
                PerfEv::Arrival { tenant: t as u32 },
            ));
        }
        let shards: Vec<PerfShard> = parting
            .rack_ranges
            .iter()
            .map(|range| PerfShard {
                shared: Arc::clone(&shared),
                first_rack: range.start,
                cells: cells.drain(..range.len()).collect(),
            })
            .collect();
        let mut sim = PartitionedSimulation::new(
            shards,
            seed,
            Lookahead::from_secs(parting.min_cross_latency_s),
        );
        for (part, at, ev) in boot {
            sim.schedule_at(part, at, ev);
        }
        sim
    }

    fn finish<Q: PendingEvents<PerfEv> + Default + Send>(
        &self,
        sim: &PartitionedSimulation<PerfShard, Q>,
    ) -> PerfResult {
        let end = sim.now();
        let horizon_s = end.since(SimTime::ZERO).as_secs();
        // Tenant cells in original scenario order: tenant t is local
        // tenant t / racks in rack t % racks.
        let cells: Vec<&PerfCell> = sim.models().flat_map(|s| s.cells.iter()).collect();
        let racks = self.topology.racks;
        let tenants = self
            .tenants
            .iter()
            .enumerate()
            .map(|(t, tw)| {
                let tc = &cells[t % racks].tenants[t / racks];
                let (q, _) = tw.latency_sla.unwrap_or((0.95, f64::INFINITY));
                TenantPerf {
                    name: tw.name.clone(),
                    completed: tc.completed,
                    failed: 0,
                    mean_s: tc.lat.mean(),
                    p50_s: tc.lat.p50(),
                    p95_s: tc.lat.p95(),
                    p99_s: tc.lat.p99(),
                    sketch_p50_s: Some(tc.sketch.p50()),
                    sketch_p95_s: Some(tc.sketch.p95()),
                    sketch_p99_s: Some(tc.sketch.p99()),
                    sketch_sla_met: tw.latency_sla.map(|_| tw.sla_met(tc.sketch.quantile(q))),
                    throughput: if horizon_s > 0.0 {
                        tc.completed as f64 / horizon_s
                    } else {
                        0.0
                    },
                    sla_met: tw.latency_sla.map(|_| tw.sla_met(tc.lat.quantile(q))),
                }
            })
            .collect();
        let n = (racks * self.topology.nodes_per_rack) as f64;
        let disk_util: f64 = cells
            .iter()
            .flat_map(|c| c.disk.iter())
            .map(|p| p.utilization(end))
            .sum();
        let nic_util: f64 = cells
            .iter()
            .flat_map(|c| c.nic.iter())
            .map(|p| p.utilization(end))
            .sum();
        PerfResult {
            tenants,
            node_failures: 0,
            mean_disk_utilization: disk_util / n,
            mean_nic_utilization: nic_util / n,
            horizon_s,
        }
    }
}

#[derive(Debug)]
struct PerfShared {
    racks: usize,
    nodes_per_rack: usize,
    topology: TopologySpec,
    remote_read_fraction: f64,
    tenants: Vec<TenantWorkload>,
    /// Minimum inter-rack path latency — both the message floor and the
    /// lookahead.
    d_wire: SimDuration,
    part_of_rack: Vec<u32>,
}

impl PerfShared {
    fn part_of(&self, rack: usize) -> usize {
        self.part_of_rack[rack] as usize
    }
    fn buddy(&self, rack: usize) -> usize {
        (rack + 1) % self.racks
    }
    fn home_of(rid: u64) -> usize {
        (rid >> 40) as usize
    }
    fn disk_service(&self, bytes: u64, sequential: bool, write: bool) -> SimDuration {
        let disk = &self.topology.node.disks[0];
        SimDuration::from_secs(disk.service_time(bytes, sequential, write))
    }
    fn nic_service(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs(self.topology.node.nic.transfer_time(bytes))
    }
    /// Cross-rack leg: wire floor plus the NIC-rate transfer.
    fn remote_delay(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs(self.d_wire.as_secs() + self.topology.node.nic.transfer_time(bytes))
    }
}

/// Performance events; `rid`'s upper bits carry the home rack.
#[derive(Debug, Clone)]
pub enum PerfEv {
    /// Next open-loop arrival for a tenant (dest: tenant's home rack).
    Arrival { tenant: u32 },
    /// A disk job completed at `(rack, node)`.
    DiskDone { rack: u32, node: u16, rid: u64 },
    /// A NIC transfer completed at the request's home rack.
    NicDone { rack: u32, rid: u64 },
    /// Home → buddy: serve this read remotely.
    RemoteRead { rid: u64, bytes: u64 },
    /// Buddy → home: remote leg finished, complete the request.
    RemoteDone { rid: u64 },
}

#[derive(Debug)]
struct PReq {
    /// Local tenant index in the home rack.
    tenant: u16,
    start: SimTime,
    bytes: u64,
    write: bool,
    sequential: bool,
    remote: bool,
    /// Serving node (local index) for the disk and NIC stages.
    node: u16,
}

#[derive(Debug)]
struct TenantCell {
    zipf: Zipf,
    lat: Histogram,
    sketch: QuantileSketch,
    completed: u64,
}

#[derive(Debug)]
struct PerfCell {
    rack: u32,
    /// Per-node disk array (c-server FIFO) and NIC (1-server FIFO).
    disk: Vec<ServerPool<u64>>,
    nic: Vec<ServerPool<u64>>,
    /// In-flight home requests by rid.
    reqs: HashMap<u64, PReq>,
    /// Hosted foreign (remote-read) jobs: rid → bytes.
    remote: HashMap<u64, u64>,
    tenants: Vec<TenantCell>,
    rng: Stream,
    next_rid: u64,
}

impl PerfCell {
    fn alloc_rid(&mut self) -> u64 {
        let rid = ((self.rack as u64) << 40) | self.next_rid;
        self.next_rid += 1;
        rid
    }

    /// Service time of a disk job known to this rack (home or hosted).
    fn disk_service_of(&self, sh: &PerfShared, rid: u64) -> SimDuration {
        if PerfShared::home_of(rid) == self.rack as usize {
            let r = &self.reqs[&rid];
            sh.disk_service(r.bytes, r.sequential, r.write)
        } else {
            sh.disk_service(self.remote[&rid], false, false)
        }
    }

    fn complete(&mut self, rid: u64, now: SimTime, ctx: &mut PartCtx<'_, PerfEv>) {
        let req = self.reqs.remove(&rid).expect("completed request known");
        let lat = now.since(req.start).as_secs();
        let tc = &mut self.tenants[req.tenant as usize];
        tc.lat.record(lat);
        tc.sketch.record(lat);
        tc.completed += 1;
        ctx.observe("request_latency_s", lat);
    }
}

/// One partition's worth of racks (perf engine).
#[derive(Debug)]
pub struct PerfShard {
    shared: Arc<PerfShared>,
    first_rack: usize,
    cells: Vec<PerfCell>,
}

impl PerfShard {
    fn dest_rack(sh: &PerfShared, ev: &PerfEv) -> usize {
        match ev {
            PerfEv::Arrival { tenant } => *tenant as usize % sh.racks,
            PerfEv::DiskDone { rack, .. } | PerfEv::NicDone { rack, .. } => *rack as usize,
            PerfEv::RemoteRead { rid, .. } => sh.buddy(PerfShared::home_of(*rid)),
            PerfEv::RemoteDone { rid } => PerfShared::home_of(*rid),
        }
    }
}

impl PartitionModel for PerfShard {
    type Event = PerfEv;

    fn label(ev: &PerfEv) -> &'static str {
        match ev {
            PerfEv::Arrival { .. } => "arrival",
            PerfEv::DiskDone { .. } => "disk_done",
            PerfEv::NicDone { .. } => "nic_done",
            PerfEv::RemoteRead { .. } => "remote_read",
            PerfEv::RemoteDone { .. } => "remote_done",
        }
    }

    fn handle(&mut self, ev: PerfEv, ctx: &mut PartCtx<'_, PerfEv>) {
        let now = ctx.now();
        let sh = Arc::clone(&self.shared);
        let rack = Self::dest_rack(&sh, &ev);
        let cell = &mut self.cells[rack - self.first_rack];
        match ev {
            PerfEv::Arrival { tenant } => {
                let t = tenant as usize;
                let lt = t / sh.racks;
                let tw = &sh.tenants[t];
                let req = tw
                    .mix
                    .draw_request(t, &cell.tenants[lt].zipf, &mut cell.rng);
                let remote = sh.racks > 1 && !req.write && cell.rng.chance(sh.remote_read_fraction);
                let node = cell.rng.index(sh.nodes_per_rack) as u16;
                let rid = cell.alloc_rid();
                cell.reqs.insert(
                    rid,
                    PReq {
                        tenant: lt as u16,
                        start: now,
                        bytes: req.bytes,
                        write: req.write,
                        sequential: req.sequential,
                        remote,
                        node,
                    },
                );
                if let Some(job) = cell.disk[node as usize].arrive(now, rid) {
                    let dur = cell.disk_service_of(&sh, job);
                    ctx.schedule_in(
                        dur,
                        PerfEv::DiskDone {
                            rack: rack as u32,
                            node,
                            rid: job,
                        },
                    );
                }
                let gap = tw.arrivals.next_gap(&mut cell.rng);
                ctx.schedule_in(SimDuration::from_secs(gap), PerfEv::Arrival { tenant });
            }
            PerfEv::DiskDone { node, rid, .. } => {
                if let Some(next) = cell.disk[node as usize].depart(now) {
                    let dur = cell.disk_service_of(&sh, next);
                    ctx.schedule_in(
                        dur,
                        PerfEv::DiskDone {
                            rack: rack as u32,
                            node,
                            rid: next,
                        },
                    );
                }
                if PerfShared::home_of(rid) == rack {
                    // Home request: stream through the node NIC.
                    if let Some(job) = cell.nic[node as usize].arrive(now, rid) {
                        let b = cell.reqs[&job].bytes;
                        ctx.schedule_in(
                            sh.nic_service(b),
                            PerfEv::NicDone {
                                rack: rack as u32,
                                rid: job,
                            },
                        );
                    }
                } else {
                    // Hosted remote read: ship the data home.
                    let bytes = cell.remote.remove(&rid).expect("hosted job known");
                    ctx.send(
                        sh.part_of(PerfShared::home_of(rid)),
                        sh.remote_delay(bytes),
                        rack as u64,
                        PerfEv::RemoteDone { rid },
                    );
                }
            }
            PerfEv::NicDone { rid, .. } => {
                let (node, remote, bytes) = {
                    let r = &cell.reqs[&rid];
                    (r.node as usize, r.remote, r.bytes)
                };
                if let Some(next) = cell.nic[node].depart(now) {
                    let b = cell.reqs[&next].bytes;
                    ctx.schedule_in(
                        sh.nic_service(b),
                        PerfEv::NicDone {
                            rack: rack as u32,
                            rid: next,
                        },
                    );
                }
                if remote {
                    ctx.send(
                        sh.part_of(sh.buddy(rack)),
                        sh.remote_delay(bytes),
                        rack as u64,
                        PerfEv::RemoteRead { rid, bytes },
                    );
                } else {
                    cell.complete(rid, now, ctx);
                }
            }
            PerfEv::RemoteRead { rid, bytes } => {
                let node = cell.rng.index(sh.nodes_per_rack);
                cell.remote.insert(rid, bytes);
                if let Some(job) = cell.disk[node].arrive(now, rid) {
                    let dur = cell.disk_service_of(&sh, job);
                    ctx.schedule_in(
                        dur,
                        PerfEv::DiskDone {
                            rack: rack as u32,
                            node: node as u16,
                            rid: job,
                        },
                    );
                }
            }
            PerfEv::RemoteDone { rid } => {
                cell.complete(rid, now, ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{FaultKind, FaultSchedule, InjectionRule};
    use wt_hw::catalog;

    fn avail_model() -> PartitionedAvailability {
        let mut m = PartitionedAvailability::example(6, 8, 300);
        m.node_ttf = Dist::exponential_mean(5.0 * 86_400.0);
        m.node_replace = Dist::exponential_mean(4.0 * 3_600.0);
        m
    }

    const HORIZON: f64 = 90.0 * 86_400.0;

    #[test]
    fn availability_thread_count_is_bitwise_invisible() {
        let m = avail_model();
        let (serial, t_serial) = m.run_observed(7, HORIZON, 4, 1);
        for threads in [2, 4] {
            let (r, t) = m.run_observed(7, HORIZON, 4, threads);
            assert_eq!(serial, r, "threads={threads}");
            assert_eq!(t_serial.masked(), t.masked(), "threads={threads}");
        }
    }

    #[test]
    fn availability_partition_count_is_semantically_invisible() {
        let m = avail_model();
        let oracle = m.run(11, HORIZON, 1, 1);
        assert!(oracle.node_failures > 0, "dynamics exercised");
        assert!(oracle.rebuilds_completed > 0, "repairs exercised");
        for partitions in [2, 3, 6] {
            assert_eq!(oracle, m.run(11, HORIZON, partitions, 2), "N={partitions}");
        }
    }

    #[test]
    fn availability_backends_agree_and_mirrors_flow() {
        let mut m = avail_model();
        let (heap, t) = m.run_observed(3, HORIZON, 3, 2);
        m.queue = QueueBackend::Calendar;
        let (cal, tc) = m.run_observed(3, HORIZON, 3, 2);
        assert_eq!(heap, cal);
        assert_eq!(t.masked().events_by_label, tc.masked().events_by_label);
        // The cross-partition protocol actually ran.
        assert!(t.events_by_label["mirror_lost"] > 0);
        assert!(t.events_by_label["mirror_placed"] > 0);
        // Per-partition totals cover the whole run.
        let part_total: u64 = (0..3).map(|i| t.marks[&format!("partition/{i}")]).sum();
        assert_eq!(part_total, t.events);
        assert!(heap.availability > 0.0 && heap.availability <= 1.0);
        assert_eq!(t.events, heap.sim_events);
    }

    #[test]
    fn cross_partition_power_domain_loss_is_partitioning_invariant() {
        // A power-domain loss spanning racks 2..4 — racks that land in
        // *different* partitions at N=3 (ranges [0,2), [2,4), [4,6) put
        // the domain inside one, but N=6 splits every rack apart) — must
        // fire identically to the serial path.
        let mut m = avail_model();
        m.chaos = Some(ChaosConfig {
            schedule: FaultSchedule {
                rules: vec![InjectionRule {
                    name: "power loss racks 2..4".into(),
                    at_s: 10.0 * 86_400.0,
                    fault: FaultKind::PowerDomainLoss {
                        first_rack: 2,
                        racks: 2,
                        restore_s: 12.0 * 3_600.0,
                    },
                }],
            },
            nodes_per_rack: m.nodes_per_rack,
        });
        let oracle = m.run_observed(5, HORIZON, 1, 1);
        assert!(
            oracle.1.marks.get("inject_power_loss").copied() == Some(2),
            "both affected racks mark the injection: {:?}",
            oracle.1.marks
        );
        assert!(oracle.0.unavailability_events > 0);
        for (partitions, threads) in [(2, 2), (3, 2), (6, 4)] {
            let got = m.run_observed(5, HORIZON, partitions, threads);
            assert_eq!(oracle.0, got.0, "N={partitions}");
            assert_partitioning_invariant(&oracle.1, &got.1, partitions);
        }
    }

    /// Telemetry comparison across *partition counts*: event totals,
    /// labels, marks and sketch sample counts must agree exactly.
    /// Queue-depth gauges (one gauge per queue) and the sketches' f64
    /// running sums (summation order differs) are partitioning-dependent
    /// by construction and excluded — bitwise telemetry equality is
    /// pinned across *thread* counts at fixed partitioning instead.
    fn assert_partitioning_invariant(oracle: &RunTelemetry, got: &RunTelemetry, n: usize) {
        let (mut a, mut b) = (oracle.masked(), got.masked());
        for t in [&mut a, &mut b] {
            t.marks.retain(|k, _| !k.starts_with("partition/"));
            t.peak_queue_depth = 0;
            t.mean_queue_depth = 0.0;
        }
        let (sa, sb) = (a.sketches.take(), b.sketches.take());
        assert_eq!(a, b, "N={n}");
        match (sa, sb) {
            (Some(sa), Some(sb)) => {
                let counts = |s: &wt_des::obs::SketchSet| -> Vec<(String, u64)> {
                    s.values
                        .iter()
                        .map(|(k, v)| (k.clone(), v.count()))
                        .collect()
                };
                assert_eq!(counts(&sa), counts(&sb), "N={n}");
            }
            (sa, sb) => assert_eq!(sa.is_some(), sb.is_some(), "N={n}"),
        }
    }

    #[test]
    fn single_rack_cluster_degenerates_to_local_replication() {
        let mut m = avail_model();
        m.racks = 1;
        m.objects = 60;
        let r = m.run(2, HORIZON, 4, 2);
        assert_eq!(r, m.run(2, HORIZON, 1, 1));
        assert!(r.availability > 0.9);
    }

    fn perf_model() -> PartitionedPerf {
        PartitionedPerf {
            topology: TopologySpec {
                racks: 4,
                nodes_per_rack: 4,
                node: catalog::node_storage_server(catalog::ssd_sata_1t(), 4, catalog::nic_10g()),
                tor: catalog::switch_tor_48x10g(),
                agg: catalog::switch_agg_32x40g(),
                oversubscription: 4.0,
            },
            tenants: vec![
                TenantWorkload::oltp("oltp", 40.0, 100_000),
                TenantWorkload::analytics("scan", 2.0, 10_000),
                TenantWorkload::oltp("kv", 25.0, 50_000),
            ],
            remote_read_fraction: 0.3,
            queue: QueueBackend::Heap,
        }
    }

    #[test]
    fn perf_partition_and_thread_counts_are_invisible() {
        let m = perf_model();
        let (oracle, t_oracle) = m.run_observed(9, 600.0, 1, 1);
        let total: u64 = oracle.tenants.iter().map(|t| t.completed).sum();
        assert!(total > 1_000, "workload ran: {total}");
        assert!(
            t_oracle.events_by_label["remote_read"] > 0,
            "cross-rack legs exercised"
        );
        for (partitions, threads) in [(2, 1), (2, 2), (4, 3)] {
            let (r, t) = m.run_observed(9, 600.0, partitions, threads);
            assert_eq!(oracle, r, "N={partitions} threads={threads}");
            assert_partitioning_invariant(&t_oracle, &t, partitions);
        }
    }

    #[test]
    fn perf_tenants_report_in_scenario_order() {
        let m = perf_model();
        let r = m.run(1, 300.0, 4, 2);
        let names: Vec<&str> = r.tenants.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, ["oltp", "scan", "kv"]);
        assert!(r.mean_disk_utilization > 0.0);
        assert!(r.tenants[0].p99_s >= r.tenants[0].p50_s);
    }
}
