//! Declarative chaos: a typed fault schedule compiled into deterministic
//! engine events.
//!
//! The paper's §3 what-if queries and the correlated-failure literature
//! (PAPERS.md: "Modelling Resilience in Cloud-Scale Data Centres") both
//! need failure modes richer than independent exponentials: blast-radius
//! events that take out a power domain or a top-of-rack switch at once,
//! gray-failure storms where a rack neighborhood starts limping rather
//! than failing, planned maintenance windows, and operator throttles on
//! the repair path. A [`FaultSchedule`] declares these as data on the
//! [`Scenario`](crate::Scenario); at setup each engine *compiles* the
//! schedule against the concrete cluster geometry into a list of
//! [`CompiledFault`]s and schedules plain DES events from it.
//!
//! Two determinism rules govern the compilation:
//!
//! * **Per-rule seeds are content-derived.** Each rule's random draws (the
//!   gray-storm per-component slowdowns) come from a sub-stream keyed on
//!   the FNV-1a hash of the rule's serialized content, via the same
//!   substream discipline as the sweep layer's `assignment_hash`.
//!   Reordering rule declarations can never reseed a run; two textually
//!   identical rules draw identical factors by construction.
//! * **Schedule order is content-ordered.** Compiled faults are sorted by
//!   `(time, content hash)`, so same-time faults tie-break on content,
//!   not declaration order.

use serde::{Deserialize, Serialize};
use wt_des::rng::RngFactory;
use wt_hw::limpware::LimpTarget;
use wt_hw::LimpwareSpec;

/// A declarative schedule of fault injections, carried on the
/// [`Scenario`](crate::Scenario) and serialized with it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The injection rules. Declaration order is cosmetic: neither seeds
    /// nor event order depend on it.
    pub rules: Vec<InjectionRule>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Appends a rule (builder style).
    #[must_use]
    pub fn rule(mut self, name: &str, at_s: f64, fault: FaultKind) -> Self {
        self.rules.push(InjectionRule {
            name: name.to_string(),
            at_s,
            fault,
        });
        self
    }

    /// True when there is nothing to inject.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Lowers the schedule against concrete cluster geometry, sampling any
    /// per-rule randomness from `root_seed`-derived content-keyed streams.
    /// The output is identical for every engine given the same inputs.
    pub fn compile(&self, geom: ChaosGeometry, root_seed: u64) -> Vec<CompiledFault> {
        let factory = RngFactory::new(root_seed);
        let mut out: Vec<(u64, CompiledFault)> = Vec::with_capacity(self.rules.len());
        for rule in &self.rules {
            let hash = rule.content_hash();
            let mut rng = factory.numbered("chaos-rule", hash);
            let (until_s, effect) = match &rule.fault {
                FaultKind::PowerDomainLoss {
                    first_rack,
                    racks,
                    restore_s,
                } => (
                    rule.at_s + restore_s,
                    FaultEffect::NodesDown {
                        nodes: geom.rack_span_nodes(*first_rack, *racks),
                    },
                ),
                FaultKind::TorDeath { rack, repair_s } => (
                    rule.at_s + repair_s,
                    FaultEffect::RacksDown {
                        racks: geom.rack_span(*rack, 1),
                    },
                ),
                FaultKind::AggPartition {
                    first_rack,
                    racks,
                    heal_s,
                } => (
                    rule.at_s + heal_s,
                    FaultEffect::RacksDown {
                        racks: geom.rack_span(*first_rack, *racks),
                    },
                ),
                FaultKind::GrayStorm {
                    spec,
                    center_rack,
                    radius_racks,
                    duration_s,
                } => {
                    let lo = center_rack.saturating_sub(*radius_racks);
                    let hi = (center_rack + radius_racks).min(geom.racks().saturating_sub(1));
                    let mut factors = Vec::new();
                    for rack in lo..=hi {
                        for node in geom.rack_span_nodes(rack, 1) {
                            if let Some(f) = spec.roll(&mut rng) {
                                factors.push((node, f));
                            }
                        }
                    }
                    let aggregate = if factors.is_empty() {
                        1.0
                    } else {
                        factors.iter().map(|(_, f)| f).sum::<f64>() / factors.len() as f64
                    };
                    (
                        rule.at_s + duration_s,
                        FaultEffect::Limp {
                            target: spec.target,
                            factors,
                            aggregate,
                        },
                    )
                }
                FaultKind::MaintenanceWindow {
                    first_node,
                    nodes,
                    duration_s,
                } => {
                    let lo = (*first_node).min(geom.n_nodes);
                    let hi = (first_node + nodes).min(geom.n_nodes);
                    (
                        rule.at_s + duration_s,
                        FaultEffect::NodesDown {
                            nodes: (lo..hi).collect(),
                        },
                    )
                }
                FaultKind::RepairThrottle {
                    max_parallel,
                    duration_s,
                    breaker_pending,
                } => (
                    rule.at_s + duration_s,
                    FaultEffect::RepairThrottle {
                        max_parallel: *max_parallel,
                        breaker_pending: *breaker_pending,
                    },
                ),
            };
            out.push((
                hash,
                CompiledFault {
                    mark: rule.fault.mark(),
                    at_s: rule.at_s,
                    until_s,
                    effect,
                },
            ));
        }
        // Content-ordered schedule: by time, then content hash.
        out.sort_by(|a, b| a.1.at_s.total_cmp(&b.1.at_s).then_with(|| a.0.cmp(&b.0)));
        out.into_iter().map(|(_, f)| f).collect()
    }
}

/// One typed injection rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionRule {
    /// Human-readable rule name (documentation only; telemetry marks use
    /// the fault kind's static label so probes stay allocation-free).
    pub name: String,
    /// Injection time, seconds into the run.
    pub at_s: f64,
    /// What is injected.
    pub fault: FaultKind,
}

impl InjectionRule {
    /// FNV-1a hash of the rule's serialized content — the per-rule seed
    /// key and same-time tie-break, so declaration order is irrelevant.
    pub fn content_hash(&self) -> u64 {
        let json = serde_json::to_string(self).expect("injection rule serializes");
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in json.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// The fault archetypes the schedule can declare.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A power domain (a contiguous span of racks) loses power: every node
    /// in it goes unreachable at once, data intact, back after `restore_s`.
    PowerDomainLoss {
        /// First rack of the domain.
        first_rack: usize,
        /// Number of racks in the domain.
        racks: usize,
        /// Seconds until power (and all nodes) return.
        restore_s: f64,
    },
    /// Top-of-rack switch death: one rack unreachable until replaced.
    TorDeath {
        /// The rack whose ToR dies.
        rack: usize,
        /// Seconds until the switch is swapped.
        repair_s: f64,
    },
    /// Aggregation-layer partition: a span of racks cut off from the rest
    /// of the cluster until the partition heals.
    AggPartition {
        /// First rack behind the partition.
        first_rack: usize,
        /// Number of racks behind the partition.
        racks: usize,
        /// Seconds until routing heals.
        heal_s: f64,
    },
    /// Gray-failure storm: the limpware spec is rolled over every node in
    /// a rack neighborhood (`center_rack ± radius_racks`); afflicted
    /// components limp for the duration, then recover.
    GrayStorm {
        /// Which components limp, with what probability and slowdown.
        spec: LimpwareSpec,
        /// Center rack of the storm.
        center_rack: usize,
        /// Neighborhood radius in racks (0 = just the center rack).
        radius_racks: usize,
        /// Storm duration, seconds.
        duration_s: f64,
    },
    /// Planned maintenance: a span of nodes drained (unreachable, data
    /// intact, no repair traffic) for the window.
    MaintenanceWindow {
        /// First node drained.
        first_node: usize,
        /// Number of nodes drained.
        nodes: usize,
        /// Window length, seconds.
        duration_s: f64,
    },
    /// Repair-bandwidth throttle with circuit-breaker semantics: clamp
    /// repair concurrency to `max_parallel` for the duration, but lift the
    /// throttle early if the pending-repair backlog exceeds
    /// `breaker_pending` (the breaker "trips").
    RepairThrottle {
        /// Clamped concurrency (0 pauses repair entirely).
        max_parallel: usize,
        /// Throttle duration, seconds.
        duration_s: f64,
        /// Backlog size that trips the breaker and restores full repair.
        breaker_pending: usize,
    },
}

impl FaultKind {
    /// The static telemetry label recorded when this kind of fault fires.
    pub fn mark(&self) -> &'static str {
        match self {
            FaultKind::PowerDomainLoss { .. } => "inject_power_loss",
            FaultKind::TorDeath { .. } => "inject_tor_death",
            FaultKind::AggPartition { .. } => "inject_agg_partition",
            FaultKind::GrayStorm { .. } => "inject_gray_storm",
            FaultKind::MaintenanceWindow { .. } => "inject_maintenance",
            FaultKind::RepairThrottle { .. } => "inject_repair_throttle",
        }
    }
}

/// What an engine carries: the declared schedule plus the rack width to
/// lower it with (the engines know their own node count).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The declared schedule.
    pub schedule: FaultSchedule,
    /// Nodes per rack, for resolving rack-scoped rules.
    pub nodes_per_rack: usize,
}

impl ChaosConfig {
    /// Compiles the schedule for a cluster of `n_nodes` under `root_seed`.
    pub fn compile(&self, n_nodes: usize, root_seed: u64) -> Vec<CompiledFault> {
        self.schedule.compile(
            ChaosGeometry {
                n_nodes,
                nodes_per_rack: self.nodes_per_rack,
            },
            root_seed,
        )
    }
}

/// The cluster geometry a schedule is lowered against.
#[derive(Debug, Clone, Copy)]
pub struct ChaosGeometry {
    /// Total node count.
    pub n_nodes: usize,
    /// Nodes per rack (rack `r` holds nodes `r*npr .. (r+1)*npr`).
    pub nodes_per_rack: usize,
}

impl ChaosGeometry {
    /// Number of racks (ceiling division).
    pub fn racks(&self) -> usize {
        self.n_nodes.div_ceil(self.nodes_per_rack.max(1))
    }

    /// Rack indices `first .. first+count`, clamped to the cluster.
    fn rack_span(&self, first: usize, count: usize) -> Vec<usize> {
        let lo = first.min(self.racks());
        let hi = (first + count).min(self.racks());
        (lo..hi).collect()
    }

    /// Node indices of a rack span, clamped to the cluster.
    fn rack_span_nodes(&self, first_rack: usize, racks: usize) -> Vec<usize> {
        let npr = self.nodes_per_rack.max(1);
        self.rack_span(first_rack, racks)
            .into_iter()
            .flat_map(|r| {
                let lo = (r * npr).min(self.n_nodes);
                let hi = ((r + 1) * npr).min(self.n_nodes);
                lo..hi
            })
            .collect()
    }
}

/// A rule lowered against concrete geometry: explicit node/rack lists and
/// pre-sampled slowdowns, identical for every engine that compiles it.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFault {
    /// Telemetry mark recorded when the fault fires (static per fault
    /// kind, e.g. `inject_power_loss`).
    pub mark: &'static str,
    /// Fire time, seconds.
    pub at_s: f64,
    /// Restore/heal time, seconds (`at_s` + the rule's duration).
    pub until_s: f64,
    /// The concrete effect.
    pub effect: FaultEffect,
}

/// Concrete, geometry-resolved fault effects.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEffect {
    /// Nodes unreachable (data intact) until `until_s`.
    NodesDown {
        /// Affected node indices.
        nodes: Vec<usize>,
    },
    /// Racks unreachable until `until_s`.
    RacksDown {
        /// Affected rack indices.
        racks: Vec<usize>,
    },
    /// Gray storm: per-component slowdowns, plus the aggregate factor the
    /// availability engine applies to in-storm rebuild streams.
    Limp {
        /// Which component kind limps.
        target: LimpTarget,
        /// `(node, slowdown factor)` for each afflicted component.
        factors: Vec<(usize, f64)>,
        /// Mean slowdown over afflicted components (1.0 if none).
        aggregate: f64,
    },
    /// Repair concurrency clamped until `until_s` or the breaker trips.
    RepairThrottle {
        /// Clamped concurrency (0 = paused).
        max_parallel: usize,
        /// Pending-backlog size that trips the breaker.
        breaker_pending: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> ChaosGeometry {
        ChaosGeometry {
            n_nodes: 30,
            nodes_per_rack: 10,
        }
    }

    fn storm(center: usize) -> FaultKind {
        FaultKind::GrayStorm {
            spec: LimpwareSpec::degraded_nic(0.5),
            center_rack: center,
            radius_racks: 1,
            duration_s: 3_600.0,
        }
    }

    #[test]
    fn power_domain_resolves_node_span() {
        let sched = FaultSchedule::new().rule(
            "pdu",
            100.0,
            FaultKind::PowerDomainLoss {
                first_rack: 1,
                racks: 2,
                restore_s: 50.0,
            },
        );
        let compiled = sched.compile(geom(), 7);
        assert_eq!(compiled.len(), 1);
        assert_eq!(compiled[0].at_s, 100.0);
        assert_eq!(compiled[0].until_s, 150.0);
        assert_eq!(compiled[0].mark, "inject_power_loss");
        match &compiled[0].effect {
            FaultEffect::NodesDown { nodes } => {
                assert_eq!(*nodes, (10..30).collect::<Vec<_>>());
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn spans_clamp_to_cluster() {
        let sched = FaultSchedule::new()
            .rule(
                "part",
                0.0,
                FaultKind::AggPartition {
                    first_rack: 2,
                    racks: 10,
                    heal_s: 1.0,
                },
            )
            .rule(
                "maint",
                0.0,
                FaultKind::MaintenanceWindow {
                    first_node: 25,
                    nodes: 100,
                    duration_s: 1.0,
                },
            );
        let compiled = sched.compile(geom(), 7);
        for f in &compiled {
            match &f.effect {
                FaultEffect::RacksDown { racks } => assert_eq!(*racks, vec![2]),
                FaultEffect::NodesDown { nodes } => {
                    assert_eq!(*nodes, (25..30).collect::<Vec<_>>())
                }
                other => panic!("unexpected effect {other:?}"),
            }
        }
    }

    #[test]
    fn rule_order_never_reseeds() {
        // The storm's sampled factors must not depend on where the rule
        // sits in the declaration list.
        let a = FaultSchedule::new()
            .rule("storm", 10.0, storm(1))
            .rule(
                "tor",
                5.0,
                FaultKind::TorDeath {
                    rack: 0,
                    repair_s: 60.0,
                },
            )
            .compile(geom(), 42);
        let b = FaultSchedule::new()
            .rule(
                "tor",
                5.0,
                FaultKind::TorDeath {
                    rack: 0,
                    repair_s: 60.0,
                },
            )
            .rule("storm", 10.0, storm(1))
            .compile(geom(), 42);
        assert_eq!(a, b, "compiled schedule must be declaration-order-free");
    }

    #[test]
    fn storm_confined_to_neighborhood() {
        let compiled = FaultSchedule::new()
            .rule("storm", 0.0, storm(0))
            .compile(geom(), 3);
        match &compiled[0].effect {
            FaultEffect::Limp {
                target,
                factors,
                aggregate,
            } => {
                assert_eq!(*target, LimpTarget::Nic);
                // center 0, radius 1 → racks 0..=1 → nodes 0..20 only.
                assert!(!factors.is_empty());
                assert!(factors.iter().all(|(n, f)| *n < 20 && *f >= 1.0));
                assert!(*aggregate >= 1.0);
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn different_seeds_different_storms() {
        let a = FaultSchedule::new()
            .rule("storm", 0.0, storm(1))
            .compile(geom(), 1);
        let b = FaultSchedule::new()
            .rule("storm", 0.0, storm(1))
            .compile(geom(), 2);
        assert_ne!(a, b, "root seed must reach the per-rule streams");
    }

    #[test]
    fn schedule_serde_roundtrip() {
        let sched = FaultSchedule::new().rule("storm", 10.0, storm(1)).rule(
            "throttle",
            20.0,
            FaultKind::RepairThrottle {
                max_parallel: 1,
                duration_s: 600.0,
                breaker_pending: 8,
            },
        );
        let json = serde_json::to_string(&sched).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sched);
    }
}
