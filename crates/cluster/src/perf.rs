//! Request-level performance simulation (performance SLAs, §3).
//!
//! Tenants generate open-loop request streams against objects placed on
//! the topology. A read queues at the serving node's disk array, then
//! streams back through its NIC; a write first pushes its copies out of
//! the client NIC, then commits on the write set's disks. Node failures
//! (optional) remove replicas from service *and* inject repair traffic
//! through surviving NICs — the cluster-event/performance coupling the
//! paper says pure prediction models miss. Limpware scales individual
//! components' service rates.
//!
//! Fidelity notes (DESIGN.md): disks are modeled as a per-node c-server
//! FIFO (c = disk count) using the catalog's latency/IOPS/bandwidth
//! envelope; NICs as a 1-server FIFO at line rate capped by the path
//! bottleneck; switch queueing is folded into the path bandwidth cap.
//! Placement granularity is a fixed pool of partitions per tenant (like
//! tablets), not individual keys. Memory acts as a buffer cache: a point
//! read hits DRAM with probability `cluster_mem / dataset_bytes` and skips
//! the disk stage — the first-order effect behind the paper's "invest in
//! storage or memory?" provisioning question (§3).

use crate::chaos::{ChaosConfig, CompiledFault, FaultEffect};
use crate::results::{PerfResult, TenantPerf};
use std::collections::HashMap;
use wt_des::prelude::*;
use wt_des::rng::RngFactory;
use wt_des::{CalendarQueue, EventQueue, ServerPool};
use wt_dist::Dist;
use wt_hw::limpware::{LimpState, LimpTarget};
use wt_hw::{LimpwareSpec, NodeId, Topology, TopologySpec};
use wt_sw::{Placement, Placer, RedundancyScheme};
use wt_workload::{TenantWorkload, Zipf};

/// Partitions per tenant: the placement granularity.
const PARTITIONS: u64 = 128;

/// Marker tenant index for background repair transfers.
const REPAIR_TENANT: usize = usize::MAX;

/// Configuration for one performance run.
#[derive(Debug, Clone)]
pub struct PerfModel {
    /// Hardware build-out.
    pub topology: TopologySpec,
    /// Redundancy scheme (reads hit one target, writes the write quorum).
    pub redundancy: RedundancyScheme,
    /// Partition placement policy.
    pub placement: Placement,
    /// Tenant workloads.
    pub tenants: Vec<TenantWorkload>,
    /// Optional limpware injection.
    pub limpware: Option<LimpwareSpec>,
    /// Inject node failures (and repair traffic) during the run.
    pub inject_failures: bool,
    /// Node TTF override; defaults to the topology's node spec.
    pub node_ttf: Option<Dist>,
    /// Simulated duration, seconds.
    pub horizon_s: f64,
    /// Future-event-list backend. Results are bitwise-identical either
    /// way (the engine's `(time, seq)` contract); the perf model's pending
    /// set is small — one arrival per tenant plus in-flight stages — so
    /// the default heap is usually right here. See DESIGN.md §8.
    pub queue: QueueBackend,
    /// Optional declarative chaos (see [`crate::chaos`]). Node-scoped
    /// faults mark nodes unreachable without spawning repair traffic
    /// (planned windows / power loss leave data intact); gray storms limp
    /// individual components; repair throttles are an availability-engine
    /// resource and are no-ops here.
    pub chaos: Option<ChaosConfig>,
}

impl PerfModel {
    /// Runs the simulation and summarizes per-tenant latency.
    pub fn run(&self, seed: u64) -> PerfResult {
        match self.queue {
            QueueBackend::Heap => self.run_on::<EventQueue<Ev>>(seed),
            QueueBackend::Calendar => self.run_on::<CalendarQueue<Ev>>(seed),
        }
    }

    /// [`run`](Self::run), monomorphized for one queue backend.
    fn run_on<Q: PendingEvents<Ev> + Default>(&self, seed: u64) -> PerfResult {
        let mut sim = self.seeded_sim::<Q>(seed);
        let end = SimTime::ZERO + SimDuration::from_secs(self.horizon_s);
        sim.run_until(end);
        sim.into_model().finish(end)
    }

    /// Like [`run`](Self::run), but with a probe attached: returns the same
    /// result (probes are one-way and cannot perturb the simulation) plus a
    /// [`RunTelemetry`](wt_des::obs::RunTelemetry) summary. When `extra` is
    /// given (e.g. a `TraceProbe`), it observes the same event stream.
    pub fn run_observed(
        &self,
        seed: u64,
        extra: Option<&mut dyn wt_des::obs::Probe>,
    ) -> (PerfResult, wt_des::obs::RunTelemetry) {
        match self.queue {
            QueueBackend::Heap => self.run_observed_on::<EventQueue<Ev>>(seed, extra),
            QueueBackend::Calendar => self.run_observed_on::<CalendarQueue<Ev>>(seed, extra),
        }
    }

    /// [`run_observed`](Self::run_observed), monomorphized for one backend.
    fn run_observed_on<Q: PendingEvents<Ev> + Default>(
        &self,
        seed: u64,
        extra: Option<&mut dyn wt_des::obs::Probe>,
    ) -> (PerfResult, wt_des::obs::RunTelemetry) {
        let mut sim = self.seeded_sim::<Q>(seed);
        let end = SimTime::ZERO + SimDuration::from_secs(self.horizon_s);
        let mut sp = wt_des::obs::SimProbe::new();
        let reason = match extra {
            Some(p) => {
                let mut tee = wt_des::obs::Tee(&mut sp, p);
                sim.run_until_probed(end, &mut tee)
            }
            None => sim.run_until_probed(end, &mut sp),
        };
        let mut telemetry = sp.finish(sim.now().as_secs(), reason.as_str());
        telemetry.queue = Some(self.queue.as_str().to_string());
        (sim.into_model().finish(end), telemetry)
    }

    /// Builds the simulation and seeds initial arrivals/failures — the
    /// shared front half of [`run`](Self::run) and
    /// [`run_observed`](Self::run_observed), so the two paths cannot drift.
    fn seeded_sim<Q: PendingEvents<Ev> + Default>(
        &self,
        seed: u64,
    ) -> Simulation<PerfState<'_>, Q> {
        assert!(
            !self.tenants.is_empty(),
            "perf run needs at least one tenant"
        );
        // Compiled per run seed: gray-storm factors are sampled from
        // content-keyed substreams of this run's root seed.
        let chaos_faults = self
            .chaos
            .as_ref()
            .map(|c| c.compile(self.topology.node_count(), seed))
            .unwrap_or_default();
        let n_chaos = chaos_faults.len();
        let mut sim =
            Simulation::with_queue(PerfState::new(self, seed, chaos_faults), seed, Q::default());
        // One pending arrival per tenant, one failure timer per node when
        // injection is on, start/end per chaos fault, plus in-flight
        // request stages.
        sim.reserve_events(
            self.tenants.len()
                + if self.inject_failures {
                    self.topology.node_count()
                } else {
                    0
                }
                + 2 * n_chaos,
        );
        // Chaos faults are content-ordered at compile time, so the
        // (time, seq) order here is independent of declaration order.
        // (The schedule lives in the state; read the start times back
        // rather than cloning the whole compiled schedule.)
        for i in 0..n_chaos {
            let at_s = sim.model().chaos_faults[i].at_s;
            sim.schedule_at(
                SimTime::ZERO + SimDuration::from_secs(at_s),
                Ev::ChaosStart { fault: i },
            );
        }
        // First arrival per tenant.
        for t in 0..self.tenants.len() {
            let gap = sim.model_mut().next_arrival_gap(t);
            sim.schedule_in(gap, Ev::Arrival { tenant: t });
        }
        // First failure per node, if enabled.
        if self.inject_failures {
            let ttf_dist = self
                .node_ttf
                .clone()
                .unwrap_or_else(|| self.topology.node.ttf.clone());
            let factory = RngFactory::new(seed);
            let mut rng = factory.stream("perf-failures");
            for node in 0..self.topology.node_count() {
                let ttf = SimDuration::from_secs(ttf_dist.sample(&mut rng));
                sim.schedule_in(ttf, Ev::NodeFail { node });
            }
        }
        sim
    }
}

/// Event alphabet of the performance simulation.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Tenant issues its next request.
    Arrival { tenant: usize },
    /// A disk service completed at `node` for request `rid`.
    DiskDone { node: usize, rid: u64 },
    /// A NIC transfer completed at `node` for request `rid`.
    NicDone { node: usize, rid: u64 },
    /// Node failure (removes replicas from service, spawns repair traffic).
    NodeFail { node: usize },
    /// Node returns to service.
    NodeBack { node: usize },
    /// A compiled chaos fault fires (index into the compiled schedule).
    ChaosStart { fault: usize },
    /// A compiled chaos fault's effect is lifted.
    ChaosEnd { fault: usize },
}

/// Per-request runtime state.
struct Req {
    tenant: usize,
    /// Bytes moved in the NIC stage (w× payload for write fan-out).
    nic_bytes: u64,
    /// Bytes hitting each disk (payload, or shard for erasure).
    disk_bytes: u64,
    write: bool,
    sequential: bool,
    /// Far end of the NIC stage (the reading client for reads, the first
    /// write target for writes).
    nic_dst: usize,
    /// Write set (empty for reads).
    targets: Vec<usize>,
    /// Remaining disk completions.
    pending_disks: usize,
    start: SimTime,
}

struct PerfState<'a> {
    /// Immutable configuration, borrowed from the model for the run's
    /// duration (nothing here is mutated; cloning tenants/topology per run
    /// was pure overhead at scale).
    cfg: &'a PerfModel,
    topo: Topology,
    node_up: Vec<bool>,
    /// Redundancy width — the partition table's stride.
    width: usize,
    /// Flat fixed-stride partition table: tenant `t`, partition `p`'s
    /// holders are `partitions[(t * PARTITIONS + p) * width ..][..width]`.
    /// Placement is immutable in this engine (liveness is filtered at read
    /// time), so a CSR-style flat layout replaces the old triple-nested
    /// `Vec<Vec<Vec<usize>>>`.
    partitions: Vec<u32>,
    zipfs: Vec<Zipf>,
    disk_pools: Vec<ServerPool<u64>>,
    nic_pools: Vec<ServerPool<u64>>,
    disk_limp: LimpState,
    nic_limp: LimpState,
    /// Compiled chaos schedule (empty when no chaos is configured).
    chaos_faults: Vec<CompiledFault>,
    /// Per-node chaos unreachability counters (> 0 = drained/unpowered,
    /// data intact). Orthogonal to `node_up` so a chaos window can never
    /// swallow a node's organic failure timer.
    chaos_down: Vec<u32>,
    /// Indices of currently active gray-storm faults.
    chaos_limp_active: Vec<usize>,
    /// Per-node storm multipliers on top of the rolled limp states.
    /// All-1.0 when no storm is active (`x * 1.0` is exact in f64, so
    /// chaos-free runs stay bit-identical to pre-chaos builds).
    chaos_disk_mult: Vec<f64>,
    chaos_nic_mult: Vec<f64>,
    reqs: HashMap<u64, Req>,
    next_rid: u64,
    latencies: Vec<Histogram>,
    /// Per-tenant DDSketch latency quantiles, recorded alongside the
    /// exact histograms so the sketch pipeline can be validated against
    /// the retained-bucket oracle (`sketch_*` fields of `TenantPerf`).
    lat_sketches: Vec<QuantileSketch>,
    completed: Vec<u64>,
    failed: Vec<u64>,
    node_failures: u64,
    /// Probability a point read is served from the cluster-wide buffer
    /// cache (skipping the disk stage).
    cache_hit_p: f64,
    /// Reusable per-arrival buffer for a key's live holders.
    scratch_holders: Vec<usize>,
    rng: wt_des::rng::Stream,
}

impl<'a> PerfState<'a> {
    fn new(cfg: &'a PerfModel, seed: u64, chaos_faults: Vec<CompiledFault>) -> Self {
        let topo = cfg.topology.build();
        let n = topo.node_count();
        let factory = RngFactory::new(seed);
        let width = cfg.redundancy.width();

        let mut partitions: Vec<u32> =
            Vec::with_capacity(cfg.tenants.len() * PARTITIONS as usize * width);
        let mut placed: Vec<usize> = Vec::with_capacity(width);
        for (t, _) in cfg.tenants.iter().enumerate() {
            let mut placer = Placer::new(
                cfg.placement,
                n,
                width,
                factory.numbered("perf-placement", t as u64),
            );
            for p in 0..PARTITIONS {
                placer.place_into(p, &mut placed);
                assert_eq!(placed.len(), width, "placers yield exactly `width` nodes");
                partitions.extend(placed.iter().map(|&h| h as u32));
            }
        }
        let zipfs = cfg.tenants.iter().map(|t| t.mix.make_zipf()).collect();

        let mut limp_rng = factory.stream("limpware");
        let (disk_limp, nic_limp) = match &cfg.limpware {
            Some(spec) => match spec.target {
                LimpTarget::Disk => (
                    LimpState::roll_all(spec, n, &mut limp_rng),
                    LimpState::healthy(n),
                ),
                LimpTarget::Nic => (
                    LimpState::healthy(n),
                    LimpState::roll_all(spec, n, &mut limp_rng),
                ),
            },
            None => (LimpState::healthy(n), LimpState::healthy(n)),
        };

        let disks_per_node = cfg.topology.node.disks.len().max(1);
        // Buffer cache: cluster DRAM over the tenants' logical dataset.
        let dataset_bytes: f64 = cfg.tenants.iter().map(|t| t.dataset_bytes as f64).sum();
        let mem_bytes = cfg.topology.node.mem.capacity_gb * 1e9 * n as f64;
        let cache_hit_p = if dataset_bytes > 0.0 {
            (mem_bytes / dataset_bytes).min(1.0)
        } else {
            0.0
        };
        PerfState {
            cfg,
            topo,
            node_up: vec![true; n],
            width,
            partitions,
            zipfs,
            disk_pools: (0..n)
                .map(|_| ServerPool::new(disks_per_node, SimTime::ZERO))
                .collect(),
            nic_pools: (0..n).map(|_| ServerPool::new(1, SimTime::ZERO)).collect(),
            disk_limp,
            nic_limp,
            chaos_faults,
            chaos_down: vec![0; n],
            chaos_limp_active: Vec::new(),
            chaos_disk_mult: vec![1.0; n],
            chaos_nic_mult: vec![1.0; n],
            reqs: HashMap::new(),
            next_rid: 0,
            latencies: (0..cfg.tenants.len()).map(|_| Histogram::new()).collect(),
            lat_sketches: (0..cfg.tenants.len())
                .map(|_| QuantileSketch::new())
                .collect(),
            completed: vec![0; cfg.tenants.len()],
            failed: vec![0; cfg.tenants.len()],
            node_failures: 0,
            cache_hit_p,
            scratch_holders: Vec::with_capacity(width),
            rng: factory.stream("perf-dynamics"),
        }
    }

    fn next_arrival_gap(&mut self, tenant: usize) -> SimDuration {
        SimDuration::from_secs(self.cfg.tenants[tenant].arrivals.next_gap(&mut self.rng))
    }

    /// Disk service time at `node` for one disk job of `rid`.
    fn disk_service(&self, node: usize, rid: u64) -> SimDuration {
        let r = &self.reqs[&rid];
        let disk = &self.cfg.topology.node.disks[0];
        let t = disk.service_time(r.disk_bytes, r.sequential, r.write)
            * self.disk_limp.factor(node)
            * self.chaos_disk_mult[node];
        SimDuration::from_secs(t)
    }

    /// NIC transfer time at `src` for `rid` (toward the request's NIC
    /// destination). A limping NIC scales the *whole* service — the
    /// canonical limplock case is a link renegotiated to a lower speed,
    /// which inflates per-packet handling as well as throughput.
    fn nic_service(&self, src: usize, rid: u64) -> SimDuration {
        let r = &self.reqs[&rid];
        // path_info is the hop-free form: no per-transfer Vec for a hop
        // list nobody reads here.
        let path = self
            .topo
            .path_info(NodeId(src as u32), NodeId(r.nic_dst as u32));
        let nic = &self.cfg.topology.node.nic;
        let gbps = nic.bandwidth_gbps.min(path.bottleneck_gbps);
        let t = (nic.latency_s + path.latency_s + r.nic_bytes as f64 * 8.0 / (gbps * 1e9))
            * self.nic_limp.factor(src)
            * self.chaos_nic_mult[src];
        SimDuration::from_secs(t)
    }

    /// True when `node` is failed-up *and* outside any chaos window.
    fn node_available(&self, node: usize) -> bool {
        self.node_up[node] && self.chaos_down[node] == 0
    }

    /// Rebuilds the per-node storm multipliers from the set of active
    /// gray-storm faults. Recomputing from scratch (rather than
    /// multiplying on start / dividing on end) keeps overlapping storms
    /// exact: no floating-point residue survives the last restore.
    fn recompute_chaos_limp(&mut self) {
        self.chaos_disk_mult.fill(1.0);
        self.chaos_nic_mult.fill(1.0);
        for &i in &self.chaos_limp_active {
            if let FaultEffect::Limp {
                target, factors, ..
            } = &self.chaos_faults[i].effect
            {
                let mult = match target {
                    LimpTarget::Disk => &mut self.chaos_disk_mult,
                    LimpTarget::Nic => &mut self.chaos_nic_mult,
                };
                for &(node, f) in factors {
                    mult[node] *= f;
                }
            }
        }
    }

    /// Collects the live holders of (tenant, key) into `out` (cleared
    /// first) — the per-arrival hot path, so the buffer is caller-owned.
    fn holders_into(&self, tenant: usize, key: u64, out: &mut Vec<usize>) {
        out.clear();
        let part = (key % PARTITIONS) as usize;
        let base = (tenant * PARTITIONS as usize + part) * self.width;
        for &h in &self.partitions[base..base + self.width] {
            if self.node_available(h as usize) {
                out.push(h as usize);
            }
        }
    }

    /// Prefer a holder in the client's rack, else any live holder. Counts
    /// rack-local holders and picks the k-th in a second scan — same
    /// single RNG draw as the old buffered version, no temporary list.
    fn choose_serving(&mut self, client: usize, holders: &[usize]) -> usize {
        let topo = &self.topo;
        let is_local = |h: usize| topo.same_rack(NodeId(client as u32), NodeId(h as u32));
        let local = holders.iter().filter(|&&h| is_local(h)).count();
        if local > 0 {
            let k = self.rng.index(local);
            holders
                .iter()
                .copied()
                .filter(|&h| is_local(h))
                .nth(k)
                .expect("k < local count")
        } else {
            holders[self.rng.index(holders.len())]
        }
    }

    /// Enqueues a disk job; schedules completion if it starts immediately.
    fn submit_disk(&mut self, node: usize, rid: u64, ctx: &mut Ctx<'_, Ev>) {
        if let Some(started) = self.disk_pools[node].arrive(ctx.now(), rid) {
            let dur = self.disk_service(node, started);
            ctx.schedule_in(dur, Ev::DiskDone { node, rid: started });
        }
    }

    /// Enqueues a NIC job at `src`; schedules completion if it starts now.
    fn submit_nic(&mut self, src: usize, rid: u64, ctx: &mut Ctx<'_, Ev>) {
        if let Some(started) = self.nic_pools[src].arrive(ctx.now(), rid) {
            let dur = self.nic_service(src, started);
            ctx.schedule_in(
                dur,
                Ev::NicDone {
                    node: src,
                    rid: started,
                },
            );
        }
    }

    fn complete(&mut self, rid: u64, now: SimTime, ctx: &mut Ctx<'_, Ev>) {
        if let Some(req) = self.reqs.remove(&rid) {
            if req.tenant == REPAIR_TENANT {
                return;
            }
            let latency = now.since(req.start).as_secs();
            self.latencies[req.tenant].record(latency);
            self.lat_sketches[req.tenant].record(latency);
            self.completed[req.tenant] += 1;
            ctx.observe("request_latency_s", latency);
        }
    }

    fn finish(self, end: SimTime) -> PerfResult {
        let horizon_s = end.since(SimTime::ZERO).as_secs();
        let tenants = self
            .cfg
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let h = &self.latencies[i];
                let s = &self.lat_sketches[i];
                let (q, _) = t.latency_sla.unwrap_or((0.95, f64::INFINITY));
                let at_quantile = h.quantile(q);
                TenantPerf {
                    name: t.name.clone(),
                    completed: self.completed[i],
                    failed: self.failed[i],
                    mean_s: h.mean(),
                    p50_s: h.p50(),
                    p95_s: h.p95(),
                    p99_s: h.p99(),
                    sketch_p50_s: Some(s.p50()),
                    sketch_p95_s: Some(s.p95()),
                    sketch_p99_s: Some(s.p99()),
                    sketch_sla_met: t.latency_sla.map(|_| t.sla_met(s.quantile(q))),
                    throughput: self.completed[i] as f64 / horizon_s,
                    sla_met: t.latency_sla.map(|_| t.sla_met(at_quantile)),
                }
            })
            .collect();
        let n = self.node_up.len() as f64;
        PerfResult {
            tenants,
            node_failures: self.node_failures,
            mean_disk_utilization: self
                .disk_pools
                .iter()
                .map(|p| p.utilization(end))
                .sum::<f64>()
                / n,
            mean_nic_utilization: self
                .nic_pools
                .iter()
                .map(|p| p.utilization(end))
                .sum::<f64>()
                / n,
            horizon_s,
        }
    }

    fn handle_arrival(&mut self, tenant: usize, now: SimTime, ctx: &mut Ctx<'_, Ev>) {
        let zipf = &self.zipfs[tenant];
        let request = self.cfg.tenants[tenant]
            .mix
            .draw_request(tenant, zipf, &mut self.rng);
        let client = self.rng.index(self.topo.node_count());
        // Distinct working-set tracking: keyspaces are per-tenant, so mix
        // the tenant index into the high bits (zipf ranks stay far below
        // 2^48) before the HLL's own scramble.
        ctx.touch("request_keys", request.key ^ ((tenant as u64) << 48));
        let mut holders = std::mem::take(&mut self.scratch_holders);
        self.holders_into(tenant, request.key, &mut holders);

        let rid = self.next_rid;
        self.next_rid += 1;

        if request.write {
            let (w, per_disk) = match self.cfg.redundancy {
                RedundancyScheme::Replication(q) => (q.w, request.bytes),
                RedundancyScheme::Erasure(s) => (s.total(), (request.bytes / s.k as u64).max(1)),
            };
            if holders.len() < w {
                self.failed[tenant] += 1;
                self.scratch_holders = holders;
                return;
            }
            let targets: Vec<usize> = holders[..w].to_vec();
            let nic_dst = targets[0];
            self.reqs.insert(
                rid,
                Req {
                    tenant,
                    nic_bytes: per_disk * w as u64,
                    disk_bytes: per_disk,
                    write: true,
                    sequential: request.sequential,
                    nic_dst,
                    targets,
                    pending_disks: w,
                    start: now,
                },
            );
            self.scratch_holders = holders;
            // Push all copies out the client NIC, then commit on disks.
            self.submit_nic(client, rid, ctx);
        } else {
            // Reads: replication serves from one replica; erasure coding
            // must gather k shards from k distinct holders (degraded or
            // not), then stream the reassembled object to the client.
            let (serving, fan, per_disk): (usize, usize, u64) = match self.cfg.redundancy {
                RedundancyScheme::Replication(_) => {
                    if holders.is_empty() {
                        self.failed[tenant] += 1;
                        self.scratch_holders = holders;
                        return;
                    }
                    (self.choose_serving(client, &holders), 1, request.bytes)
                }
                RedundancyScheme::Erasure(spec) => {
                    if holders.len() < spec.k {
                        self.failed[tenant] += 1;
                        self.scratch_holders = holders;
                        return;
                    }
                    (holders[0], spec.k, (request.bytes / spec.k as u64).max(1))
                }
            };
            self.reqs.insert(
                rid,
                Req {
                    tenant,
                    nic_bytes: request.bytes,
                    disk_bytes: per_disk,
                    write: false,
                    sequential: request.sequential,
                    nic_dst: client,
                    targets: Vec::new(),
                    pending_disks: fan,
                    start: now,
                },
            );
            // Point reads may be served from the buffer cache (no disk I/O).
            if !request.sequential && self.rng.chance(self.cache_hit_p) {
                self.submit_nic(serving, rid, ctx);
            } else if fan == 1 {
                // Replication: the single chosen replica serves the read.
                self.submit_disk(serving, rid, ctx);
            } else {
                // Erasure: gather the first k shards.
                for &h in holders.iter().take(fan) {
                    self.submit_disk(h, rid, ctx);
                }
            }
            self.scratch_holders = holders;
        }
    }

    /// Spawns background repair streams after a node failure.
    fn spawn_repair_traffic(&mut self, now: SimTime, ctx: &mut Ctx<'_, Ev>) {
        let total_bytes: u64 = self
            .cfg
            .tenants
            .iter()
            .map(|t| t.object_bytes * PARTITIONS)
            .sum::<u64>()
            .saturating_mul(self.cfg.redundancy.width() as u64)
            / self.topo.node_count().max(1) as u64;
        let streams = self.cfg.tenants.len().max(1) * 4;
        let per_stream = (total_bytes / streams as u64).max(1);
        let candidates: Vec<usize> = (0..self.topo.node_count())
            .filter(|&n| self.node_available(n))
            .collect();
        if candidates.is_empty() {
            return;
        }
        for _ in 0..streams {
            let src = candidates[self.rng.index(candidates.len())];
            let dst = candidates[self.rng.index(candidates.len())];
            let rid = self.next_rid;
            self.next_rid += 1;
            self.reqs.insert(
                rid,
                Req {
                    tenant: REPAIR_TENANT,
                    nic_bytes: per_stream,
                    disk_bytes: per_stream,
                    write: false,
                    sequential: true,
                    nic_dst: dst,
                    targets: Vec::new(),
                    pending_disks: 0,
                    start: now,
                },
            );
            self.submit_nic(src, rid, ctx);
        }
    }
}

impl Model for PerfState<'_> {
    type Event = Ev;

    fn label(ev: &Ev) -> &'static str {
        match ev {
            Ev::Arrival { .. } => "Arrival",
            Ev::DiskDone { .. } => "DiskDone",
            Ev::NicDone { .. } => "NicDone",
            Ev::NodeFail { .. } => "NodeFail",
            Ev::NodeBack { .. } => "NodeBack",
            Ev::ChaosStart { .. } => "ChaosStart",
            Ev::ChaosEnd { .. } => "ChaosEnd",
        }
    }

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now();
        match ev {
            Ev::Arrival { tenant } => {
                // Schedule the next arrival first (open loop).
                let gap = self.next_arrival_gap(tenant);
                ctx.schedule_in(gap, Ev::Arrival { tenant });
                self.handle_arrival(tenant, now, ctx);
            }

            Ev::DiskDone { node, rid } => {
                // Free the disk and start the next queued job.
                if let Some(next) = self.disk_pools[node].depart(now) {
                    let dur = self.disk_service(node, next);
                    ctx.schedule_in(dur, Ev::DiskDone { node, rid: next });
                }
                let Some(req) = self.reqs.get_mut(&rid) else {
                    return;
                };
                req.pending_disks = req.pending_disks.saturating_sub(1);
                if req.pending_disks == 0 {
                    if req.write {
                        self.complete(rid, now, ctx);
                    } else {
                        // Read: all shards gathered; stream the object back
                        // through this node's NIC.
                        self.submit_nic(node, rid, ctx);
                    }
                }
            }

            Ev::NicDone { node, rid } => {
                if let Some(next) = self.nic_pools[node].depart(now) {
                    let dur = self.nic_service(node, next);
                    ctx.schedule_in(dur, Ev::NicDone { node, rid: next });
                }
                let Some(req) = self.reqs.get(&rid) else {
                    return;
                };
                if req.tenant == REPAIR_TENANT {
                    self.reqs.remove(&rid);
                    return;
                }
                if req.write {
                    // Fan-out done; commit on each target disk.
                    let targets = req.targets.clone();
                    for target in targets {
                        self.submit_disk(target, rid, ctx);
                    }
                } else {
                    self.complete(rid, now, ctx);
                }
            }

            Ev::NodeFail { node } => {
                if !self.node_up[node] {
                    return;
                }
                self.node_up[node] = false;
                self.node_failures += 1;
                self.spawn_repair_traffic(now, ctx);
                let back = self.cfg.topology.node.repair.sample(&mut self.rng);
                ctx.schedule_in(SimDuration::from_secs(back), Ev::NodeBack { node });
            }

            Ev::NodeBack { node } => {
                self.node_up[node] = true;
                let cfg = self.cfg;
                let ttf_dist = cfg.node_ttf.as_ref().unwrap_or(&cfg.topology.node.ttf);
                let ttf = ttf_dist.sample(&mut self.rng);
                ctx.schedule_in(SimDuration::from_secs(ttf), Ev::NodeFail { node });
            }

            Ev::ChaosStart { fault } => {
                ctx.mark(self.chaos_faults[fault].mark);
                let until = self.chaos_faults[fault].until_s;
                // Borrow the effect in place (it lives in `chaos_faults`,
                // the arms only touch `chaos_down`/`chaos_limp_active`);
                // `recompute_chaos_limp` re-reads `chaos_faults`, so it
                // runs after the borrow ends.
                let npr = self.cfg.topology.nodes_per_rack.max(1);
                let count = self.chaos_down.len();
                let mut limp_changed = false;
                match &self.chaos_faults[fault].effect {
                    FaultEffect::NodesDown { nodes } => {
                        for &n in nodes {
                            self.chaos_down[n] += 1;
                        }
                    }
                    FaultEffect::RacksDown { racks } => {
                        for &r in racks {
                            for n in (r * npr).min(count)..((r + 1) * npr).min(count) {
                                self.chaos_down[n] += 1;
                            }
                        }
                    }
                    FaultEffect::Limp { .. } => {
                        self.chaos_limp_active.push(fault);
                        limp_changed = true;
                    }
                    // Repair concurrency is an availability-engine
                    // resource; the perf engine's repair traffic is
                    // open-loop streams with no concurrency knob to clamp.
                    FaultEffect::RepairThrottle { .. } => {}
                }
                if limp_changed {
                    self.recompute_chaos_limp();
                }
                ctx.schedule_at(
                    SimTime::ZERO + SimDuration::from_secs(until.max(now.as_secs())),
                    Ev::ChaosEnd { fault },
                );
            }

            Ev::ChaosEnd { fault } => {
                ctx.mark("chaos_restore");
                let npr = self.cfg.topology.nodes_per_rack.max(1);
                let count = self.chaos_down.len();
                let mut limp_changed = false;
                match &self.chaos_faults[fault].effect {
                    FaultEffect::NodesDown { nodes } => {
                        for &n in nodes {
                            self.chaos_down[n] = self.chaos_down[n].saturating_sub(1);
                        }
                    }
                    FaultEffect::RacksDown { racks } => {
                        for &r in racks {
                            for n in (r * npr).min(count)..((r + 1) * npr).min(count) {
                                self.chaos_down[n] = self.chaos_down[n].saturating_sub(1);
                            }
                        }
                    }
                    FaultEffect::Limp { .. } => {
                        self.chaos_limp_active.retain(|&i| i != fault);
                        limp_changed = true;
                    }
                    FaultEffect::RepairThrottle { .. } => {}
                }
                if limp_changed {
                    self.recompute_chaos_limp();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wt_hw::catalog;

    fn topo(disk: wt_hw::DiskSpec, nic: wt_hw::NicSpec) -> TopologySpec {
        TopologySpec {
            racks: 2,
            nodes_per_rack: 5,
            node: catalog::node_storage_server(disk, 4, nic),
            tor: catalog::switch_tor_48x10g(),
            agg: catalog::switch_agg_32x40g(),
            oversubscription: 4.0,
        }
    }

    fn base(tenants: Vec<TenantWorkload>) -> PerfModel {
        PerfModel {
            topology: topo(catalog::ssd_sata_1t(), catalog::nic_10g()),
            redundancy: RedundancyScheme::replication(3),
            placement: Placement::Random,
            tenants,
            limpware: None,
            inject_failures: false,
            node_ttf: None,
            horizon_s: 120.0,
            queue: QueueBackend::Heap,
            chaos: None,
        }
    }

    #[test]
    fn light_load_fast_reads() {
        let m = base(vec![TenantWorkload::oltp("shop", 50.0, 10_000)]);
        let r = m.run(1);
        let t = &r.tenants[0];
        assert!(t.completed > 3_000, "completed {}", t.completed);
        assert_eq!(t.failed, 0);
        // SSD point reads over 10G: well under 10 ms at p95.
        assert!(t.p95_s < 0.010, "p95 {}", t.p95_s);
        assert_eq!(t.sla_met, Some(true));
        assert!((t.throughput - 50.0).abs() < 5.0, "tput {}", t.throughput);
    }

    #[test]
    fn overload_blows_latency() {
        // HDD at high IOPS demand: queues explode vs the same load on SSD.
        let hdd = PerfModel {
            topology: topo(catalog::hdd_7200_4t(), catalog::nic_10g()),
            ..base(vec![TenantWorkload::oltp("shop", 2_000.0, 10_000)])
        };
        let ssd = base(vec![TenantWorkload::oltp("shop", 2_000.0, 10_000)]);
        let rh = hdd.run(2);
        let rs = ssd.run(2);
        assert!(
            rh.tenants[0].p95_s > 10.0 * rs.tenants[0].p95_s,
            "hdd p95 {} vs ssd p95 {}",
            rh.tenants[0].p95_s,
            rs.tenants[0].p95_s
        );
        assert!(rh.mean_disk_utilization > rs.mean_disk_utilization);
    }

    #[test]
    fn colocation_raises_tail_latency() {
        // §3: adding a scan-heavy tenant hurts the OLTP tenant's p95.
        let alone = base(vec![TenantWorkload::oltp("shop", 200.0, 10_000)]);
        let shared = base(vec![
            TenantWorkload::oltp("shop", 200.0, 10_000),
            TenantWorkload::analytics("reports", 8.0, 1_000),
        ]);
        let ra = alone.run(3);
        let rs = shared.run(3);
        let (alone_t, shared_t) = (ra.tenant("shop").unwrap(), rs.tenant("shop").unwrap());
        // A shop read occasionally queues behind a 64 MB scan: the mean
        // moves by the collision probability × scan residence, and the p99
        // jumps to scan-transfer scale.
        assert!(
            shared_t.mean_s > 2.0 * alone_t.mean_s,
            "co-location should hurt the mean: alone {} vs shared {}",
            alone_t.mean_s,
            shared_t.mean_s
        );
        assert!(
            shared_t.p99_s > 5.0 * alone_t.p99_s,
            "co-location should blow the tail: alone {} vs shared {}",
            alone_t.p99_s,
            shared_t.p99_s
        );
    }

    #[test]
    fn limpware_nic_hurts_tails() {
        let healthy = base(vec![TenantWorkload::oltp("shop", 200.0, 10_000)]);
        let mut limping = base(vec![TenantWorkload::oltp("shop", 200.0, 10_000)]);
        limping.limpware = Some(LimpwareSpec::degraded_nic(0.3));
        let rh = healthy.run(4);
        let rl = limping.run(4);
        // Reads served through a limping NIC take ~100× on the wire; with
        // ~30% of nodes limping both the mean and the tail move visibly.
        assert!(
            rl.tenants[0].mean_s > 1.5 * rh.tenants[0].mean_s,
            "limping mean {} should exceed healthy {}",
            rl.tenants[0].mean_s,
            rh.tenants[0].mean_s
        );
        assert!(
            rl.tenants[0].p99_s > rh.tenants[0].p99_s,
            "limping p99 {} should exceed healthy {}",
            rl.tenants[0].p99_s,
            rh.tenants[0].p99_s
        );
    }

    #[test]
    fn failures_inject_repair_traffic_and_hurt_latency() {
        let calm = base(vec![TenantWorkload::oltp("shop", 300.0, 10_000)]);
        let mut stormy = base(vec![TenantWorkload::oltp("shop", 300.0, 10_000)]);
        stormy.inject_failures = true;
        // Very short node lifetime so failures definitely occur in 120 s.
        stormy.node_ttf = Some(Dist::exponential_mean(30.0));
        let rc = calm.run(5);
        let rs = stormy.run(5);
        assert_eq!(rc.node_failures, 0);
        assert!(rs.node_failures > 0, "no failures injected");
        assert!(
            rs.tenants[0].p99_s >= rc.tenants[0].p99_s,
            "failures should not improve tails: {} vs {}",
            rs.tenants[0].p99_s,
            rc.tenants[0].p99_s
        );
    }

    #[test]
    fn writes_slower_than_reads() {
        let mut m = base(vec![TenantWorkload::oltp("shop", 100.0, 10_000)]);
        m.tenants[0].mix.write_weight = 1.0;
        m.tenants[0].mix.read_weight = 0.0;
        let writes = m.run(6);
        let mut m2 = base(vec![TenantWorkload::oltp("shop", 100.0, 10_000)]);
        m2.tenants[0].mix.write_weight = 0.0;
        m2.tenants[0].mix.read_weight = 1.0;
        let reads = m2.run(6);
        assert!(
            writes.tenants[0].mean_s > reads.tenants[0].mean_s,
            "writes {} should cost more than reads {}",
            writes.tenants[0].mean_s,
            reads.tenants[0].mean_s
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let m = base(vec![TenantWorkload::oltp("shop", 100.0, 1_000)]);
        let a = m.run(7);
        let b = m.run(7);
        assert_eq!(a, b);
    }

    #[test]
    fn observed_run_matches_unobserved() {
        let m = base(vec![TenantWorkload::oltp("shop", 100.0, 1_000)]);
        let plain = m.run(9);
        let (observed, t) = m.run_observed(9, None);
        assert_eq!(observed, plain, "probe must not perturb the simulation");
        assert!(t.events > 0);
        assert_eq!(t.events_by_label.values().sum::<u64>(), t.events);
        assert!(t.events_by_label.contains_key("Arrival"));
        assert!(t.events_by_label.contains_key("DiskDone"));
        assert_eq!(t.stop_reason, "HorizonReached");
    }

    #[test]
    fn erasure_reads_fan_to_k_shards() {
        // rs(4,2) reads gather 4 shards: roughly 4x the disk operations of
        // a replicated read (each smaller), visible as higher disk
        // utilization at equal request rate; and zero failures while >= k
        // shards are reachable.
        let mk = |red: RedundancyScheme| {
            let mut m = base(vec![TenantWorkload::oltp("shop", 300.0, 10_000)]);
            m.tenants[0].mix.write_weight = 0.0;
            m.tenants[0].mix.read_weight = 1.0;
            m.redundancy = red;
            m
        };
        let rep = mk(RedundancyScheme::replication(3)).run(11);
        let rs = mk(RedundancyScheme::erasure(4, 2)).run(11);
        assert_eq!(rs.tenants[0].failed, 0);
        assert!(rs.tenants[0].completed > 10_000);
        assert!(
            rs.mean_disk_utilization > 2.0 * rep.mean_disk_utilization,
            "rs disk util {} vs rep {}",
            rs.mean_disk_utilization,
            rep.mean_disk_utilization
        );
        // Reassembly also makes the read slower end-to-end.
        assert!(rs.tenants[0].mean_s >= rep.tenants[0].mean_s);
    }

    #[test]
    fn more_memory_lowers_latency_on_hdd() {
        // The E4 provisioning axis: DRAM absorbs point reads that would
        // otherwise pay an HDD seek.
        let mk = |mem_gb: f64| {
            let mut node =
                catalog::node_with_memory(catalog::hdd_7200_4t(), 4, catalog::nic_10g(), mem_gb);
            node.ttf =
                catalog::node_storage_server(catalog::hdd_7200_4t(), 4, catalog::nic_10g()).ttf;
            PerfModel {
                topology: TopologySpec {
                    racks: 2,
                    nodes_per_rack: 5,
                    node,
                    tor: catalog::switch_tor_48x10g(),
                    agg: catalog::switch_agg_32x40g(),
                    oversubscription: 4.0,
                },
                redundancy: RedundancyScheme::replication(3),
                placement: Placement::Random,
                tenants: vec![TenantWorkload::oltp("shop", 300.0, 100_000)],
                limpware: None,
                inject_failures: false,
                node_ttf: None,
                horizon_s: 60.0,
                queue: QueueBackend::Heap,
                chaos: None,
            }
        };
        let small = mk(16.0).run(8); // 160 GB cache vs 2 TB data: ~8% hits
        let big = mk(200.0).run(8); // 2 TB cache: ~100% hits
        assert!(
            big.tenants[0].mean_s < 0.5 * small.tenants[0].mean_s,
            "more DRAM should slash HDD read latency: {} vs {}",
            big.tenants[0].mean_s,
            small.tenants[0].mean_s
        );
        assert!(big.mean_disk_utilization < small.mean_disk_utilization);
    }

    fn chaos(schedule: crate::chaos::FaultSchedule) -> Option<ChaosConfig> {
        // The test topology is 2 racks × 5 nodes.
        Some(ChaosConfig {
            schedule,
            nodes_per_rack: 5,
        })
    }

    #[test]
    fn empty_fault_schedule_is_inert() {
        let mut with_empty = base(vec![TenantWorkload::oltp("shop", 100.0, 1_000)]);
        with_empty.chaos = chaos(crate::chaos::FaultSchedule::new());
        let plain = base(vec![TenantWorkload::oltp("shop", 100.0, 1_000)]).run(21);
        assert_eq!(
            with_empty.run(21),
            plain,
            "empty schedule must be bit-identical to none"
        );
    }

    #[test]
    fn maintenance_window_fails_requests_while_drained() {
        use crate::chaos::{FaultKind, FaultSchedule};
        let mut m = base(vec![TenantWorkload::oltp("shop", 100.0, 10_000)]);
        // Drain the entire cluster for half the horizon: every request in
        // the window finds no live holder, everything outside succeeds.
        m.chaos = chaos(FaultSchedule::new().rule(
            "drain",
            30.0,
            FaultKind::MaintenanceWindow {
                first_node: 0,
                nodes: 10,
                duration_s: 60.0,
            },
        ));
        let (r, t) = m.run_observed(22, None);
        let shop = &r.tenants[0];
        assert!(
            shop.failed > 2_000,
            "in-window requests fail: {}",
            shop.failed
        );
        assert!(
            shop.completed > 2_000,
            "out-of-window requests succeed: {}",
            shop.completed
        );
        assert_eq!(t.marks.get("inject_maintenance"), Some(&1));
        assert_eq!(t.marks.get("chaos_restore"), Some(&1));
        // Drained ≠ failed: no repair traffic, no failure-timer churn.
        assert_eq!(r.node_failures, 0);
    }

    #[test]
    fn gray_storm_inflates_latency() {
        use crate::chaos::{FaultKind, FaultSchedule};
        let calm = base(vec![TenantWorkload::oltp("shop", 200.0, 10_000)]);
        let mut stormy = base(vec![TenantWorkload::oltp("shop", 200.0, 10_000)]);
        stormy.chaos = chaos(FaultSchedule::new().rule(
            "storm",
            0.0,
            FaultKind::GrayStorm {
                spec: LimpwareSpec::degraded_nic(0.5),
                center_rack: 0,
                radius_racks: 1,
                duration_s: 120.0,
            },
        ));
        let rc = calm.run(23);
        let rs = stormy.run(23);
        assert!(
            rs.tenants[0].mean_s > rc.tenants[0].mean_s,
            "storm mean {} should exceed calm {}",
            rs.tenants[0].mean_s,
            rc.tenants[0].mean_s
        );
    }

    #[test]
    fn chaos_is_deterministic_and_backend_invariant() {
        use crate::chaos::{FaultKind, FaultSchedule};
        let mut m = base(vec![TenantWorkload::oltp("shop", 150.0, 5_000)]);
        m.chaos = chaos(
            FaultSchedule::new()
                .rule(
                    "storm",
                    10.0,
                    FaultKind::GrayStorm {
                        spec: LimpwareSpec::degraded_nic(0.4),
                        center_rack: 1,
                        radius_racks: 0,
                        duration_s: 40.0,
                    },
                )
                .rule(
                    "tor",
                    70.0,
                    FaultKind::TorDeath {
                        rack: 0,
                        repair_s: 20.0,
                    },
                ),
        );
        let a = m.run(24);
        let b = m.run(24);
        assert_eq!(a, b, "same seed must replay identically under chaos");
        let mut cal = m.clone();
        cal.queue = QueueBackend::Calendar;
        assert_eq!(a, cal.run(24), "chaos must not depend on the queue backend");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use wt_hw::catalog;

    fn model(
        rate: f64,
        keys: u64,
        replication: usize,
        racks: usize,
        per_rack: usize,
        horizon_s: f64,
    ) -> PerfModel {
        PerfModel {
            topology: TopologySpec {
                racks,
                nodes_per_rack: per_rack,
                node: catalog::node_storage_server(catalog::ssd_sata_1t(), 2, catalog::nic_10g()),
                tor: catalog::switch_tor_48x10g(),
                agg: catalog::switch_agg_32x40g(),
                oversubscription: 4.0,
            },
            redundancy: RedundancyScheme::replication(replication),
            placement: Placement::Random,
            tenants: vec![TenantWorkload::oltp("t", rate, keys)],
            limpware: None,
            inject_failures: false,
            node_ttf: None,
            horizon_s,
            queue: QueueBackend::Heap,
            chaos: None,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Engine invariants across random (sane) configurations: latency
        /// percentiles are ordered and non-negative, completions are
        /// plausible for the offered load, and identical seeds replay
        /// identically.
        #[test]
        fn perf_engine_invariants(
            rate in 10.0f64..300.0,
            keys in 100u64..50_000,
            replication in 1usize..4,
            racks in 1usize..3,
            per_rack in 3usize..8,
            seed in 0u64..500,
        ) {
            prop_assume!(replication <= racks * per_rack);
            let m = model(rate, keys, replication, racks, per_rack, 30.0);
            let r = m.run(seed);
            let t = &r.tenants[0];
            prop_assert!(t.p50_s >= 0.0);
            prop_assert!(t.p50_s <= t.p95_s + 1e-12);
            prop_assert!(t.p95_s <= t.p99_s + 1e-12);
            prop_assert!(t.mean_s >= 0.0 && t.mean_s.is_finite());
            // Open-loop at light utilization: completed + failed + in-flight
            // tracks the arrivals; allow wide slack for Poisson noise.
            let expected = rate * 30.0;
            prop_assert!(
                (t.completed + t.failed) as f64 > expected * 0.7,
                "completed {} + failed {} vs expected ~{}",
                t.completed, t.failed, expected
            );
            prop_assert!((0.0..=1.0).contains(&r.mean_disk_utilization));
            prop_assert!((0.0..=1.0).contains(&r.mean_nic_utilization));
            // Determinism.
            let r2 = m.run(seed);
            prop_assert_eq!(r, r2);
        }
    }
}
