//! # wt-cluster — the integrated data center simulator (the wind tunnel's
//! test section)
//!
//! Composes the hardware models (`wt-hw`), software models (`wt-sw`) and
//! workloads (`wt-workload`) on the DES kernel (`wt-des`) into three
//! simulation engines, one per class of what-if question from the paper's
//! §3:
//!
//! * [`unavailability`] — the **Figure 1** experiment: a combinatorial
//!   Monte-Carlo over node-failure sets answering "with `f` of `N` nodes
//!   down, what is the probability that at least one customer has lost a
//!   quorum?" for each placement policy × replication factor.
//! * [`availability`] — time-domain availability and durability: failures
//!   arrive from arbitrary TTF distributions, repairs re-replicate data
//!   under a [`wt_sw::RepairPolicy`], and the output is operable-time
//!   fractions, unavailability episodes and data-loss counts
//!   (availability SLAs, §3).
//! * [`perf`] — request-level performance: tenant workloads queue at disk
//!   and NIC resources, with failures, repair traffic and limpware
//!   perturbing latency (performance SLAs, §3).
//!
//! [`scenario`] is the shared configuration surface the declarative layer
//! (`wt-wtql`) sweeps over, and [`results`] the serializable outputs the
//! result store (`wt-store`) persists.

pub mod arena;
pub mod availability;
pub mod chaos;
pub mod partitioned;
pub mod perf;
pub mod results;
pub mod scenario;
pub mod screen;
pub mod unavailability;

pub use arena::NodeLists;
pub use availability::{AvailabilityModel, RebuildModel};
pub use chaos::{ChaosGeometry, FaultKind, FaultSchedule, InjectionRule};
pub use partitioned::{PartitionedAvailability, PartitionedPerf};
pub use perf::PerfModel;
pub use results::{AvailabilityResult, PerfResult, TenantPerf, UnavailabilityPoint};
pub use scenario::Scenario;
pub use unavailability::UnavailabilityExperiment;
