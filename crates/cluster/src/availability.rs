//! Time-domain availability and durability simulation.
//!
//! Nodes fail with arbitrary TTF distributions (Weibull in the realistic
//! configurations, exponential when validating against the Markov model)
//! and are replaced after a repair time. A node failure destroys the
//! replicas/shards it held; after a detection delay each lost replica
//! becomes a rebuild task, executed under the scenario's
//! [`wt_sw::RepairPolicy`] concurrency cap. An object is *operable* while
//! its redundancy scheme's quorum predicate holds over its live holders,
//! and *lost* once too few holders remain to reconstruct it.
//!
//! Modeling choices (documented per DESIGN.md):
//!
//! * Failures are permanent for data: a replaced node returns empty. The
//!   transient-reboot case is representable with a `Timed` rebuild of the
//!   node-replace distribution.
//! * Rebuild targets are drawn uniformly from live nodes not already
//!   holding the object.
//! * Whole-node failure is the unit of data loss (per-disk failures are a
//!   straightforward extension; node granularity is what Figure 1 and the
//!   §1 example reason about).

use crate::arena::NodeLists;
use crate::chaos::{ChaosConfig, CompiledFault, FaultEffect};
use crate::results::AvailabilityResult;
use std::collections::VecDeque;
use wt_des::obs::{Hll, QuantileSketch, SketchSet};
use wt_des::prelude::*;
use wt_des::rng::RngFactory;
use wt_des::{CalendarQueue, EventQueue};
use wt_dist::Dist;
use wt_sw::repair::{RepairQueue, RepairTask};
use wt_sw::{Placement, Placer, RedundancyScheme, RepairPolicy};

/// Sketch-backed rebuild telemetry, armed only on observed runs.
///
/// These live in the model rather than behind the probe's
/// `Ctx::observe` path on purpose: rebuild starts are roughly half of
/// all events in a busy cluster, and routing each one through the
/// per-event emission buffer plus two virtual probe calls costs more
/// than the sketch update itself. Recording inline keeps the probed
/// run inside DESIGN.md §7's overhead budget; lower-rate engines (the
/// performance engine's request latencies) stay on the probe path.
#[derive(Debug, Default)]
struct RebuildSketches {
    wait_s: QuantileSketch,
    duration_s: QuantileSketch,
    objects: Hll,
    /// Run-length batch of the current (wait, duration) pair. One event
    /// starts every rebuild a freed slot (or a fresh failure's detection)
    /// allows, so bursts share one timestamp — and therefore bit-equal
    /// waits — and bandwidth-model durations repeat exactly. Identical
    /// pairs collapse to a counter bump here and reach the sketches via
    /// [`QuantileSketch::record_n`] when the pair changes.
    pend_wait_s: f64,
    pend_dur_s: f64,
    pend_n: u64,
}

impl RebuildSketches {
    /// Records one started rebuild (its queueing wait, stream duration,
    /// and object identity).
    fn record(&mut self, wait_s: f64, dur_s: f64, object: u64) {
        if wait_s == self.pend_wait_s && dur_s == self.pend_dur_s && self.pend_n > 0 {
            self.pend_n += 1;
        } else {
            self.flush();
            self.pend_wait_s = wait_s;
            self.pend_dur_s = dur_s;
            self.pend_n = 1;
        }
        self.objects.insert(object);
    }

    /// Pushes the pending run-length batch into the sketches.
    fn flush(&mut self) {
        if self.pend_n > 0 {
            self.wait_s.record_n(self.pend_wait_s, self.pend_n);
            self.duration_s.record_n(self.pend_dur_s, self.pend_n);
            self.pend_n = 0;
        }
    }

    /// True when the run never started a rebuild (nothing was recorded).
    fn is_empty(&self) -> bool {
        self.wait_s.count() == 0 && self.objects.estimate() == 0.0
    }

    /// Folds the sketches into a telemetry [`SketchSet`] under the same
    /// labels the probe path would have used.
    fn into_sketch_set(mut self, set: &mut SketchSet) {
        self.flush();
        set.values.insert("rebuild_wait_s".into(), self.wait_s);
        set.values
            .insert("rebuild_duration_s".into(), self.duration_s);
        set.distincts.insert("objects_rebuilt".into(), self.objects);
    }
}

/// How long one replica rebuild takes.
#[derive(Debug, Clone, PartialEq)]
pub enum RebuildModel {
    /// Drawn from a distribution (e.g. exponential for Markov validation,
    /// lognormal for field realism).
    Timed(Dist),
    /// Computed from the repair traffic over a link: the §1 "faster
    /// network shortens repair" knob.
    Bandwidth {
        /// Link speed available to one rebuild stream, Gbit/s.
        link_gbps: f64,
        /// Fraction of the link the rebuild may use.
        share: f64,
    },
}

/// Rack-level correlated failures: a top-of-rack switch outage makes the
/// whole rack's replicas *unreachable* (but intact) until the switch is
/// repaired — the §2.1 class of behavior "harder to re-produce in a
/// smaller prototype cluster".
#[derive(Debug, Clone)]
pub struct SwitchFailureModel {
    /// Nodes per rack (node `i` lives in rack `i / nodes_per_rack`;
    /// must divide the node count).
    pub nodes_per_rack: usize,
    /// Switch time-to-failure distribution, seconds.
    pub ttf: Dist,
    /// Switch repair-time distribution, seconds.
    pub repair: Dist,
}

/// Per-disk failure granularity: each node carries `per_node` disks, an
/// object's replica lives on one of them (stable hash of object × holder),
/// and a disk failure destroys only that slice of the node's replicas.
/// Node failures still destroy everything on the node.
#[derive(Debug, Clone)]
pub struct DiskFailureModel {
    /// Disks per node.
    pub per_node: usize,
    /// Per-disk time-to-failure distribution, seconds.
    pub ttf: Dist,
    /// Disk replacement time, seconds (the slot is empty meanwhile; data
    /// comes back via re-replication, not the replacement).
    pub replace: Dist,
}

/// Configuration for one availability run.
#[derive(Debug, Clone)]
pub struct AvailabilityModel {
    /// Number of nodes.
    pub n_nodes: usize,
    /// Redundancy scheme.
    pub redundancy: RedundancyScheme,
    /// Placement policy.
    pub placement: Placement,
    /// Number of customer objects.
    pub objects: u64,
    /// Raw bytes per object.
    pub object_bytes: u64,
    /// Node time-to-failure distribution, seconds.
    pub node_ttf: Dist,
    /// Node replacement time distribution, seconds.
    pub node_replace: Dist,
    /// Rebuild-time model.
    pub rebuild: RebuildModel,
    /// Repair policy (concurrency cap + detection delay).
    pub repair: RepairPolicy,
    /// Optional correlated rack-level failures (ToR switch outages).
    pub switches: Option<SwitchFailureModel>,
    /// Optional per-disk failures (finer failure granularity than nodes).
    pub disks: Option<DiskFailureModel>,
    /// Future-event-list backend. Both choices produce bitwise-identical
    /// results (the engine's `(time, seq)` contract); `Calendar` is faster
    /// once the steady-state pending set reaches cluster scale — one timer
    /// per node, switch and disk. See DESIGN.md §8.
    pub queue: QueueBackend,
    /// Optional declarative chaos: the fault schedule is compiled at setup
    /// (per run seed) into deterministic scheduled events. Chaos downtime
    /// makes nodes/racks *unreachable* (data intact, no repair traffic);
    /// gray storms slow rebuild streams; throttle rules clamp the repair
    /// queue's concurrency until they expire or their breaker trips.
    pub chaos: Option<ChaosConfig>,
}

impl AvailabilityModel {
    /// Runs the simulation for `horizon` and summarizes.
    pub fn run(&self, seed: u64, horizon: SimDuration) -> AvailabilityResult {
        match self.queue {
            QueueBackend::Heap => self.run_on::<EventQueue<Ev>>(seed, horizon),
            QueueBackend::Calendar => self.run_on::<CalendarQueue<Ev>>(seed, horizon),
        }
    }

    /// [`run`](Self::run), monomorphized for one queue backend.
    fn run_on<Q: PendingEvents<Ev> + Default>(
        &self,
        seed: u64,
        horizon: SimDuration,
    ) -> AvailabilityResult {
        let mut sim = self.seeded_sim::<Q>(seed);
        let end = SimTime::ZERO + horizon;
        sim.run_until(end);
        let events = sim.events_executed();
        sim.into_model().finish(end, events)
    }

    /// Like [`run`](Self::run), but with a probe attached: returns the same
    /// result (probes are one-way and cannot perturb the simulation) plus a
    /// [`RunTelemetry`](wt_des::obs::RunTelemetry) summary. When `extra` is
    /// given (e.g. a `TraceProbe`), it observes the same event stream.
    pub fn run_observed(
        &self,
        seed: u64,
        horizon: SimDuration,
        extra: Option<&mut dyn wt_des::obs::Probe>,
    ) -> (AvailabilityResult, wt_des::obs::RunTelemetry) {
        match self.queue {
            QueueBackend::Heap => self.run_observed_on::<EventQueue<Ev>>(seed, horizon, extra),
            QueueBackend::Calendar => {
                self.run_observed_on::<CalendarQueue<Ev>>(seed, horizon, extra)
            }
        }
    }

    /// [`run_observed`](Self::run_observed), monomorphized for one backend.
    fn run_observed_on<Q: PendingEvents<Ev> + Default>(
        &self,
        seed: u64,
        horizon: SimDuration,
        extra: Option<&mut dyn wt_des::obs::Probe>,
    ) -> (AvailabilityResult, wt_des::obs::RunTelemetry) {
        let mut sim = self.seeded_sim::<Q>(seed);
        sim.model_mut().sketches = Some(Box::default());
        let end = SimTime::ZERO + horizon;
        let mut sp = wt_des::obs::SimProbe::new();
        let reason = match extra {
            Some(p) => {
                let mut tee = wt_des::obs::Tee(&mut sp, p);
                sim.run_until_probed(end, &mut tee)
            }
            None => sim.run_until_probed(end, &mut sp),
        };
        let mut telemetry = sp.finish(sim.now().as_secs(), reason.as_str());
        telemetry.queue = Some(self.queue.as_str().to_string());
        let events = sim.events_executed();
        let mut model = sim.into_model();
        if let Some(s) = model.sketches.take() {
            if !s.is_empty() {
                s.into_sketch_set(telemetry.sketches.get_or_insert_with(SketchSet::default));
            }
        }
        (model.finish(end, events), telemetry)
    }

    /// Builds the simulation and seeds the initial failure events — the
    /// shared front half of [`run`](Self::run) and
    /// [`run_observed`](Self::run_observed), so the two paths cannot drift.
    fn seeded_sim<Q: PendingEvents<Ev> + Default>(
        &self,
        seed: u64,
    ) -> Simulation<AvailState<'_>, Q> {
        // Compile the fault schedule once per run: the per-rule streams
        // derive from this run's seed, so replications re-sample storms.
        let chaos_faults: Vec<CompiledFault> = self
            .chaos
            .as_ref()
            .map(|c| c.compile(self.n_nodes, seed))
            .unwrap_or_default();
        let n_chaos = chaos_faults.len();
        let mut sim = Simulation::with_queue(
            AvailState::new(self, seed, chaos_faults),
            seed,
            Q::default(),
        );
        // The steady state keeps one pending timer per failure-capable
        // component (node, switch, disk slot) plus the in-flight rebuild
        // streams; pre-size the queue so it never regrows mid-run.
        let racks = self
            .switches
            .as_ref()
            .map(|sw| self.n_nodes / sw.nodes_per_rack.max(1))
            .unwrap_or(0);
        let disk_slots = self
            .disks
            .as_ref()
            .map(|dm| self.n_nodes * dm.per_node)
            .unwrap_or(0);
        sim.reserve_events(
            self.n_nodes + racks + disk_slots + self.repair.max_parallel + 2 * n_chaos,
        );
        // Seed each node's first failure.
        let factory = RngFactory::new(seed);
        let mut rng = factory.stream("initial-failures");
        for node in 0..self.n_nodes {
            let ttf = SimDuration::from_secs(self.node_ttf.sample(&mut rng));
            sim.schedule_at(SimTime::ZERO + ttf, Ev::NodeFail(node));
        }
        if let Some(sw) = &self.switches {
            assert!(
                sw.nodes_per_rack >= 1 && self.n_nodes.is_multiple_of(sw.nodes_per_rack),
                "nodes_per_rack must divide n_nodes"
            );
            let racks = self.n_nodes / sw.nodes_per_rack;
            let mut sw_rng = factory.stream("initial-switch-failures");
            for rack in 0..racks {
                let ttf = SimDuration::from_secs(sw.ttf.sample(&mut sw_rng));
                sim.schedule_at(SimTime::ZERO + ttf, Ev::SwitchFail(rack));
            }
        }
        if let Some(dm) = &self.disks {
            assert!(dm.per_node >= 1, "need at least one disk per node");
            let mut disk_rng = factory.stream("initial-disk-failures");
            for node in 0..self.n_nodes {
                for slot in 0..dm.per_node {
                    let ttf = SimDuration::from_secs(dm.ttf.sample(&mut disk_rng));
                    sim.schedule_at(SimTime::ZERO + ttf, Ev::DiskFail { node, slot });
                }
            }
        }
        // The compiled chaos schedule is already content-ordered, so the
        // events' (time, seq) order is independent of rule declaration.
        // (The schedule now lives in the state; read the start times back
        // rather than cloning the whole compiled schedule.)
        for i in 0..n_chaos {
            let at_s = sim.model().chaos_faults[i].at_s;
            sim.schedule_at(
                SimTime::ZERO + SimDuration::from_secs(at_s),
                Ev::ChaosStart(i),
            );
        }
        sim
    }
}

/// Event alphabet of the availability simulation.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A node dies, destroying its replicas.
    NodeFail(usize),
    /// A replaced node returns to service (empty).
    NodeBack(usize),
    /// Detection delay elapsed: the replica `object` lost on the failed
    /// node becomes a rebuild task.
    EnqueueRebuild { object: u32 },
    /// A rebuild stream finished for `object`.
    RebuildDone { object: u32 },
    /// A rebuild found no eligible target node; try again after `delay_s`
    /// (doubled on each attempt, capped at a day, so a dying cluster does
    /// not flood the event queue with retries).
    RetryPlace { object: u32, delay_s: f64 },
    /// A top-of-rack switch dies: the rack becomes unreachable.
    SwitchFail(usize),
    /// A switch is repaired: the rack is reachable again.
    SwitchBack(usize),
    /// One disk dies, destroying the replicas in its slot.
    DiskFail { node: usize, slot: usize },
    /// The replaced disk is back in service (empty).
    DiskBack { node: usize, slot: usize },
    /// Compiled chaos fault `i` fires.
    ChaosStart(usize),
    /// Compiled chaos fault `i` restores/heals.
    ChaosEnd(usize),
}

/// The availability engine's run state, laid out struct-of-arrays for
/// data-center scale (the §4.2 "million disks" regime): per-object state
/// lives in parallel flat arrays, holder sets in one fixed-stride `u16`
/// arena, per-node object lists in a chunked [`NodeLists`] pool, and the
/// immutable configuration is *borrowed* from the model for the run's
/// duration instead of cloned into it. All hot-path temporaries are
/// reusable scratch buffers, so steady-state event handling performs no
/// heap allocation.
struct AvailState<'a> {
    cfg: &'a AvailabilityModel,
    /// Redundancy width — also the holder arena's stride.
    width: usize,
    /// Cached switch-model rack size (0 = no switch-failure model).
    switch_npr: usize,
    node_up: Vec<bool>,
    /// Rack reachability (all true when switch failures are disabled).
    rack_up: Vec<bool>,
    /// Cached per-node reachability: `node_up[n] ∧ rack_up ∧ no chaos
    /// window`. Kept in lockstep with its inputs by the handlers (every
    /// site that flips a `node_up`/`rack_up`/chaos counter refreshes the
    /// affected span), so the hot paths read one bool per node instead
    /// of re-deriving the predicate.
    reachable: Vec<bool>,
    node_objects: NodeLists,
    // --- per-object state, struct-of-arrays -----------------------------
    /// Fixed-stride holder arena: object `o`'s live holders are
    /// `holders_pool[o*width .. o*width + holder_len[o]]`. A holder count
    /// can never exceed the width (each rebuild task replaces exactly one
    /// removed replica), so the stride never overflows.
    holders_pool: Vec<u16>,
    holder_len: Vec<u8>,
    operable: Vec<bool>,
    lost: Vec<bool>,
    became_unavailable: Vec<SimTime>,
    unavail_s: Vec<f64>,
    // --------------------------------------------------------------------
    queue: RepairQueue,
    /// FIFO mirror of the repair queue's pending tasks: (object, enqueued).
    pending_mirror: VecDeque<(u64, SimTime)>,
    rng: wt_des::rng::Stream,
    /// Compiled chaos schedule (empty without a fault schedule).
    chaos_faults: Vec<CompiledFault>,
    /// Per-node chaos-downtime counters (overlapping windows stack).
    chaos_node_down: Vec<u32>,
    /// Per-rack chaos-downtime counters, under the *chaos* rack geometry
    /// (independent of the switch-failure model's).
    chaos_rack_down: Vec<u32>,
    /// Nodes per chaos rack (0 = no chaos configured).
    chaos_npr: usize,
    /// Active gray-storm rebuild slowdowns: (fault index, aggregate).
    chaos_slowdowns: Vec<(usize, f64)>,
    /// Active repair throttle: (fault index, saved max_parallel).
    chaos_throttle: Option<(usize, usize)>,
    // --- reusable hot-path scratch (zero per-event allocation) ----------
    /// Objects drained off a failed node/disk this event.
    scratch_hosted: Vec<u32>,
    /// Objects to re-assess after a reachability change (sorted+deduped).
    scratch_touched: Vec<u32>,
    /// Node spans assembled for chaos rack windows.
    scratch_nodes: Vec<usize>,
    /// Rebuild-target candidates.
    scratch_candidates: Vec<u16>,
    // counters
    node_failures: u64,
    switch_failures: u64,
    disk_failures: u64,
    unavailability_events: u64,
    rebuilds_completed: u64,
    rebuild_waits: Tally,
    /// Per-rebuild quantile/distinct sketches; `None` on unprobed runs,
    /// so the probe-free path pays one never-taken branch per rebuild.
    sketches: Option<Box<RebuildSketches>>,
}

impl<'a> AvailState<'a> {
    fn new(cfg: &'a AvailabilityModel, seed: u64, chaos_faults: Vec<CompiledFault>) -> Self {
        let width = cfg.redundancy.width();
        assert!(
            cfg.n_nodes <= u16::MAX as usize + 1,
            "node ids are u16: n_nodes must be ≤ {}",
            u16::MAX as usize + 1
        );
        assert!(width <= u8::MAX as usize, "holder counts are u8");
        let factory = RngFactory::new(seed);
        let mut placer = Placer::new(
            cfg.placement,
            cfg.n_nodes,
            width,
            factory.stream("placement"),
        );
        let n_objects = cfg.objects as usize;
        let mut node_objects = NodeLists::with_capacity(cfg.n_nodes, n_objects * width);
        let mut holders_pool: Vec<u16> = Vec::with_capacity(n_objects * width);
        let mut holder_len: Vec<u8> = Vec::with_capacity(n_objects);
        let mut placed: Vec<usize> = Vec::with_capacity(width);
        for obj in 0..cfg.objects {
            placer.place_into(obj, &mut placed);
            for &n in &placed {
                holders_pool.push(n as u16);
                node_objects.push(n, obj as u32);
            }
            // Pad to the stride (placers yield exactly `width` nodes; the
            // resize is a no-op then, but keeps short sets representable).
            holders_pool.resize((obj as usize + 1) * width, 0);
            holder_len.push(placed.len() as u8);
        }
        let racks = cfg
            .switches
            .as_ref()
            .map(|sw| cfg.n_nodes / sw.nodes_per_rack)
            .unwrap_or(1);
        let switch_npr = cfg
            .switches
            .as_ref()
            .map(|sw| sw.nodes_per_rack)
            .unwrap_or(0);
        let chaos_npr = cfg
            .chaos
            .as_ref()
            .map(|c| c.nodes_per_rack.max(1))
            .unwrap_or(0);
        let chaos_racks = if chaos_npr > 0 {
            cfg.n_nodes.div_ceil(chaos_npr)
        } else {
            0
        };
        AvailState {
            cfg,
            width,
            switch_npr,
            node_up: vec![true; cfg.n_nodes],
            rack_up: vec![true; racks],
            reachable: vec![true; cfg.n_nodes],
            node_objects,
            holders_pool,
            holder_len,
            operable: vec![true; n_objects],
            lost: vec![false; n_objects],
            became_unavailable: vec![SimTime::ZERO; n_objects],
            unavail_s: vec![0.0; n_objects],
            queue: RepairQueue::new(cfg.repair),
            pending_mirror: VecDeque::new(),
            rng: factory.stream("dynamics"),
            chaos_faults,
            chaos_node_down: vec![0; cfg.n_nodes],
            chaos_rack_down: vec![0; chaos_racks],
            chaos_npr,
            chaos_slowdowns: Vec::new(),
            chaos_throttle: None,
            scratch_hosted: Vec::new(),
            scratch_touched: Vec::new(),
            scratch_nodes: Vec::new(),
            scratch_candidates: Vec::new(),
            node_failures: 0,
            switch_failures: 0,
            disk_failures: 0,
            unavailability_events: 0,
            rebuilds_completed: 0,
            rebuild_waits: Tally::new(),
            sketches: None,
        }
    }

    /// Object `o`'s live holders (a view into the fixed-stride arena).
    #[inline]
    fn holders(&self, object: u32) -> &[u16] {
        let base = object as usize * self.width;
        &self.holders_pool[base..base + self.holder_len[object as usize] as usize]
    }

    /// Removes `node` from `object`'s holder set (order-preserving, like
    /// the old `Vec::retain`).
    fn holders_remove(&mut self, object: u32, node: usize) {
        let base = object as usize * self.width;
        let len = self.holder_len[object as usize] as usize;
        let mut k = 0;
        for i in 0..len {
            let h = self.holders_pool[base + i];
            if h as usize != node {
                self.holders_pool[base + k] = h;
                k += 1;
            }
        }
        self.holder_len[object as usize] = k as u8;
    }

    /// Appends `target` to `object`'s holder set.
    fn holders_push(&mut self, object: u32, target: u16) {
        let len = self.holder_len[object as usize] as usize;
        assert!(
            len < self.width,
            "holder set overflow: object {object} already has {len} holders"
        );
        self.holders_pool[object as usize * self.width + len] = target;
        self.holder_len[object as usize] = (len + 1) as u8;
    }

    /// The reachability predicate, computed from first principles: alive,
    /// rack switch up, no chaos window covering the node. The `reachable`
    /// vec caches this; every mutation site refreshes the affected span.
    fn compute_reachable(&self, node: usize) -> bool {
        if !self.node_up[node] {
            return false;
        }
        if self.chaos_node_down[node] > 0 {
            return false;
        }
        if self.chaos_npr > 0 && self.chaos_rack_down[node / self.chaos_npr] > 0 {
            return false;
        }
        self.switch_npr == 0 || self.rack_up[node / self.switch_npr]
    }

    #[inline]
    fn refresh_reachable(&mut self, node: usize) {
        self.reachable[node] = self.compute_reachable(node);
    }

    /// Re-evaluates operability/durability of `object` after a change.
    /// Operability counts *reachable* replicas (a rack behind a dead
    /// switch serves nothing); durability counts *intact* replicas (data
    /// behind a dead switch is not lost). Returns `true` iff the object
    /// became lost in this call (for the caller's `object_lost` mark).
    fn update_object(&mut self, object: u32, now: SimTime) -> bool {
        let i = object as usize;
        if self.lost[i] {
            return false;
        }
        let redundancy = self.cfg.redundancy;
        let width = self.width;
        let mut up = 0usize;
        for &h in self.holders(object) {
            if self.reachable[h as usize] {
                up += 1;
            }
        }
        let up = up.min(width);
        let intact = (self.holder_len[i] as usize).min(width);
        let was_operable = self.operable[i];
        let operable = redundancy.operable(up);
        if was_operable && !operable {
            self.operable[i] = false;
            self.became_unavailable[i] = now;
            self.unavailability_events += 1;
        } else if !was_operable && operable {
            self.operable[i] = true;
            self.unavail_s[i] += now.since(self.became_unavailable[i]).as_secs();
        }
        // Durability: can the data still be reconstructed? A lost object
        // stays unavailable until the horizon (finish() closes the interval).
        let recoverable = match redundancy {
            RedundancyScheme::Replication(_) => intact >= 1,
            RedundancyScheme::Erasure(s) => intact >= s.k,
        };
        if !recoverable {
            self.lost[i] = true;
            // Cancel queued rebuilds for this object — its sources are gone.
            while self.cancel_pending(object) {}
        }
        !recoverable
    }

    /// Cancels one queued rebuild of `object`, keeping the wait-time mirror
    /// aligned with the repair queue's FIFO order.
    fn cancel_pending(&mut self, object: u32) -> bool {
        if self.queue.cancel(u64::from(object)) {
            if let Some(pos) = self
                .pending_mirror
                .iter()
                .position(|&(o, _)| o == u64::from(object))
            {
                self.pending_mirror.remove(pos);
            }
            true
        } else {
            false
        }
    }

    /// One rebuild stream's duration. Active gray storms stretch it by the
    /// product of their aggregate slowdowns (repair streams cross limping
    /// disks/NICs; per-component detail lives in the perf engine).
    fn rebuild_duration(&mut self) -> SimDuration {
        let base = match &self.cfg.rebuild {
            RebuildModel::Timed(d) => d.sample(&mut self.rng),
            RebuildModel::Bandwidth { link_gbps, share } => {
                let traffic = self
                    .cfg
                    .redundancy
                    .repair_traffic_bytes(self.cfg.object_bytes);
                let bps = link_gbps * 1e9 / 8.0 * share;
                traffic as f64 / bps
            }
        };
        let slow: f64 = self.chaos_slowdowns.iter().map(|(_, f)| f).product();
        SimDuration::from_secs(base * slow)
    }

    /// Starts every rebuild the concurrency cap allows.
    fn start_rebuilds(&mut self, now: SimTime, ctx: &mut Ctx<'_, Ev>) {
        let started = self.queue.start_ready();
        for task in started {
            let enqueued = match self.pending_mirror.pop_front() {
                Some((obj, at)) => {
                    debug_assert_eq!(obj, task.object, "mirror out of sync");
                    at
                }
                None => now,
            };
            let wait_s = now.since(enqueued).as_secs();
            self.rebuild_waits.record(wait_s);
            let dur = self.rebuild_duration();
            // Per-rebuild wait and duration quantiles, plus the distinct
            // objects repair ever touched — recorded inline (see
            // [`RebuildSketches`]) and absent from unprobed runs.
            if let Some(s) = self.sketches.as_deref_mut() {
                s.record(wait_s, dur.as_secs(), task.object);
            }
            ctx.schedule_in(
                dur,
                Ev::RebuildDone {
                    object: task.object as u32,
                },
            );
        }
    }

    /// Picks a live node not already holding `object`. Under rack-aware
    /// placement, rebuilds also prefer racks that hold no replica yet —
    /// otherwise every repair would quietly erode the rack diversity the
    /// policy bought (a hardware/software interaction the wind tunnel
    /// surfaces; see experiment E11).
    fn pick_target(&mut self, object: u32) -> Option<u16> {
        // Borrow-juggle: the candidate buffer is a reusable field, so take
        // it out while we scan (the scan borrows `self` immutably).
        let mut candidates = std::mem::take(&mut self.scratch_candidates);
        candidates.clear();
        {
            let base = object as usize * self.width;
            let holders =
                &self.holders_pool[base..base + self.holder_len[object as usize] as usize];
            for n in 0..self.cfg.n_nodes as u16 {
                if self.reachable[n as usize] && !holders.contains(&n) {
                    candidates.push(n);
                }
            }
        }
        if candidates.is_empty() {
            self.scratch_candidates = candidates;
            return None;
        }
        if let Placement::RackAware { nodes_per_rack } = self.cfg.placement {
            let base = object as usize * self.width;
            let holders =
                &self.holders_pool[base..base + self.holder_len[object as usize] as usize];
            let diverse = |n: u16| {
                !holders
                    .iter()
                    .any(|&h| h as usize / nodes_per_rack == n as usize / nodes_per_rack)
            };
            let count = candidates.iter().filter(|&&n| diverse(n)).count();
            if count > 0 {
                let k = self.rng.index(count);
                let pick = candidates
                    .iter()
                    .copied()
                    .filter(|&n| diverse(n))
                    .nth(k)
                    .expect("k < diverse count");
                self.scratch_candidates = candidates;
                return Some(pick);
            }
        }
        let pick = candidates[self.rng.index(candidates.len())];
        self.scratch_candidates = candidates;
        Some(pick)
    }

    fn finish(mut self, end: SimTime, sim_events: u64) -> AvailabilityResult {
        // Close out open unavailability intervals.
        let mut total_unavail = 0.0f64;
        let n_objects = self.operable.len();
        for i in 0..n_objects {
            if !self.operable[i] {
                self.unavail_s[i] += end.since(self.became_unavailable[i]).as_secs();
            }
            total_unavail += self.unavail_s[i];
        }
        let horizon_s = end.since(SimTime::ZERO).as_secs();
        let availability = 1.0 - total_unavail / (n_objects as f64 * horizon_s);
        AvailabilityResult {
            availability,
            nines: AvailabilityResult::nines_of(availability),
            unavailability_events: self.unavailability_events,
            objects_lost: self.lost.iter().filter(|&&l| l).count() as u64,
            node_failures: self.node_failures,
            switch_failures: self.switch_failures,
            disk_failures: self.disk_failures,
            rebuilds_completed: self.rebuilds_completed,
            mean_rebuild_wait_s: self.rebuild_waits.mean(),
            horizon_s,
            sim_events,
        }
    }
}

impl Model for AvailState<'_> {
    type Event = Ev;

    fn label(ev: &Ev) -> &'static str {
        match ev {
            Ev::NodeFail(_) => "NodeFail",
            Ev::NodeBack(_) => "NodeBack",
            Ev::EnqueueRebuild { .. } => "EnqueueRebuild",
            Ev::RebuildDone { .. } => "RebuildDone",
            Ev::RetryPlace { .. } => "RetryPlace",
            Ev::SwitchFail(_) => "SwitchFail",
            Ev::SwitchBack(_) => "SwitchBack",
            Ev::DiskFail { .. } => "DiskFail",
            Ev::DiskBack { .. } => "DiskBack",
            Ev::ChaosStart(_) => "ChaosStart",
            Ev::ChaosEnd(_) => "ChaosEnd",
        }
    }

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now();
        match ev {
            Ev::NodeFail(node) => {
                if !self.node_up[node] {
                    return; // already down (stale event)
                }
                self.node_up[node] = false;
                self.refresh_reachable(node);
                self.node_failures += 1;
                // Destroy this node's replicas (drained in insertion order,
                // the same order the old Vec layout yielded).
                let mut hosted = std::mem::take(&mut self.scratch_hosted);
                hosted.clear();
                self.node_objects.drain_into(node, &mut hosted);
                for &object in &hosted {
                    self.holders_remove(object, node);
                    if self.update_object(object, now) {
                        ctx.mark("object_lost");
                    }
                    if !self.lost[object as usize] {
                        ctx.schedule_in(
                            SimDuration::from_secs(self.cfg.repair.detection_delay_s),
                            Ev::EnqueueRebuild { object },
                        );
                    }
                }
                self.scratch_hosted = hosted;
                // Machine replacement.
                let back = SimDuration::from_secs(self.node_replace_sample());
                ctx.schedule_in(back, Ev::NodeBack(node));
            }
            Ev::NodeBack(node) => {
                self.node_up[node] = true;
                self.refresh_reachable(node);
                // Next failure of the (fresh) machine.
                let ttf = SimDuration::from_secs(self.cfg.node_ttf.sample(&mut self.rng));
                ctx.schedule_in(ttf, Ev::NodeFail(node));
            }
            Ev::EnqueueRebuild { object } => {
                if self.lost[object as usize] {
                    return;
                }
                self.queue.enqueue(RepairTask {
                    object: u64::from(object),
                    bytes: self.cfg.object_bytes,
                });
                self.pending_mirror.push_back((u64::from(object), now));
                // Circuit breaker: a growing backlog under an active chaos
                // throttle trips it and restores full repair concurrency.
                if let Some((i, saved)) = self.chaos_throttle {
                    if let FaultEffect::RepairThrottle {
                        breaker_pending, ..
                    } = self.chaos_faults[i].effect
                    {
                        if self.queue.pending_len() > breaker_pending {
                            self.queue.set_max_parallel(saved);
                            self.chaos_throttle = None;
                            ctx.mark("chaos_breaker_trip");
                        }
                    }
                }
                self.start_rebuilds(now, ctx);
            }
            Ev::RebuildDone { object } => {
                self.queue.complete_one();
                if !self.lost[object as usize] {
                    match self.pick_target(object) {
                        Some(target) => {
                            self.holders_push(object, target);
                            self.node_objects.push(target as usize, object);
                            self.rebuilds_completed += 1;
                            self.update_object(object, now);
                        }
                        None => {
                            // No eligible node right now; retry with backoff.
                            ctx.schedule_in(
                                SimDuration::from_secs(60.0),
                                Ev::RetryPlace {
                                    object,
                                    delay_s: 60.0,
                                },
                            );
                        }
                    }
                }
                self.start_rebuilds(now, ctx);
            }
            Ev::RetryPlace { object, delay_s } => {
                if self.lost[object as usize] {
                    return;
                }
                match self.pick_target(object) {
                    Some(target) => {
                        self.holders_push(object, target);
                        self.node_objects.push(target as usize, object);
                        self.rebuilds_completed += 1;
                        self.update_object(object, now);
                    }
                    None => {
                        let next = (delay_s * 2.0).min(86_400.0);
                        ctx.schedule_in(
                            SimDuration::from_secs(next),
                            Ev::RetryPlace {
                                object,
                                delay_s: next,
                            },
                        );
                    }
                }
            }
            Ev::SwitchFail(rack) => {
                if !self.rack_up[rack] {
                    return;
                }
                self.rack_up[rack] = false;
                self.switch_failures += 1;
                for n in rack * self.switch_npr..(rack + 1) * self.switch_npr {
                    self.refresh_reachable(n);
                }
                self.reassess_rack(rack, now);
                // Copy the `&'a` config reference out of `self` so its
                // distributions and `self.rng` can be borrowed together.
                let cfg = self.cfg;
                let sw = cfg.switches.as_ref().expect("switch event without model");
                let back = SimDuration::from_secs(sw.repair.sample(&mut self.rng));
                ctx.schedule_in(back, Ev::SwitchBack(rack));
            }
            Ev::SwitchBack(rack) => {
                self.rack_up[rack] = true;
                for n in rack * self.switch_npr..(rack + 1) * self.switch_npr {
                    self.refresh_reachable(n);
                }
                self.reassess_rack(rack, now);
                let cfg = self.cfg;
                let sw = cfg.switches.as_ref().expect("switch event without model");
                let ttf = SimDuration::from_secs(sw.ttf.sample(&mut self.rng));
                ctx.schedule_in(ttf, Ev::SwitchFail(rack));
            }
            Ev::DiskFail { node, slot } => {
                self.disk_failures += 1;
                let per_node = self
                    .cfg
                    .disks
                    .as_ref()
                    .expect("disk event without model")
                    .per_node;
                // Destroy only the replicas living in this slot. A dead
                // node's replicas are already gone; skip it.
                if self.node_up[node] {
                    let mut hosted = std::mem::take(&mut self.scratch_hosted);
                    hosted.clear();
                    self.node_objects.drain_into(node, &mut hosted);
                    // Stable in-place partition: survivors go straight back
                    // to the node (insertion order preserved); hits compact
                    // to the buffer's front — same split the old two-Vec
                    // `partition` produced.
                    let mut n_hit = 0;
                    for i in 0..hosted.len() {
                        let obj = hosted[i];
                        if slot_of(obj, node, per_node) == slot {
                            hosted[n_hit] = obj;
                            n_hit += 1;
                        } else {
                            self.node_objects.push(node, obj);
                        }
                    }
                    hosted.truncate(n_hit);
                    for &object in &hosted {
                        self.holders_remove(object, node);
                        if self.update_object(object, now) {
                            ctx.mark("object_lost");
                        }
                        if !self.lost[object as usize] {
                            ctx.schedule_in(
                                SimDuration::from_secs(self.cfg.repair.detection_delay_s),
                                Ev::EnqueueRebuild { object },
                            );
                        }
                    }
                    self.scratch_hosted = hosted;
                }
                let cfg = self.cfg;
                let dm = cfg.disks.as_ref().expect("checked above");
                let back = SimDuration::from_secs(dm.replace.sample(&mut self.rng));
                ctx.schedule_in(back, Ev::DiskBack { node, slot });
            }
            Ev::DiskBack { node, slot } => {
                // The fresh disk carries no data; just arm its next failure.
                let cfg = self.cfg;
                let dm = cfg.disks.as_ref().expect("disk event without model");
                let ttf = SimDuration::from_secs(dm.ttf.sample(&mut self.rng));
                ctx.schedule_in(ttf, Ev::DiskFail { node, slot });
            }
            Ev::ChaosStart(i) => {
                ctx.mark(self.chaos_faults[i].mark);
                let until = self.chaos_faults[i].until_s;
                // Take the schedule out of `self` so the effect can be
                // matched by reference while the handlers mutate state (no
                // per-event clone; nothing below reads `chaos_faults`).
                let faults = std::mem::take(&mut self.chaos_faults);
                match &faults[i].effect {
                    FaultEffect::NodesDown { nodes } => {
                        for &n in nodes {
                            self.chaos_node_down[n] += 1;
                            self.refresh_reachable(n);
                        }
                        self.reassess_nodes(nodes, now);
                    }
                    FaultEffect::RacksDown { racks } => {
                        let mut span = std::mem::take(&mut self.scratch_nodes);
                        span.clear();
                        for &r in racks {
                            self.chaos_rack_down[r] += 1;
                            let lo = (r * self.chaos_npr).min(self.cfg.n_nodes);
                            let hi = ((r + 1) * self.chaos_npr).min(self.cfg.n_nodes);
                            span.extend(lo..hi);
                        }
                        for &n in &span {
                            self.refresh_reachable(n);
                        }
                        self.reassess_nodes(&span, now);
                        self.scratch_nodes = span;
                    }
                    FaultEffect::Limp { aggregate, .. } => {
                        self.chaos_slowdowns.push((i, *aggregate));
                    }
                    FaultEffect::RepairThrottle { max_parallel, .. } => {
                        // One throttle at a time; later windows are no-ops
                        // while an earlier one is active.
                        if self.chaos_throttle.is_none() {
                            let saved = self.queue.policy().max_parallel;
                            self.queue.set_max_parallel(*max_parallel);
                            self.chaos_throttle = Some((i, saved));
                        }
                    }
                }
                self.chaos_faults = faults;
                ctx.schedule_at(
                    SimTime::ZERO + SimDuration::from_secs(until.max(now.as_secs())),
                    Ev::ChaosEnd(i),
                );
            }
            Ev::ChaosEnd(i) => {
                ctx.mark("chaos_restore");
                let faults = std::mem::take(&mut self.chaos_faults);
                match &faults[i].effect {
                    FaultEffect::NodesDown { nodes } => {
                        for &n in nodes {
                            self.chaos_node_down[n] -= 1;
                            self.refresh_reachable(n);
                        }
                        self.reassess_nodes(nodes, now);
                    }
                    FaultEffect::RacksDown { racks } => {
                        let mut span = std::mem::take(&mut self.scratch_nodes);
                        span.clear();
                        for &r in racks {
                            self.chaos_rack_down[r] -= 1;
                            let lo = (r * self.chaos_npr).min(self.cfg.n_nodes);
                            let hi = ((r + 1) * self.chaos_npr).min(self.cfg.n_nodes);
                            span.extend(lo..hi);
                        }
                        for &n in &span {
                            self.refresh_reachable(n);
                        }
                        self.reassess_nodes(&span, now);
                        self.scratch_nodes = span;
                    }
                    FaultEffect::Limp { .. } => {
                        self.chaos_slowdowns.retain(|&(idx, _)| idx != i);
                    }
                    FaultEffect::RepairThrottle { .. } => {
                        // Only restore if this window is still the active
                        // throttle (its breaker may have tripped already).
                        if let Some((idx, saved)) = self.chaos_throttle {
                            if idx == i {
                                self.queue.set_max_parallel(saved);
                                self.chaos_throttle = None;
                                self.start_rebuilds(now, ctx);
                            }
                        }
                    }
                }
                self.chaos_faults = faults;
            }
        }
    }
}

/// Stable slot assignment: which disk of `node` holds `object`'s replica.
fn slot_of(object: u32, node: usize, per_node: usize) -> usize {
    let mut h = (u64::from(object) << 32) ^ (node as u64);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h % per_node as u64) as usize
}

impl AvailState<'_> {
    fn node_replace_sample(&mut self) -> f64 {
        self.cfg.node_replace.sample(&mut self.rng)
    }

    /// Re-evaluates every object with a replica on one of `nodes` after
    /// their reachability changed (chaos windows opening/closing).
    fn reassess_nodes(&mut self, nodes: &[usize], now: SimTime) {
        let mut touched = std::mem::take(&mut self.scratch_touched);
        touched.clear();
        for &n in nodes {
            self.node_objects.extend_into(n, &mut touched);
        }
        touched.sort_unstable();
        touched.dedup();
        for &object in &touched {
            self.update_object(object, now);
        }
        self.scratch_touched = touched;
    }

    /// Re-evaluates every object with a replica in `rack` after its
    /// reachability changed.
    fn reassess_rack(&mut self, rack: usize, now: SimTime) {
        let lo = rack * self.switch_npr;
        let hi = lo + self.switch_npr;
        let mut touched = std::mem::take(&mut self.scratch_touched);
        touched.clear();
        for n in lo..hi {
            self.node_objects.extend_into(n, &mut touched);
        }
        touched.sort_unstable();
        touched.dedup();
        for &object in &touched {
            self.update_object(object, now);
        }
        self.scratch_touched = touched;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: f64 = 86_400.0;
    const YEAR: f64 = 365.0 * DAY;

    fn base_model() -> AvailabilityModel {
        AvailabilityModel {
            n_nodes: 20,
            redundancy: RedundancyScheme::replication(3),
            placement: Placement::Random,
            objects: 200,
            object_bytes: 1 << 30,
            node_ttf: Dist::exponential_mean(0.5 * YEAR),
            node_replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
            rebuild: RebuildModel::Timed(Dist::exponential_mean(3600.0)),
            repair: RepairPolicy::parallel(16),
            switches: None,
            disks: None,
            queue: QueueBackend::Heap,
            chaos: None,
        }
    }

    #[test]
    fn stable_cluster_is_highly_available() {
        let r = base_model().run(1, SimDuration::from_years(2.0));
        assert!(r.availability > 0.999, "availability {}", r.availability);
        assert!(r.node_failures > 10, "failures {}", r.node_failures);
        assert!(r.rebuilds_completed > 0);
        assert_eq!(r.objects_lost, 0, "no data loss expected at these rates");
    }

    #[test]
    fn observed_run_matches_unobserved_and_accounts_for_every_event() {
        let m = base_model();
        let horizon = SimDuration::from_years(1.0);
        let plain = m.run(7, horizon);
        let (observed, t) = m.run_observed(7, horizon, None);
        assert_eq!(observed, plain, "probe must not perturb the simulation");
        assert_eq!(t.events, plain.sim_events);
        assert_eq!(
            t.events_by_label.values().sum::<u64>(),
            t.events,
            "per-label counts partition the event total"
        );
        assert_eq!(
            t.events_by_label.get("NodeFail"),
            Some(&plain.node_failures)
        );
        assert_eq!(t.stop_reason, "HorizonReached");
        assert!(t.horizon_s > 0.0);
        assert!(t.peak_queue_depth > 0);
        assert_eq!(t.wall.wall_us, 0, "engine does not fill wall time");
    }

    #[test]
    fn lost_objects_are_marked_in_telemetry() {
        // Single replica + rare repair: every destroyed replica is a loss.
        let mut m = base_model();
        m.redundancy = RedundancyScheme::replication(1);
        m.node_ttf = Dist::exponential_mean(10.0 * DAY);
        let (r, t) = m.run_observed(11, SimDuration::from_years(1.0), None);
        assert!(r.objects_lost > 0, "expected losses with replication(1)");
        assert_eq!(t.marks.get("object_lost"), Some(&r.objects_lost));
    }

    #[test]
    fn no_failures_means_perfect_availability() {
        let mut m = base_model();
        m.node_ttf = Dist::exponential_mean(1e9 * YEAR);
        let r = m.run(2, SimDuration::from_years(1.0));
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.unavailability_events, 0);
        assert_eq!(r.node_failures, 0);
    }

    #[test]
    fn slow_repair_hurts_availability() {
        let mut fast = base_model();
        fast.rebuild = RebuildModel::Timed(Dist::exponential_mean(600.0));
        let mut slow = base_model();
        slow.rebuild = RebuildModel::Timed(Dist::exponential_mean(7.0 * DAY));
        slow.repair = RepairPolicy {
            max_parallel: 1,
            ..RepairPolicy::serial()
        };
        let rf = fast.run(3, SimDuration::from_years(2.0));
        let rs = slow.run(3, SimDuration::from_years(2.0));
        assert!(
            rf.availability > rs.availability,
            "fast {} vs slow {}",
            rf.availability,
            rs.availability
        );
    }

    #[test]
    fn parallel_repair_beats_serial() {
        // The §1 claim, now in the time-domain simulator.
        let mk = |parallel: usize| {
            let mut m = base_model();
            m.node_ttf = Dist::exponential_mean(30.0 * DAY);
            m.rebuild = RebuildModel::Timed(Dist::exponential_mean(12.0 * 3600.0));
            m.repair = RepairPolicy {
                max_parallel: parallel,
                bandwidth_share: 0.5,
                detection_delay_s: 0.0,
            };
            m
        };
        let serial = mk(1).run(4, SimDuration::from_years(1.0));
        let parallel = mk(64).run(4, SimDuration::from_years(1.0));
        assert!(
            parallel.availability > serial.availability,
            "parallel {} vs serial {}",
            parallel.availability,
            serial.availability
        );
        assert!(parallel.mean_rebuild_wait_s <= serial.mean_rebuild_wait_s);
    }

    #[test]
    fn faster_network_shortens_rebuild_and_raises_availability() {
        // §1: the repair window (during which a second holder failure
        // causes quorum loss) scales inversely with link speed, so the
        // slow network accumulates many more unavailability episodes.
        let mk = |gbps: f64| {
            let mut m = base_model();
            m.node_ttf = Dist::exponential_mean(10.0 * DAY);
            m.node_replace = Dist::deterministic(3600.0);
            m.object_bytes = 256 << 30;
            m.rebuild = RebuildModel::Bandwidth {
                link_gbps: gbps,
                share: 0.5,
            };
            m.repair = RepairPolicy {
                max_parallel: 64,
                bandwidth_share: 0.5,
                detection_delay_s: 0.0,
            };
            m
        };
        let mut ev1 = 0u64;
        let mut ev10 = 0u64;
        for seed in 0..3 {
            ev1 += mk(1.0)
                .run(seed, SimDuration::from_days(100.0))
                .unavailability_events;
            ev10 += mk(10.0)
                .run(seed, SimDuration::from_days(100.0))
                .unavailability_events;
        }
        assert!(
            ev1 > 2 * ev10,
            "1G should see far more unavailability episodes: 1G={ev1} vs 10G={ev10}"
        );
    }

    #[test]
    fn extreme_failure_rate_loses_data() {
        let mut m = base_model();
        m.n_nodes = 10;
        m.objects = 100;
        m.node_ttf = Dist::exponential_mean(1.0 * DAY);
        m.node_replace = Dist::deterministic(5.0 * DAY);
        m.rebuild = RebuildModel::Timed(Dist::deterministic(2.0 * DAY));
        m.repair = RepairPolicy {
            max_parallel: 1,
            bandwidth_share: 0.5,
            detection_delay_s: 3600.0,
        };
        let r = m.run(6, SimDuration::from_days(60.0));
        assert!(r.objects_lost > 0, "expected data loss in a dying cluster");
        assert!(r.availability < 0.999);
    }

    #[test]
    fn erasure_vs_replication_durability() {
        // rs(6,3) tolerates 3 losses vs rep3's 2, with half the overhead.
        let mk = |red: RedundancyScheme| {
            let mut m = base_model();
            m.redundancy = red;
            m.n_nodes = 20;
            m.node_ttf = Dist::exponential_mean(10.0 * DAY);
            m.node_replace = Dist::deterministic(0.5 * DAY);
            // Rebuild capacity must exceed the replica-loss rate or the
            // repair queue diverges: ~30 lost replicas per failure, two
            // failures a day → ~60/day arriving; 16 parallel × 30 min
            // each → ~770/day capacity.
            m.rebuild = RebuildModel::Timed(Dist::deterministic(1800.0));
            m.repair = RepairPolicy {
                max_parallel: 16,
                bandwidth_share: 0.5,
                detection_delay_s: 600.0,
            };
            m
        };
        let rep = mk(RedundancyScheme::replication(3)).run(7, SimDuration::from_days(120.0));
        let rs = mk(RedundancyScheme::erasure(6, 3)).run(7, SimDuration::from_days(120.0));
        // Both should see failures; the comparison itself is the artifact
        // (E8 sweeps this properly) — here we just check both engines work
        // and produce sane numbers.
        assert!(rep.node_failures > 0 && rs.node_failures > 0);
        assert!(rep.availability > 0.5 && rs.availability > 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = base_model().run(9, SimDuration::from_days(100.0));
        let b = base_model().run(9, SimDuration::from_days(100.0));
        assert_eq!(a, b);
    }

    #[test]
    fn matches_markov_model_under_exponential_assumptions() {
        // §4.3 validation: 1 object, 5 replicas on a 10-node cluster,
        // exponential everything, parallel repair, majority quorum (3).
        // The Markov chain: per-replica fail rate λ (only holder failures
        // matter), rebuild rate μ each. n=5 keeps the absorbing data-loss
        // state (0 up) far below the unavailability threshold (≤2 up), so
        // the sim's loss-is-permanent semantics and the chain's recurrent
        // state 0 differ only at probability ~(λ/μ)² of the unavailable
        // mass — inside the tolerance.
        const LAMBDA: f64 = 1.0 / (30.0 * DAY);
        const MU: f64 = 1.0 / DAY;
        let m = AvailabilityModel {
            n_nodes: 10,
            redundancy: RedundancyScheme::replication(5),
            placement: Placement::Random,
            objects: 1,
            object_bytes: 1,
            node_ttf: Dist::exponential(LAMBDA),
            node_replace: Dist::deterministic(1.0), // near-instant replacement
            rebuild: RebuildModel::Timed(Dist::exponential(MU)),
            repair: RepairPolicy {
                max_parallel: 1024,
                bandwidth_share: 1.0,
                detection_delay_s: 0.0,
            },
            switches: None,
            disks: None,
            queue: QueueBackend::Heap,
            chaos: None,
        };
        // Average multiple long replications for a tight estimate.
        let mut avail = 0.0;
        let reps = 8;
        for seed in 0..reps {
            let r = m.run(seed, SimDuration::from_years(40.0));
            assert_eq!(r.objects_lost, 0, "seed {seed} lost data (p should be ~0)");
            avail += r.availability;
        }
        avail /= reps as f64;
        let markov = wt_analytic::RepairableReplicas::new(5, LAMBDA, MU, true);
        let want = markov.availability(3);
        let unavail_sim = 1.0 - avail;
        let unavail_markov = 1.0 - want;
        assert!(
            (unavail_sim - unavail_markov).abs() < 0.5 * unavail_markov,
            "simulated unavailability {unavail_sim:.2e} vs Markov {unavail_markov:.2e}"
        );
    }

    #[test]
    fn switch_outages_cause_correlated_unavailability() {
        // 3 racks x 10 nodes. Switches fail often; nodes are reliable, so
        // every unavailability episode is rack-correlated.
        let mk = |placement: Placement| AvailabilityModel {
            n_nodes: 30,
            redundancy: RedundancyScheme::replication(3),
            placement,
            objects: 500,
            object_bytes: 1 << 30,
            node_ttf: Dist::exponential_mean(10_000.0 * YEAR),
            node_replace: Dist::deterministic(3600.0),
            rebuild: RebuildModel::Timed(Dist::deterministic(600.0)),
            repair: RepairPolicy {
                max_parallel: 16,
                bandwidth_share: 0.5,
                detection_delay_s: 60.0,
            },
            switches: Some(SwitchFailureModel {
                nodes_per_rack: 10,
                ttf: Dist::exponential_mean(20.0 * DAY),
                repair: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
            }),
            disks: None,
            queue: QueueBackend::Heap,
            chaos: None,
        };
        let random = mk(Placement::Random).run(3, SimDuration::from_years(2.0));
        assert!(
            random.switch_failures > 50,
            "switches should fail: {random:?}"
        );
        assert_eq!(random.node_failures, 0);
        // Random placement sometimes puts 2+ of 3 replicas in one rack ->
        // a single switch outage kills those quorums.
        assert!(
            random.unavailability_events > 0,
            "correlated outages should cause unavailability: {random:?}"
        );
        // Nothing is lost - the data behind the dead switch is intact.
        assert_eq!(random.objects_lost, 0);

        // Rack-aware placement puts <=1 replica per rack: one switch outage
        // can never remove a majority of 3.
        let rack_aware =
            mk(Placement::RackAware { nodes_per_rack: 10 }).run(3, SimDuration::from_years(2.0));
        assert!(
            rack_aware.unavailability_events * 10 < random.unavailability_events.max(10),
            "rack-aware {} vs random {}",
            rack_aware.unavailability_events,
            random.unavailability_events
        );
        assert!(rack_aware.availability >= random.availability);
    }

    #[test]
    fn disk_failures_destroy_only_their_slot() {
        // Reliable nodes, failing disks: rebuilds happen without any node
        // failure, and only a fraction of each node's objects per event.
        let m = AvailabilityModel {
            n_nodes: 12,
            redundancy: RedundancyScheme::replication(3),
            placement: Placement::Random,
            objects: 600,
            object_bytes: 1 << 30,
            node_ttf: Dist::exponential_mean(1e6 * YEAR),
            node_replace: Dist::deterministic(1.0),
            rebuild: RebuildModel::Timed(Dist::deterministic(600.0)),
            repair: RepairPolicy {
                max_parallel: 64,
                bandwidth_share: 0.5,
                detection_delay_s: 60.0,
            },
            switches: None,
            disks: Some(DiskFailureModel {
                per_node: 8,
                ttf: Dist::weibull_mean(0.8, 60.0 * DAY),
                replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
            }),
            queue: QueueBackend::Heap,
            chaos: None,
        };
        let r = m.run(21, SimDuration::from_years(1.0));
        assert_eq!(r.node_failures, 0);
        assert!(r.disk_failures > 100, "disk failures {}", r.disk_failures);
        assert!(r.rebuilds_completed > 0);
        assert_eq!(r.objects_lost, 0, "triple-slot coincidences should be rare");
        assert!(r.availability > 0.9999, "availability {}", r.availability);
        // A disk failure destroys ~1/8 of a node's replicas, so rebuilds
        // per failure are far below objects×width/nodes.
        let per_failure = r.rebuilds_completed as f64 / r.disk_failures as f64;
        let whole_node = 600.0 * 3.0 / 12.0;
        assert!(
            per_failure < whole_node / 4.0,
            "per-failure rebuilds {per_failure} vs whole-node {whole_node}"
        );
    }

    #[test]
    fn disk_and_node_failures_compose() {
        let m = AvailabilityModel {
            n_nodes: 12,
            redundancy: RedundancyScheme::replication(3),
            placement: Placement::Random,
            objects: 200,
            object_bytes: 1 << 30,
            node_ttf: Dist::exponential_mean(60.0 * DAY),
            node_replace: Dist::deterministic(4.0 * 3600.0),
            rebuild: RebuildModel::Timed(Dist::deterministic(600.0)),
            repair: RepairPolicy {
                max_parallel: 64,
                bandwidth_share: 0.5,
                detection_delay_s: 60.0,
            },
            switches: None,
            disks: Some(DiskFailureModel {
                per_node: 8,
                ttf: Dist::weibull_mean(0.8, 90.0 * DAY),
                replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
            }),
            queue: QueueBackend::Heap,
            chaos: None,
        };
        let r = m.run(22, SimDuration::from_years(1.0));
        assert!(r.node_failures > 0 && r.disk_failures > 0);
        // Determinism still holds with all failure sources active.
        assert_eq!(r, m.run(22, SimDuration::from_years(1.0)));
    }

    #[test]
    fn switch_repair_restores_reachability() {
        // One rack, permanently reliable nodes, one switch that fails once
        // and repairs: availability = 1 - outage fraction.
        let m = AvailabilityModel {
            n_nodes: 10,
            redundancy: RedundancyScheme::replication(3),
            placement: Placement::Random,
            objects: 50,
            object_bytes: 1,
            node_ttf: Dist::exponential_mean(1e9 * YEAR),
            node_replace: Dist::deterministic(1.0),
            rebuild: RebuildModel::Timed(Dist::deterministic(1.0)),
            repair: RepairPolicy::parallel(8),
            switches: Some(SwitchFailureModel {
                nodes_per_rack: 10,
                ttf: Dist::deterministic(10.0 * DAY),
                repair: Dist::deterministic(1.0 * DAY),
            }),
            disks: None,
            queue: QueueBackend::Heap,
            chaos: None,
        };
        let r = m.run(4, SimDuration::from_days(11.0));
        // Down from day 10 to day 11 (the horizon): 1 of 11 days.
        assert!((r.availability - 10.0 / 11.0).abs() < 0.01, "{r:?}");
        assert_eq!(r.objects_lost, 0);
        assert_eq!(r.switch_failures, 1);
        // All 50 objects went unavailable exactly once.
        assert_eq!(r.unavailability_events, 50);
    }

    #[test]
    fn weibull_failures_diverge_from_exponential_markov() {
        // §2.2's argument: with Weibull(0.7) failures at the same mean, the
        // exponential Markov model's availability prediction is biased.
        // We check the two engines simply give different answers (the
        // detailed comparison is experiment E5).
        const MEAN_TTF: f64 = 10.0 * DAY;
        const MU: f64 = 1.0 / DAY;
        let mk = |ttf: Dist| AvailabilityModel {
            n_nodes: 10,
            redundancy: RedundancyScheme::replication(5),
            placement: Placement::Random,
            objects: 1,
            object_bytes: 1,
            node_ttf: ttf,
            node_replace: Dist::deterministic(1.0),
            rebuild: RebuildModel::Timed(Dist::exponential(MU)),
            repair: RepairPolicy {
                max_parallel: 1024,
                bandwidth_share: 1.0,
                detection_delay_s: 0.0,
            },
            switches: None,
            disks: None,
            queue: QueueBackend::Heap,
            chaos: None,
        };
        let mut exp_avail = 0.0;
        let mut weib_avail = 0.0;
        let reps = 6;
        for seed in 0..reps {
            exp_avail += mk(Dist::exponential_mean(MEAN_TTF))
                .run(seed, SimDuration::from_years(30.0))
                .availability;
            weib_avail += mk(Dist::weibull_mean(0.7, MEAN_TTF))
                .run(seed + 100, SimDuration::from_years(30.0))
                .availability;
        }
        exp_avail /= reps as f64;
        weib_avail /= reps as f64;
        // Same mean TTF, different law → measurably different availability.
        assert!(
            (exp_avail - weib_avail).abs() > 1e-5,
            "exp {exp_avail} vs weibull {weib_avail} indistinguishable"
        );
    }

    fn chaos(schedule: crate::chaos::FaultSchedule) -> Option<ChaosConfig> {
        Some(ChaosConfig {
            schedule,
            nodes_per_rack: 10,
        })
    }

    #[test]
    fn empty_fault_schedule_is_inert() {
        let mut with_empty = base_model();
        with_empty.chaos = chaos(crate::chaos::FaultSchedule::new());
        let plain = base_model().run(21, SimDuration::from_years(1.0));
        let r = with_empty.run(21, SimDuration::from_years(1.0));
        assert_eq!(r, plain, "empty schedule must be bit-identical to none");
    }

    #[test]
    fn power_loss_window_is_exact_downtime() {
        use crate::chaos::{FaultKind, FaultSchedule};
        let mut m = base_model();
        // No organic failures: the only downtime is the chaos window.
        m.node_ttf = Dist::exponential_mean(1e9 * YEAR);
        m.chaos = chaos(FaultSchedule::new().rule(
            "pdu",
            200_000.0,
            FaultKind::PowerDomainLoss {
                first_rack: 0,
                racks: 2,
                restore_s: 100_000.0,
            },
        ));
        let (r, t) = m.run_observed(5, SimDuration::from_secs(1_000_000.0), None);
        // Whole cluster dark for 10% of the horizon, data intact:
        // availability is exactly the complement — no losses, no repair
        // traffic, one unavailability episode per object.
        assert!(
            (r.availability - 0.9).abs() < 1e-9,
            "availability {}",
            r.availability
        );
        assert_eq!(r.objects_lost, 0);
        assert_eq!(r.rebuilds_completed, 0);
        assert_eq!(r.unavailability_events, 200);
        assert_eq!(t.marks.get("inject_power_loss"), Some(&1));
        assert_eq!(t.marks.get("chaos_restore"), Some(&1));
    }

    #[test]
    fn gray_storm_slows_rebuilds_and_hurts_availability() {
        use crate::chaos::{FaultKind, FaultSchedule};
        let mk = |stormy: bool| {
            let mut m = base_model();
            m.node_ttf = Dist::exponential_mean(20.0 * DAY);
            if stormy {
                // Every disk in the cluster limps 200× for the whole year:
                // rebuild streams crawl, widening every repair window.
                m.chaos = chaos(FaultSchedule::new().rule(
                    "storm",
                    0.0,
                    FaultKind::GrayStorm {
                        spec: wt_hw::LimpwareSpec::degraded_disk_fixed(1.0, 200.0),
                        center_rack: 0,
                        radius_racks: 1,
                        duration_s: YEAR,
                    },
                ));
            }
            m
        };
        let calm = mk(false).run(6, SimDuration::from_years(1.0));
        let stormy = mk(true).run(6, SimDuration::from_years(1.0));
        assert!(
            stormy.availability < calm.availability,
            "storm {} should undercut calm {}",
            stormy.availability,
            calm.availability
        );
    }

    #[test]
    fn repair_throttle_breaker_trips_on_backlog() {
        use crate::chaos::{FaultKind, FaultSchedule};
        let mut m = base_model();
        m.node_ttf = Dist::exponential_mean(5.0 * DAY);
        // Repair frozen for the whole horizon — but the breaker lifts the
        // freeze as soon as more than 3 rebuilds are pending.
        m.chaos = chaos(FaultSchedule::new().rule(
            "freeze",
            0.0,
            FaultKind::RepairThrottle {
                max_parallel: 0,
                duration_s: YEAR,
                breaker_pending: 3,
            },
        ));
        let (r, t) = m.run_observed(8, SimDuration::from_years(1.0), None);
        assert_eq!(t.marks.get("inject_repair_throttle"), Some(&1));
        assert_eq!(t.marks.get("chaos_breaker_trip"), Some(&1));
        assert!(
            r.rebuilds_completed > 0,
            "repair must resume after the trip"
        );
    }

    #[test]
    fn chaos_is_deterministic_and_backend_invariant() {
        use crate::chaos::{FaultKind, FaultSchedule};
        let mut m = base_model();
        m.node_ttf = Dist::exponential_mean(20.0 * DAY);
        m.chaos = chaos(
            FaultSchedule::new()
                .rule(
                    "storm",
                    30.0 * DAY,
                    FaultKind::GrayStorm {
                        spec: wt_hw::LimpwareSpec::degraded_disk_fixed(0.5, 50.0),
                        center_rack: 0,
                        radius_racks: 0,
                        duration_s: 10.0 * DAY,
                    },
                )
                .rule(
                    "tor",
                    90.0 * DAY,
                    FaultKind::TorDeath {
                        rack: 1,
                        repair_s: DAY,
                    },
                ),
        );
        let a = m.run(9, SimDuration::from_years(1.0));
        let b = m.run(9, SimDuration::from_years(1.0));
        assert_eq!(a, b, "same seed must replay identically under chaos");
        let mut cal = m.clone();
        cal.queue = QueueBackend::Calendar;
        let c = cal.run(9, SimDuration::from_years(1.0));
        assert_eq!(a, c, "chaos results must not depend on the queue backend");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const DAY: f64 = 86_400.0;

    #[allow(clippy::too_many_arguments)]
    fn arb_model(
        n_nodes: usize,
        n_rep: usize,
        objects: u64,
        ttf_days: f64,
        rebuild_hours: f64,
        parallel: usize,
        detection: f64,
    ) -> AvailabilityModel {
        AvailabilityModel {
            n_nodes,
            redundancy: RedundancyScheme::replication(n_rep),
            placement: Placement::Random,
            objects,
            object_bytes: 1 << 30,
            node_ttf: Dist::exponential_mean(ttf_days * DAY),
            node_replace: Dist::deterministic(3600.0),
            rebuild: RebuildModel::Timed(Dist::exponential_mean(rebuild_hours * 3600.0)),
            repair: RepairPolicy {
                max_parallel: parallel,
                bandwidth_share: 0.5,
                detection_delay_s: detection,
            },
            switches: None,
            disks: None,
            queue: QueueBackend::Heap,
            chaos: None,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Whatever the (sane) configuration, the engine's bookkeeping
        /// invariants hold: availability in [0,1], loss bounded by the
        /// object count, every completed rebuild implies a prior failure,
        /// and identical seeds replay identically.
        #[test]
        fn engine_invariants(
            n_nodes in 4usize..20,
            rep in 1usize..4,
            objects in 1u64..100,
            ttf_days in 2.0f64..60.0,
            rebuild_hours in 0.1f64..24.0,
            parallel in 1usize..32,
            detection in 0.0f64..7200.0,
            seed in 0u64..1000,
        ) {
            prop_assume!(rep <= n_nodes);
            let m = arb_model(n_nodes, rep, objects, ttf_days, rebuild_hours, parallel, detection);
            let r = m.run(seed, SimDuration::from_days(60.0));
            prop_assert!((0.0..=1.0).contains(&r.availability), "availability {}", r.availability);
            prop_assert!(r.objects_lost <= objects);
            if r.node_failures == 0 {
                prop_assert_eq!(r.rebuilds_completed, 0);
                prop_assert_eq!(r.unavailability_events, 0);
                prop_assert_eq!(r.availability, 1.0);
            }
            // Rebuilds can never exceed the replicas destroyed.
            prop_assert!(
                r.rebuilds_completed <= r.node_failures * objects * rep as u64,
                "rebuilds {} vs bound", r.rebuilds_completed
            );
            prop_assert!(r.mean_rebuild_wait_s >= 0.0);
            // Determinism.
            let r2 = m.run(seed, SimDuration::from_days(60.0));
            prop_assert_eq!(r, r2);
        }

        /// The SoA construction (fixed-stride holder arena + chunked
        /// `NodeLists`) lays out exactly what the old `Vec<Vec<_>>`
        /// representation held, for arbitrary placements and geometries:
        /// same holders per object (in order), same objects per node (in
        /// order).
        #[test]
        fn soa_construction_matches_vec_of_vecs(
            racks in 3usize..8,
            npr in 1usize..6,
            rep in 1usize..4,
            objects in 1u64..200,
            seed in any::<u64>(),
            placement_sel in 0usize..3,
        ) {
            let n_nodes = racks * npr;
            prop_assume!(rep <= n_nodes);
            let placement = match placement_sel {
                0 => Placement::Random,
                1 => Placement::RoundRobin,
                _ => Placement::RackAware { nodes_per_rack: npr },
            };
            let m = AvailabilityModel {
                n_nodes,
                redundancy: RedundancyScheme::replication(rep),
                placement,
                objects,
                object_bytes: 1 << 30,
                node_ttf: Dist::exponential_mean(30.0 * DAY),
                node_replace: Dist::deterministic(3600.0),
                rebuild: RebuildModel::Timed(Dist::deterministic(600.0)),
                repair: RepairPolicy::parallel(8),
                switches: None,
                disks: None,
                queue: QueueBackend::Heap,
                chaos: None,
            };
            let st = AvailState::new(&m, seed, Vec::new());
            // Naive reference layout from an identically-seeded placer.
            let mut placer = Placer::new(
                placement,
                n_nodes,
                rep,
                RngFactory::new(seed).stream("placement"),
            );
            let mut naive: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
            for obj in 0..objects {
                let placed = placer.place(obj);
                let want: Vec<u16> = placed.iter().map(|&n| n as u16).collect();
                prop_assert_eq!(st.holders(obj as u32), want.as_slice());
                for &n in &placed {
                    naive[n].push(obj as u32);
                }
            }
            for (n, want) in naive.iter().enumerate() {
                let mut got = Vec::new();
                st.node_objects.extend_into(n, &mut got);
                prop_assert_eq!(&got, want);
            }
        }
    }
}
