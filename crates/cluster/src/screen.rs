//! Scenario → analytic-screen extraction for guided sweeps.
//!
//! Maps a [`Scenario`] onto the conservative closed-form screens in
//! `wt-analytic` (DESIGN.md §12). The extraction is the soundness-critical
//! half of screening: every parameter fed to a screen must bound the
//! simulated system from the safe side.
//!
//! * **Availability** — a destroyed replica is down for at least the
//!   failure-detection delay plus the deterministic bandwidth-limited
//!   rebuild time ([`crate::availability`] schedules `EnqueueRebuild`
//!   only after `detection_delay_s`, and the `RebuildModel::Bandwidth`
//!   stream duration is a fixed function of bytes and link share — chaos
//!   can only lengthen it). Node MTTF comes from the TTF distribution's
//!   mean. Extra failure sources the chain does not model (switch/disk
//!   failures, chaos faults) disable Pass screening but leave Fail
//!   screening sound: they only remove availability.
//! * **Performance** — the disk tier is under-approximated as M/M/c with
//!   `c = nodes × disks` at the fastest possible per-request service
//!   time, fed by the post-cache arrival rate. The real system is never
//!   faster, so a latency SLA the optimistic model already misses is
//!   certainly missed in the DES.

use crate::scenario::Scenario;
use wt_analytic::screen::{AvailabilityScreen, PerfScreen};
use wt_sw::RedundancyScheme;

/// Seconds per simulated year (matches the engines' horizon conversion).
const YEAR_S: f64 = 365.0 * 86_400.0;

/// The read quorum the availability engine enforces: 1 reachable holder
/// for replication, `k` for erasure.
fn read_quorum(redundancy: &RedundancyScheme) -> usize {
    match redundancy {
        RedundancyScheme::Replication(_) => 1,
        RedundancyScheme::Erasure(s) => s.k,
    }
}

/// The deterministic bandwidth-limited rebuild-stream duration for one
/// object, seconds — the same formula as `RebuildModel::Bandwidth`.
pub fn rebuild_stream_s(scenario: &Scenario) -> f64 {
    let bytes = scenario
        .redundancy
        .repair_traffic_bytes(scenario.object_bytes) as f64;
    let rate =
        scenario.topology.node.nic.bandwidth_gbps * 1e9 / 8.0 * scenario.repair.bandwidth_share;
    if rate > 0.0 {
        bytes / rate
    } else {
        f64::INFINITY
    }
}

/// Builds the availability screen for a scenario.
///
/// `min_expected_failures` gates all screening: below it the DES may see
/// so few failures that measured availability is exactly 1.0, and no
/// asymptotic bound is safe to apply.
pub fn availability_screen(scenario: &Scenario, min_expected_failures: f64) -> AvailabilityScreen {
    let mttf_s = scenario.topology.node.ttf.mean();
    let rebuild_s = rebuild_stream_s(scenario);
    let horizon_s = scenario.horizon_years * YEAR_S;
    let n_nodes = scenario.topology.node_count() as f64;
    AvailabilityScreen {
        width: scenario.redundancy.width(),
        quorum: read_quorum(&scenario.redundancy),
        mttf_s,
        min_down_s: scenario.repair.detection_delay_s + rebuild_s,
        rebuild_s,
        horizon_s,
        expected_failures: n_nodes * horizon_s / mttf_s,
        extra_failure_sources: scenario.switch_failures
            || scenario.disk_failures
            || scenario.fault_schedule().is_some(),
        min_expected_failures,
    }
}

/// Builds the latency screen for a scenario, or `None` when there is no
/// post-cache disk load to bound (no tenants, or the buffer cache covers
/// the whole dataset).
pub fn perf_screen(scenario: &Scenario) -> Option<PerfScreen> {
    if scenario.tenants.is_empty() {
        return None;
    }
    let total_rate: f64 = scenario.tenants.iter().map(|t| t.arrivals.rate()).sum();
    let dataset: f64 = scenario
        .tenants
        .iter()
        .map(|t| t.dataset_bytes as f64)
        .sum();
    let n = scenario.topology.node_count();
    let mem = scenario.topology.node.mem.capacity_gb * 1e9 * n as f64;
    let cache_hit_p = if dataset > 0.0 {
        (mem / dataset).min(1.0)
    } else {
        0.0
    };
    // Lower bound on the disk-tier arrival rate: every request *may* be
    // absorbed by the cache (writes never are, so the truth is higher).
    let lambda = total_rate * (1.0 - cache_hit_p);
    if lambda <= 0.0 {
        return None;
    }
    let disk = &scenario.topology.node.disks[0];
    // Fastest conceivable request: a single 4K random page, whichever
    // direction is quicker.
    let min_service_s = disk
        .service_time(1, false, false)
        .min(disk.service_time(1, false, true));
    Some(PerfScreen {
        lambda,
        servers: (n * scenario.topology.node.disks.len().max(1)) as u32,
        min_service_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wt_analytic::screen::{Rel, ScreenVerdict};
    use wt_des::QueueBackend;
    use wt_hw::{catalog, TopologySpec};
    use wt_sw::{Placement, RepairPolicy};
    use wt_workload::TenantWorkload;

    const DAY_S: f64 = 86_400.0;

    /// e6-style failure-heavy base: 30 nodes, short node lifetimes, a
    /// quarter-year horizon — enough expected failures for screens to arm.
    fn stress_base(replication: usize, detection_s: f64) -> Scenario {
        let mut node = catalog::node_storage_server(catalog::hdd_7200_4t(), 4, catalog::nic_10g());
        node.ttf = wt_dist::Dist::weibull_mean(0.8, 40.0 * DAY_S);
        Scenario {
            name: "stress".into(),
            topology: TopologySpec {
                racks: 3,
                nodes_per_rack: 10,
                node,
                tor: catalog::switch_tor_48x10g(),
                agg: catalog::switch_agg_32x40g(),
                oversubscription: 4.0,
            },
            redundancy: RedundancyScheme::replication(replication),
            placement: Placement::Random,
            repair: RepairPolicy {
                detection_delay_s: detection_s,
                ..RepairPolicy::parallel(8)
            },
            objects: 1_000,
            object_bytes: 4 << 30,
            tenants: vec![],
            limpware: None,
            switch_failures: false,
            disk_failures: false,
            horizon_years: 0.25,
            seed: 42,
            queue: Some(QueueBackend::Heap),
            faults: None,
        }
    }

    #[test]
    fn stress_base_arms_the_screen() {
        let s = availability_screen(&stress_base(2, 600.0), 10.0);
        // 30 nodes × 0.25 y at 40-day MTTF ≈ 68 expected failures.
        assert!(s.expected_failures > 50.0, "E={}", s.expected_failures);
        assert!(!s.extra_failure_sources);
        assert_eq!(s.width, 2);
        assert_eq!(s.quorum, 1);
    }

    #[test]
    fn slow_detection_screens_fail_fast_detection_does_not() {
        // Five-day detection delay: rep-2 and rep-3 provably miss a
        // 0.99985 floor; rep-5 and the fast-detection arms stay Unknown.
        for rep in [2, 3] {
            let s = availability_screen(&stress_base(rep, 5.0 * DAY_S), 10.0);
            assert_eq!(
                s.screen(Rel::Ge, 0.99985, 0.0),
                ScreenVerdict::Fail,
                "rep {rep} should screen out"
            );
        }
        let s5 = availability_screen(&stress_base(5, 5.0 * DAY_S), 10.0);
        assert_eq!(s5.screen(Rel::Ge, 0.99985, 0.0), ScreenVerdict::Unknown);
        let fast = availability_screen(&stress_base(2, 600.0), 10.0);
        assert_eq!(fast.screen(Rel::Ge, 0.99985, 0.0), ScreenVerdict::Unknown);
    }

    #[test]
    fn catalog_default_lifetimes_never_screen() {
        // The catalog's 12.5-year node MTTF gives < 1 expected failure on
        // this horizon: screening must refuse to decide anything.
        let mut s = stress_base(2, 5.0 * DAY_S);
        s.topology.node =
            catalog::node_storage_server(catalog::hdd_7200_4t(), 4, catalog::nic_10g());
        let screen = availability_screen(&s, 10.0);
        assert!(screen.expected_failures < 1.0);
        assert_eq!(screen.screen(Rel::Ge, 0.99985, 0.0), ScreenVerdict::Unknown);
    }

    #[test]
    fn chaos_and_switch_failures_flag_extra_sources() {
        let mut s = stress_base(2, 600.0);
        assert!(!availability_screen(&s, 10.0).extra_failure_sources);
        s.switch_failures = true;
        assert!(availability_screen(&s, 10.0).extra_failure_sources);
        s.switch_failures = false;
        s.disk_failures = true;
        assert!(availability_screen(&s, 10.0).extra_failure_sources);
        s.disk_failures = false;
        s.faults = Some(crate::chaos::FaultSchedule::new().rule(
            "tor",
            60.0,
            crate::chaos::FaultKind::TorDeath {
                rack: 0,
                repair_s: 600.0,
            },
        ));
        assert!(availability_screen(&s, 10.0).extra_failure_sources);
    }

    #[test]
    fn erasure_quorum_is_k() {
        let mut s = stress_base(2, 600.0);
        s.redundancy = RedundancyScheme::erasure(4, 2);
        let screen = availability_screen(&s, 10.0);
        assert_eq!(screen.width, 6);
        assert_eq!(screen.quorum, 4);
        assert_eq!(screen.loss_exponent(), 3);
    }

    #[test]
    fn rebuild_stream_matches_bandwidth_model() {
        let s = stress_base(3, 600.0);
        // 4 GiB over 10 Gb/s × share.
        let want = (4u64 << 30) as f64 / (10.0 * 1e9 / 8.0 * s.repair.bandwidth_share);
        assert!((rebuild_stream_s(&s) - want).abs() / want < 1e-12);
    }

    #[test]
    fn perf_screen_extraction() {
        let mut s = stress_base(3, 600.0);
        assert!(perf_screen(&s).is_none(), "no tenants → no screen");
        s.tenants = vec![TenantWorkload::oltp("shop", 100.0, 10_000)];
        let p = perf_screen(&s).expect("tenant present");
        // 30 nodes × 4 disks.
        assert_eq!(p.servers, 120);
        // Post-cache rate is below the offered rate but positive (2 TB
        // dataset vs 30 × 128 GB DRAM).
        assert!(p.lambda > 0.0 && p.lambda < 100.0);
        assert!(p.min_service_s > 0.0 && p.min_service_s < 0.1);
    }

    #[test]
    fn overloaded_hdd_scenario_screens_fail_on_latency() {
        let mut s = stress_base(3, 600.0);
        // 120 HDDs at ~85 IOPS each handle ~10k random IOPS; 50k req/s of
        // uncacheable load is provably over capacity → any latency SLA
        // fails.
        s.tenants = vec![TenantWorkload::oltp("shop", 400_000.0, 10_000)];
        let p = perf_screen(&s).expect("tenant present");
        assert_eq!(p.screen(0.95, Rel::Le, 0.050, 0.0), ScreenVerdict::Fail);
    }
}
