//! The Figure 1 experiment: probability of data unavailability vs. number
//! of node failures.
//!
//! The paper's setup (§4.6): a cloud service storing one object per
//! customer (10,000 customers), replicated `n ∈ {3, 5}` ways over
//! `N ∈ {10, 30}` nodes by a Random (R) or RoundRobin (RR) placement
//! policy, under a quorum protocol — a customer "is not able to operate on
//! the data" when a majority of their replicas is down. For each failure
//! count `f` the experiment estimates, by Monte-Carlo over failure sets
//! (and placement randomness), the probability that *at least one*
//! customer is unavailable.
//!
//! Replica sets are deduplicated into bitmasks, so each trial costs one
//! popcount per *distinct* set rather than per customer — RoundRobin has
//! only `N` distinct sets, which is also the structural reason its curve
//! differs from Random's.

use crate::results::UnavailabilityPoint;
use wt_des::rng::{RngFactory, Stream};
use wt_sw::{Placement, Placer, RedundancyScheme};

/// Configuration of one Figure 1 curve (one placement × replication ×
/// cluster size combination).
#[derive(Debug, Clone)]
pub struct UnavailabilityExperiment {
    /// Cluster size `N` (≤ 64 so failure sets fit a bitmask).
    pub n_nodes: usize,
    /// Number of customers (the paper uses 10,000).
    pub users: u64,
    /// Redundancy scheme (the paper uses majority-quorum replication).
    pub redundancy: RedundancyScheme,
    /// Placement policy.
    pub placement: Placement,
    /// Monte-Carlo trials per failure count.
    pub trials: u32,
    /// Root seed.
    pub seed: u64,
}

impl UnavailabilityExperiment {
    /// The paper's configuration: majority quorum over `n` replicas.
    pub fn figure1(n_nodes: usize, users: u64, n: usize, placement: Placement, seed: u64) -> Self {
        UnavailabilityExperiment {
            n_nodes,
            users,
            redundancy: RedundancyScheme::replication(n),
            placement,
            trials: 2_000,
            seed,
        }
    }

    /// Distinct replica sets as bitmasks, with per-set customer counts.
    fn replica_masks(&self) -> Vec<(u64, u64)> {
        assert!(self.n_nodes <= 64, "bitmask engine caps N at 64");
        let factory = RngFactory::new(self.seed);
        let mut placer = Placer::new(
            self.placement,
            self.n_nodes,
            self.redundancy.width(),
            factory.stream("placement"),
        );
        let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for user in 0..self.users {
            let mut mask = 0u64;
            for node in placer.place(user) {
                mask |= 1 << node;
            }
            *counts.entry(mask).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Estimates one curve point: `failures` nodes down simultaneously.
    pub fn run_at(&self, failures: usize) -> UnavailabilityPoint {
        self.run_at_with(&self.replica_masks(), failures)
    }

    /// `run_at` against precomputed replica masks, so a whole curve pays
    /// for the placement pass once instead of once per failure count.
    fn run_at_with(&self, sets: &[(u64, u64)], failures: usize) -> UnavailabilityPoint {
        assert!(failures <= self.n_nodes);
        let factory = RngFactory::new(self.seed);
        let mut rng: Stream = factory.numbered("failure-sets", failures as u64);
        let width = self.redundancy.width();

        let mut hit_trials = 0u64;
        let mut affected_total = 0f64;
        for _ in 0..self.trials {
            let failed = self.sample_failure_mask(failures, &mut rng);
            let mut affected_users = 0u64;
            for &(mask, users) in sets {
                let up = (mask & !failed).count_ones() as usize;
                debug_assert!(up <= width);
                if !self.redundancy.operable(up) {
                    affected_users += users;
                }
            }
            if affected_users > 0 {
                hit_trials += 1;
            }
            affected_total += affected_users as f64 / self.users as f64;
        }
        UnavailabilityPoint {
            failures,
            p_unavailable: hit_trials as f64 / self.trials as f64,
            mean_affected_fraction: affected_total / self.trials as f64,
        }
    }

    /// The whole curve: `f = 0..=N`. The placement pass (`replica_masks`)
    /// is hoisted out of the per-point loop — it depends only on the
    /// experiment config, and recomputing it made each curve cost N+1
    /// full passes over all users.
    pub fn run(&self) -> Vec<UnavailabilityPoint> {
        let sets = self.replica_masks();
        (0..=self.n_nodes)
            .map(|f| self.run_at_with(&sets, f))
            .collect()
    }

    fn sample_failure_mask(&self, failures: usize, rng: &mut Stream) -> u64 {
        let mut mask = 0u64;
        for node in rng.sample_indices(self.n_nodes, failures) {
            mask |= 1 << node;
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(n_nodes: usize, n: usize, placement: Placement) -> UnavailabilityExperiment {
        UnavailabilityExperiment {
            trials: 400,
            ..UnavailabilityExperiment::figure1(n_nodes, 1_000, n, placement, 42)
        }
    }

    #[test]
    fn zero_failures_zero_probability() {
        let p = exp(10, 3, Placement::Random).run_at(0);
        assert_eq!(p.p_unavailable, 0.0);
        assert_eq!(p.mean_affected_fraction, 0.0);
    }

    #[test]
    fn all_failed_certain_unavailability() {
        let p = exp(10, 3, Placement::Random).run_at(10);
        assert_eq!(p.p_unavailable, 1.0);
        assert_eq!(p.mean_affected_fraction, 1.0);
    }

    #[test]
    fn curve_is_monotone_in_failures() {
        let curve = exp(10, 3, Placement::RoundRobin).run();
        assert_eq!(curve.len(), 11);
        for w in curve.windows(2) {
            assert!(
                w[1].p_unavailable >= w[0].p_unavailable - 0.08,
                "non-monotone beyond noise: {w:?}"
            );
        }
    }

    #[test]
    fn higher_replication_more_resilient() {
        // Figure 1's main separation: n=5 curves sit below n=3 curves.
        let f = 2;
        let p3 = exp(10, 3, Placement::RoundRobin).run_at(f);
        let p5 = exp(10, 5, Placement::RoundRobin).run_at(f);
        assert!(
            p5.p_unavailable < p3.p_unavailable,
            "n=5 ({}) should beat n=3 ({})",
            p5.p_unavailable,
            p3.p_unavailable
        );
    }

    #[test]
    fn random_worse_or_equal_to_round_robin_with_many_users() {
        // With 10k users on 30 nodes, Random covers nearly every possible
        // replica set, so *some* user loses quorum with fewer failures than
        // under RR's N distinct sets.
        let mut r = UnavailabilityExperiment::figure1(30, 10_000, 3, Placement::Random, 7);
        r.trials = 300;
        let mut rr = UnavailabilityExperiment::figure1(30, 10_000, 3, Placement::RoundRobin, 7);
        rr.trials = 300;
        let f = 4;
        let pr = r.run_at(f);
        let prr = rr.run_at(f);
        assert!(
            pr.p_unavailable >= prr.p_unavailable,
            "Random {} vs RR {}",
            pr.p_unavailable,
            prr.p_unavailable
        );
    }

    #[test]
    fn round_robin_exact_two_failures_n3_n10() {
        // Analytical cross-check: RR, N=10, n=3, f=2. A customer with
        // replica set {i, i+1, i+2} is unavailable iff both failures land
        // in their set: C(3,2)=3 pairs per set, 10 sets, but each adjacent
        // pair {i,i+1} is shared by 2 sets. Distinct harmful pairs: pairs
        // within distance ≤ 2 (mod 10): 10 adjacent + 10 at distance 2 = 20.
        // P = 20 / C(10,2) = 20/45 = 0.444…
        let mut e = exp(10, 3, Placement::RoundRobin);
        e.users = 1_000; // every set occupied
        e.trials = 4_000;
        let p = e.run_at(2);
        assert!(
            (p.p_unavailable - 20.0 / 45.0).abs() < 0.03,
            "got {}, want 0.444",
            p.p_unavailable
        );
    }

    #[test]
    fn erasure_coding_curves_exist() {
        // rs(4,2) over 10 nodes: operable while ≥ 4 of 6 shards up.
        let e = UnavailabilityExperiment {
            n_nodes: 10,
            users: 500,
            redundancy: RedundancyScheme::erasure(4, 2),
            placement: Placement::Random,
            trials: 300,
            seed: 1,
        };
        let p2 = e.run_at(2);
        let p5 = e.run_at(5);
        assert!(p5.p_unavailable >= p2.p_unavailable);
    }

    #[test]
    fn shared_masks_match_per_point_runs() {
        // The hoisted placement pass must not change any curve point.
        let e = exp(8, 3, Placement::Random);
        let curve = e.run();
        assert_eq!(curve.len(), 9);
        for (f, p) in curve.iter().enumerate() {
            assert_eq!(*p, e.run_at(f));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = exp(10, 3, Placement::Random).run_at(3);
        let b = exp(10, 3, Placement::Random).run_at(3);
        assert_eq!(a, b);
    }

    #[test]
    fn affected_fraction_bounded_by_probability() {
        // mean affected fraction ≤ P(any affected) (both in [0,1]).
        let p = exp(10, 3, Placement::Random).run_at(4);
        assert!(p.mean_affected_fraction <= p.p_unavailable + 1e-12);
        assert!((0.0..=1.0).contains(&p.p_unavailable));
    }
}
