//! The scenario: one point in the data center design space.
//!
//! Everything the paper's what-if queries vary lives in this struct —
//! hardware (topology, disk/NIC/switch models), software (redundancy,
//! placement, repair policy) and workload (tenants) — so a "query to the
//! wind tunnel" (§4) is a function from `Scenario` to result.

use crate::chaos::FaultSchedule;
use serde::{Deserialize, Serialize};
use wt_des::QueueBackend;
use wt_hw::{CostModel, LimpwareSpec, TopologySpec};
use wt_sw::{Placement, RedundancyScheme, RepairPolicy};
use wt_workload::TenantWorkload;

/// A complete data center design point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Display name (used in result-store keys and experiment output).
    pub name: String,
    /// Hardware build-out.
    pub topology: TopologySpec,
    /// Redundancy scheme (replication or erasure coding).
    pub redundancy: RedundancyScheme,
    /// Replica/shard placement policy.
    pub placement: Placement,
    /// Re-replication policy.
    pub repair: RepairPolicy,
    /// Number of customer objects stored.
    pub objects: u64,
    /// Raw size of one object, bytes.
    pub object_bytes: u64,
    /// Tenant workloads (empty for pure availability studies).
    pub tenants: Vec<TenantWorkload>,
    /// Optional limpware injection.
    pub limpware: Option<LimpwareSpec>,
    /// Simulate top-of-rack switch failures (correlated rack outages),
    /// parameterized from the topology's ToR spec.
    pub switch_failures: bool,
    /// Simulate per-disk failures (parameterized from the node's disk
    /// spec) in addition to whole-node failures.
    pub disk_failures: bool,
    /// Simulation horizon, years.
    pub horizon_years: f64,
    /// Root random seed.
    pub seed: u64,
    /// Future-event-list backend for the engines (`None` → the default
    /// heap, and what scenarios serialized before the backend became
    /// selectable deserialize to). Purely a wall-clock knob: both
    /// backends produce bitwise-identical results.
    pub queue: Option<QueueBackend>,
    /// Optional declarative chaos: typed fault-injection rules compiled
    /// into deterministic scheduled events by the engines (`None` → no
    /// injections, and what pre-chaos scenario files deserialize to).
    pub faults: Option<FaultSchedule>,
}

impl Scenario {
    /// The queue backend to run with ([`QueueBackend::Heap`] unless set).
    pub fn queue_backend(&self) -> QueueBackend {
        self.queue.unwrap_or_default()
    }

    /// The backend to run with, honoring an explicit choice and otherwise
    /// inferring one from an estimated steady-state pending-set size (see
    /// [`QueueBackend::for_pending_set`]). The engine-deriving callers
    /// (`WindTunnel::availability_model` / `perf_model`) pass the matching
    /// estimate; a wrong estimate costs wall-clock time, never results.
    pub fn queue_backend_for(&self, pending_estimate: usize) -> QueueBackend {
        self.queue
            .unwrap_or_else(|| QueueBackend::for_pending_set(pending_estimate))
    }

    /// Estimated steady-state pending-set size of the availability engine:
    /// one outstanding fail/repair timer per node, one per disk when disk
    /// failures are simulated, one per ToR when switch failures are, plus
    /// the repair policy's in-flight rebuild cap. Every existing
    /// sub-hundred-node scenario lands far below the adaptive threshold
    /// (so defaults keep the heap); million-component runs land far above.
    pub fn availability_pending_estimate(&self) -> usize {
        let nodes = self.topology.node_count();
        let mut estimate = nodes;
        if self.disk_failures {
            estimate += nodes * self.topology.node.disks.len().max(1);
        }
        if self.switch_failures {
            estimate += self.topology.racks;
        }
        estimate + self.repair.max_parallel
    }

    /// Estimated steady-state pending-set size of the performance engine:
    /// one open-loop arrival timer per tenant plus in-flight service
    /// completions, which scale with the node count (per-node disk and
    /// NIC queues each keep at most one completion pending).
    pub fn perf_pending_estimate(&self) -> usize {
        self.topology.node_count() * 2 + self.tenants.len()
    }

    /// The fault schedule, if one is declared and non-empty.
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.faults.as_ref().filter(|f| !f.is_empty())
    }

    /// Total raw bytes stored (before redundancy).
    pub fn raw_bytes(&self) -> u64 {
        self.objects * self.object_bytes
    }

    /// Total bytes after redundancy overhead.
    pub fn stored_bytes(&self) -> f64 {
        self.raw_bytes() as f64 * self.redundancy.overhead()
    }

    /// Fraction of the topology's raw capacity consumed.
    pub fn capacity_utilization(&self) -> f64 {
        let capacity_bytes =
            self.topology.node_count() as f64 * self.topology.node.storage_gb() * 1e9;
        self.stored_bytes() / capacity_bytes
    }

    /// Yearly TCO of this scenario's hardware under `model`.
    pub fn tco_per_year(&self, model: &CostModel) -> f64 {
        model.cost(&self.topology).tco_usd_per_year
    }

    /// A copy with a different name and seed (for paired replications).
    pub fn with_seed(&self, seed: u64) -> Scenario {
        Scenario {
            seed,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wt_hw::catalog;

    fn base() -> Scenario {
        Scenario {
            name: "test".into(),
            topology: TopologySpec {
                racks: 2,
                nodes_per_rack: 5,
                node: catalog::node_storage_server(catalog::hdd_7200_4t(), 4, catalog::nic_10g()),
                tor: catalog::switch_tor_48x10g(),
                agg: catalog::switch_agg_32x40g(),
                oversubscription: 4.0,
            },
            redundancy: RedundancyScheme::replication(3),
            placement: Placement::Random,
            repair: RepairPolicy::serial(),
            objects: 1_000,
            object_bytes: 1 << 30,
            tenants: vec![],
            limpware: None,
            switch_failures: false,
            disk_failures: false,
            horizon_years: 1.0,
            seed: 42,
            queue: None,
            faults: None,
        }
    }

    #[test]
    fn storage_accounting() {
        let s = base();
        assert_eq!(s.raw_bytes(), 1_000 << 30);
        assert!((s.stored_bytes() - 3.0 * s.raw_bytes() as f64).abs() < 1.0);
        // 10 nodes × 16 TB = 160 TB capacity; 3 TB stored ≈ 2%.
        let u = s.capacity_utilization();
        assert!((0.015..0.025).contains(&u), "utilization {u}");
    }

    #[test]
    fn erasure_uses_less_capacity() {
        let mut s = base();
        let rep = s.capacity_utilization();
        s.redundancy = RedundancyScheme::erasure(10, 4);
        assert!(s.capacity_utilization() < rep / 2.0);
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let s = base();
        let t = s.with_seed(7);
        assert_eq!(t.seed, 7);
        assert_eq!(t.name, s.name);
        assert_eq!(t.objects, s.objects);
    }

    #[test]
    fn tco_positive() {
        let s = base();
        assert!(s.tco_per_year(&CostModel::default()) > 0.0);
    }

    #[test]
    fn scenario_serde_roundtrip() {
        let mut s = base();
        s.queue = Some(QueueBackend::Calendar);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, s.name);
        assert_eq!(back.redundancy, s.redundancy);
        assert_eq!(back.seed, s.seed);
        assert_eq!(back.queue_backend(), QueueBackend::Calendar);
    }

    #[test]
    fn adaptive_backend_tracks_scale_and_respects_explicit_choice() {
        // Small scenario, no explicit choice: the estimate is tiny, the
        // heap wins.
        let s = base();
        assert!(s.availability_pending_estimate() < wt_des::ADAPTIVE_PENDING_THRESHOLD);
        assert_eq!(
            s.queue_backend_for(s.availability_pending_estimate()),
            QueueBackend::Heap
        );

        // Scale the same design to thousands of nodes with per-disk
        // failures: the estimate crosses the threshold and the calendar
        // queue is inferred.
        let mut big = base();
        big.topology.racks = 200;
        big.topology.nodes_per_rack = 40;
        big.disk_failures = true;
        assert!(big.availability_pending_estimate() >= wt_des::ADAPTIVE_PENDING_THRESHOLD);
        assert_eq!(
            big.queue_backend_for(big.availability_pending_estimate()),
            QueueBackend::Calendar
        );

        // An explicit choice always wins over the inference.
        big.queue = Some(QueueBackend::Heap);
        assert_eq!(
            big.queue_backend_for(big.availability_pending_estimate()),
            QueueBackend::Heap
        );
    }

    #[test]
    fn pre_backend_scenario_json_still_loads() {
        // Scenario files serialized before the queue backend existed have
        // no "queue" key at all; they must load and default to the heap.
        let json = serde_json::to_string(&base()).unwrap();
        let stripped = json.replacen(",\"queue\":null", "", 1);
        assert_ne!(stripped, json, "expected a trailing queue field");
        let back: Scenario = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.queue, None);
        assert_eq!(back.queue_backend(), QueueBackend::Heap);
    }

    #[test]
    fn pre_chaos_scenario_json_still_loads() {
        // Scenario files serialized before the fault schedule existed have
        // no "faults" key at all; they must load with no injections.
        let json = serde_json::to_string(&base()).unwrap();
        let stripped = json.replacen(",\"faults\":null", "", 1);
        assert_ne!(stripped, json, "expected a trailing faults field");
        let back: Scenario = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.faults, None);
        assert!(back.fault_schedule().is_none());
    }

    #[test]
    fn empty_fault_schedule_means_no_chaos() {
        let mut s = base();
        s.faults = Some(crate::chaos::FaultSchedule::new());
        assert!(s.fault_schedule().is_none());
        s.faults = Some(crate::chaos::FaultSchedule::new().rule(
            "tor",
            60.0,
            crate::chaos::FaultKind::TorDeath {
                rack: 0,
                repair_s: 600.0,
            },
        ));
        assert!(s.fault_schedule().is_some());
    }
}
