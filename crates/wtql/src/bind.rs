//! Binding sweep axes onto the scenario configuration surface.
//!
//! Each axis name maps to one knob of `windtunnel::Scenario`. Categorical
//! hardware axes resolve through the part catalog, so a query can say
//! `nic IN ["1g", "10g"]` instead of spelling out specs.

use crate::ast::{InjectArg, Injection};
use crate::error::WtqlError;
use windtunnel::cluster::{FaultKind, InjectionRule, Scenario};
use windtunnel::hw::catalog;
use windtunnel::hw::limpware::LimpTarget;
use windtunnel::hw::LimpwareSpec;
use windtunnel::sw::{Placement, RedundancyScheme};
use wt_dist::Dist;
use wt_store::ParamValue;

/// The sweep axes the binder understands, with whether SLA satisfaction is
/// monotone non-decreasing in the axis value (the §4.2 pruning lever).
pub const AXES: &[(&str, bool)] = &[
    ("replication", true),
    ("nic", true),
    ("disk", false),
    ("placement", false),
    ("repair_parallel", true),
    ("mem_gb", true),
    ("racks", true),
    ("nodes_per_rack", true),
    ("oversubscription", false),
    ("objects", false),
    ("object_gb", false),
    ("erasure_k", false),
    ("erasure_m", true),
    ("detection_delay_s", false),
    ("switch_failures", false),
    ("seed", false),
];

/// True if SLA satisfaction is (declared) monotone non-decreasing in this
/// axis — e.g. more replication or a faster NIC never makes an SLA pass
/// become a fail, all else equal.
pub fn is_monotone(axis: &str) -> bool {
    AXES.iter().any(|(name, mono)| *name == axis && *mono)
}

/// True if the binder knows this axis.
pub fn is_known_axis(axis: &str) -> bool {
    AXES.iter().any(|(name, _)| *name == axis)
}

/// A numeric sort key for ordering runs "best-first" along a monotone
/// axis (higher = more likely to pass SLAs).
pub fn monotone_rank(axis: &str, value: &ParamValue) -> f64 {
    match (axis, value) {
        ("nic", ParamValue::Str(s)) => match s.as_str() {
            "1g" => 1.0,
            "10g" => 10.0,
            "40g" => 40.0,
            _ => 0.0,
        },
        (_, v) => v.as_num().unwrap_or(0.0),
    }
}

/// Applies one `(axis, value)` assignment to a scenario.
pub fn apply_assignment(
    scenario: &mut Scenario,
    axis: &str,
    value: &ParamValue,
) -> Result<(), WtqlError> {
    let num = |v: &ParamValue| {
        v.as_num()
            .ok_or_else(|| WtqlError::Semantic(format!("axis '{axis}' needs a numeric value")))
    };
    let string = |v: &ParamValue| match v {
        ParamValue::Str(s) => Ok(s.clone()),
        _ => Err(WtqlError::Semantic(format!(
            "axis '{axis}' needs a string value"
        ))),
    };
    match axis {
        "replication" => {
            scenario.redundancy = RedundancyScheme::replication(num(value)? as usize);
        }
        "erasure_k" => {
            let k = num(value)? as usize;
            let m = match scenario.redundancy {
                RedundancyScheme::Erasure(s) => s.m,
                _ => 2,
            };
            scenario.redundancy = RedundancyScheme::erasure(k, m);
        }
        "erasure_m" => {
            let m = num(value)? as usize;
            let k = match scenario.redundancy {
                RedundancyScheme::Erasure(s) => s.k,
                _ => 6,
            };
            scenario.redundancy = RedundancyScheme::erasure(k, m);
        }
        "nic" => {
            let nic = match string(value)?.as_str() {
                "1g" => catalog::nic_1g(),
                "10g" => catalog::nic_10g(),
                "40g" => catalog::nic_40g(),
                other => return Err(WtqlError::Semantic(format!("unknown NIC model '{other}'"))),
            };
            scenario.topology.node.nic = nic;
        }
        "disk" => {
            let disk = match string(value)?.as_str() {
                "hdd" => catalog::hdd_7200_4t(),
                "ssd" => catalog::ssd_sata_1t(),
                "nvme" => catalog::ssd_nvme_2t(),
                other => return Err(WtqlError::Semantic(format!("unknown disk model '{other}'"))),
            };
            let count = scenario.topology.node.disks.len();
            scenario.topology.node.disks = vec![disk; count];
        }
        "placement" => {
            scenario.placement = match string(value)?.as_str() {
                "R" | "random" => Placement::Random,
                "RR" | "roundrobin" => Placement::RoundRobin,
                "CS" | "copyset" => Placement::Copyset { scatter_width: 4 },
                "RA" | "rackaware" => Placement::RackAware {
                    nodes_per_rack: scenario.topology.nodes_per_rack,
                },
                other => {
                    return Err(WtqlError::Semantic(format!(
                        "unknown placement policy '{other}'"
                    )))
                }
            };
        }
        "repair_parallel" => {
            scenario.repair.max_parallel = num(value)?.max(1.0) as usize;
        }
        "detection_delay_s" => {
            scenario.repair.detection_delay_s = num(value)?;
        }
        "mem_gb" => {
            scenario.topology.node.mem = catalog::mem_ddr3(num(value)?);
        }
        "racks" => {
            scenario.topology.racks = num(value)? as usize;
        }
        "nodes_per_rack" => {
            scenario.topology.nodes_per_rack = num(value)? as usize;
        }
        "oversubscription" => {
            scenario.topology.oversubscription = num(value)?;
        }
        "objects" => {
            scenario.objects = num(value)? as u64;
        }
        "object_gb" => {
            scenario.object_bytes = (num(value)? * (1u64 << 30) as f64) as u64;
        }
        "switch_failures" => match value {
            ParamValue::Bool(b) => scenario.switch_failures = *b,
            _ => {
                return Err(WtqlError::Semantic(
                    "axis 'switch_failures' needs TRUE or FALSE".into(),
                ))
            }
        },
        "seed" => {
            scenario.seed = num(value)? as u64;
        }
        other => {
            return Err(WtqlError::Semantic(format!("unknown sweep axis '{other}'")));
        }
    }
    Ok(())
}

/// The INJECT kinds the binder understands, with their argument names.
/// `at` (injection time, seconds) is accepted by every kind and defaults
/// to 0.
pub const INJECT_KINDS: &[(&str, &[&str])] = &[
    ("power_loss", &["first_rack", "racks", "restore"]),
    ("tor_death", &["rack", "repair"]),
    ("agg_partition", &["first_rack", "racks", "heal"]),
    (
        "gray_storm",
        &[
            "target",
            "probability",
            "slowdown",
            "center_rack",
            "radius",
            "duration",
        ],
    ),
    ("maintenance", &["first_node", "nodes", "duration"]),
    (
        "repair_throttle",
        &["max_parallel", "duration", "breaker_pending"],
    ),
];

/// Validates an injection's kind, argument names, and axis references
/// without needing a concrete assignment — called once at plan time so
/// a typo fails the whole query instead of every row.
pub fn check_injection(inj: &Injection, swept_axes: &[String]) -> Result<(), WtqlError> {
    let args = INJECT_KINDS
        .iter()
        .find(|(kind, _)| *kind == inj.kind)
        .map(|(_, args)| *args)
        .ok_or_else(|| {
            WtqlError::Semantic(format!(
                "unknown INJECT kind '{}' (known: {})",
                inj.kind,
                INJECT_KINDS
                    .iter()
                    .map(|(k, _)| *k)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;
    for (key, arg) in &inj.args {
        if key != "at" && !args.contains(&key.as_str()) {
            return Err(WtqlError::Semantic(format!(
                "INJECT {}(...) has no argument '{key}' (accepts: at, {})",
                inj.kind,
                args.join(", ")
            )));
        }
        if let InjectArg::Axis(axis) = arg {
            if !swept_axes.iter().any(|a| a == axis) {
                return Err(WtqlError::Semantic(format!(
                    "INJECT {}({key} = {axis}) references an axis that is not swept",
                    inj.kind
                )));
            }
        }
    }
    Ok(())
}

/// Resolves an injection against one grid point's assignment, producing
/// the concrete fault-schedule rule for that run.
pub fn resolve_injection(
    inj: &Injection,
    assignment: &[(String, ParamValue)],
) -> Result<InjectionRule, WtqlError> {
    let resolved: Vec<(String, ParamValue)> = inj
        .args
        .iter()
        .map(|(key, arg)| {
            let value = match arg {
                InjectArg::Value(v) => v.clone(),
                InjectArg::Axis(axis) => assignment
                    .iter()
                    .find(|(a, _)| a == axis)
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| {
                        WtqlError::Semantic(format!(
                            "INJECT {}({key} = {axis}) references an axis that is not swept",
                            inj.kind
                        ))
                    })?,
            };
            Ok((key.clone(), value))
        })
        .collect::<Result<_, WtqlError>>()?;
    let num = |key: &str| -> Result<f64, WtqlError> {
        resolved
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_num())
            .ok_or_else(|| {
                WtqlError::Semantic(format!(
                    "INJECT {}(...) needs a numeric '{key}' argument",
                    inj.kind
                ))
            })
    };
    let at_s = resolved
        .iter()
        .find(|(k, _)| k == "at")
        .and_then(|(_, v)| v.as_num())
        .unwrap_or(0.0);
    let fault = match inj.kind.as_str() {
        "power_loss" => FaultKind::PowerDomainLoss {
            first_rack: num("first_rack")? as usize,
            racks: num("racks")? as usize,
            restore_s: num("restore")?,
        },
        "tor_death" => FaultKind::TorDeath {
            rack: num("rack")? as usize,
            repair_s: num("repair")?,
        },
        "agg_partition" => FaultKind::AggPartition {
            first_rack: num("first_rack")? as usize,
            racks: num("racks")? as usize,
            heal_s: num("heal")?,
        },
        "gray_storm" => {
            let target = match resolved.iter().find(|(k, _)| k == "target") {
                Some((_, ParamValue::Str(s))) => match s.as_str() {
                    "disk" => LimpTarget::Disk,
                    "nic" => LimpTarget::Nic,
                    other => {
                        return Err(WtqlError::Semantic(format!(
                            "gray_storm target must be \"disk\" or \"nic\", got \"{other}\""
                        )))
                    }
                },
                None => LimpTarget::Disk,
                Some(_) => {
                    return Err(WtqlError::Semantic(
                        "gray_storm 'target' needs a string value".into(),
                    ))
                }
            };
            FaultKind::GrayStorm {
                spec: LimpwareSpec {
                    target,
                    probability: num("probability")?,
                    slowdown: Dist::deterministic(num("slowdown")?),
                },
                center_rack: num("center_rack")? as usize,
                radius_racks: num("radius")? as usize,
                duration_s: num("duration")?,
            }
        }
        "maintenance" => FaultKind::MaintenanceWindow {
            first_node: num("first_node")? as usize,
            nodes: num("nodes")? as usize,
            duration_s: num("duration")?,
        },
        "repair_throttle" => FaultKind::RepairThrottle {
            max_parallel: num("max_parallel")? as usize,
            duration_s: num("duration")?,
            breaker_pending: num("breaker_pending")? as usize,
        },
        other => {
            return Err(WtqlError::Semantic(format!(
                "unknown INJECT kind '{other}'"
            )))
        }
    };
    Ok(InjectionRule {
        name: inj.kind.clone(),
        at_s,
        fault,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use windtunnel::ScenarioBuilder;

    fn base() -> Scenario {
        ScenarioBuilder::new("base")
            .racks(3)
            .nodes_per_rack(10)
            .build()
    }

    #[test]
    fn replication_axis() {
        let mut s = base();
        apply_assignment(&mut s, "replication", &ParamValue::Num(5.0)).unwrap();
        assert_eq!(s.redundancy.width(), 5);
    }

    #[test]
    fn nic_axis_resolves_catalog() {
        let mut s = base();
        apply_assignment(&mut s, "nic", &ParamValue::Str("1g".into())).unwrap();
        assert_eq!(s.topology.node.nic.bandwidth_gbps, 1.0);
        apply_assignment(&mut s, "nic", &ParamValue::Str("40g".into())).unwrap();
        assert_eq!(s.topology.node.nic.bandwidth_gbps, 40.0);
        assert!(apply_assignment(&mut s, "nic", &ParamValue::Str("100g".into())).is_err());
    }

    #[test]
    fn disk_axis_replaces_all_disks() {
        let mut s = base();
        let count = s.topology.node.disks.len();
        apply_assignment(&mut s, "disk", &ParamValue::Str("nvme".into())).unwrap();
        assert_eq!(s.topology.node.disks.len(), count);
        assert!(s
            .topology
            .node
            .disks
            .iter()
            .all(|d| d.name == "ssd-nvme-2t"));
    }

    #[test]
    fn placement_axis() {
        let mut s = base();
        apply_assignment(&mut s, "placement", &ParamValue::Str("RR".into())).unwrap();
        assert_eq!(s.placement, Placement::RoundRobin);
        apply_assignment(&mut s, "placement", &ParamValue::Str("CS".into())).unwrap();
        assert!(matches!(s.placement, Placement::Copyset { .. }));
        apply_assignment(&mut s, "placement", &ParamValue::Str("RA".into())).unwrap();
        assert_eq!(
            s.placement,
            Placement::RackAware {
                nodes_per_rack: s.topology.nodes_per_rack
            }
        );
    }

    #[test]
    fn erasure_axes_compose() {
        let mut s = base();
        apply_assignment(&mut s, "erasure_k", &ParamValue::Num(10.0)).unwrap();
        apply_assignment(&mut s, "erasure_m", &ParamValue::Num(4.0)).unwrap();
        assert_eq!(s.redundancy.width(), 14);
        assert_eq!(s.redundancy.label(), "rs(10,4)");
    }

    #[test]
    fn numeric_axes() {
        let mut s = base();
        apply_assignment(&mut s, "repair_parallel", &ParamValue::Num(8.0)).unwrap();
        assert_eq!(s.repair.max_parallel, 8);
        apply_assignment(&mut s, "mem_gb", &ParamValue::Num(256.0)).unwrap();
        assert_eq!(s.topology.node.mem.capacity_gb, 256.0);
        apply_assignment(&mut s, "objects", &ParamValue::Num(500.0)).unwrap();
        assert_eq!(s.objects, 500);
        apply_assignment(&mut s, "object_gb", &ParamValue::Num(2.0)).unwrap();
        assert_eq!(s.object_bytes, 2 << 30);
        apply_assignment(&mut s, "seed", &ParamValue::Num(77.0)).unwrap();
        assert_eq!(s.seed, 77);
    }

    #[test]
    fn unknown_axis_rejected() {
        let mut s = base();
        let e = apply_assignment(&mut s, "warp_drive", &ParamValue::Num(1.0)).unwrap_err();
        assert!(e.to_string().contains("unknown sweep axis"));
    }

    #[test]
    fn wrong_value_type_rejected() {
        let mut s = base();
        assert!(apply_assignment(&mut s, "replication", &ParamValue::Str("three".into())).is_err());
        assert!(apply_assignment(&mut s, "nic", &ParamValue::Num(10.0)).is_err());
    }

    #[test]
    fn switch_failures_axis() {
        let mut s = base();
        apply_assignment(&mut s, "switch_failures", &ParamValue::Bool(true)).unwrap();
        assert!(s.switch_failures);
        apply_assignment(&mut s, "switch_failures", &ParamValue::Bool(false)).unwrap();
        assert!(!s.switch_failures);
        assert!(apply_assignment(&mut s, "switch_failures", &ParamValue::Num(1.0)).is_err());
    }

    #[test]
    fn monotonicity_registry() {
        assert!(is_monotone("replication"));
        assert!(is_monotone("nic"));
        assert!(!is_monotone("placement"));
        assert!(is_known_axis("disk"));
        assert!(!is_known_axis("nonsense"));
    }

    #[test]
    fn injection_resolves_axis_refs() {
        let inj = Injection {
            kind: "power_loss".into(),
            args: vec![
                ("at".into(), InjectArg::Value(ParamValue::Num(3600.0))),
                ("first_rack".into(), InjectArg::Value(ParamValue::Num(0.0))),
                ("racks".into(), InjectArg::Axis("blast".into())),
                ("restore".into(), InjectArg::Value(ParamValue::Num(900.0))),
            ],
        };
        let assignment = vec![("blast".to_string(), ParamValue::Num(2.0))];
        let rule = resolve_injection(&inj, &assignment).unwrap();
        assert_eq!(rule.name, "power_loss");
        assert_eq!(rule.at_s, 3600.0);
        assert_eq!(
            rule.fault,
            FaultKind::PowerDomainLoss {
                first_rack: 0,
                racks: 2,
                restore_s: 900.0
            }
        );
    }

    #[test]
    fn injection_missing_axis_rejected() {
        let inj = Injection {
            kind: "tor_death".into(),
            args: vec![
                ("rack".into(), InjectArg::Axis("blast".into())),
                ("repair".into(), InjectArg::Value(ParamValue::Num(60.0))),
            ],
        };
        let e = resolve_injection(&inj, &[]).unwrap_err();
        assert!(e.to_string().contains("not swept"), "{e}");
    }

    #[test]
    fn injection_gray_storm_builds_spec() {
        let inj = Injection {
            kind: "gray_storm".into(),
            args: vec![
                (
                    "target".into(),
                    InjectArg::Value(ParamValue::Str("nic".into())),
                ),
                ("probability".into(), InjectArg::Value(ParamValue::Num(0.5))),
                ("slowdown".into(), InjectArg::Value(ParamValue::Num(10.0))),
                ("center_rack".into(), InjectArg::Value(ParamValue::Num(1.0))),
                ("radius".into(), InjectArg::Value(ParamValue::Num(1.0))),
                ("duration".into(), InjectArg::Value(ParamValue::Num(600.0))),
            ],
        };
        let rule = resolve_injection(&inj, &[]).unwrap();
        match rule.fault {
            FaultKind::GrayStorm {
                spec, radius_racks, ..
            } => {
                assert_eq!(spec.target, LimpTarget::Nic);
                assert_eq!(spec.probability, 0.5);
                assert_eq!(radius_racks, 1);
            }
            other => panic!("expected gray storm, got {other:?}"),
        }
    }

    #[test]
    fn check_injection_validates_kind_args_and_axes() {
        let swept = vec!["blast".to_string()];
        let ok = Injection {
            kind: "maintenance".into(),
            args: vec![
                ("first_node".into(), InjectArg::Value(ParamValue::Num(0.0))),
                ("nodes".into(), InjectArg::Axis("blast".into())),
                ("duration".into(), InjectArg::Value(ParamValue::Num(60.0))),
            ],
        };
        check_injection(&ok, &swept).unwrap();

        let bad_kind = Injection {
            kind: "meteor_strike".into(),
            args: vec![],
        };
        assert!(check_injection(&bad_kind, &swept)
            .unwrap_err()
            .to_string()
            .contains("unknown INJECT kind"));

        let bad_arg = Injection {
            kind: "tor_death".into(),
            args: vec![("rak".into(), InjectArg::Value(ParamValue::Num(0.0)))],
        };
        assert!(check_injection(&bad_arg, &swept)
            .unwrap_err()
            .to_string()
            .contains("no argument"));

        let bad_axis = Injection {
            kind: "tor_death".into(),
            args: vec![("rack".into(), InjectArg::Axis("nope".into()))],
        };
        assert!(check_injection(&bad_axis, &swept)
            .unwrap_err()
            .to_string()
            .contains("not swept"));
    }

    #[test]
    fn monotone_rank_orders_nics() {
        let r1 = monotone_rank("nic", &ParamValue::Str("1g".into()));
        let r10 = monotone_rank("nic", &ParamValue::Str("10g".into()));
        let r40 = monotone_rank("nic", &ParamValue::Str("40g".into()));
        assert!(r1 < r10 && r10 < r40);
        assert_eq!(monotone_rank("replication", &ParamValue::Num(5.0)), 5.0);
    }
}
