//! Binding sweep axes onto the scenario configuration surface.
//!
//! Each axis name maps to one knob of `windtunnel::Scenario`. Categorical
//! hardware axes resolve through the part catalog, so a query can say
//! `nic IN ["1g", "10g"]` instead of spelling out specs.

use crate::error::WtqlError;
use windtunnel::cluster::Scenario;
use windtunnel::hw::catalog;
use windtunnel::sw::{Placement, RedundancyScheme};
use wt_store::ParamValue;

/// The sweep axes the binder understands, with whether SLA satisfaction is
/// monotone non-decreasing in the axis value (the §4.2 pruning lever).
pub const AXES: &[(&str, bool)] = &[
    ("replication", true),
    ("nic", true),
    ("disk", false),
    ("placement", false),
    ("repair_parallel", true),
    ("mem_gb", true),
    ("racks", true),
    ("nodes_per_rack", true),
    ("oversubscription", false),
    ("objects", false),
    ("object_gb", false),
    ("erasure_k", false),
    ("erasure_m", true),
    ("detection_delay_s", false),
    ("switch_failures", false),
    ("seed", false),
];

/// True if SLA satisfaction is (declared) monotone non-decreasing in this
/// axis — e.g. more replication or a faster NIC never makes an SLA pass
/// become a fail, all else equal.
pub fn is_monotone(axis: &str) -> bool {
    AXES.iter().any(|(name, mono)| *name == axis && *mono)
}

/// True if the binder knows this axis.
pub fn is_known_axis(axis: &str) -> bool {
    AXES.iter().any(|(name, _)| *name == axis)
}

/// A numeric sort key for ordering runs "best-first" along a monotone
/// axis (higher = more likely to pass SLAs).
pub fn monotone_rank(axis: &str, value: &ParamValue) -> f64 {
    match (axis, value) {
        ("nic", ParamValue::Str(s)) => match s.as_str() {
            "1g" => 1.0,
            "10g" => 10.0,
            "40g" => 40.0,
            _ => 0.0,
        },
        (_, v) => v.as_num().unwrap_or(0.0),
    }
}

/// Applies one `(axis, value)` assignment to a scenario.
pub fn apply_assignment(
    scenario: &mut Scenario,
    axis: &str,
    value: &ParamValue,
) -> Result<(), WtqlError> {
    let num = |v: &ParamValue| {
        v.as_num()
            .ok_or_else(|| WtqlError::Semantic(format!("axis '{axis}' needs a numeric value")))
    };
    let string = |v: &ParamValue| match v {
        ParamValue::Str(s) => Ok(s.clone()),
        _ => Err(WtqlError::Semantic(format!(
            "axis '{axis}' needs a string value"
        ))),
    };
    match axis {
        "replication" => {
            scenario.redundancy = RedundancyScheme::replication(num(value)? as usize);
        }
        "erasure_k" => {
            let k = num(value)? as usize;
            let m = match scenario.redundancy {
                RedundancyScheme::Erasure(s) => s.m,
                _ => 2,
            };
            scenario.redundancy = RedundancyScheme::erasure(k, m);
        }
        "erasure_m" => {
            let m = num(value)? as usize;
            let k = match scenario.redundancy {
                RedundancyScheme::Erasure(s) => s.k,
                _ => 6,
            };
            scenario.redundancy = RedundancyScheme::erasure(k, m);
        }
        "nic" => {
            let nic = match string(value)?.as_str() {
                "1g" => catalog::nic_1g(),
                "10g" => catalog::nic_10g(),
                "40g" => catalog::nic_40g(),
                other => return Err(WtqlError::Semantic(format!("unknown NIC model '{other}'"))),
            };
            scenario.topology.node.nic = nic;
        }
        "disk" => {
            let disk = match string(value)?.as_str() {
                "hdd" => catalog::hdd_7200_4t(),
                "ssd" => catalog::ssd_sata_1t(),
                "nvme" => catalog::ssd_nvme_2t(),
                other => return Err(WtqlError::Semantic(format!("unknown disk model '{other}'"))),
            };
            let count = scenario.topology.node.disks.len();
            scenario.topology.node.disks = vec![disk; count];
        }
        "placement" => {
            scenario.placement = match string(value)?.as_str() {
                "R" | "random" => Placement::Random,
                "RR" | "roundrobin" => Placement::RoundRobin,
                "CS" | "copyset" => Placement::Copyset { scatter_width: 4 },
                "RA" | "rackaware" => Placement::RackAware {
                    nodes_per_rack: scenario.topology.nodes_per_rack,
                },
                other => {
                    return Err(WtqlError::Semantic(format!(
                        "unknown placement policy '{other}'"
                    )))
                }
            };
        }
        "repair_parallel" => {
            scenario.repair.max_parallel = num(value)?.max(1.0) as usize;
        }
        "detection_delay_s" => {
            scenario.repair.detection_delay_s = num(value)?;
        }
        "mem_gb" => {
            scenario.topology.node.mem = catalog::mem_ddr3(num(value)?);
        }
        "racks" => {
            scenario.topology.racks = num(value)? as usize;
        }
        "nodes_per_rack" => {
            scenario.topology.nodes_per_rack = num(value)? as usize;
        }
        "oversubscription" => {
            scenario.topology.oversubscription = num(value)?;
        }
        "objects" => {
            scenario.objects = num(value)? as u64;
        }
        "object_gb" => {
            scenario.object_bytes = (num(value)? * (1u64 << 30) as f64) as u64;
        }
        "switch_failures" => match value {
            ParamValue::Bool(b) => scenario.switch_failures = *b,
            _ => {
                return Err(WtqlError::Semantic(
                    "axis 'switch_failures' needs TRUE or FALSE".into(),
                ))
            }
        },
        "seed" => {
            scenario.seed = num(value)? as u64;
        }
        other => {
            return Err(WtqlError::Semantic(format!("unknown sweep axis '{other}'")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use windtunnel::ScenarioBuilder;

    fn base() -> Scenario {
        ScenarioBuilder::new("base")
            .racks(3)
            .nodes_per_rack(10)
            .build()
    }

    #[test]
    fn replication_axis() {
        let mut s = base();
        apply_assignment(&mut s, "replication", &ParamValue::Num(5.0)).unwrap();
        assert_eq!(s.redundancy.width(), 5);
    }

    #[test]
    fn nic_axis_resolves_catalog() {
        let mut s = base();
        apply_assignment(&mut s, "nic", &ParamValue::Str("1g".into())).unwrap();
        assert_eq!(s.topology.node.nic.bandwidth_gbps, 1.0);
        apply_assignment(&mut s, "nic", &ParamValue::Str("40g".into())).unwrap();
        assert_eq!(s.topology.node.nic.bandwidth_gbps, 40.0);
        assert!(apply_assignment(&mut s, "nic", &ParamValue::Str("100g".into())).is_err());
    }

    #[test]
    fn disk_axis_replaces_all_disks() {
        let mut s = base();
        let count = s.topology.node.disks.len();
        apply_assignment(&mut s, "disk", &ParamValue::Str("nvme".into())).unwrap();
        assert_eq!(s.topology.node.disks.len(), count);
        assert!(s
            .topology
            .node
            .disks
            .iter()
            .all(|d| d.name == "ssd-nvme-2t"));
    }

    #[test]
    fn placement_axis() {
        let mut s = base();
        apply_assignment(&mut s, "placement", &ParamValue::Str("RR".into())).unwrap();
        assert_eq!(s.placement, Placement::RoundRobin);
        apply_assignment(&mut s, "placement", &ParamValue::Str("CS".into())).unwrap();
        assert!(matches!(s.placement, Placement::Copyset { .. }));
        apply_assignment(&mut s, "placement", &ParamValue::Str("RA".into())).unwrap();
        assert_eq!(
            s.placement,
            Placement::RackAware {
                nodes_per_rack: s.topology.nodes_per_rack
            }
        );
    }

    #[test]
    fn erasure_axes_compose() {
        let mut s = base();
        apply_assignment(&mut s, "erasure_k", &ParamValue::Num(10.0)).unwrap();
        apply_assignment(&mut s, "erasure_m", &ParamValue::Num(4.0)).unwrap();
        assert_eq!(s.redundancy.width(), 14);
        assert_eq!(s.redundancy.label(), "rs(10,4)");
    }

    #[test]
    fn numeric_axes() {
        let mut s = base();
        apply_assignment(&mut s, "repair_parallel", &ParamValue::Num(8.0)).unwrap();
        assert_eq!(s.repair.max_parallel, 8);
        apply_assignment(&mut s, "mem_gb", &ParamValue::Num(256.0)).unwrap();
        assert_eq!(s.topology.node.mem.capacity_gb, 256.0);
        apply_assignment(&mut s, "objects", &ParamValue::Num(500.0)).unwrap();
        assert_eq!(s.objects, 500);
        apply_assignment(&mut s, "object_gb", &ParamValue::Num(2.0)).unwrap();
        assert_eq!(s.object_bytes, 2 << 30);
        apply_assignment(&mut s, "seed", &ParamValue::Num(77.0)).unwrap();
        assert_eq!(s.seed, 77);
    }

    #[test]
    fn unknown_axis_rejected() {
        let mut s = base();
        let e = apply_assignment(&mut s, "warp_drive", &ParamValue::Num(1.0)).unwrap_err();
        assert!(e.to_string().contains("unknown sweep axis"));
    }

    #[test]
    fn wrong_value_type_rejected() {
        let mut s = base();
        assert!(apply_assignment(&mut s, "replication", &ParamValue::Str("three".into())).is_err());
        assert!(apply_assignment(&mut s, "nic", &ParamValue::Num(10.0)).is_err());
    }

    #[test]
    fn switch_failures_axis() {
        let mut s = base();
        apply_assignment(&mut s, "switch_failures", &ParamValue::Bool(true)).unwrap();
        assert!(s.switch_failures);
        apply_assignment(&mut s, "switch_failures", &ParamValue::Bool(false)).unwrap();
        assert!(!s.switch_failures);
        assert!(apply_assignment(&mut s, "switch_failures", &ParamValue::Num(1.0)).is_err());
    }

    #[test]
    fn monotonicity_registry() {
        assert!(is_monotone("replication"));
        assert!(is_monotone("nic"));
        assert!(!is_monotone("placement"));
        assert!(is_known_axis("disk"));
        assert!(!is_known_axis("nonsense"));
    }

    #[test]
    fn monotone_rank_orders_nics() {
        let r1 = monotone_rank("nic", &ParamValue::Str("1g".into()));
        let r10 = monotone_rank("nic", &ParamValue::Str("10g".into()));
        let r40 = monotone_rank("nic", &ParamValue::Str("40g".into()));
        assert!(r1 < r10 && r10 < r40);
        assert_eq!(monotone_rank("replication", &ParamValue::Num(5.0)), 5.0);
    }
}
