//! WTQL abstract syntax.

use wt_store::ParamValue;

/// Comparison operators in WHERE / SUBJECT TO clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `=`
    Eq,
}

impl Comparison {
    /// Evaluates `lhs OP rhs` for numeric operands.
    pub fn eval(&self, lhs: f64, rhs: f64) -> bool {
        match self {
            Comparison::Le => lhs <= rhs,
            Comparison::Ge => lhs >= rhs,
            Comparison::Lt => lhs < rhs,
            Comparison::Gt => lhs > rhs,
            Comparison::Eq => (lhs - rhs).abs() < 1e-12,
        }
    }

    /// The source spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Comparison::Le => "<=",
            Comparison::Ge => ">=",
            Comparison::Lt => "<",
            Comparison::Gt => ">",
            Comparison::Eq => "=",
        }
    }
}

/// One sweep axis: `replication IN [3, 5]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// Axis (scenario parameter) name.
    pub param: String,
    /// Values to sweep over.
    pub values: Vec<ParamValue>,
}

/// A WHERE filter on a configuration parameter: `nodes = 30`.
#[derive(Debug, Clone, PartialEq)]
pub struct Filter {
    /// Parameter name.
    pub param: String,
    /// Comparison.
    pub cmp: Comparison,
    /// Right-hand value.
    pub value: ParamValue,
}

/// A SUBJECT TO constraint on an output metric:
/// `availability >= 0.9999`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Metric name.
    pub metric: String,
    /// Comparison.
    pub cmp: Comparison,
    /// Bound.
    pub bound: f64,
}

impl Constraint {
    /// True if `value` satisfies this constraint.
    pub fn satisfied(&self, value: f64) -> bool {
        self.cmp.eval(value, self.bound)
    }
}

/// One argument of an INJECT call: a literal, or a reference to a sweep
/// axis whose value is substituted per grid point (`racks = blast` sweeps
/// the blast radius).
#[derive(Debug, Clone, PartialEq)]
pub enum InjectArg {
    /// A literal value.
    Value(ParamValue),
    /// The name of a sweep axis to substitute at evaluation time.
    Axis(String),
}

/// One fault injection: `INJECT power_loss(at = 3600, racks = 2, ...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Injection {
    /// Injection kind (`power_loss`, `tor_death`, `gray_storm`, ...).
    pub kind: String,
    /// Named arguments in source order.
    pub args: Vec<(String, InjectArg)>,
}

impl Injection {
    /// Names of sweep axes this injection's arguments reference.
    pub fn axis_refs(&self) -> impl Iterator<Item = &str> {
        self.args.iter().filter_map(|(_, arg)| match arg {
            InjectArg::Axis(name) => Some(name.as_str()),
            InjectArg::Value(_) => None,
        })
    }
}

/// Optimization objective: `MINIMIZE tco_usd_per_year`.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Metric to optimize.
    pub metric: String,
    /// True = minimize, false = maximize.
    pub minimize: bool,
}

/// A full WTQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Metrics to report (EXPLORE clause).
    pub explore: Vec<String>,
    /// Sweep axes (cartesian product).
    pub sweeps: Vec<SweepAxis>,
    /// Fault injections (INJECT clause).
    pub injects: Vec<Injection>,
    /// Configuration filters.
    pub filters: Vec<Filter>,
    /// Output constraints.
    pub constraints: Vec<Constraint>,
    /// Optional objective.
    pub objective: Option<Objective>,
    /// Guided execution requested (`GUIDED` clause): enable analytic
    /// screening, surrogate ranking, sketch-driven aborts and replication
    /// early-stop. Individual stages can still be toggled via OPTIONS.
    pub guided: bool,
    /// Free-form options (`OPTIONS trials = 3`).
    pub options: Vec<(String, ParamValue)>,
}

/// One statement in a WTQL script: a full query, or an introspection
/// command. `STATS` reports on the result store (record count, capacity,
/// evictions, per-experiment counts) and is always safe — it runs no
/// simulation and is a no-op on an empty store.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A simulation query.
    Query(Query),
    /// Result-store introspection (`STATS`; `.stats` interactively).
    Stats,
}

impl Query {
    /// Total grid size before filtering.
    pub fn grid_size(&self) -> usize {
        self.sweeps.iter().map(|s| s.values.len()).product()
    }

    /// A named numeric option, if present.
    pub fn option_num(&self, name: &str) -> Option<f64> {
        self.options
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_num())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_eval() {
        assert!(Comparison::Le.eval(1.0, 2.0));
        assert!(Comparison::Ge.eval(2.0, 2.0));
        assert!(Comparison::Lt.eval(1.0, 2.0));
        assert!(!Comparison::Gt.eval(1.0, 2.0));
        assert!(Comparison::Eq.eval(3.0, 3.0));
        assert!(!Comparison::Eq.eval(3.0, 3.1));
    }

    #[test]
    fn constraint_satisfaction() {
        let c = Constraint {
            metric: "availability".into(),
            cmp: Comparison::Ge,
            bound: 0.999,
        };
        assert!(c.satisfied(0.9999));
        assert!(!c.satisfied(0.99));
    }

    #[test]
    fn grid_size() {
        let q = Query {
            explore: vec![],
            sweeps: vec![
                SweepAxis {
                    param: "a".into(),
                    values: vec![ParamValue::Num(1.0), ParamValue::Num(2.0)],
                },
                SweepAxis {
                    param: "b".into(),
                    values: vec![
                        ParamValue::Str("x".into()),
                        ParamValue::Str("y".into()),
                        ParamValue::Str("z".into()),
                    ],
                },
            ],
            injects: vec![],
            filters: vec![],
            constraints: vec![],
            objective: None,
            guided: false,
            options: vec![],
        };
        assert_eq!(q.grid_size(), 6);
        assert_eq!(q.option_num("trials"), None);
    }
}
