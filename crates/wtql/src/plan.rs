//! Query planning: grid expansion, filtering, and the §4.2 run-ordering
//! optimization.
//!
//! The optimizer sorts configurations *best-first along monotone axes*
//! (fastest NIC, highest replication first). When a run fails its
//! constraints, every configuration that is equal on all non-monotone
//! axes and no better on every monotone axis is **dominated** — it cannot
//! pass either, and is pruned without simulating (the paper's
//! "the simulation run with the 10Gb configuration should precede the run
//! with the 1Gb configuration", generalized to many dimensions).

use crate::ast::Query;
use crate::bind::{check_injection, is_known_axis, is_monotone, monotone_rank};
use crate::error::WtqlError;
#[cfg(test)]
use wt_store::ParamValue;

/// One concrete configuration: ordered `(axis, value)` pairs, in the
/// query's sweep-axis order. The same shape the core sweep engine
/// executes — `run_query` hands the planned order straight to
/// `windtunnel::sweep::SweepRunner`.
pub type Assignment = windtunnel::sweep::Assignment;

/// An executable plan: the filtered, ordered configuration list plus the
/// monotonicity metadata the executor needs for pruning.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Configurations in execution order (best-first on monotone axes).
    pub configs: Vec<Assignment>,
    /// Indices (into each assignment) of monotone axes.
    pub monotone_idx: Vec<usize>,
    /// Indices of non-monotone (categorical) axes.
    pub categorical_idx: Vec<usize>,
}

impl Plan {
    /// Builds the plan for a query: expands the sweep grid, applies WHERE
    /// filters, and orders runs for maximal pruning opportunity.
    pub fn build(query: &Query) -> Result<Plan, WtqlError> {
        // Axes referenced from INJECT arguments are chaos parameters, not
        // scenario knobs — they are legal sweep axes even though the
        // binder can't apply them to a scenario directly.
        let inject_axes: std::collections::BTreeSet<&str> = query
            .injects
            .iter()
            .flat_map(|inj| inj.axis_refs())
            .collect();
        for axis in &query.sweeps {
            if !is_known_axis(&axis.param) && !inject_axes.contains(axis.param.as_str()) {
                return Err(WtqlError::Semantic(format!(
                    "unknown sweep axis '{}'",
                    axis.param
                )));
            }
            if axis.values.is_empty() {
                return Err(WtqlError::Semantic(format!(
                    "sweep axis '{}' has no values",
                    axis.param
                )));
            }
        }
        let mut dupes = std::collections::BTreeSet::new();
        for axis in &query.sweeps {
            if !dupes.insert(axis.param.as_str()) {
                return Err(WtqlError::Semantic(format!(
                    "sweep axis '{}' appears twice",
                    axis.param
                )));
            }
        }

        // Validate injections once at plan time: unknown kinds, argument
        // typos, and dangling axis references fail the query up front.
        let swept: Vec<String> = query.sweeps.iter().map(|a| a.param.clone()).collect();
        for inj in &query.injects {
            check_injection(inj, &swept)?;
        }

        // Cartesian product.
        let mut configs: Vec<Assignment> = vec![Vec::new()];
        for axis in &query.sweeps {
            let mut next = Vec::with_capacity(configs.len() * axis.values.len());
            for base in &configs {
                for v in &axis.values {
                    let mut c = base.clone();
                    c.push((axis.param.clone(), v.clone()));
                    next.push(c);
                }
            }
            configs = next;
        }

        // WHERE filters apply to swept axes (constant axes are handled by
        // the caller's base scenario).
        configs.retain(|c| {
            query.filters.iter().all(|f| {
                match c.iter().find(|(k, _)| *k == f.param) {
                    Some((_, v)) => match (v.as_num(), f.value.as_num()) {
                        (Some(lhs), Some(rhs)) => f.cmp.eval(lhs, rhs),
                        _ => v == &f.value,
                    },
                    // Filter on an un-swept param: no basis to exclude here.
                    None => true,
                }
            })
        });

        let monotone_idx: Vec<usize> = query
            .sweeps
            .iter()
            .enumerate()
            .filter(|(_, a)| is_monotone(&a.param))
            .map(|(i, _)| i)
            .collect();
        let categorical_idx: Vec<usize> = (0..query.sweeps.len())
            .filter(|i| !monotone_idx.contains(i))
            .collect();

        // Best-first ordering: sort descending by the monotone ranks.
        let mut ordered = configs;
        ordered.sort_by(|a, b| {
            let ka = Self::rank_key(a, &monotone_idx);
            let kb = Self::rank_key(b, &monotone_idx);
            kb.partial_cmp(&ka).expect("finite ranks").then_with(|| {
                // Stable tie-break on the categorical values for determinism.
                format!("{a:?}").cmp(&format!("{b:?}"))
            })
        });

        Ok(Plan {
            configs: ordered,
            monotone_idx,
            categorical_idx,
        })
    }

    fn rank_key(c: &Assignment, monotone_idx: &[usize]) -> Vec<f64> {
        monotone_idx
            .iter()
            .map(|&i| monotone_rank(&c[i].0, &c[i].1))
            .collect()
    }

    /// True if `candidate` is dominated by a *failed* configuration
    /// `failed`: identical on every categorical axis and no better on any
    /// monotone axis. Such a candidate cannot satisfy the constraints
    /// either (under the declared monotonicity) and is skipped.
    pub fn dominated_by_failure(&self, candidate: &Assignment, failed: &Assignment) -> bool {
        if candidate.len() != failed.len() {
            return false;
        }
        for &i in &self.categorical_idx {
            if candidate[i] != failed[i] {
                return false;
            }
        }
        self.monotone_idx.iter().all(|&i| {
            monotone_rank(&candidate[i].0, &candidate[i].1)
                <= monotone_rank(&failed[i].0, &failed[i].1)
        })
    }

    /// A human-readable plan description — WTQL's `EXPLAIN`.
    pub fn explain(&self, query: &Query) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "plan: {} configuration(s)", self.configs.len());
        let _ = writeln!(out, "  grid before WHERE: {}", query.grid_size());
        let monotone: Vec<&str> = self
            .monotone_idx
            .iter()
            .map(|&i| query.sweeps[i].param.as_str())
            .collect();
        let categorical: Vec<&str> = self
            .categorical_idx
            .iter()
            .map(|&i| query.sweeps[i].param.as_str())
            .collect();
        let _ = writeln!(
            out,
            "  monotone axes (best-first order, dominance pruning): {}",
            if monotone.is_empty() {
                "none".to_string()
            } else {
                monotone.join(", ")
            }
        );
        let _ = writeln!(
            out,
            "  categorical axes (exhaustive): {}",
            if categorical.is_empty() {
                "none".to_string()
            } else {
                categorical.join(", ")
            }
        );
        for c in &query.constraints {
            let _ = writeln!(
                out,
                "  constraint: {} {} {}",
                c.metric,
                c.cmp.as_str(),
                c.bound
            );
        }
        if let Some(obj) = &query.objective {
            let _ = writeln!(
                out,
                "  objective: {} {}",
                if obj.minimize { "MINIMIZE" } else { "MAXIMIZE" },
                obj.metric
            );
        }
        let preview = self.configs.iter().take(3);
        for (i, cfg) in preview.enumerate() {
            let desc: Vec<String> = cfg.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(out, "  run[{i}]: {}", desc.join(", "));
        }
        if self.configs.len() > 3 {
            let _ = writeln!(out, "  ... {} more", self.configs.len() - 3);
        }
        out
    }

    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when no configurations survived filtering.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn plan_of(src: &str) -> Plan {
        Plan::build(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn grid_expansion() {
        let p = plan_of(r#"EXPLORE a SWEEP replication IN [3, 5], placement IN ["R", "RR"]"#);
        assert_eq!(p.len(), 4);
        // Every config has both axes.
        for c in &p.configs {
            assert_eq!(c.len(), 2);
            assert_eq!(c[0].0, "replication");
            assert_eq!(c[1].0, "placement");
        }
    }

    #[test]
    fn best_first_ordering_on_monotone_axes() {
        let p = plan_of(r#"EXPLORE a SWEEP nic IN ["1g", "10g", "40g"]"#);
        let order: Vec<String> = p.configs.iter().map(|c| c[0].1.to_string()).collect();
        assert_eq!(order, vec!["40g", "10g", "1g"], "fastest first");
    }

    #[test]
    fn replication_descends() {
        let p = plan_of("EXPLORE a SWEEP replication IN [3, 5, 7]");
        let order: Vec<f64> = p.configs.iter().map(|c| c[0].1.as_num().unwrap()).collect();
        assert_eq!(order, vec![7.0, 5.0, 3.0]);
    }

    #[test]
    fn where_filters_configs() {
        let p = plan_of(r#"EXPLORE a SWEEP replication IN [3, 5, 7] WHERE replication >= 5"#);
        assert_eq!(p.len(), 2);
        assert!(p.configs.iter().all(|c| c[0].1.as_num().unwrap() >= 5.0));
    }

    #[test]
    fn dominance_within_categorical_group() {
        let p = plan_of(r#"EXPLORE a SWEEP nic IN ["1g", "10g"], placement IN ["R", "RR"]"#);
        let failed_10g_r: Assignment = vec![
            ("nic".into(), ParamValue::Str("10g".into())),
            ("placement".into(), ParamValue::Str("R".into())),
        ];
        let cand_1g_r: Assignment = vec![
            ("nic".into(), ParamValue::Str("1g".into())),
            ("placement".into(), ParamValue::Str("R".into())),
        ];
        let cand_1g_rr: Assignment = vec![
            ("nic".into(), ParamValue::Str("1g".into())),
            ("placement".into(), ParamValue::Str("RR".into())),
        ];
        // 1g/R is dominated by the failed 10g/R (paper's example).
        assert!(p.dominated_by_failure(&cand_1g_r, &failed_10g_r));
        // Different placement: not comparable.
        assert!(!p.dominated_by_failure(&cand_1g_rr, &failed_10g_r));
        // The failed config does not dominate a *better* one.
        let cand_10g_r = failed_10g_r.clone();
        assert!(
            p.dominated_by_failure(&cand_10g_r, &failed_10g_r),
            "equal is dominated"
        );
    }

    #[test]
    fn multi_dimensional_dominance() {
        let p = plan_of(r#"EXPLORE a SWEEP replication IN [3, 5], repair_parallel IN [1, 8]"#);
        let failed: Assignment = vec![
            ("replication".into(), ParamValue::Num(5.0)),
            ("repair_parallel".into(), ParamValue::Num(8.0)),
        ];
        // Everything is ≤ the best config on both axes → all dominated.
        for c in &p.configs {
            assert!(p.dominated_by_failure(c, &failed), "{c:?}");
        }
        // But a mixed config does not dominate across axes.
        let failed_mixed: Assignment = vec![
            ("replication".into(), ParamValue::Num(3.0)),
            ("repair_parallel".into(), ParamValue::Num(8.0)),
        ];
        let cand: Assignment = vec![
            ("replication".into(), ParamValue::Num(5.0)),
            ("repair_parallel".into(), ParamValue::Num(1.0)),
        ];
        assert!(!p.dominated_by_failure(&cand, &failed_mixed));
    }

    #[test]
    fn unknown_axis_rejected() {
        let q = parse("EXPLORE a SWEEP quantum IN [1]").unwrap();
        assert!(Plan::build(&q).is_err());
    }

    #[test]
    fn inject_referenced_axis_is_legal_and_categorical() {
        let p = plan_of(
            r#"EXPLORE a SWEEP replication IN [3, 5], blast IN [0, 2]
               INJECT power_loss(first_rack = 0, racks = blast, restore = 900)"#,
        );
        assert_eq!(p.len(), 4);
        // The chaos axis is categorical: a failure at blast=0 must never
        // prune the blast=2 arm.
        assert_eq!(p.categorical_idx, vec![1]);
        assert_eq!(p.monotone_idx, vec![0]);
    }

    #[test]
    fn inject_validation_happens_at_plan_time() {
        let q = parse("EXPLORE a SWEEP replication IN [3] INJECT meteor_strike()").unwrap();
        assert!(Plan::build(&q)
            .unwrap_err()
            .to_string()
            .contains("unknown INJECT kind"));
        let q = parse("EXPLORE a SWEEP replication IN [3] INJECT tor_death(rack = blast)").unwrap();
        assert!(Plan::build(&q)
            .unwrap_err()
            .to_string()
            .contains("not swept"));
    }

    #[test]
    fn unreferenced_chaos_axis_still_rejected() {
        let q = parse(
            "EXPLORE a SWEEP blast IN [1] INJECT repair_throttle(max_parallel = 0, duration = 60, breaker_pending = 9)",
        )
        .unwrap();
        assert!(Plan::build(&q)
            .unwrap_err()
            .to_string()
            .contains("unknown sweep axis"));
    }

    #[test]
    fn duplicate_axis_rejected() {
        let q = parse("EXPLORE a SWEEP replication IN [1], replication IN [2]").unwrap();
        let e = Plan::build(&q).unwrap_err();
        assert!(e.to_string().contains("twice"));
    }

    #[test]
    fn explain_describes_the_plan() {
        let q = parse(
            r#"EXPLORE availability SWEEP replication IN [3, 5], placement IN ["R", "RR"]
               SUBJECT TO availability >= 0.999 MINIMIZE tco_usd_per_year"#,
        )
        .unwrap();
        let p = Plan::build(&q).unwrap();
        let text = p.explain(&q);
        assert!(text.contains("4 configuration"));
        assert!(text.contains("monotone axes"));
        assert!(text.contains("replication"));
        assert!(text.contains("constraint: availability >= 0.999"));
        assert!(text.contains("MINIMIZE tco_usd_per_year"));
        assert!(text.contains("run[0]: replication=5"));
        assert!(text.contains("... 1 more"));
    }

    #[test]
    fn deterministic_order() {
        let a = plan_of(r#"EXPLORE a SWEEP placement IN ["RR", "R"], replication IN [5, 3]"#);
        let b = plan_of(r#"EXPLORE a SWEEP placement IN ["RR", "R"], replication IN [5, 3]"#);
        assert_eq!(a.configs, b.configs);
    }
}
