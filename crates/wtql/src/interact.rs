//! Declarative model-interaction graph (§4.1).
//!
//! "When a new model is added to the simulator, its interactions with the
//! existing models should be declaratively specified. … The underlying
//! simulation engine can then automatically optimize and parallelize the
//! query execution based on the user's declarations."
//!
//! [`ModelGraph`] holds those declarations: models are nodes, declared
//! interactions are edges. The engine derives what it needs from graph
//! queries: `independent(a, b)` (may the two models be simulated without
//! synchronizing?), `affected_set(m)` (what must be re-examined when `m`
//! changes — the paper's data-transfer footprint example), and
//! `independent_groups()` (connected components = units that can run in
//! parallel).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A declared set of simulation models and their interactions.
#[derive(Debug, Clone, Default)]
pub struct ModelGraph {
    edges: BTreeMap<String, BTreeSet<String>>,
}

impl ModelGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a model with no interactions yet.
    pub fn model(&mut self, name: &str) -> &mut Self {
        self.edges.entry(name.to_string()).or_default();
        self
    }

    /// Declares that two models interact (must be simulated in a common
    /// event ordering). Symmetric; implicitly declares both models.
    pub fn interacts(&mut self, a: &str, b: &str) -> &mut Self {
        assert_ne!(a, b, "a model trivially interacts with itself");
        self.edges
            .entry(a.to_string())
            .or_default()
            .insert(b.to_string());
        self.edges
            .entry(b.to_string())
            .or_default()
            .insert(a.to_string());
        self
    }

    /// All declared models.
    pub fn models(&self) -> Vec<&str> {
        self.edges.keys().map(String::as_str).collect()
    }

    /// True if the two models are declared (directly) interacting.
    pub fn directly_interacts(&self, a: &str, b: &str) -> bool {
        self.edges.get(a).is_some_and(|s| s.contains(b))
    }

    /// True if the models are independent: no interaction path connects
    /// them, so their events can be simulated/parallelized separately.
    pub fn independent(&self, a: &str, b: &str) -> bool {
        if a == b {
            return false;
        }
        !self.affected_set(a).contains(b)
    }

    /// The transitive closure of interactions from `m` (including `m`):
    /// everything whose state can be influenced by `m`'s events.
    pub fn affected_set(&self, m: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        if self.edges.contains_key(m) {
            seen.insert(m.to_string());
            queue.push_back(m.to_string());
        }
        while let Some(cur) = queue.pop_front() {
            if let Some(neighbors) = self.edges.get(&cur) {
                for n in neighbors {
                    if seen.insert(n.clone()) {
                        queue.push_back(n.clone());
                    }
                }
            }
        }
        seen
    }

    /// Connected components: maximal groups that must share an event
    /// ordering. Distinct groups are parallelizable.
    pub fn independent_groups(&self) -> Vec<BTreeSet<String>> {
        let mut remaining: BTreeSet<String> = self.edges.keys().cloned().collect();
        let mut groups = Vec::new();
        while let Some(seed) = remaining.iter().next().cloned() {
            let group = self.affected_set(&seed);
            for g in &group {
                remaining.remove(g);
            }
            groups.push(group);
        }
        groups
    }

    /// The default wind tunnel declaration: the interactions the paper
    /// itself enumerates — a data transfer touches the two endpoint nodes'
    /// disks/NICs and the switch on the path; workload execution interacts
    /// with the transfer when they share a machine; disk failures are
    /// independent of switch failures.
    pub fn default_windtunnel() -> Self {
        let mut g = ModelGraph::new();
        g.interacts("transfer", "src_node.nic")
            .interacts("transfer", "dst_node.nic")
            .interacts("transfer", "src_node.disk")
            .interacts("transfer", "dst_node.disk")
            .interacts("transfer", "rack_switch")
            .interacts("workload", "src_node.disk")
            .interacts("workload", "src_node.nic")
            .model("disk.failure")
            .model("switch.failure");
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_disk_vs_switch_failures_independent() {
        let g = ModelGraph::default_windtunnel();
        // "the failure model of the hard disk is independent of the
        // failure model of the network switch"
        assert!(g.independent("disk.failure", "switch.failure"));
    }

    #[test]
    fn paper_example_transfer_interacts_with_colocated_workload() {
        let g = ModelGraph::default_windtunnel();
        // "a model that simulates a data transfer … is not independent of a
        // model that simulates a workload executed on that machine"
        assert!(!g.independent("transfer", "workload"));
        assert!(g.directly_interacts("transfer", "src_node.nic"));
    }

    #[test]
    fn affected_set_is_transitive() {
        let mut g = ModelGraph::new();
        g.interacts("a", "b").interacts("b", "c").model("d");
        let set = g.affected_set("a");
        assert!(set.contains("a") && set.contains("b") && set.contains("c"));
        assert!(!set.contains("d"));
    }

    #[test]
    fn independent_groups_partition() {
        let mut g = ModelGraph::new();
        g.interacts("a", "b").interacts("c", "d").model("e");
        let groups = g.independent_groups();
        assert_eq!(groups.len(), 3);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 5);
        // Every pair from distinct groups is independent.
        assert!(g.independent("a", "c"));
        assert!(g.independent("b", "e"));
        assert!(!g.independent("a", "b"));
    }

    #[test]
    fn self_is_never_independent() {
        let mut g = ModelGraph::new();
        g.model("a");
        assert!(!g.independent("a", "a"));
    }

    #[test]
    fn unknown_models_have_empty_affected_sets() {
        let g = ModelGraph::new();
        assert!(g.affected_set("ghost").is_empty());
    }

    #[test]
    #[should_panic(expected = "trivially")]
    fn self_edge_rejected() {
        let mut g = ModelGraph::new();
        g.interacts("a", "a");
    }
}
