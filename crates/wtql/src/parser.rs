//! Recursive-descent parser for WTQL.
//!
//! Grammar (clauses in order; all but EXPLORE and SWEEP optional):
//!
//! ```text
//! query      := explore sweep inject? where? subject? objective? guided? options?
//! explore    := EXPLORE ident ("," ident)*
//! sweep      := SWEEP axis ("," axis)*
//! axis       := ident IN "[" value ("," value)* "]"
//! inject     := INJECT injection ("," injection)*
//! injection  := ident "(" (arg ("," arg)*)? ")"
//! arg        := ident "=" (value | ident)        -- bare ident = axis ref
//! where      := WHERE filter (AND filter)*
//! filter     := ident cmp value
//! subject    := SUBJECT TO constraint ("," constraint | AND constraint)*
//! constraint := ident cmp number
//! objective  := (MINIMIZE | MAXIMIZE) ident
//! guided     := GUIDED
//! options    := OPTIONS ident "=" value ("," ident "=" value)*
//! value      := number | string | TRUE | FALSE
//! ```

use crate::ast::{
    Comparison, Constraint, Filter, InjectArg, Injection, Objective, Query, Statement, SweepAxis,
};
use crate::error::WtqlError;
use crate::lexer::{lex, Token, TokenKind};
use wt_store::ParamValue;

/// Parses WTQL text into a single [`Query`].
pub fn parse(src: &str) -> Result<Query, WtqlError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    match p.peek() {
        TokenKind::Eof => Ok(q),
        _ => Err(p.err("end of query")),
    }
}

/// Parses a WTQL script: a sequence of statements — queries and `STATS`
/// commands — in source order. A bare `STATS` between (or after) queries
/// is always valid, including on an empty script.
pub fn parse_script(src: &str) -> Result<Vec<Statement>, WtqlError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        match p.peek() {
            TokenKind::Eof => break,
            TokenKind::Keyword(k) if k == "STATS" => {
                p.bump();
                out.push(Statement::Stats);
            }
            _ => out.push(Statement::Query(p.query()?)),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn at(&self) -> usize {
        self.tokens[self.pos].at
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn err(&self, expected: &str) -> WtqlError {
        WtqlError::Parse {
            at: self.at(),
            expected: expected.to_string(),
            found: format!("{:?}", self.peek()),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), WtqlError> {
        match self.peek() {
            TokenKind::Keyword(k) if k == kw => {
                self.bump();
                Ok(())
            }
            _ => Err(self.err(kw)),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if k == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, WtqlError> {
        match self.peek() {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => Err(self.err("identifier")),
        }
    }

    fn value(&mut self) -> Result<ParamValue, WtqlError> {
        match self.peek().clone() {
            TokenKind::Number(x) => {
                self.bump();
                Ok(ParamValue::Num(x))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(ParamValue::Str(s))
            }
            TokenKind::Keyword(k) if k == "TRUE" => {
                self.bump();
                Ok(ParamValue::Bool(true))
            }
            TokenKind::Keyword(k) if k == "FALSE" => {
                self.bump();
                Ok(ParamValue::Bool(false))
            }
            _ => Err(self.err("value (number, string, TRUE or FALSE)")),
        }
    }

    fn number(&mut self) -> Result<f64, WtqlError> {
        match self.peek() {
            TokenKind::Number(x) => {
                let x = *x;
                self.bump();
                Ok(x)
            }
            _ => Err(self.err("number")),
        }
    }

    fn cmp(&mut self) -> Result<Comparison, WtqlError> {
        match self.peek().clone() {
            TokenKind::Cmp(op) => {
                self.bump();
                Ok(match op.as_str() {
                    "<=" => Comparison::Le,
                    ">=" => Comparison::Ge,
                    "<" => Comparison::Lt,
                    ">" => Comparison::Gt,
                    "=" => Comparison::Eq,
                    _ => unreachable!("lexer emits only known operators"),
                })
            }
            _ => Err(self.err("comparison operator")),
        }
    }

    fn query(&mut self) -> Result<Query, WtqlError> {
        // EXPLORE m1, m2, ...
        self.expect_keyword("EXPLORE")?;
        let mut explore = vec![self.ident()?];
        while matches!(self.peek(), TokenKind::Comma) {
            self.bump();
            explore.push(self.ident()?);
        }

        // SWEEP axis, axis, ...
        self.expect_keyword("SWEEP")?;
        let mut sweeps = vec![self.axis()?];
        while matches!(self.peek(), TokenKind::Comma) {
            self.bump();
            sweeps.push(self.axis()?);
        }

        // INJECT kind(k = v, ...), ...
        let mut injects = Vec::new();
        if self.eat_keyword("INJECT") {
            injects.push(self.injection()?);
            while matches!(self.peek(), TokenKind::Comma) {
                self.bump();
                injects.push(self.injection()?);
            }
        }

        // WHERE f AND f ...
        let mut filters = Vec::new();
        if self.eat_keyword("WHERE") {
            filters.push(self.filter()?);
            while self.eat_keyword("AND") {
                filters.push(self.filter()?);
            }
        }

        // SUBJECT TO c, c ...
        let mut constraints = Vec::new();
        if self.eat_keyword("SUBJECT") {
            self.expect_keyword("TO")?;
            constraints.push(self.constraint()?);
            loop {
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else if !self.eat_keyword("AND") {
                    break;
                }
                constraints.push(self.constraint()?);
            }
        }

        // MINIMIZE / MAXIMIZE metric
        let objective = if self.eat_keyword("MINIMIZE") {
            Some(Objective {
                metric: self.ident()?,
                minimize: true,
            })
        } else if self.eat_keyword("MAXIMIZE") {
            Some(Objective {
                metric: self.ident()?,
                minimize: false,
            })
        } else {
            None
        };

        // GUIDED — opt into screen/rank/early-stop execution.
        let guided = self.eat_keyword("GUIDED");

        // OPTIONS k = v, ...
        let mut options = Vec::new();
        if self.eat_keyword("OPTIONS") {
            loop {
                // `guided` doubles as a keyword (the GUIDED clause) and an
                // option key (`OPTIONS guided = TRUE`); accept both here.
                let key = if self.eat_keyword("GUIDED") {
                    "guided".to_string()
                } else {
                    self.ident()?
                };
                match self.cmp()? {
                    Comparison::Eq => {}
                    _ => return Err(self.err("'=' in OPTIONS")),
                }
                options.push((key, self.value()?));
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }

        // A query ends at end of input or at the start of the next
        // statement (`parse` additionally insists on Eof).
        match self.peek() {
            TokenKind::Eof => {}
            TokenKind::Keyword(k) if k == "EXPLORE" || k == "STATS" => {}
            _ => return Err(self.err("end of query")),
        }
        Ok(Query {
            explore,
            sweeps,
            injects,
            filters,
            constraints,
            objective,
            guided,
            options,
        })
    }

    fn axis(&mut self) -> Result<SweepAxis, WtqlError> {
        let param = self.ident()?;
        self.expect_keyword("IN")?;
        match self.peek() {
            TokenKind::LBracket => {
                self.bump();
            }
            _ => return Err(self.err("'['")),
        }
        let mut values = vec![self.value()?];
        while matches!(self.peek(), TokenKind::Comma) {
            self.bump();
            values.push(self.value()?);
        }
        match self.peek() {
            TokenKind::RBracket => {
                self.bump();
            }
            _ => return Err(self.err("']'")),
        }
        Ok(SweepAxis { param, values })
    }

    fn injection(&mut self) -> Result<Injection, WtqlError> {
        let kind = self.ident()?;
        match self.peek() {
            TokenKind::LParen => {
                self.bump();
            }
            _ => return Err(self.err("'(' after INJECT kind")),
        }
        let mut args = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                let key = self.ident()?;
                match self.cmp()? {
                    Comparison::Eq => {}
                    _ => return Err(self.err("'=' in INJECT argument")),
                }
                // A bare identifier on the right-hand side names a sweep
                // axis; anything else is a literal value.
                let arg = match self.peek() {
                    TokenKind::Ident(name) => {
                        let name = name.clone();
                        self.bump();
                        InjectArg::Axis(name)
                    }
                    _ => InjectArg::Value(self.value()?),
                };
                args.push((key, arg));
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        match self.peek() {
            TokenKind::RParen => {
                self.bump();
            }
            _ => return Err(self.err("')'")),
        }
        Ok(Injection { kind, args })
    }

    fn filter(&mut self) -> Result<Filter, WtqlError> {
        let param = self.ident()?;
        let cmp = self.cmp()?;
        let value = self.value()?;
        Ok(Filter { param, cmp, value })
    }

    fn constraint(&mut self) -> Result<Constraint, WtqlError> {
        let metric = self.ident()?;
        let cmp = self.cmp()?;
        let bound = self.number()?;
        Ok(Constraint { metric, cmp, bound })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
        EXPLORE availability, tco_usd_per_year
        SWEEP replication IN [3, 5],
              nic IN ["1g", "10g"],
              placement IN ["R", "RR"]
        WHERE nodes = 30
        SUBJECT TO availability >= 0.9999, objects_lost <= 0
        MINIMIZE tco_usd_per_year
        OPTIONS probe_fraction = 0.1
    "#;

    #[test]
    fn parses_full_query() {
        let q = parse(FULL).unwrap();
        assert_eq!(q.explore, vec!["availability", "tco_usd_per_year"]);
        assert_eq!(q.sweeps.len(), 3);
        assert_eq!(q.sweeps[0].param, "replication");
        assert_eq!(q.sweeps[0].values.len(), 2);
        assert_eq!(q.sweeps[1].values[1], ParamValue::Str("10g".into()));
        assert_eq!(q.filters.len(), 1);
        assert_eq!(q.constraints.len(), 2);
        assert_eq!(q.constraints[0].metric, "availability");
        assert_eq!(q.constraints[0].cmp, Comparison::Ge);
        let obj = q.objective.as_ref().unwrap();
        assert!(obj.minimize);
        assert_eq!(obj.metric, "tco_usd_per_year");
        assert_eq!(q.option_num("probe_fraction"), Some(0.1));
        assert_eq!(q.grid_size(), 8);
    }

    #[test]
    fn minimal_query() {
        let q = parse("EXPLORE availability SWEEP replication IN [3]").unwrap();
        assert_eq!(q.explore.len(), 1);
        assert!(q.filters.is_empty());
        assert!(q.constraints.is_empty());
        assert!(q.objective.is_none());
    }

    #[test]
    fn inject_clause_parses() {
        let q = parse(
            r#"EXPLORE availability
               SWEEP blast IN [0, 2]
               INJECT power_loss(at = 3600, first_rack = 0, racks = blast, restore = 7200),
                      gray_storm(target = "disk", probability = 1, slowdown = 10,
                                 center_rack = 1, radius = 1, duration = 600)
               SUBJECT TO availability >= 0.99"#,
        )
        .unwrap();
        assert_eq!(q.injects.len(), 2);
        assert_eq!(q.injects[0].kind, "power_loss");
        assert_eq!(
            q.injects[0].args[0],
            ("at".to_string(), InjectArg::Value(ParamValue::Num(3600.0)))
        );
        assert_eq!(
            q.injects[0].args[2],
            ("racks".to_string(), InjectArg::Axis("blast".into()))
        );
        assert_eq!(q.injects[0].axis_refs().collect::<Vec<_>>(), vec!["blast"]);
        assert_eq!(q.injects[1].kind, "gray_storm");
        assert_eq!(q.injects[1].args.len(), 6);
        assert_eq!(q.constraints.len(), 1);
    }

    #[test]
    fn inject_with_no_args_parses() {
        let q = parse("EXPLORE a SWEEP x IN [1] INJECT tor_death()").unwrap();
        assert_eq!(q.injects.len(), 1);
        assert!(q.injects[0].args.is_empty());
    }

    #[test]
    fn inject_requires_parens_and_equals() {
        assert!(parse("EXPLORE a SWEEP x IN [1] INJECT tor_death").is_err());
        assert!(parse("EXPLORE a SWEEP x IN [1] INJECT tor_death(rack < 1)").is_err());
        assert!(parse("EXPLORE a SWEEP x IN [1] INJECT tor_death(rack = 1").is_err());
    }

    #[test]
    fn maximize_objective() {
        let q = parse("EXPLORE a SWEEP x IN [1] MAXIMIZE a").unwrap();
        assert!(!q.objective.unwrap().minimize);
    }

    #[test]
    fn boolean_values() {
        let q = parse("EXPLORE a SWEEP parallel IN [TRUE, FALSE]").unwrap();
        assert_eq!(
            q.sweeps[0].values,
            vec![ParamValue::Bool(true), ParamValue::Bool(false)]
        );
    }

    #[test]
    fn guided_clause_parses_in_position() {
        let q = parse(
            "EXPLORE a SWEEP x IN [1] SUBJECT TO a >= 1 MINIMIZE a GUIDED OPTIONS trials = 2",
        )
        .unwrap();
        assert!(q.guided);
        assert_eq!(q.option_num("trials"), Some(2.0));
        // Without the clause the flag stays off.
        assert!(!parse("EXPLORE a SWEEP x IN [1]").unwrap().guided);
        // GUIDED with no OPTIONS also terminates cleanly.
        assert!(parse("EXPLORE a SWEEP x IN [1] GUIDED").unwrap().guided);
        // GUIDED must come after the objective, before OPTIONS.
        assert!(parse("EXPLORE a GUIDED SWEEP x IN [1]").is_err());
    }

    #[test]
    fn subject_to_with_and() {
        let q = parse("EXPLORE a SWEEP x IN [1] SUBJECT TO a >= 1 AND b <= 2").unwrap();
        assert_eq!(q.constraints.len(), 2);
    }

    #[test]
    fn missing_explore_rejected() {
        assert!(parse("SWEEP x IN [1]").is_err());
    }

    #[test]
    fn missing_bracket_rejected() {
        let e = parse("EXPLORE a SWEEP x IN 3").unwrap_err();
        assert!(e.to_string().contains("'['"), "{e}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let e = parse("EXPLORE a SWEEP x IN [1] banana").unwrap_err();
        assert!(e.to_string().contains("end of query"), "{e}");
    }

    #[test]
    fn constraint_requires_number() {
        assert!(parse(r#"EXPLORE a SWEEP x IN [1] SUBJECT TO a >= "high""#).is_err());
    }

    #[test]
    fn comments_allowed() {
        let q = parse("EXPLORE a -- pick a metric\nSWEEP x IN [1] -- one arm").unwrap();
        assert_eq!(q.grid_size(), 1);
    }

    #[test]
    fn script_mixes_queries_and_stats() {
        let stmts = parse_script(
            "STATS\n\
             EXPLORE a SWEEP x IN [1]\n\
             stats -- keywords are case-insensitive\n\
             EXPLORE b SWEEP y IN [2, 3]\n\
             STATS",
        )
        .unwrap();
        assert_eq!(stmts.len(), 5);
        assert_eq!(stmts[0], Statement::Stats);
        assert!(matches!(&stmts[1], Statement::Query(q) if q.explore == ["a"]));
        assert_eq!(stmts[2], Statement::Stats);
        assert!(matches!(&stmts[3], Statement::Query(q) if q.grid_size() == 2));
        assert_eq!(stmts[4], Statement::Stats);
    }

    #[test]
    fn empty_script_is_fine() {
        assert!(parse_script("").unwrap().is_empty());
        assert!(parse_script("-- just a comment").unwrap().is_empty());
    }

    #[test]
    fn single_parse_rejects_second_statement() {
        assert!(parse("EXPLORE a SWEEP x IN [1] STATS").is_err());
        assert!(parse("EXPLORE a SWEEP x IN [1] EXPLORE b SWEEP y IN [2]").is_err());
    }

    #[test]
    fn script_propagates_query_errors() {
        assert!(parse_script("STATS EXPLORE SWEEP").is_err());
    }
}
