//! WTQL error type.

use std::fmt;

/// Anything that can go wrong between query text and executed plan.
#[derive(Debug, Clone, PartialEq)]
pub enum WtqlError {
    /// Lexical error: unexpected character.
    Lex {
        /// Byte offset in the query text.
        at: usize,
        /// The offending character.
        found: char,
    },
    /// Parse error: unexpected token.
    Parse {
        /// Byte offset where the problem was noticed.
        at: usize,
        /// What the parser expected.
        expected: String,
        /// What it found.
        found: String,
    },
    /// Semantic error: unknown sweep axis, bad value type, etc.
    Semantic(String),
}

impl fmt::Display for WtqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WtqlError::Lex { at, found } => {
                write!(f, "lex error at byte {at}: unexpected character {found:?}")
            }
            WtqlError::Parse {
                at,
                expected,
                found,
            } => write!(
                f,
                "parse error at byte {at}: expected {expected}, found {found}"
            ),
            WtqlError::Semantic(msg) => write!(f, "semantic error: {msg}"),
        }
    }
}

impl std::error::Error for WtqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = WtqlError::Lex { at: 3, found: '$' };
        assert!(e.to_string().contains("byte 3"));
        let e = WtqlError::Parse {
            at: 10,
            expected: "IN".into(),
            found: "OUT".into(),
        };
        assert!(e.to_string().contains("expected IN"));
        let e = WtqlError::Semantic("unknown axis 'foo'".into());
        assert!(e.to_string().contains("unknown axis"));
    }
}
