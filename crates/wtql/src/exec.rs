//! The query executor: parallel run dispatch, dominance pruning, early
//! abort (§4.2).
//!
//! Since the declarative-sweep refactor, dispatch is not bespoke: the
//! planned configuration order becomes an explicit
//! [`windtunnel::sweep::SweepGrid`] and runs through
//! [`windtunnel::sweep::SweepRunner`] — the same engine the experiment
//! binaries use. This module adds only what queries need on top:
//! dominance pruning, probe-and-abort, replication averaging, and the
//! constraint/objective verdicts.

use crate::ast::{Constraint, Query};
use crate::bind::{apply_assignment, is_known_axis, resolve_injection};
use crate::error::WtqlError;
use crate::plan::{Assignment, Plan};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use windtunnel::cluster::Scenario;
use windtunnel::des::time::SimDuration;
use windtunnel::farm::Farm;
use windtunnel::sweep::{SweepGrid, SweepRunner};
use windtunnel::WindTunnel;
use wt_store::RecordSink;

/// Execution knobs (overridable from the query's OPTIONS clause).
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads.
    pub threads: usize,
    /// Monotone dominance pruning on/off.
    pub prune: bool,
    /// Probe-and-abort hopeless runs.
    pub early_abort: bool,
    /// Fraction of the horizon the probe simulates.
    pub probe_fraction: f64,
    /// Availability slack below the bound before the heuristic abort
    /// fires (sound aborts on monotone metrics ignore this).
    pub abort_margin: f64,
    /// Independent replications per configuration; numeric metrics are
    /// averaged over seeds (variance reduction for the bursty availability
    /// metrics). 1 = single run.
    pub replications: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: 1,
            prune: true,
            early_abort: false,
            probe_fraction: 0.1,
            abort_margin: 0.01,
            replications: 1,
        }
    }
}

impl ExecOptions {
    /// Reads overrides from the query's OPTIONS clause
    /// (`OPTIONS threads = 4, prune = FALSE, early_abort = TRUE`).
    pub fn from_query(query: &Query) -> Self {
        let mut o = ExecOptions::default();
        for (key, value) in &query.options {
            match key.as_str() {
                "threads" => {
                    if let Some(x) = value.as_num() {
                        o.threads = (x as usize).max(1);
                    }
                }
                "prune" => {
                    if let wt_store::ParamValue::Bool(b) = value {
                        o.prune = *b;
                    }
                }
                "early_abort" => {
                    if let wt_store::ParamValue::Bool(b) = value {
                        o.early_abort = *b;
                    }
                }
                "probe_fraction" => {
                    if let Some(x) = value.as_num() {
                        o.probe_fraction = x.clamp(0.01, 0.9);
                    }
                }
                "abort_margin" => {
                    if let Some(x) = value.as_num() {
                        o.abort_margin = x.max(0.0);
                    }
                }
                "replications" => {
                    if let Some(x) = value.as_num() {
                        o.replications = (x as usize).max(1);
                    }
                }
                _ => {} // unknown options are ignored, like SQL hints
            }
        }
        o
    }
}

/// One configuration's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRow {
    /// The configuration.
    pub assignment: Assignment,
    /// Output metrics (empty for pruned rows).
    pub metrics: BTreeMap<String, f64>,
    /// All constraints satisfied.
    pub passes: bool,
    /// Skipped without simulation (dominated by a failed config).
    pub pruned: bool,
    /// Aborted on the probe horizon.
    pub aborted: bool,
}

/// The result of executing a query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// One row per configuration, in plan order.
    pub rows: Vec<RunRow>,
    /// Index of the objective-best passing row, if any.
    pub best: Option<usize>,
    /// Runs fully simulated.
    pub executed: usize,
    /// Runs pruned by dominance.
    pub pruned: usize,
    /// Runs aborted on the probe.
    pub aborted: usize,
    /// Total discrete events simulated (cost proxy).
    pub total_sim_events: u64,
}

impl QueryOutcome {
    /// The best row, if an objective was given and some row passed.
    pub fn best_row(&self) -> Option<&RunRow> {
        self.best.map(|i| &self.rows[i])
    }

    /// Rows that satisfied all constraints.
    pub fn passing(&self) -> Vec<&RunRow> {
        self.rows.iter().filter(|r| r.passes).collect()
    }
}

const AVAIL_METRICS: &[&str] = &[
    "availability",
    "nines",
    "unavailability_events",
    "objects_lost",
    "node_failures",
    "rebuilds_completed",
    "mean_rebuild_wait_s",
    "sim_events",
    // Engine telemetry (wt-obs), queryable like any simulation output.
    "peak_queue_depth",
    "mean_queue_depth",
];

/// Metrics whose value can only grow as the horizon extends; a probe that
/// already violates an upper bound on one of these makes the full run's
/// violation certain — the *sound* early abort.
const MONOTONE_IN_TIME: &[&str] = &["objects_lost", "unavailability_events", "node_failures"];

fn is_perf_metric(name: &str) -> bool {
    name.ends_with("_p50_s")
        || name.ends_with("_p95_s")
        || name.ends_with("_p99_s")
        || name.ends_with("_mean_s")
        || name.ends_with("_throughput")
        || name.ends_with("_failed")
}

fn is_avail_metric(name: &str) -> bool {
    AVAIL_METRICS.contains(&name)
}

fn validate_metrics(query: &Query) -> Result<(), WtqlError> {
    let all: Vec<&str> = query
        .explore
        .iter()
        .map(String::as_str)
        .chain(query.constraints.iter().map(|c| c.metric.as_str()))
        .chain(query.objective.iter().map(|o| o.metric.as_str()))
        .collect();
    for m in all {
        if !(is_avail_metric(m)
            || is_perf_metric(m)
            || m == "tco_usd_per_year"
            || m == "usd_per_usable_gb_year")
        {
            return Err(WtqlError::Semantic(format!("unknown metric '{m}'")));
        }
    }
    Ok(())
}

/// Renders the result-store report behind the `STATS` statement (and the
/// interactive `.stats` command): record count, capacity, evictions,
/// per-experiment counts, and the store's sketch-derived distributions —
/// p50/p95/p99/p999 of every quantile summary in the store's
/// [`MetricsSnapshot`](wt_store::ResultStore::metrics_snapshot) (scalar
/// metrics across runs as `metric_<name>`, plus per-run telemetry
/// sketches merged label-wise) and the HLL distinct-key cardinalities.
/// Runs no simulation, never fails, and is a harmless no-op on an empty
/// store — safe anywhere in a script.
pub fn store_stats(store: &wt_store::SharedStore) -> String {
    store.with(|s| {
        let capacity = s
            .capacity()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "unbounded".into());
        let mut out = format!(
            "store: {} record(s), capacity {capacity}, {} evicted\n",
            s.len(),
            s.evicted()
        );
        let counts = s.experiment_counts();
        if counts.is_empty() {
            out.push_str("  (no experiments recorded)\n");
        } else {
            for (exp, n) in counts {
                out.push_str(&format!("  {exp}: {n} run(s)\n"));
            }
        }
        let snap = s.metrics_snapshot();
        if !snap.quantiles.is_empty() {
            out.push_str("  sketch quantiles (p50 / p95 / p99 / p999):\n");
            for (label, sk) in &snap.quantiles {
                out.push_str(&format!(
                    "    {label}: {} / {} / {} / {} ({} obs)\n",
                    fmt_stat(sk.p50()),
                    fmt_stat(sk.p95()),
                    fmt_stat(sk.p99()),
                    fmt_stat(sk.p999()),
                    sk.count()
                ));
            }
        }
        if !snap.distincts.is_empty() {
            out.push_str("  distinct cardinalities (HLL):\n");
            for (label, h) in &snap.distincts {
                out.push_str(&format!("    {label}: ~{}\n", h.estimate().round() as u64));
            }
        }
        out
    })
}

/// Compact stat formatting for the STATS view: scientific for the very
/// small, six significant digits otherwise.
fn fmt_stat(x: f64) -> String {
    if x != 0.0 && x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{:.6}", (x * 1e6).round() / 1e6)
    }
}

/// Executes a query against a base scenario through a wind tunnel.
///
/// Every fully-simulated run also lands in the tunnel's result store.
pub fn run_query(
    query: &Query,
    base: &Scenario,
    tunnel: &WindTunnel,
    opts: &ExecOptions,
) -> Result<QueryOutcome, WtqlError> {
    validate_metrics(query)?;
    let plan = Plan::build(query)?;
    let n = plan.len();

    let needs_avail = query
        .explore
        .iter()
        .map(String::as_str)
        .chain(query.constraints.iter().map(|c| c.metric.as_str()))
        .chain(query.objective.iter().map(|o| o.metric.as_str()))
        .any(is_avail_metric);
    let needs_perf = query
        .explore
        .iter()
        .map(String::as_str)
        .chain(query.constraints.iter().map(|c| c.metric.as_str()))
        .chain(query.objective.iter().map(|o| o.metric.as_str()))
        .any(is_perf_metric);

    // EXPLORE grids execute through the same declarative sweep engine
    // as the experiment binaries: the planned configuration order
    // becomes an explicit `SweepGrid` (execution order is the
    // optimizer's, not the canonical enumeration), and `SweepRunner`
    // handles dispatch, in-order collection, and sharded recording —
    // each configuration's runs land in a private `StoreShard` that is
    // merged into the tunnel's store in plan order, so record ids are
    // deterministic for any thread count.
    //
    // Pruning is *deterministic*: every configuration gets a verdict
    // (passed / failed / pruned) in a shared table, and a configuration
    // blocks until all dominating configurations *earlier in plan order*
    // have verdicts, then prunes iff one of them failed. Verdicts
    // therefore depend only on the plan order, never on worker count or
    // scheduling. The wait cannot deadlock: dependencies have strictly
    // smaller plan indices, and the farm claims index ranges as an
    // ascending prefix and walks each range in ascending order, so the
    // minimal undecided index is always being executed and its
    // dependencies are all decided. A pruned configuration deliberately
    // gets a non-failed verdict: whatever failure dominated it also
    // dominates (by transitivity) everything it dominates.
    let verdicts: Mutex<Vec<Option<Verdict>>> = Mutex::new(vec![None; n]);
    let decided = Condvar::new();
    let grid = SweepGrid::explicit("wtql-explore", base.seed, plan.configs.clone());
    debug_assert_eq!(grid.len(), n);
    let runner = SweepRunner::new(Farm::new(opts.threads));
    let rows: Vec<RunRow> = runner.run_points(&grid, tunnel.store(), |point, _ctx, sink| {
        let assignment = &point.assignment;

        // Dominance check against every earlier-planned configuration.
        if opts.prune {
            let deps: Vec<usize> = (0..point.index)
                .filter(|&j| plan.dominated_by_failure(assignment, &plan.configs[j]))
                .collect();
            let mut table = verdicts.lock();
            let dominated = loop {
                if deps.iter().any(|&j| table[j] == Some(Verdict::Failed)) {
                    break true;
                }
                if deps.iter().all(|&j| table[j].is_some()) {
                    break false;
                }
                decided.wait(&mut table);
            };
            if dominated {
                table[point.index] = Some(Verdict::Pruned);
                decided.notify_all();
                drop(table);
                return RunRow {
                    assignment: assignment.clone(),
                    metrics: BTreeMap::new(),
                    passes: false,
                    pruned: true,
                    aborted: false,
                };
            }
        }

        let row = evaluate(
            query,
            base,
            tunnel,
            assignment,
            needs_avail,
            needs_perf,
            opts,
            sink,
        );
        let row = match row {
            Ok(r) => r,
            Err(_) => RunRow {
                assignment: assignment.clone(),
                metrics: BTreeMap::new(),
                passes: false,
                pruned: false,
                aborted: false,
            },
        };
        if opts.prune {
            let verdict = if !row.passes && !query.constraints.is_empty() {
                Verdict::Failed
            } else {
                Verdict::Passed
            };
            let mut table = verdicts.lock();
            table[point.index] = Some(verdict);
            decided.notify_all();
        }
        row
    });
    let executed = rows.iter().filter(|r| !r.pruned && !r.aborted).count();
    let pruned = rows.iter().filter(|r| r.pruned).count();
    let aborted = rows.iter().filter(|r| r.aborted).count();
    let total_sim_events = rows
        .iter()
        .filter_map(|r| r.metrics.get("sim_events"))
        .sum::<f64>() as u64;

    let best = query.objective.as_ref().and_then(|obj| {
        rows.iter()
            .enumerate()
            .filter(|(_, r)| r.passes && r.metrics.contains_key(&obj.metric))
            .min_by(|(_, a), (_, b)| {
                let (x, y) = (a.metrics[&obj.metric], b.metrics[&obj.metric]);
                let ord = x.partial_cmp(&y).expect("finite metrics");
                if obj.minimize {
                    ord
                } else {
                    ord.reverse()
                }
            })
            .map(|(i, _)| i)
    });

    Ok(QueryOutcome {
        rows,
        best,
        executed,
        pruned,
        aborted,
        total_sim_events,
    })
}

/// A configuration's pruning verdict. `Passed` covers any fully-evaluated
/// run that doesn't fail its constraints (including constraint-free
/// queries); only `Failed` triggers downstream pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Passed,
    Failed,
    Pruned,
}

/// Simulates one configuration and evaluates the constraints. Every
/// fully-simulated run records into `sink` — the caller's per-config
/// shard during parallel execution.
#[allow(clippy::too_many_arguments)]
fn evaluate(
    query: &Query,
    base: &Scenario,
    tunnel: &WindTunnel,
    assignment: &Assignment,
    needs_avail: bool,
    needs_perf: bool,
    opts: &ExecOptions,
    sink: &dyn RecordSink,
) -> Result<RunRow, WtqlError> {
    let mut scenario = base.clone();
    for (axis, value) in assignment {
        // Chaos-only axes (swept but referenced solely from INJECT
        // arguments) are not scenario knobs; they reach the run below,
        // through the resolved fault schedule.
        if is_known_axis(axis) {
            apply_assignment(&mut scenario, axis, value)?;
        }
    }
    if !query.injects.is_empty() {
        let mut schedule = scenario.faults.clone().unwrap_or_default();
        for inj in &query.injects {
            schedule.rules.push(resolve_injection(inj, assignment)?);
        }
        scenario.faults = Some(schedule);
    }
    scenario.name = assignment
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",");

    let mut metrics: BTreeMap<String, f64> = BTreeMap::new();
    let breakdown = tunnel.cost_model().cost(&scenario.topology);
    metrics.insert("tco_usd_per_year".into(), breakdown.tco_usd_per_year);
    // Cost per GB a customer can actually store: redundancy overhead eats
    // raw capacity, so rep5 *is* dearer than rep3 on identical hardware.
    let usable_gb = breakdown.raw_storage_gb / scenario.redundancy.overhead();
    metrics.insert(
        "usd_per_usable_gb_year".into(),
        breakdown.tco_usd_per_year / usable_gb,
    );

    let mut aborted = false;
    // Probe phase (first replication only): abort hopeless runs early.
    if needs_avail && opts.early_abort {
        let model = WindTunnel::availability_model(&scenario);
        let probe_horizon = SimDuration::from_years(scenario.horizon_years * opts.probe_fraction);
        let probe = model.run(scenario.seed, probe_horizon);
        let hopeless = query.constraints.iter().any(|c| {
            probe_violates_surely(c, &probe) || probe_violates_heuristically(c, &probe, opts)
        });
        if hopeless {
            record_avail_metrics(&mut metrics, &probe);
            aborted = true;
        }
    }
    if !aborted {
        // Accumulate metric sums over replications, then average.
        let reps = opts.replications.max(1);
        let mut sums: BTreeMap<String, f64> = BTreeMap::new();
        let base_seed = scenario.seed;
        for rep in 0..reps {
            let mut rep_scenario = scenario.clone();
            rep_scenario.seed = base_seed.wrapping_add(rep as u64 * 7919);
            let mut rep_metrics: BTreeMap<String, f64> = BTreeMap::new();
            if needs_avail {
                let (result, telemetry) =
                    tunnel.run_availability_observed_into(&rep_scenario, sink, None);
                record_avail_metrics(&mut rep_metrics, &result);
                rep_metrics.insert("peak_queue_depth".into(), telemetry.peak_queue_depth as f64);
                rep_metrics.insert("mean_queue_depth".into(), telemetry.mean_queue_depth);
            }
            if needs_perf && !rep_scenario.tenants.is_empty() {
                let result = tunnel.run_perf_into(&rep_scenario, false, sink);
                for t in &result.tenants {
                    rep_metrics.insert(format!("{}_p50_s", t.name), t.p50_s);
                    rep_metrics.insert(format!("{}_p95_s", t.name), t.p95_s);
                    rep_metrics.insert(format!("{}_p99_s", t.name), t.p99_s);
                    rep_metrics.insert(format!("{}_mean_s", t.name), t.mean_s);
                    rep_metrics.insert(format!("{}_throughput", t.name), t.throughput);
                    rep_metrics.insert(format!("{}_failed", t.name), t.failed as f64);
                }
            }
            for (k, v) in rep_metrics {
                *sums.entry(k).or_insert(0.0) += v;
            }
        }
        for (k, v) in sums {
            metrics.insert(k, v / reps as f64);
        }
    }

    let passes = !aborted
        && query
            .constraints
            .iter()
            .all(|c| metrics.get(&c.metric).is_some_and(|&v| c.satisfied(v)));

    Ok(RunRow {
        assignment: assignment.clone(),
        metrics,
        passes,
        pruned: false,
        aborted,
    })
}

fn record_avail_metrics(
    metrics: &mut BTreeMap<String, f64>,
    r: &windtunnel::cluster::AvailabilityResult,
) {
    metrics.insert("availability".into(), r.availability);
    metrics.insert("nines".into(), r.nines);
    metrics.insert(
        "unavailability_events".into(),
        r.unavailability_events as f64,
    );
    metrics.insert("objects_lost".into(), r.objects_lost as f64);
    metrics.insert("node_failures".into(), r.node_failures as f64);
    metrics.insert("rebuilds_completed".into(), r.rebuilds_completed as f64);
    metrics.insert("mean_rebuild_wait_s".into(), r.mean_rebuild_wait_s);
    metrics.insert("sim_events".into(), r.sim_events as f64);
}

/// Sound abort: the probe already violates an upper bound on a metric
/// that can only grow with the horizon.
fn probe_violates_surely(c: &Constraint, probe: &windtunnel::cluster::AvailabilityResult) -> bool {
    if !MONOTONE_IN_TIME.contains(&c.metric.as_str()) {
        return false;
    }
    let value = match c.metric.as_str() {
        "objects_lost" => probe.objects_lost as f64,
        "unavailability_events" => probe.unavailability_events as f64,
        "node_failures" => probe.node_failures as f64,
        _ => return false,
    };
    matches!(
        c.cmp,
        crate::ast::Comparison::Le | crate::ast::Comparison::Lt
    ) && !c.satisfied(value)
}

/// Heuristic abort: the probe's availability sits more than the margin
/// below an availability floor.
fn probe_violates_heuristically(
    c: &Constraint,
    probe: &windtunnel::cluster::AvailabilityResult,
    opts: &ExecOptions,
) -> bool {
    if c.metric != "availability" {
        return false;
    }
    matches!(
        c.cmp,
        crate::ast::Comparison::Ge | crate::ast::Comparison::Gt
    ) && probe.availability < c.bound - opts.abort_margin
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use windtunnel::ScenarioBuilder;

    fn base() -> Scenario {
        ScenarioBuilder::new("base")
            .racks(1)
            .nodes_per_rack(10)
            .objects(200)
            .horizon_years(0.3)
            .seed(5)
            .build()
    }

    #[test]
    fn explore_runs_whole_grid() {
        let q =
            parse(r#"EXPLORE availability SWEEP replication IN [1, 3], placement IN ["R", "RR"]"#)
                .unwrap();
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &base(), &tunnel, &ExecOptions::default()).unwrap();
        assert_eq!(out.rows.len(), 4);
        assert_eq!(out.executed, 4);
        assert_eq!(out.pruned, 0);
        assert!(out
            .rows
            .iter()
            .all(|r| r.metrics.contains_key("availability")));
        // Store captured every run.
        assert_eq!(tunnel.store().len(), 4);
    }

    #[test]
    fn replication_improves_availability_in_results() {
        let q = parse("EXPLORE availability SWEEP replication IN [1, 3]").unwrap();
        let tunnel = WindTunnel::new();
        let mut sc = base();
        // Force enough failures to matter.
        sc.topology.node.ttf = windtunnel::dist::Dist::exponential_mean(30.0 * 86_400.0);
        let out = run_query(&q, &sc, &tunnel, &ExecOptions::default()).unwrap();
        // Plan order: replication 3 first (monotone descending).
        let a3 = out.rows[0].metrics["availability"];
        let a1 = out.rows[1].metrics["availability"];
        assert!(a3 > a1, "rep3 {a3} should beat rep1 {a1}");
    }

    #[test]
    fn pruning_skips_dominated_configs() {
        // An unsatisfiable availability floor: the best config fails, so
        // everything dominated by it is pruned without simulation.
        let q = parse(
            "EXPLORE availability \
             SWEEP replication IN [1, 2, 3] \
             SUBJECT TO availability >= 1.0 AND unavailability_events <= 0",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let mut sc = base();
        sc.topology.node.ttf = windtunnel::dist::Dist::exponential_mean(10.0 * 86_400.0);
        sc.repair.detection_delay_s = 24.0 * 3600.0; // repairs too slow
        let out = run_query(&q, &sc, &tunnel, &ExecOptions::default()).unwrap();
        assert_eq!(out.rows.len(), 3);
        assert!(out.passing().is_empty());
        assert!(
            out.pruned >= 1,
            "dominated configs should be pruned: {out:?}"
        );
        assert!(out.executed < 3);
    }

    #[test]
    fn prune_disabled_runs_everything() {
        let q = parse(
            "EXPLORE availability \
             SWEEP replication IN [1, 2, 3] \
             SUBJECT TO availability >= 1.0 AND unavailability_events <= 0 \
             OPTIONS prune = FALSE",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let mut sc = base();
        sc.topology.node.ttf = windtunnel::dist::Dist::exponential_mean(10.0 * 86_400.0);
        sc.repair.detection_delay_s = 24.0 * 3600.0;
        let opts = ExecOptions::from_query(&q);
        assert!(!opts.prune);
        let out = run_query(&q, &sc, &tunnel, &opts).unwrap();
        assert_eq!(out.executed, 3);
        assert_eq!(out.pruned, 0);
    }

    #[test]
    fn usable_gb_cost_separates_replication_factors() {
        let q = parse(
            "EXPLORE usd_per_usable_gb_year \
             SWEEP replication IN [2, 3] \
             MINIMIZE usd_per_usable_gb_year",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &base(), &tunnel, &ExecOptions::default()).unwrap();
        // Same hardware, but rep3 stores 2/3 of what rep2 can.
        let cost = |n: f64| {
            out.rows
                .iter()
                .find(|r| r.assignment[0].1.as_num() == Some(n))
                .unwrap()
                .metrics["usd_per_usable_gb_year"]
        };
        assert!((cost(3.0) / cost(2.0) - 1.5).abs() < 1e-9);
        let best = out.best_row().unwrap();
        assert_eq!(best.assignment[0].1.as_num(), Some(2.0));
    }

    #[test]
    fn objective_selects_cheapest_passing() {
        let q = parse(
            "EXPLORE availability, tco_usd_per_year \
             SWEEP replication IN [1, 3], nodes_per_rack IN [10, 20] \
             SUBJECT TO availability >= 0.5 \
             MINIMIZE tco_usd_per_year",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &base(), &tunnel, &ExecOptions::default()).unwrap();
        let best = out.best_row().expect("some config passes");
        // Cheapest = fewest nodes.
        let nodes = best
            .assignment
            .iter()
            .find(|(k, _)| k == "nodes_per_rack")
            .unwrap()
            .1
            .as_num()
            .unwrap();
        assert_eq!(nodes, 10.0);
        for r in out.passing() {
            assert!(r.metrics["tco_usd_per_year"] >= best.metrics["tco_usd_per_year"]);
        }
    }

    #[test]
    fn parallel_execution_matches_serial_passing_set() {
        let q = parse(
            r#"EXPLORE availability SWEEP replication IN [1, 3], placement IN ["R", "RR"] SUBJECT TO availability >= 0.0"#,
        )
        .unwrap();
        let tunnel_a = WindTunnel::new();
        let serial = run_query(&q, &base(), &tunnel_a, &ExecOptions::default()).unwrap();
        let tunnel_b = WindTunnel::new();
        let par = run_query(
            &q,
            &base(),
            &tunnel_b,
            &ExecOptions {
                threads: 4,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        // Same rows in the same plan order with identical metrics
        // (determinism is per-config, so thread interleaving is invisible).
        let key = |rows: &[RunRow]| {
            rows.iter()
                .filter(|r| !r.pruned)
                .map(|r| (r.assignment.clone(), r.metrics.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&serial.rows), key(&par.rows));
    }

    #[test]
    fn pruning_verdicts_are_worker_count_invariant() {
        // The old failed-set pruning skipped a config only when a
        // dominating failure happened to finish first — a race on worker
        // count. The verdict table keys decisions on plan order alone, so
        // every thread count must produce the identical pruned set.
        let q = parse(
            "EXPLORE availability \
             SWEEP replication IN [1, 2, 3], repair_parallel IN [1, 2] \
             SUBJECT TO availability >= 1.0 AND unavailability_events <= 0",
        )
        .unwrap();
        let mut sc = base();
        sc.topology.node.ttf = windtunnel::dist::Dist::exponential_mean(10.0 * 86_400.0);
        sc.repair.detection_delay_s = 24.0 * 3600.0;
        let run = |threads: usize| {
            let tunnel = WindTunnel::new();
            run_query(
                &q,
                &sc,
                &tunnel,
                &ExecOptions {
                    threads,
                    ..ExecOptions::default()
                },
            )
            .unwrap()
        };
        let serial = run(1);
        assert!(serial.pruned >= 1, "{serial:?}");
        for threads in [2, 4, 8] {
            let par = run(threads);
            let flags = |out: &QueryOutcome| {
                out.rows
                    .iter()
                    .map(|r| (r.assignment.clone(), r.pruned, r.passes))
                    .collect::<Vec<_>>()
            };
            assert_eq!(flags(&serial), flags(&par), "threads = {threads}");
            assert_eq!(serial.pruned, par.pruned);
            assert_eq!(serial.executed, par.executed);
        }
    }

    #[test]
    fn inject_sweeps_chaos_parameters() {
        // Sweep the blast radius of a power-domain loss: the chaos-only
        // axis `blast` reaches the run through the INJECT clause. Zero
        // racks lost = no injection effect; the whole cluster dark for
        // ~42% of the horizon caps availability accordingly.
        let q = parse(
            "EXPLORE availability \
             SWEEP blast IN [0, 2] \
             INJECT power_loss(at = 1000000, first_rack = 0, racks = blast, restore = 4000000)",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &base(), &tunnel, &ExecOptions::default()).unwrap();
        assert_eq!(out.rows.len(), 2);
        let avail = |blast: f64| {
            out.rows
                .iter()
                .find(|r| r.assignment[0].1.as_num() == Some(blast))
                .unwrap()
                .metrics["availability"]
        };
        assert!(
            avail(0.0) > avail(2.0) + 0.3,
            "blast=0 {} vs blast=2 {}",
            avail(0.0),
            avail(2.0)
        );
        // The injection fired and was recorded in run telemetry.
        tunnel.store().with(|s| {
            let fired: u64 = s
                .records()
                .filter_map(|r| r.telemetry.as_ref())
                .filter_map(|t| t.marks.get("inject_power_loss"))
                .sum();
            assert_eq!(fired, 2, "one injection per run, even at blast=0");
        });
    }

    #[test]
    fn inject_is_deterministic_across_threads() {
        let q = parse(
            "EXPLORE availability, unavailability_events \
             SWEEP blast IN [1, 2], replication IN [1, 3] \
             INJECT maintenance(at = 500000, first_node = 0, nodes = blast, duration = 250000)",
        )
        .unwrap();
        let run = |threads: usize| {
            let tunnel = WindTunnel::new();
            run_query(
                &q,
                &base(),
                &tunnel,
                &ExecOptions {
                    threads,
                    ..ExecOptions::default()
                },
            )
            .unwrap()
        };
        let a = run(1);
        let b = run(4);
        let key = |out: &QueryOutcome| {
            out.rows
                .iter()
                .map(|r| (r.assignment.clone(), r.metrics.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn inject_composes_with_base_scenario_faults() {
        // A base scenario that already schedules chaos keeps it; the
        // query's injections are appended, not substituted.
        let q = parse(
            "EXPLORE availability SWEEP replication IN [3] \
             INJECT maintenance(at = 2000000, first_node = 0, nodes = 10, duration = 1000000)",
        )
        .unwrap();
        let mut sc = base();
        sc.faults = Some(windtunnel::cluster::FaultSchedule::new().rule(
            "planned",
            100_000.0,
            windtunnel::cluster::FaultKind::MaintenanceWindow {
                first_node: 0,
                nodes: 10,
                duration_s: 1_000_000.0,
            },
        ));
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &sc, &tunnel, &ExecOptions::default()).unwrap();
        // Two full-cluster windows of 1e6 s out of a ~9.47e6 s horizon.
        let a = out.rows[0].metrics["availability"];
        assert!(a < 0.85, "both windows applied: {a}");
        tunnel.store().with(|s| {
            let fired: u64 = s
                .records()
                .filter_map(|r| r.telemetry.as_ref())
                .filter_map(|t| t.marks.get("inject_maintenance"))
                .sum();
            assert_eq!(fired, 2, "base rule + injected rule both fired");
        });
    }

    #[test]
    fn early_abort_saves_events() {
        // objects_lost is monotone in time: a dying cluster's probe already
        // violates the durability constraint, so the full run is skipped.
        let q = parse(
            "EXPLORE availability \
             SWEEP replication IN [1] \
             SUBJECT TO objects_lost <= 0 \
             OPTIONS early_abort = TRUE, probe_fraction = 0.05",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let mut sc = base();
        // A cluster that loses data almost immediately.
        sc.topology.node.ttf = windtunnel::dist::Dist::exponential_mean(86_400.0);
        sc.topology.node.repair = windtunnel::dist::Dist::deterministic(30.0 * 86_400.0);
        sc.repair.detection_delay_s = 10.0 * 86_400.0;
        let opts = ExecOptions::from_query(&q);
        assert!(opts.early_abort);
        let out = run_query(&q, &sc, &tunnel, &opts).unwrap();
        assert_eq!(out.aborted, 1, "{out:?}");
        assert!(!out.rows[0].passes);
        // The aborted row still carries probe metrics.
        assert!(out.rows[0].metrics["objects_lost"] > 0.0);
    }

    #[test]
    fn replications_average_and_record_every_run() {
        let q = parse("EXPLORE availability SWEEP replication IN [3] OPTIONS replications = 3")
            .unwrap();
        let opts = ExecOptions::from_query(&q);
        assert_eq!(opts.replications, 3);
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &base(), &tunnel, &opts).unwrap();
        assert_eq!(out.rows.len(), 1);
        // Three availability runs landed in the store.
        assert_eq!(tunnel.store().len(), 3);
        // The averaged metric equals the mean of the recorded runs.
        let mean_recorded = tunnel.store().with(|s| {
            s.records()
                .map(|r| r.get_metric("availability").unwrap())
                .sum::<f64>()
                / 3.0
        });
        assert!((out.rows[0].metrics["availability"] - mean_recorded).abs() < 1e-12);
    }

    #[test]
    fn store_stats_reports_counts_and_is_safe_when_empty() {
        let tunnel = WindTunnel::new();
        let empty = store_stats(tunnel.store());
        assert!(empty.contains("0 record(s)"), "{empty}");
        assert!(empty.contains("no experiments"), "{empty}");
        let q = parse("EXPLORE availability SWEEP replication IN [1, 3]").unwrap();
        run_query(&q, &base(), &tunnel, &ExecOptions::default()).unwrap();
        let report = store_stats(tunnel.store());
        assert!(report.contains("2 record(s)"), "{report}");
        assert!(report.contains("availability: 2 run(s)"), "{report}");
        assert!(report.contains("unbounded"), "{report}");
        // The sketch view: recorded metrics summarize as quantiles.
        assert!(
            report.contains("sketch quantiles (p50 / p95 / p99 / p999)"),
            "{report}"
        );
        assert!(report.contains("metric_availability:"), "{report}");
        assert!(report.contains("(2 obs)"), "{report}");
    }

    #[test]
    fn telemetry_metrics_are_queryable() {
        let q = parse(
            "EXPLORE peak_queue_depth, mean_queue_depth, availability \
             SWEEP replication IN [1, 3]",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let mut sc = base();
        sc.topology.node.ttf = windtunnel::dist::Dist::exponential_mean(30.0 * 86_400.0);
        let out = run_query(&q, &sc, &tunnel, &ExecOptions::default()).unwrap();
        for r in &out.rows {
            assert!(r.metrics["peak_queue_depth"] > 0.0, "{r:?}");
            assert!(r.metrics["mean_queue_depth"] > 0.0, "{r:?}");
        }
        // Every stored record carries the telemetry it was derived from.
        tunnel.store().with(|s| {
            for rec in s.records() {
                let t = rec.telemetry.as_ref().expect("telemetry attached");
                assert!(t.events > 0);
            }
        });
    }

    #[test]
    fn unknown_metric_rejected() {
        let q = parse("EXPLORE qubits SWEEP replication IN [3]").unwrap();
        let tunnel = WindTunnel::new();
        let e = run_query(&q, &base(), &tunnel, &ExecOptions::default()).unwrap_err();
        assert!(e.to_string().contains("unknown metric"));
    }

    #[test]
    fn perf_metrics_runs_perf_engine() {
        let q = parse("EXPLORE shop_p95_s SWEEP disk IN [\"ssd\", \"hdd\"]").unwrap();
        let tunnel = WindTunnel::new();
        let mut sc = ScenarioBuilder::new("perf-base")
            .racks(1)
            .nodes_per_rack(10)
            .disks_per_node(4)
            .tenant(windtunnel::workload::TenantWorkload::oltp(
                "shop", 100.0, 1_000,
            ))
            .horizon_years(0.00001)
            .build();
        sc.horizon_years = 0.00001; // ~5 simulated minutes
        let out = run_query(&q, &sc, &tunnel, &ExecOptions::default()).unwrap();
        assert_eq!(out.rows.len(), 2);
        for r in &out.rows {
            assert!(r.metrics.contains_key("shop_p95_s"), "{r:?}");
        }
        // SSD beats HDD on p95 (plan puts them in deterministic order:
        // categorical tie-break is lexicographic on the debug string).
        let p95_of = |needle: &str| {
            out.rows
                .iter()
                .find(|r| r.assignment[0].1.to_string() == needle)
                .unwrap()
                .metrics["shop_p95_s"]
        };
        assert!(p95_of("ssd") < p95_of("hdd"));
    }
}
