//! The query executor: parallel run dispatch, dominance pruning, early
//! abort (§4.2), and the guided execution mode (DESIGN.md §12).
//!
//! Since the declarative-sweep refactor, dispatch is not bespoke: the
//! planned configuration order becomes an explicit
//! [`windtunnel::sweep::SweepGrid`] and runs through
//! [`windtunnel::sweep::SweepRunner`] — the same engine the experiment
//! binaries use. This module adds only what queries need on top:
//! dominance pruning, probe-and-abort, replication averaging, and the
//! constraint/objective verdicts.
//!
//! The `GUIDED` clause (or `OPTIONS guided = TRUE`) switches dispatch to
//! [`windtunnel::sweep::SweepRunner::run_points_guided`] and arms three
//! cooperating stages, each individually toggleable and each off by
//! default:
//!
//! 1. **Analytic screening** — conservative closed-form bounds
//!    (`wt-analytic` via `wt-cluster`'s extraction) resolve a point's
//!    verdict without simulating it; such rows are marked `screened` and
//!    record a synthetic `verdict_source = "screened"` provenance record.
//! 2. **Surrogate ranking** — a ridge-regression surrogate over the
//!    numeric axes re-ranks the unexecuted frontier toward
//!    likely-infeasible points so dominance pruning fires sooner.
//!    Ranking only reorders work; it never touches a verdict.
//! 3. **Early stopping** — a short sketch probe aborts hopeless perf
//!    runs at the probe horizon, and per-constraint confidence intervals
//!    stop replication loops once the verdict is already confident
//!    (never below two recorded replications).

use crate::ast::{Comparison, Constraint, Query};
use crate::bind::{apply_assignment, is_known_axis, resolve_injection};
use crate::error::WtqlError;
use crate::plan::{Assignment, Plan};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use windtunnel::analytic::screen::{Rel, ScreenVerdict};
use windtunnel::cluster::screen::{availability_screen, perf_screen};
use windtunnel::cluster::Scenario;
use windtunnel::des::time::SimDuration;
use windtunnel::des::Tally;
use windtunnel::farm::Farm;
use windtunnel::sweep::{GuidedCounters, SweepGrid, SweepRunner};
use windtunnel::{MeanInterval, Surrogate, WindTunnel};
use wt_store::{ParamValue, RecordSink};

/// Execution knobs (overridable from the query's OPTIONS clause).
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads.
    pub threads: usize,
    /// Monotone dominance pruning on/off.
    pub prune: bool,
    /// Probe-and-abort hopeless runs.
    pub early_abort: bool,
    /// Fraction of the horizon the probe simulates.
    pub probe_fraction: f64,
    /// Availability slack below the bound before the heuristic abort
    /// fires (sound aborts on monotone metrics ignore this).
    pub abort_margin: f64,
    /// Independent replications per configuration; numeric metrics are
    /// averaged over seeds (variance reduction for the bursty availability
    /// metrics). 1 = single run.
    pub replications: usize,
    /// Guided execution: dispatch through the guided sweep runner. Set
    /// by the `GUIDED` clause, which also arms the four stage toggles
    /// below; each can then be disabled individually via OPTIONS.
    pub guided: bool,
    /// Analytic screening (guided stage 1): resolve points whose verdict
    /// a conservative closed-form bound already decides, without DES.
    pub screen: bool,
    /// Surrogate ranking (guided stage 2): visit likely-infeasible
    /// points first so dominance pruning fires sooner. Reorders only.
    pub rank: bool,
    /// Replication early-stop (guided stage 3): stop a replication loop
    /// once every constraint is confidently resolved (≥ 2 reps always).
    pub early_stop: bool,
    /// Sketch-driven probe abort (guided stage 3): abort a perf run
    /// whose probe-horizon sketch quantile already violates a latency
    /// ceiling by more than `abort_margin`.
    pub sketch_abort: bool,
    /// Extra margin an analytic bound must clear beyond the constraint
    /// threshold before a screen may decide (widens the Unknown band).
    pub screen_guard: f64,
    /// Minimum expected node failures over the horizon before
    /// availability screens arm (below it the DES may measure exactly
    /// 1.0 and an analytic Fail would be unsound).
    pub screen_min_failures: f64,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: 1,
            prune: true,
            early_abort: false,
            probe_fraction: 0.1,
            abort_margin: 0.01,
            replications: 1,
            guided: false,
            screen: false,
            rank: false,
            early_stop: false,
            sketch_abort: false,
            screen_guard: 0.0,
            screen_min_failures: 10.0,
        }
    }
}

impl ExecOptions {
    /// Reads overrides from the query's OPTIONS clause
    /// (`OPTIONS threads = 4, prune = FALSE, early_abort = TRUE`).
    pub fn from_query(query: &Query) -> Self {
        let mut o = ExecOptions::default();
        if query.guided {
            o.guided = true;
            o.screen = true;
            o.rank = true;
            o.early_stop = true;
            o.sketch_abort = true;
        }
        for (key, value) in &query.options {
            match key.as_str() {
                "threads" => {
                    if let Some(x) = value.as_num() {
                        o.threads = (x as usize).max(1);
                    }
                }
                "prune" => {
                    if let wt_store::ParamValue::Bool(b) = value {
                        o.prune = *b;
                    }
                }
                "early_abort" => {
                    if let wt_store::ParamValue::Bool(b) = value {
                        o.early_abort = *b;
                    }
                }
                "probe_fraction" => {
                    if let Some(x) = value.as_num() {
                        o.probe_fraction = x.clamp(0.01, 0.9);
                    }
                }
                "abort_margin" => {
                    if let Some(x) = value.as_num() {
                        o.abort_margin = x.max(0.0);
                    }
                }
                "replications" => {
                    if let Some(x) = value.as_num() {
                        o.replications = (x as usize).max(1);
                    }
                }
                // The master switch mirrors the GUIDED clause: it arms
                // every stage. Options apply in source order, so a later
                // `screen = FALSE` can still disable one stage.
                "guided" => {
                    if let wt_store::ParamValue::Bool(b) = value {
                        o.guided = *b;
                        o.screen = *b;
                        o.rank = *b;
                        o.early_stop = *b;
                        o.sketch_abort = *b;
                    }
                }
                "screen" => {
                    if let wt_store::ParamValue::Bool(b) = value {
                        o.screen = *b;
                    }
                }
                "rank" => {
                    if let wt_store::ParamValue::Bool(b) = value {
                        o.rank = *b;
                    }
                }
                "early_stop" => {
                    if let wt_store::ParamValue::Bool(b) = value {
                        o.early_stop = *b;
                    }
                }
                "sketch_abort" => {
                    if let wt_store::ParamValue::Bool(b) = value {
                        o.sketch_abort = *b;
                    }
                }
                "screen_guard" => {
                    if let Some(x) = value.as_num() {
                        o.screen_guard = x.max(0.0);
                    }
                }
                "screen_min_failures" => {
                    if let Some(x) = value.as_num() {
                        o.screen_min_failures = x.max(0.0);
                    }
                }
                _ => {} // unknown options are ignored, like SQL hints
            }
        }
        o
    }
}

/// One configuration's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRow {
    /// The configuration.
    pub assignment: Assignment,
    /// Output metrics (empty for pruned rows).
    pub metrics: BTreeMap<String, f64>,
    /// All constraints satisfied.
    pub passes: bool,
    /// Skipped without simulation (dominated by a failed config).
    pub pruned: bool,
    /// Aborted on the probe horizon.
    pub aborted: bool,
    /// Resolved analytically without simulation (guided screening).
    /// Screened rows carry only the exact cost metrics.
    pub screened: bool,
    /// The replication loop stopped early once every constraint was
    /// confidently resolved (guided early-stop; ≥ 2 reps always ran).
    pub early_stopped: bool,
    /// Discrete events this row actually executed, summed across every
    /// replication and probe. Unlike the averaged `sim_events` metric,
    /// this is the row's true simulation cost — zero for pruned and
    /// screened rows.
    pub sim_events_executed: u64,
}

/// The result of executing a query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// One row per configuration, in plan order.
    pub rows: Vec<RunRow>,
    /// Index of the objective-best passing row, if any.
    pub best: Option<usize>,
    /// Runs fully simulated.
    pub executed: usize,
    /// Runs pruned by dominance.
    pub pruned: usize,
    /// Runs aborted on the probe.
    pub aborted: usize,
    /// Points resolved by analytic screening, without simulation.
    pub screened: usize,
    /// Points whose replication loop early-stopped.
    pub early_stopped: usize,
    /// Total discrete events actually simulated, summed across every
    /// row's replications and probes (cost proxy — what guided execution
    /// tries to shrink).
    pub total_sim_events: u64,
}

impl QueryOutcome {
    /// The best row, if an objective was given and some row passed.
    pub fn best_row(&self) -> Option<&RunRow> {
        self.best.map(|i| &self.rows[i])
    }

    /// Rows that satisfied all constraints.
    pub fn passing(&self) -> Vec<&RunRow> {
        self.rows.iter().filter(|r| r.passes).collect()
    }
}

const AVAIL_METRICS: &[&str] = &[
    "availability",
    "nines",
    "unavailability_events",
    "objects_lost",
    "node_failures",
    "rebuilds_completed",
    "mean_rebuild_wait_s",
    "sim_events",
    // Engine telemetry (wt-obs), queryable like any simulation output.
    "peak_queue_depth",
    "mean_queue_depth",
];

/// Metrics whose value can only grow as the horizon extends; a probe that
/// already violates an upper bound on one of these makes the full run's
/// violation certain — the *sound* early abort.
const MONOTONE_IN_TIME: &[&str] = &["objects_lost", "unavailability_events", "node_failures"];

fn is_perf_metric(name: &str) -> bool {
    name.ends_with("_p50_s")
        || name.ends_with("_p95_s")
        || name.ends_with("_p99_s")
        || name.ends_with("_mean_s")
        || name.ends_with("_throughput")
        || name.ends_with("_failed")
}

fn is_avail_metric(name: &str) -> bool {
    AVAIL_METRICS.contains(&name)
}

fn validate_metrics(query: &Query) -> Result<(), WtqlError> {
    let all: Vec<&str> = query
        .explore
        .iter()
        .map(String::as_str)
        .chain(query.constraints.iter().map(|c| c.metric.as_str()))
        .chain(query.objective.iter().map(|o| o.metric.as_str()))
        .collect();
    for m in all {
        if !(is_avail_metric(m)
            || is_perf_metric(m)
            || m == "tco_usd_per_year"
            || m == "usd_per_usable_gb_year")
        {
            return Err(WtqlError::Semantic(format!("unknown metric '{m}'")));
        }
    }
    Ok(())
}

/// Renders the result-store report behind the `STATS` statement (and the
/// interactive `.stats` command): record count, capacity, evictions,
/// per-experiment counts, and the store's sketch-derived distributions —
/// p50/p95/p99/p999 of every quantile summary in the store's
/// [`MetricsSnapshot`](wt_store::ResultStore::metrics_snapshot) (scalar
/// metrics across runs as `metric_<name>`, plus per-run telemetry
/// sketches merged label-wise) and the HLL distinct-key cardinalities.
/// Runs no simulation, never fails, and is a harmless no-op on an empty
/// store — safe anywhere in a script.
pub fn store_stats(store: &wt_store::SharedStore) -> String {
    store.with(|s| {
        let capacity = s
            .capacity()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "unbounded".into());
        let mut out = format!(
            "store: {} record(s), capacity {capacity}, {} evicted\n",
            s.len(),
            s.evicted()
        );
        let counts = s.experiment_counts();
        if counts.is_empty() {
            out.push_str("  (no experiments recorded)\n");
        } else {
            for (exp, n) in counts {
                out.push_str(&format!("  {exp}: {n} run(s)\n"));
            }
        }
        let snap = s.metrics_snapshot();
        if !snap.quantiles.is_empty() {
            out.push_str("  sketch quantiles (p50 / p95 / p99 / p999):\n");
            for (label, sk) in &snap.quantiles {
                out.push_str(&format!(
                    "    {label}: {} / {} / {} / {} ({} obs)\n",
                    fmt_stat(sk.p50()),
                    fmt_stat(sk.p95()),
                    fmt_stat(sk.p99()),
                    fmt_stat(sk.p999()),
                    sk.count()
                ));
            }
        }
        if !snap.distincts.is_empty() {
            out.push_str("  distinct cardinalities (HLL):\n");
            for (label, h) in &snap.distincts {
                out.push_str(&format!("    {label}: ~{}\n", h.estimate().round() as u64));
            }
        }
        // Verdict provenance: guided execution writes records whose
        // `verdict_source` param says how the verdict was reached
        // ("screened", "aborted"); everything else was fully simulated.
        // Shown only when a guided run has actually contributed.
        let mut provenance: BTreeMap<String, usize> = BTreeMap::new();
        for rec in s.records() {
            let source = rec
                .params
                .get("verdict_source")
                .map(|v| v.to_string())
                .unwrap_or_else(|| "simulated".into());
            *provenance.entry(source).or_insert(0) += 1;
        }
        if provenance.keys().any(|k| k != "simulated") {
            out.push_str("  verdict sources:\n");
            for (source, count) in &provenance {
                out.push_str(&format!("    {source}: {count} record(s)\n"));
            }
        }
        out
    })
}

/// Compact stat formatting for the STATS view: scientific for the very
/// small, six significant digits otherwise.
fn fmt_stat(x: f64) -> String {
    if x != 0.0 && x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{:.6}", (x * 1e6).round() / 1e6)
    }
}

/// Which simulation engines the query's metrics require.
fn needed_engines(query: &Query) -> (bool, bool) {
    let mentioned = || {
        query
            .explore
            .iter()
            .map(String::as_str)
            .chain(query.constraints.iter().map(|c| c.metric.as_str()))
            .chain(query.objective.iter().map(|o| o.metric.as_str()))
    };
    (
        mentioned().any(is_avail_metric),
        mentioned().any(is_perf_metric),
    )
}

/// Executes a query against a base scenario through a wind tunnel.
///
/// Every fully-simulated run also lands in the tunnel's result store.
/// With `opts.guided` set (the `GUIDED` clause), dispatch goes through
/// the guided runner instead — same verdicts, fewer simulated events.
pub fn run_query(
    query: &Query,
    base: &Scenario,
    tunnel: &WindTunnel,
    opts: &ExecOptions,
) -> Result<QueryOutcome, WtqlError> {
    if opts.guided {
        return run_query_guided(query, base, tunnel, opts);
    }
    validate_metrics(query)?;
    let plan = Plan::build(query)?;
    let n = plan.len();

    let (needs_avail, needs_perf) = needed_engines(query);

    // EXPLORE grids execute through the same declarative sweep engine
    // as the experiment binaries: the planned configuration order
    // becomes an explicit `SweepGrid` (execution order is the
    // optimizer's, not the canonical enumeration), and `SweepRunner`
    // handles dispatch, in-order collection, and sharded recording —
    // each configuration's runs land in a private `StoreShard` that is
    // merged into the tunnel's store in plan order, so record ids are
    // deterministic for any thread count.
    //
    // Pruning is *deterministic*: every configuration gets a verdict
    // (passed / failed / pruned) in a shared table, and a configuration
    // blocks until all dominating configurations *earlier in plan order*
    // have verdicts, then prunes iff one of them failed. Verdicts
    // therefore depend only on the plan order, never on worker count or
    // scheduling. The wait cannot deadlock: dependencies have strictly
    // smaller plan indices, and the farm claims index ranges as an
    // ascending prefix and walks each range in ascending order, so the
    // minimal undecided index is always being executed and its
    // dependencies are all decided. A pruned configuration deliberately
    // gets a non-failed verdict: whatever failure dominated it also
    // dominates (by transitivity) everything it dominates.
    let verdicts: Mutex<Vec<Option<Verdict>>> = Mutex::new(vec![None; n]);
    let decided = Condvar::new();
    let grid = SweepGrid::explicit("wtql-explore", base.seed, plan.configs.clone());
    debug_assert_eq!(grid.len(), n);
    let runner = SweepRunner::new(Farm::new(opts.threads));
    let rows: Vec<RunRow> = runner.run_points(&grid, tunnel.store(), |point, _ctx, sink| {
        let assignment = &point.assignment;

        // Dominance check against every earlier-planned configuration.
        if opts.prune {
            let deps: Vec<usize> = (0..point.index)
                .filter(|&j| plan.dominated_by_failure(assignment, &plan.configs[j]))
                .collect();
            let mut table = verdicts.lock();
            let dominated = loop {
                if deps.iter().any(|&j| table[j] == Some(Verdict::Failed)) {
                    break true;
                }
                if deps.iter().all(|&j| table[j].is_some()) {
                    break false;
                }
                decided.wait(&mut table);
            };
            if dominated {
                table[point.index] = Some(Verdict::Pruned);
                decided.notify_all();
                drop(table);
                return pruned_row(assignment);
            }
        }

        let row = evaluate(
            query,
            base,
            tunnel,
            assignment,
            needs_avail,
            needs_perf,
            opts,
            sink,
        );
        let row = row.unwrap_or_else(|_| failed_row(assignment));
        if opts.prune {
            let verdict = if !row.passes && !query.constraints.is_empty() {
                Verdict::Failed
            } else {
                Verdict::Passed
            };
            let mut table = verdicts.lock();
            table[point.index] = Some(verdict);
            decided.notify_all();
        }
        row
    });
    Ok(summarize(query, rows))
}

/// Folds per-configuration rows into the query outcome: counters,
/// event totals, and the objective-best passing row. Shared verbatim by
/// the exhaustive and guided paths so their summaries cannot diverge.
fn summarize(query: &Query, rows: Vec<RunRow>) -> QueryOutcome {
    let executed = rows
        .iter()
        .filter(|r| !r.pruned && !r.aborted && !r.screened)
        .count();
    let pruned = rows.iter().filter(|r| r.pruned).count();
    let aborted = rows.iter().filter(|r| r.aborted).count();
    let screened = rows.iter().filter(|r| r.screened).count();
    let early_stopped = rows.iter().filter(|r| r.early_stopped).count();
    let total_sim_events = rows.iter().map(|r| r.sim_events_executed).sum();

    let best = query.objective.as_ref().and_then(|obj| {
        rows.iter()
            .enumerate()
            .filter(|(_, r)| r.passes && r.metrics.contains_key(&obj.metric))
            .min_by(|(_, a), (_, b)| {
                let (x, y) = (a.metrics[&obj.metric], b.metrics[&obj.metric]);
                let ord = x.partial_cmp(&y).expect("finite metrics");
                if obj.minimize {
                    ord
                } else {
                    ord.reverse()
                }
            })
            .map(|(i, _)| i)
    });

    QueryOutcome {
        rows,
        best,
        executed,
        pruned,
        aborted,
        screened,
        early_stopped,
        total_sim_events,
    }
}

/// A row for a configuration skipped by dominance pruning.
fn pruned_row(assignment: &Assignment) -> RunRow {
    RunRow {
        assignment: assignment.clone(),
        metrics: BTreeMap::new(),
        passes: false,
        pruned: true,
        aborted: false,
        screened: false,
        early_stopped: false,
        sim_events_executed: 0,
    }
}

/// A row for a configuration whose evaluation errored: no metrics, no
/// pass — but not pruned, so it still shows in the table.
fn failed_row(assignment: &Assignment) -> RunRow {
    RunRow {
        assignment: assignment.clone(),
        metrics: BTreeMap::new(),
        passes: false,
        pruned: false,
        aborted: false,
        screened: false,
        early_stopped: false,
        sim_events_executed: 0,
    }
}

/// A configuration's pruning verdict. `Passed` covers any fully-evaluated
/// run that doesn't fail its constraints (including constraint-free
/// queries); only `Failed` triggers downstream pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Passed,
    Failed,
    Pruned,
}

/// The guided executor (DESIGN.md §12): same verdicts as [`run_query`],
/// fewer simulated events.
///
/// Dispatch goes through
/// [`run_points_guided`](SweepRunner::run_points_guided) with the
/// dominance relation as explicit dependency edges: a point starts only
/// after every configuration that could prune it has a verdict, so the
/// prune check is a plain table read — no waiting, no ordering races —
/// and the runner is free to execute the rest of the frontier in any
/// order. That freedom is what the surrogate spends: it re-ranks
/// eligible points toward likely constraint violators so failures (and
/// the prunes they unlock) surface early. Screening resolves points
/// analytically before any DES runs; the per-point evaluation is the
/// shared [`evaluate`], so sketch aborts and replication early-stop
/// behave identically to the exhaustive path with the same options.
///
/// Verdict equivalence: per-point pass/fail/prune flags and the winning
/// row match the exhaustive run on the same options, because screens are
/// conservative (they only decide what the DES would also decide),
/// ranking only reorders, and pass-screening is restricted to queries
/// whose objective needs no simulated metric.
fn run_query_guided(
    query: &Query,
    base: &Scenario,
    tunnel: &WindTunnel,
    opts: &ExecOptions,
) -> Result<QueryOutcome, WtqlError> {
    validate_metrics(query)?;
    let plan = Plan::build(query)?;
    let n = plan.len();
    let (needs_avail, needs_perf) = needed_engines(query);

    // Dominance edges: point i waits on every earlier-planned point that
    // could prune it. Strictly-earlier by plan construction (the plan
    // sorts best-first on the monotone axes, and domination points
    // "down" that order), which is exactly what the runner requires.
    let deps: Vec<Vec<usize>> = if opts.prune {
        (0..n)
            .map(|i| {
                (0..i)
                    .filter(|&j| plan.dominated_by_failure(&plan.configs[i], &plan.configs[j]))
                    .collect()
            })
            .collect()
    } else {
        vec![Vec::new(); n]
    };
    let verdicts: Mutex<Vec<Option<Verdict>>> = Mutex::new(vec![None; n]);
    let counters = GuidedCounters::new();

    // Surrogate features: the axes that are numeric across the whole
    // grid. Categorical axes are invisible to the model — acceptable,
    // since a bad fit only costs ordering, never verdicts.
    let axes = plan.configs.first().map_or(0, |c| c.len());
    let feat_idx: Vec<usize> = (0..axes)
        .filter(|&k| {
            plan.configs
                .iter()
                .all(|c| matches!(c[k].1, ParamValue::Num(_)))
        })
        .collect();
    let features = |i: usize| -> Vec<f64> {
        feat_idx
            .iter()
            .map(|&k| plan.configs[i][k].1.as_num().expect("numeric axis"))
            .collect()
    };
    struct RankState {
        samples: Vec<(Vec<f64>, f64)>,
        model: Option<Surrogate>,
    }
    let rank_state: Mutex<RankState> = Mutex::new(RankState {
        samples: Vec::new(),
        model: None,
    });
    // Rank = predicted constraint risk; highest runs first. Until a
    // model exists (or with ranking off), `-index` preserves plan order.
    let rank = |i: usize| -> f64 {
        if opts.rank && !feat_idx.is_empty() {
            if let Some(model) = &rank_state.lock().model {
                return model.predict(&features(i));
            }
        }
        -(i as f64)
    };
    // Feed one decided row back into the surrogate: the response is the
    // worst signed constraint violation, normalized per-constraint so
    // availability gaps and latency overshoots share a scale. Screened
    // failures and aborts count as full violations.
    let observe = |i: usize, row: &RunRow| {
        if !opts.rank || feat_idx.is_empty() || row.pruned {
            return;
        }
        let y = if row.aborted || (row.screened && !row.passes) {
            1.0
        } else {
            guided_risk(query, row)
        };
        let mut st = rank_state.lock();
        st.samples.push((features(i), y));
        let xs: Vec<&[f64]> = st.samples.iter().map(|(x, _)| &x[..]).collect();
        let ys: Vec<f64> = st.samples.iter().map(|(_, y)| *y).collect();
        st.model = Surrogate::fit(&xs, &ys, 1e-3);
    };

    let grid = SweepGrid::explicit("wtql-explore", base.seed, plan.configs.clone());
    debug_assert_eq!(grid.len(), n);
    let runner = SweepRunner::new(Farm::new(opts.threads));
    let rows: Vec<RunRow> = runner.run_points_guided(
        &grid,
        tunnel.store(),
        &deps,
        &rank,
        &counters,
        |point, _ctx, sink| {
            let assignment = &point.assignment;

            // Dominance check. Every dependency finished before this
            // point was released, so its verdict is present — no wait.
            if opts.prune {
                let dominated = {
                    let table = verdicts.lock();
                    deps[point.index]
                        .iter()
                        .any(|&j| table[j] == Some(Verdict::Failed))
                };
                if dominated {
                    verdicts.lock()[point.index] = Some(Verdict::Pruned);
                    return pruned_row(assignment);
                }
            }

            let row = match build_scenario(query, base, assignment) {
                Ok(scenario) => {
                    let screened = if opts.screen && !query.constraints.is_empty() {
                        screen_point(query, &scenario, opts)
                    } else {
                        None
                    };
                    match screened {
                        // A screen may settle "pass" only when the
                        // objective needs no simulated metric — otherwise
                        // the row could never win and the best row would
                        // diverge from the exhaustive run's.
                        Some(passes) if !passes || objective_is_exact(query) => {
                            let metrics = cost_metrics(tunnel, &scenario);
                            let mut rec = point
                                .record("screened", scenario.seed)
                                .param("verdict_source", "screened");
                            for (k, v) in &metrics {
                                rec = rec.metric(k.clone(), *v);
                            }
                            sink.record(rec);
                            RunRow {
                                assignment: assignment.clone(),
                                metrics,
                                passes,
                                pruned: false,
                                aborted: false,
                                screened: true,
                                early_stopped: false,
                                sim_events_executed: 0,
                            }
                        }
                        _ => evaluate(
                            query,
                            base,
                            tunnel,
                            assignment,
                            needs_avail,
                            needs_perf,
                            opts,
                            sink,
                        )
                        .unwrap_or_else(|_| failed_row(assignment)),
                    }
                }
                Err(_) => failed_row(assignment),
            };

            let verdict = if !row.passes && !query.constraints.is_empty() {
                Verdict::Failed
            } else {
                Verdict::Passed
            };
            verdicts.lock()[point.index] = Some(verdict);
            if row.screened {
                counters.note_screened();
            }
            if row.aborted {
                counters.note_aborted();
            }
            if row.early_stopped {
                counters.note_early_stopped();
            }
            observe(point.index, &row);
            row
        },
    );

    Ok(summarize(query, rows))
}

/// True when the query's objective can be computed without simulation
/// (absent, or one of the exact cost metrics) — the precondition for
/// letting a screen settle a *pass* verdict.
fn objective_is_exact(query: &Query) -> bool {
    query
        .objective
        .as_ref()
        .is_none_or(|o| o.metric == "tco_usd_per_year" || o.metric == "usd_per_usable_gb_year")
}

/// The worst signed, per-constraint-normalized violation in a decided
/// row: positive = violated, negative = satisfied with margin. This is
/// the surrogate's response variable — only an ordering signal.
fn guided_risk(query: &Query, row: &RunRow) -> f64 {
    let worst = query
        .constraints
        .iter()
        .filter_map(|c| {
            let v = *row.metrics.get(&c.metric)?;
            let scale = c.bound.abs().max(1e-9);
            Some(match c.cmp {
                Comparison::Ge | Comparison::Gt => (c.bound - v) / scale,
                Comparison::Le | Comparison::Lt => (v - c.bound) / scale,
                Comparison::Eq => 0.0,
            })
        })
        .fold(f64::NEG_INFINITY, f64::max);
    if worst.is_finite() {
        worst
    } else {
        0.0
    }
}

/// Screens every constraint analytically. `Some(false)` = some
/// constraint provably violated (the DES would fail this row too);
/// `Some(true)` = every constraint provably satisfied; `None` = at
/// least one constraint undecided, simulate. Conservatism is inherited
/// from the bounds: a screen decides only what the simulation would
/// also decide, so verdicts match the exhaustive path.
fn screen_point(query: &Query, scenario: &Scenario, opts: &ExecOptions) -> Option<bool> {
    let mut all_pass = true;
    let mut any_fail = false;
    for c in &query.constraints {
        match screen_constraint(c, scenario, opts) {
            ScreenVerdict::Fail => any_fail = true,
            ScreenVerdict::Pass => {}
            ScreenVerdict::Unknown => all_pass = false,
        }
    }
    if any_fail {
        Some(false)
    } else if all_pass {
        Some(true)
    } else {
        None
    }
}

/// One constraint through the closed-form screens: availability bounds
/// from the birth–death model, latency-quantile floors from M/M/c.
/// Anything else — including quantiles of tenants the scenario does not
/// run, whose exhaustive verdict is fail-by-missing-metric, not a model
/// question — is `Unknown`.
fn screen_constraint(c: &Constraint, scenario: &Scenario, opts: &ExecOptions) -> ScreenVerdict {
    let rel = match c.cmp {
        Comparison::Ge => Rel::Ge,
        Comparison::Gt => Rel::Gt,
        Comparison::Le => Rel::Le,
        Comparison::Lt => Rel::Lt,
        Comparison::Eq => return ScreenVerdict::Unknown,
    };
    if c.metric == "availability" {
        return availability_screen(scenario, opts.screen_min_failures).screen(
            rel,
            c.bound,
            opts.screen_guard,
        );
    }
    if let Some((tenant, q)) = quantile_metric(&c.metric) {
        if scenario.tenants.iter().any(|t| t.name == tenant) {
            if let Some(p) = perf_screen(scenario) {
                return p.screen(q, rel, c.bound, opts.screen_guard);
            }
        }
    }
    ScreenVerdict::Unknown
}

/// Builds one grid point's scenario: the base with the assignment's
/// known axes applied, the query's injections appended to any base fault
/// schedule, and the assignment itself as the scenario name.
fn build_scenario(
    query: &Query,
    base: &Scenario,
    assignment: &Assignment,
) -> Result<Scenario, WtqlError> {
    let mut scenario = base.clone();
    for (axis, value) in assignment {
        // Chaos-only axes (swept but referenced solely from INJECT
        // arguments) are not scenario knobs; they reach the run below,
        // through the resolved fault schedule.
        if is_known_axis(axis) {
            apply_assignment(&mut scenario, axis, value)?;
        }
    }
    if !query.injects.is_empty() {
        let mut schedule = scenario.faults.clone().unwrap_or_default();
        for inj in &query.injects {
            schedule.rules.push(resolve_injection(inj, assignment)?);
        }
        scenario.faults = Some(schedule);
    }
    scenario.name = assignment
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",");
    Ok(scenario)
}

/// The exact (simulation-free) cost metrics every row carries.
fn cost_metrics(tunnel: &WindTunnel, scenario: &Scenario) -> BTreeMap<String, f64> {
    let mut metrics = BTreeMap::new();
    let breakdown = tunnel.cost_model().cost(&scenario.topology);
    metrics.insert("tco_usd_per_year".into(), breakdown.tco_usd_per_year);
    // Cost per GB a customer can actually store: redundancy overhead eats
    // raw capacity, so rep5 *is* dearer than rep3 on identical hardware.
    let usable_gb = breakdown.raw_storage_gb / scenario.redundancy.overhead();
    metrics.insert(
        "usd_per_usable_gb_year".into(),
        breakdown.tco_usd_per_year / usable_gb,
    );
    metrics
}

/// Simulates one configuration and evaluates the constraints. Every
/// fully-simulated run records into `sink` — the caller's per-config
/// shard during parallel execution.
#[allow(clippy::too_many_arguments)]
fn evaluate(
    query: &Query,
    base: &Scenario,
    tunnel: &WindTunnel,
    assignment: &Assignment,
    needs_avail: bool,
    needs_perf: bool,
    opts: &ExecOptions,
    sink: &dyn RecordSink,
) -> Result<RunRow, WtqlError> {
    let scenario = build_scenario(query, base, assignment)?;
    let mut metrics = cost_metrics(tunnel, &scenario);

    let mut aborted = false;
    let mut events_executed: u64 = 0;
    // Probe phase (first replication only): abort hopeless runs early.
    if needs_avail && opts.early_abort {
        let model = WindTunnel::availability_model(&scenario);
        let probe_horizon = SimDuration::from_years(scenario.horizon_years * opts.probe_fraction);
        let probe = model.run(scenario.seed, probe_horizon);
        let hopeless = query.constraints.iter().any(|c| {
            probe_violates_surely(c, &probe) || probe_violates_heuristically(c, &probe, opts)
        });
        if hopeless {
            record_avail_metrics(&mut metrics, &probe);
            events_executed += probe.sim_events;
            aborted = true;
        }
    }
    // Sketch probe (guided stage 3a): run the perf model over a fraction
    // of the horizon and abort when a streaming-sketch latency quantile
    // already violates a latency ceiling by more than the margin.
    if !aborted && needs_perf && opts.sketch_abort {
        aborted = sketch_probe_aborts(query, &scenario, opts, sink);
    }
    let mut early_stopped = false;
    if !aborted {
        // Accumulate metric sums over replications, then average. With
        // early-stop armed, the loop ends once every constraint is
        // confidently resolved — but never before two recorded
        // replications, so confidence intervals always have support.
        let reps = opts.replications.max(1);
        let stop_eligible = opts.early_stop && reps >= 2 && !query.constraints.is_empty();
        let mut sums: BTreeMap<String, f64> = BTreeMap::new();
        let mut tallies: BTreeMap<&str, Tally> = query
            .constraints
            .iter()
            .map(|c| (c.metric.as_str(), Tally::new()))
            .collect();
        let mut used = 0usize;
        let base_seed = scenario.seed;
        for rep in 0..reps {
            let mut rep_scenario = scenario.clone();
            rep_scenario.seed = base_seed.wrapping_add(rep as u64 * 7919);
            let mut rep_metrics: BTreeMap<String, f64> = BTreeMap::new();
            if needs_avail {
                let (result, telemetry) =
                    tunnel.run_availability_observed_into(&rep_scenario, sink, None);
                events_executed += result.sim_events;
                record_avail_metrics(&mut rep_metrics, &result);
                rep_metrics.insert("peak_queue_depth".into(), telemetry.peak_queue_depth as f64);
                rep_metrics.insert("mean_queue_depth".into(), telemetry.mean_queue_depth);
            }
            if needs_perf && !rep_scenario.tenants.is_empty() {
                let result = tunnel.run_perf_into(&rep_scenario, false, sink);
                for t in &result.tenants {
                    rep_metrics.insert(format!("{}_p50_s", t.name), t.p50_s);
                    rep_metrics.insert(format!("{}_p95_s", t.name), t.p95_s);
                    rep_metrics.insert(format!("{}_p99_s", t.name), t.p99_s);
                    rep_metrics.insert(format!("{}_mean_s", t.name), t.mean_s);
                    rep_metrics.insert(format!("{}_throughput", t.name), t.throughput);
                    rep_metrics.insert(format!("{}_failed", t.name), t.failed as f64);
                }
            }
            for (k, v) in rep_metrics {
                if let Some(t) = tallies.get_mut(k.as_str()) {
                    t.record(v);
                }
                *sums.entry(k).or_insert(0.0) += v;
            }
            used += 1;
            if stop_eligible
                && used >= 2
                && used < reps
                && verdict_confident(query, &metrics, &tallies)
            {
                early_stopped = true;
                break;
            }
        }
        for (k, v) in sums {
            metrics.insert(k, v / used as f64);
        }
    }

    let passes = !aborted
        && query
            .constraints
            .iter()
            .all(|c| metrics.get(&c.metric).is_some_and(|&v| c.satisfied(v)));

    Ok(RunRow {
        assignment: assignment.clone(),
        metrics,
        passes,
        pruned: false,
        aborted,
        screened: false,
        early_stopped,
        sim_events_executed: events_executed,
    })
}

/// True when every constraint's verdict is already confident: either
/// some constraint is confidently violated (the row will fail no matter
/// what later replications say) or every constraint is confidently
/// satisfied. Exact (simulation-free) metrics decide outright; sampled
/// metrics need a resolved 95% confidence interval clear of the bound.
fn verdict_confident(
    query: &Query,
    exact: &BTreeMap<String, f64>,
    tallies: &BTreeMap<&str, Tally>,
) -> bool {
    let mut all_satisfied = !query.constraints.is_empty();
    for c in &query.constraints {
        let (violated, satisfied) = if let Some(&v) = exact.get(&c.metric) {
            (!c.satisfied(v), c.satisfied(v))
        } else {
            let Some(tally) = tallies.get(c.metric.as_str()) else {
                return false;
            };
            if tally.count() < 2 {
                return false; // metric absent from replications
            }
            let iv = MeanInterval::from_tally(tally);
            match c.cmp {
                Comparison::Ge => (
                    iv.confidently_below(c.bound),
                    iv.confidently_at_least(c.bound),
                ),
                Comparison::Gt => (
                    iv.confidently_at_most(c.bound),
                    iv.confidently_above(c.bound),
                ),
                Comparison::Le => (
                    iv.confidently_above(c.bound),
                    iv.confidently_at_most(c.bound),
                ),
                Comparison::Lt => (
                    iv.confidently_at_least(c.bound),
                    iv.confidently_below(c.bound),
                ),
                Comparison::Eq => (false, false),
            }
        };
        if violated {
            return true; // one certain violation decides the whole row
        }
        all_satisfied &= satisfied;
    }
    all_satisfied
}

/// Runs the perf model over `probe_fraction` of its horizon and returns
/// true when some streaming-sketch latency quantile already violates a
/// `≤`/`<` constraint by more than `abort_margin`. On abort, the probe
/// is recorded with `verdict_source = "aborted"` provenance and an
/// `abort_sketch_p99` telemetry mark; a clean probe leaves no trace.
fn sketch_probe_aborts(
    query: &Query,
    scenario: &Scenario,
    opts: &ExecOptions,
    sink: &dyn RecordSink,
) -> bool {
    // Latency ceilings on quantiles of tenants this scenario actually
    // runs; anything else the probe cannot judge.
    let ceilings: Vec<(&Constraint, &str, f64)> = query
        .constraints
        .iter()
        .filter(|c| matches!(c.cmp, Comparison::Le | Comparison::Lt))
        .filter_map(|c| quantile_metric(&c.metric).map(|(t, q)| (c, t, q)))
        .filter(|(_, tenant, _)| scenario.tenants.iter().any(|t| t.name == *tenant))
        .collect();
    if ceilings.is_empty() || scenario.tenants.is_empty() {
        return false;
    }
    let mut model = WindTunnel::perf_model(scenario, false);
    model.horizon_s *= opts.probe_fraction;
    let (probe, mut telemetry) = model.run_observed(scenario.seed, None);
    let hopeless = ceilings.iter().any(|(c, tenant, q)| {
        probe
            .tenant(tenant)
            .and_then(|t| {
                if *q == 0.50 {
                    t.sketch_p50_s
                } else if *q == 0.95 {
                    t.sketch_p95_s
                } else {
                    t.sketch_p99_s
                }
            })
            .is_some_and(|sketch_q| sketch_q > c.bound + opts.abort_margin)
    });
    if hopeless {
        telemetry.marks.insert("abort_sketch_p99".into(), 1);
        let mut rec = wt_store::RunRecord::new("perf-probe", scenario.seed)
            .param("scenario", scenario.name.clone())
            .param("verdict_source", "aborted")
            .metric("probe_horizon_s", model.horizon_s);
        for t in &probe.tenants {
            if let Some(p99) = t.sketch_p99_s {
                rec = rec.metric(format!("{}_sketch_p99_s", t.name), p99);
            }
        }
        sink.record(rec.telemetry(telemetry));
    }
    hopeless
}

/// Parses `<tenant>_pXX_s` into the tenant name and quantile.
fn quantile_metric(name: &str) -> Option<(&str, f64)> {
    for (suffix, q) in [("_p50_s", 0.50), ("_p95_s", 0.95), ("_p99_s", 0.99)] {
        if let Some(tenant) = name.strip_suffix(suffix) {
            if !tenant.is_empty() {
                return Some((tenant, q));
            }
        }
    }
    None
}

fn record_avail_metrics(
    metrics: &mut BTreeMap<String, f64>,
    r: &windtunnel::cluster::AvailabilityResult,
) {
    metrics.insert("availability".into(), r.availability);
    metrics.insert("nines".into(), r.nines);
    metrics.insert(
        "unavailability_events".into(),
        r.unavailability_events as f64,
    );
    metrics.insert("objects_lost".into(), r.objects_lost as f64);
    metrics.insert("node_failures".into(), r.node_failures as f64);
    metrics.insert("rebuilds_completed".into(), r.rebuilds_completed as f64);
    metrics.insert("mean_rebuild_wait_s".into(), r.mean_rebuild_wait_s);
    metrics.insert("sim_events".into(), r.sim_events as f64);
}

/// Sound abort: the probe already violates an upper bound on a metric
/// that can only grow with the horizon.
fn probe_violates_surely(c: &Constraint, probe: &windtunnel::cluster::AvailabilityResult) -> bool {
    if !MONOTONE_IN_TIME.contains(&c.metric.as_str()) {
        return false;
    }
    let value = match c.metric.as_str() {
        "objects_lost" => probe.objects_lost as f64,
        "unavailability_events" => probe.unavailability_events as f64,
        "node_failures" => probe.node_failures as f64,
        _ => return false,
    };
    matches!(
        c.cmp,
        crate::ast::Comparison::Le | crate::ast::Comparison::Lt
    ) && !c.satisfied(value)
}

/// Heuristic abort: the probe's availability sits more than the margin
/// below an availability floor.
fn probe_violates_heuristically(
    c: &Constraint,
    probe: &windtunnel::cluster::AvailabilityResult,
    opts: &ExecOptions,
) -> bool {
    if c.metric != "availability" {
        return false;
    }
    matches!(
        c.cmp,
        crate::ast::Comparison::Ge | crate::ast::Comparison::Gt
    ) && probe.availability < c.bound - opts.abort_margin
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use windtunnel::ScenarioBuilder;

    fn base() -> Scenario {
        ScenarioBuilder::new("base")
            .racks(1)
            .nodes_per_rack(10)
            .objects(200)
            .horizon_years(0.3)
            .seed(5)
            .build()
    }

    #[test]
    fn explore_runs_whole_grid() {
        let q =
            parse(r#"EXPLORE availability SWEEP replication IN [1, 3], placement IN ["R", "RR"]"#)
                .unwrap();
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &base(), &tunnel, &ExecOptions::default()).unwrap();
        assert_eq!(out.rows.len(), 4);
        assert_eq!(out.executed, 4);
        assert_eq!(out.pruned, 0);
        assert!(out
            .rows
            .iter()
            .all(|r| r.metrics.contains_key("availability")));
        // Store captured every run.
        assert_eq!(tunnel.store().len(), 4);
    }

    #[test]
    fn replication_improves_availability_in_results() {
        let q = parse("EXPLORE availability SWEEP replication IN [1, 3]").unwrap();
        let tunnel = WindTunnel::new();
        let mut sc = base();
        // Force enough failures to matter.
        sc.topology.node.ttf = windtunnel::dist::Dist::exponential_mean(30.0 * 86_400.0);
        let out = run_query(&q, &sc, &tunnel, &ExecOptions::default()).unwrap();
        // Plan order: replication 3 first (monotone descending).
        let a3 = out.rows[0].metrics["availability"];
        let a1 = out.rows[1].metrics["availability"];
        assert!(a3 > a1, "rep3 {a3} should beat rep1 {a1}");
    }

    #[test]
    fn pruning_skips_dominated_configs() {
        // An unsatisfiable availability floor: the best config fails, so
        // everything dominated by it is pruned without simulation.
        let q = parse(
            "EXPLORE availability \
             SWEEP replication IN [1, 2, 3] \
             SUBJECT TO availability >= 1.0 AND unavailability_events <= 0",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let mut sc = base();
        sc.topology.node.ttf = windtunnel::dist::Dist::exponential_mean(10.0 * 86_400.0);
        sc.repair.detection_delay_s = 24.0 * 3600.0; // repairs too slow
        let out = run_query(&q, &sc, &tunnel, &ExecOptions::default()).unwrap();
        assert_eq!(out.rows.len(), 3);
        assert!(out.passing().is_empty());
        assert!(
            out.pruned >= 1,
            "dominated configs should be pruned: {out:?}"
        );
        assert!(out.executed < 3);
    }

    #[test]
    fn prune_disabled_runs_everything() {
        let q = parse(
            "EXPLORE availability \
             SWEEP replication IN [1, 2, 3] \
             SUBJECT TO availability >= 1.0 AND unavailability_events <= 0 \
             OPTIONS prune = FALSE",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let mut sc = base();
        sc.topology.node.ttf = windtunnel::dist::Dist::exponential_mean(10.0 * 86_400.0);
        sc.repair.detection_delay_s = 24.0 * 3600.0;
        let opts = ExecOptions::from_query(&q);
        assert!(!opts.prune);
        let out = run_query(&q, &sc, &tunnel, &opts).unwrap();
        assert_eq!(out.executed, 3);
        assert_eq!(out.pruned, 0);
    }

    #[test]
    fn usable_gb_cost_separates_replication_factors() {
        let q = parse(
            "EXPLORE usd_per_usable_gb_year \
             SWEEP replication IN [2, 3] \
             MINIMIZE usd_per_usable_gb_year",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &base(), &tunnel, &ExecOptions::default()).unwrap();
        // Same hardware, but rep3 stores 2/3 of what rep2 can.
        let cost = |n: f64| {
            out.rows
                .iter()
                .find(|r| r.assignment[0].1.as_num() == Some(n))
                .unwrap()
                .metrics["usd_per_usable_gb_year"]
        };
        assert!((cost(3.0) / cost(2.0) - 1.5).abs() < 1e-9);
        let best = out.best_row().unwrap();
        assert_eq!(best.assignment[0].1.as_num(), Some(2.0));
    }

    #[test]
    fn objective_selects_cheapest_passing() {
        let q = parse(
            "EXPLORE availability, tco_usd_per_year \
             SWEEP replication IN [1, 3], nodes_per_rack IN [10, 20] \
             SUBJECT TO availability >= 0.5 \
             MINIMIZE tco_usd_per_year",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &base(), &tunnel, &ExecOptions::default()).unwrap();
        let best = out.best_row().expect("some config passes");
        // Cheapest = fewest nodes.
        let nodes = best
            .assignment
            .iter()
            .find(|(k, _)| k == "nodes_per_rack")
            .unwrap()
            .1
            .as_num()
            .unwrap();
        assert_eq!(nodes, 10.0);
        for r in out.passing() {
            assert!(r.metrics["tco_usd_per_year"] >= best.metrics["tco_usd_per_year"]);
        }
    }

    #[test]
    fn parallel_execution_matches_serial_passing_set() {
        let q = parse(
            r#"EXPLORE availability SWEEP replication IN [1, 3], placement IN ["R", "RR"] SUBJECT TO availability >= 0.0"#,
        )
        .unwrap();
        let tunnel_a = WindTunnel::new();
        let serial = run_query(&q, &base(), &tunnel_a, &ExecOptions::default()).unwrap();
        let tunnel_b = WindTunnel::new();
        let par = run_query(
            &q,
            &base(),
            &tunnel_b,
            &ExecOptions {
                threads: 4,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        // Same rows in the same plan order with identical metrics
        // (determinism is per-config, so thread interleaving is invisible).
        let key = |rows: &[RunRow]| {
            rows.iter()
                .filter(|r| !r.pruned)
                .map(|r| (r.assignment.clone(), r.metrics.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&serial.rows), key(&par.rows));
    }

    #[test]
    fn pruning_verdicts_are_worker_count_invariant() {
        // The old failed-set pruning skipped a config only when a
        // dominating failure happened to finish first — a race on worker
        // count. The verdict table keys decisions on plan order alone, so
        // every thread count must produce the identical pruned set.
        let q = parse(
            "EXPLORE availability \
             SWEEP replication IN [1, 2, 3], repair_parallel IN [1, 2] \
             SUBJECT TO availability >= 1.0 AND unavailability_events <= 0",
        )
        .unwrap();
        let mut sc = base();
        sc.topology.node.ttf = windtunnel::dist::Dist::exponential_mean(10.0 * 86_400.0);
        sc.repair.detection_delay_s = 24.0 * 3600.0;
        let run = |threads: usize| {
            let tunnel = WindTunnel::new();
            run_query(
                &q,
                &sc,
                &tunnel,
                &ExecOptions {
                    threads,
                    ..ExecOptions::default()
                },
            )
            .unwrap()
        };
        let serial = run(1);
        assert!(serial.pruned >= 1, "{serial:?}");
        for threads in [2, 4, 8] {
            let par = run(threads);
            let flags = |out: &QueryOutcome| {
                out.rows
                    .iter()
                    .map(|r| (r.assignment.clone(), r.pruned, r.passes))
                    .collect::<Vec<_>>()
            };
            assert_eq!(flags(&serial), flags(&par), "threads = {threads}");
            assert_eq!(serial.pruned, par.pruned);
            assert_eq!(serial.executed, par.executed);
        }
    }

    #[test]
    fn inject_sweeps_chaos_parameters() {
        // Sweep the blast radius of a power-domain loss: the chaos-only
        // axis `blast` reaches the run through the INJECT clause. Zero
        // racks lost = no injection effect; the whole cluster dark for
        // ~42% of the horizon caps availability accordingly.
        let q = parse(
            "EXPLORE availability \
             SWEEP blast IN [0, 2] \
             INJECT power_loss(at = 1000000, first_rack = 0, racks = blast, restore = 4000000)",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &base(), &tunnel, &ExecOptions::default()).unwrap();
        assert_eq!(out.rows.len(), 2);
        let avail = |blast: f64| {
            out.rows
                .iter()
                .find(|r| r.assignment[0].1.as_num() == Some(blast))
                .unwrap()
                .metrics["availability"]
        };
        assert!(
            avail(0.0) > avail(2.0) + 0.3,
            "blast=0 {} vs blast=2 {}",
            avail(0.0),
            avail(2.0)
        );
        // The injection fired and was recorded in run telemetry.
        tunnel.store().with(|s| {
            let fired: u64 = s
                .records()
                .filter_map(|r| r.telemetry.as_ref())
                .filter_map(|t| t.marks.get("inject_power_loss"))
                .sum();
            assert_eq!(fired, 2, "one injection per run, even at blast=0");
        });
    }

    #[test]
    fn inject_is_deterministic_across_threads() {
        let q = parse(
            "EXPLORE availability, unavailability_events \
             SWEEP blast IN [1, 2], replication IN [1, 3] \
             INJECT maintenance(at = 500000, first_node = 0, nodes = blast, duration = 250000)",
        )
        .unwrap();
        let run = |threads: usize| {
            let tunnel = WindTunnel::new();
            run_query(
                &q,
                &base(),
                &tunnel,
                &ExecOptions {
                    threads,
                    ..ExecOptions::default()
                },
            )
            .unwrap()
        };
        let a = run(1);
        let b = run(4);
        let key = |out: &QueryOutcome| {
            out.rows
                .iter()
                .map(|r| (r.assignment.clone(), r.metrics.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn inject_composes_with_base_scenario_faults() {
        // A base scenario that already schedules chaos keeps it; the
        // query's injections are appended, not substituted.
        let q = parse(
            "EXPLORE availability SWEEP replication IN [3] \
             INJECT maintenance(at = 2000000, first_node = 0, nodes = 10, duration = 1000000)",
        )
        .unwrap();
        let mut sc = base();
        sc.faults = Some(windtunnel::cluster::FaultSchedule::new().rule(
            "planned",
            100_000.0,
            windtunnel::cluster::FaultKind::MaintenanceWindow {
                first_node: 0,
                nodes: 10,
                duration_s: 1_000_000.0,
            },
        ));
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &sc, &tunnel, &ExecOptions::default()).unwrap();
        // Two full-cluster windows of 1e6 s out of a ~9.47e6 s horizon.
        let a = out.rows[0].metrics["availability"];
        assert!(a < 0.85, "both windows applied: {a}");
        tunnel.store().with(|s| {
            let fired: u64 = s
                .records()
                .filter_map(|r| r.telemetry.as_ref())
                .filter_map(|t| t.marks.get("inject_maintenance"))
                .sum();
            assert_eq!(fired, 2, "base rule + injected rule both fired");
        });
    }

    #[test]
    fn early_abort_saves_events() {
        // objects_lost is monotone in time: a dying cluster's probe already
        // violates the durability constraint, so the full run is skipped.
        let q = parse(
            "EXPLORE availability \
             SWEEP replication IN [1] \
             SUBJECT TO objects_lost <= 0 \
             OPTIONS early_abort = TRUE, probe_fraction = 0.05",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let mut sc = base();
        // A cluster that loses data almost immediately.
        sc.topology.node.ttf = windtunnel::dist::Dist::exponential_mean(86_400.0);
        sc.topology.node.repair = windtunnel::dist::Dist::deterministic(30.0 * 86_400.0);
        sc.repair.detection_delay_s = 10.0 * 86_400.0;
        let opts = ExecOptions::from_query(&q);
        assert!(opts.early_abort);
        let out = run_query(&q, &sc, &tunnel, &opts).unwrap();
        assert_eq!(out.aborted, 1, "{out:?}");
        assert!(!out.rows[0].passes);
        // The aborted row still carries probe metrics.
        assert!(out.rows[0].metrics["objects_lost"] > 0.0);
    }

    #[test]
    fn replications_average_and_record_every_run() {
        let q = parse("EXPLORE availability SWEEP replication IN [3] OPTIONS replications = 3")
            .unwrap();
        let opts = ExecOptions::from_query(&q);
        assert_eq!(opts.replications, 3);
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &base(), &tunnel, &opts).unwrap();
        assert_eq!(out.rows.len(), 1);
        // Three availability runs landed in the store.
        assert_eq!(tunnel.store().len(), 3);
        // The averaged metric equals the mean of the recorded runs.
        let mean_recorded = tunnel.store().with(|s| {
            s.records()
                .map(|r| r.get_metric("availability").unwrap())
                .sum::<f64>()
                / 3.0
        });
        assert!((out.rows[0].metrics["availability"] - mean_recorded).abs() < 1e-12);
    }

    #[test]
    fn store_stats_reports_counts_and_is_safe_when_empty() {
        let tunnel = WindTunnel::new();
        let empty = store_stats(tunnel.store());
        assert!(empty.contains("0 record(s)"), "{empty}");
        assert!(empty.contains("no experiments"), "{empty}");
        let q = parse("EXPLORE availability SWEEP replication IN [1, 3]").unwrap();
        run_query(&q, &base(), &tunnel, &ExecOptions::default()).unwrap();
        let report = store_stats(tunnel.store());
        assert!(report.contains("2 record(s)"), "{report}");
        assert!(report.contains("availability: 2 run(s)"), "{report}");
        assert!(report.contains("unbounded"), "{report}");
        // The sketch view: recorded metrics summarize as quantiles.
        assert!(
            report.contains("sketch quantiles (p50 / p95 / p99 / p999)"),
            "{report}"
        );
        assert!(report.contains("metric_availability:"), "{report}");
        assert!(report.contains("(2 obs)"), "{report}");
    }

    #[test]
    fn telemetry_metrics_are_queryable() {
        let q = parse(
            "EXPLORE peak_queue_depth, mean_queue_depth, availability \
             SWEEP replication IN [1, 3]",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let mut sc = base();
        sc.topology.node.ttf = windtunnel::dist::Dist::exponential_mean(30.0 * 86_400.0);
        let out = run_query(&q, &sc, &tunnel, &ExecOptions::default()).unwrap();
        for r in &out.rows {
            assert!(r.metrics["peak_queue_depth"] > 0.0, "{r:?}");
            assert!(r.metrics["mean_queue_depth"] > 0.0, "{r:?}");
        }
        // Every stored record carries the telemetry it was derived from.
        tunnel.store().with(|s| {
            for rec in s.records() {
                let t = rec.telemetry.as_ref().expect("telemetry attached");
                assert!(t.events > 0);
            }
        });
    }

    #[test]
    fn unknown_metric_rejected() {
        let q = parse("EXPLORE qubits SWEEP replication IN [3]").unwrap();
        let tunnel = WindTunnel::new();
        let e = run_query(&q, &base(), &tunnel, &ExecOptions::default()).unwrap_err();
        assert!(e.to_string().contains("unknown metric"));
    }

    /// A failure-heavy cluster the analytic screens can reason about:
    /// 30 nodes with ~40-day lifetimes over a quarter year (≈ 68 expected
    /// failures) and a 5-day failure-detection delay.
    fn stress_base() -> Scenario {
        let mut sc = ScenarioBuilder::new("stress")
            .racks(3)
            .nodes_per_rack(10)
            .objects(300)
            .horizon_years(0.25)
            .seed(42)
            .build();
        sc.topology.node.ttf = windtunnel::dist::Dist::weibull_mean(0.8, 40.0 * 86_400.0);
        sc.repair.detection_delay_s = 5.0 * 86_400.0;
        sc
    }

    #[test]
    fn guided_clause_arms_all_stages_and_options_override() {
        let q = parse("EXPLORE availability SWEEP replication IN [3] GUIDED").unwrap();
        let o = ExecOptions::from_query(&q);
        assert!(o.guided && o.screen && o.rank && o.early_stop && o.sketch_abort);
        let q = parse(
            "EXPLORE availability SWEEP replication IN [3] GUIDED \
             OPTIONS rank = FALSE, screen_guard = 0.001, screen_min_failures = 25",
        )
        .unwrap();
        let o = ExecOptions::from_query(&q);
        assert!(o.guided && o.screen && !o.rank && o.early_stop && o.sketch_abort);
        assert_eq!(o.screen_guard, 0.001);
        assert_eq!(o.screen_min_failures, 25.0);
        // The OPTIONS master switch mirrors the clause, in source order.
        let q = parse(
            "EXPLORE availability SWEEP replication IN [3] \
             OPTIONS guided = TRUE, sketch_abort = FALSE",
        )
        .unwrap();
        let o = ExecOptions::from_query(&q);
        assert!(o.guided && o.screen && o.rank && o.early_stop && !o.sketch_abort);
        assert!(!ExecOptions::from_query(&parse("EXPLORE a SWEEP x IN [1]").unwrap()).guided);
    }

    #[test]
    fn guided_matches_exhaustive_verdicts_and_metrics() {
        // Ranking + guided dispatch only (screens off): every verdict,
        // metric, and the pruned set must match the exhaustive run at
        // any worker count — ranking may only reorder execution.
        let q = parse(
            "EXPLORE availability \
             SWEEP replication IN [1, 2, 3], repair_parallel IN [1, 2] \
             SUBJECT TO availability >= 1.0 AND unavailability_events <= 0 \
             OPTIONS guided = TRUE, screen = FALSE, sketch_abort = FALSE, early_stop = FALSE",
        )
        .unwrap();
        let mut sc = base();
        sc.topology.node.ttf = windtunnel::dist::Dist::exponential_mean(10.0 * 86_400.0);
        sc.repair.detection_delay_s = 24.0 * 3600.0;
        let run = |threads: usize, guided: bool| {
            let tunnel = WindTunnel::new();
            let mut opts = ExecOptions::from_query(&q);
            opts.threads = threads;
            if !guided {
                opts.guided = false;
                opts.rank = false;
            }
            run_query(&q, &sc, &tunnel, &opts).unwrap()
        };
        let exhaustive = run(1, false);
        assert!(exhaustive.pruned >= 1, "{exhaustive:?}");
        let rows = |out: &QueryOutcome| {
            out.rows
                .iter()
                .map(|r| (r.assignment.clone(), r.metrics.clone(), r.passes, r.pruned))
                .collect::<Vec<_>>()
        };
        for threads in [1, 4] {
            let guided = run(threads, true);
            assert_eq!(rows(&exhaustive), rows(&guided), "threads = {threads}");
            assert_eq!(guided.screened, 0);
            assert_eq!(exhaustive.total_sim_events, guided.total_sim_events);
        }
    }

    #[test]
    fn guided_screens_cut_simulation_and_record_provenance() {
        // With a 5-day detection delay, replication 2 and 3 provably miss
        // a 0.99985 availability floor — the screen resolves them without
        // simulation; replication 5 is undecided and simulates. Pruning
        // is off so every point gets its own verdict.
        let q = parse(
            "EXPLORE availability \
             SWEEP replication IN [2, 3, 5] \
             SUBJECT TO availability >= 0.99985 \
             GUIDED OPTIONS prune = FALSE",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let guided = run_query(&q, &stress_base(), &tunnel, &ExecOptions::from_query(&q)).unwrap();
        assert_eq!(guided.screened, 2, "{guided:?}");
        let exhaustive_tunnel = WindTunnel::new();
        let opts = ExecOptions {
            prune: false,
            ..ExecOptions::default()
        };
        let exhaustive = run_query(&q, &stress_base(), &exhaustive_tunnel, &opts).unwrap();
        // Same pass/fail verdicts on every point, and the screen's calls
        // agree with what the simulation measured.
        let flags = |out: &QueryOutcome| {
            out.rows
                .iter()
                .map(|r| (r.assignment.clone(), r.passes, r.pruned))
                .collect::<Vec<_>>()
        };
        assert_eq!(flags(&guided), flags(&exhaustive));
        // Screening saves real simulation work: the guided run only paid
        // for the one undecided point (replication 5).
        let rep5_events = exhaustive
            .rows
            .iter()
            .find(|r| {
                r.assignment
                    .contains(&("replication".to_string(), ParamValue::Num(5.0)))
            })
            .and_then(|r| r.metrics.get("sim_events").copied())
            .unwrap() as u64;
        assert_eq!(guided.total_sim_events, rep5_events);
        assert!(guided.total_sim_events < exhaustive.total_sim_events);
        // Screened rows still carry the exact cost metrics (so cost
        // objectives keep working) but no simulated ones.
        let screened: Vec<_> = guided.rows.iter().filter(|r| r.screened).collect();
        assert_eq!(screened.len(), 2);
        for r in &screened {
            assert!(r.metrics.contains_key("tco_usd_per_year"));
            assert!(!r.metrics.contains_key("availability"));
            assert!(!r.passes);
        }
        // Provenance landed in the store and surfaces through STATS.
        tunnel.store().with(|s| {
            let screened_recs = s
                .records()
                .filter(|r| {
                    r.params.get("verdict_source")
                        == Some(&wt_store::ParamValue::Str("screened".into()))
                })
                .count();
            assert_eq!(screened_recs, 2);
        });
        let stats = store_stats(tunnel.store());
        assert!(stats.contains("verdict sources:"), "{stats}");
        assert!(stats.contains("screened: 2 record(s)"), "{stats}");
        assert!(stats.contains("simulated:"), "{stats}");
        // An exhaustive store shows no provenance section at all.
        let stats = store_stats(exhaustive_tunnel.store());
        assert!(!stats.contains("verdict sources:"), "{stats}");
    }

    #[test]
    fn early_stop_floors_at_two_replications() {
        // A trivially-met floor: the interval resolves after two
        // replications and the loop stops — but never below two recorded
        // runs, the confidence floor the guided planner guarantees.
        let q = parse(
            "EXPLORE availability SWEEP replication IN [3] \
             SUBJECT TO availability >= 0.5 \
             OPTIONS early_stop = TRUE, replications = 6",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &base(), &tunnel, &ExecOptions::from_query(&q)).unwrap();
        assert_eq!(out.early_stopped, 1, "{out:?}");
        assert!(out.rows[0].early_stopped);
        assert!(out.rows[0].passes);
        assert_eq!(
            tunnel.store().len(),
            2,
            "early stop must leave exactly the two-replication floor"
        );

        // The violated direction stops just as early.
        let q = parse(
            "EXPLORE availability SWEEP replication IN [3] \
             SUBJECT TO availability >= 2.0 \
             OPTIONS early_stop = TRUE, replications = 6",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &base(), &tunnel, &ExecOptions::from_query(&q)).unwrap();
        assert!(out.rows[0].early_stopped && !out.rows[0].passes, "{out:?}");
        assert_eq!(tunnel.store().len(), 2);

        // Without the option the full replication budget runs.
        let q = parse(
            "EXPLORE availability SWEEP replication IN [3] \
             SUBJECT TO availability >= 0.5 \
             OPTIONS replications = 6",
        )
        .unwrap();
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &base(), &tunnel, &ExecOptions::from_query(&q)).unwrap();
        assert!(!out.rows[0].early_stopped);
        assert_eq!(tunnel.store().len(), 6);
    }

    #[test]
    fn sketch_abort_stops_hopeless_latency_runs() {
        // One HDD serving ~300 uncacheable req/s is hopelessly
        // overloaded: the probe's sketch p99 blows through the ceiling
        // and the full-horizon run is skipped.
        let q = parse(
            "EXPLORE shop_p99_s SWEEP replication IN [1] \
             SUBJECT TO shop_p99_s <= 0.05 \
             OPTIONS sketch_abort = TRUE",
        )
        .unwrap();
        let sc = ScenarioBuilder::new("hopeless")
            .racks(1)
            .nodes_per_rack(1)
            .disks_per_node(1)
            .replication(1)
            .objects(100)
            .tenant(windtunnel::workload::TenantWorkload::oltp(
                "shop", 300.0, 10_000,
            ))
            .horizon_years(0.0001)
            .seed(11)
            .build();
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &sc, &tunnel, &ExecOptions::from_query(&q)).unwrap();
        assert_eq!(out.aborted, 1, "{out:?}");
        assert!(out.rows[0].aborted && !out.rows[0].passes);
        // The probe recorded its evidence: aborted provenance plus the
        // telemetry mark naming the trigger.
        tunnel.store().with(|s| {
            let probe = s
                .records()
                .find(|r| r.experiment == "perf-probe")
                .expect("probe record present");
            assert_eq!(
                probe.params.get("verdict_source"),
                Some(&wt_store::ParamValue::Str("aborted".into()))
            );
            let t = probe.telemetry.as_ref().expect("telemetry attached");
            assert_eq!(t.marks.get("abort_sketch_p99"), Some(&1));
            assert!(probe.get_metric("shop_sketch_p99_s").unwrap() > 0.05);
        });
        // Conservatism: the full run fails the same constraint.
        let tunnel = WindTunnel::new();
        let out = run_query(&q, &sc, &tunnel, &ExecOptions::default()).unwrap();
        assert!(!out.rows[0].passes && !out.rows[0].aborted, "{out:?}");
    }

    #[test]
    fn perf_metrics_runs_perf_engine() {
        let q = parse("EXPLORE shop_p95_s SWEEP disk IN [\"ssd\", \"hdd\"]").unwrap();
        let tunnel = WindTunnel::new();
        let mut sc = ScenarioBuilder::new("perf-base")
            .racks(1)
            .nodes_per_rack(10)
            .disks_per_node(4)
            .tenant(windtunnel::workload::TenantWorkload::oltp(
                "shop", 100.0, 1_000,
            ))
            .horizon_years(0.00001)
            .build();
        sc.horizon_years = 0.00001; // ~5 simulated minutes
        let out = run_query(&q, &sc, &tunnel, &ExecOptions::default()).unwrap();
        assert_eq!(out.rows.len(), 2);
        for r in &out.rows {
            assert!(r.metrics.contains_key("shop_p95_s"), "{r:?}");
        }
        // SSD beats HDD on p95 (plan puts them in deterministic order:
        // categorical tie-break is lexicographic on the debug string).
        let p95_of = |needle: &str| {
            out.rows
                .iter()
                .find(|r| r.assignment[0].1.to_string() == needle)
                .unwrap()
                .metrics["shop_p95_s"]
        };
        assert!(p95_of("ssd") < p95_of("hdd"));
    }
}
