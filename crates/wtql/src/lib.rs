//! # wt-wtql — declarative what-if queries over the wind tunnel
//!
//! The paper's §4.1–§4.2 research agenda, implemented:
//!
//! * **A declarative language** ([`lexer`], [`parser`], [`ast`]): WTQL, a
//!   small SQL-flavored language for design questions —
//!
//!   ```text
//!   EXPLORE availability, tco_usd_per_year
//!   SWEEP replication IN [3, 5],
//!         nic IN ["1g", "10g"],
//!         placement IN ["R", "RR"]
//!   SUBJECT TO availability >= 0.9999
//!   MINIMIZE tco_usd_per_year
//!   ```
//!
//! * **Scenario binding** ([`bind`]): sweep axes map onto the
//!   `windtunnel::Scenario` configuration surface (catalog parts,
//!   replication, placement, repair…).
//! * **Simulation at scale** ([`plan`], [`exec`]): the run-ordering
//!   optimizer exploits declared monotonicity for **dominance pruning**
//!   (the paper's "if the SLA fails on a 10 Gb network it will fail on
//!   1 Gb" example), runs configurations on the shared `windtunnel::farm`
//!   executor, and **aborts hopeless runs early** on a short probe horizon.
//! * **Model interactions** ([`interact`]): the declarative interaction
//!   graph that tells the engine which component models are independent —
//!   the paper's modularity/parallelization hook.
//!
//! Every executed run lands in the shared result store (`wt-store`).

pub mod ast;
pub mod bind;
pub mod error;
pub mod exec;
pub mod interact;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use ast::{Comparison, Constraint, Objective, Query, Statement, SweepAxis};
pub use bind::apply_assignment;
pub use error::WtqlError;
pub use exec::{run_query, store_stats, ExecOptions, QueryOutcome, RunRow};
pub use interact::ModelGraph;
pub use parser::{parse, parse_script};
pub use plan::{Assignment, Plan};
