//! WTQL tokenizer.

use crate::error::WtqlError;

/// A lexical token with its byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset in the source.
    pub at: usize,
    /// Token kind and payload.
    pub kind: TokenKind,
}

/// Token kinds. Keywords are case-insensitive and lexed as `Keyword`.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A reserved word, normalized to uppercase (EXPLORE, SWEEP, IN, …).
    Keyword(String),
    /// An identifier (metric or axis name), case preserved.
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// A double-quoted string literal.
    Str(String),
    /// `,`
    Comma,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<=`, `>=`, `<`, `>`, `=`
    Cmp(String),
    /// End of input.
    Eof,
}

const KEYWORDS: &[&str] = &[
    "EXPLORE", "SWEEP", "IN", "INJECT", "WHERE", "SUBJECT", "TO", "MINIMIZE", "MAXIMIZE", "AND",
    "OPTIONS", "TRUE", "FALSE", "STATS", "GUIDED",
];

/// Tokenizes WTQL source text.
pub fn lex(src: &str) -> Result<Vec<Token>, WtqlError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments: `--` to end of line.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let at = i;
        match c {
            ',' => {
                out.push(Token {
                    at,
                    kind: TokenKind::Comma,
                });
                i += 1;
            }
            '[' => {
                out.push(Token {
                    at,
                    kind: TokenKind::LBracket,
                });
                i += 1;
            }
            ']' => {
                out.push(Token {
                    at,
                    kind: TokenKind::RBracket,
                });
                i += 1;
            }
            '(' => {
                out.push(Token {
                    at,
                    kind: TokenKind::LParen,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    at,
                    kind: TokenKind::RParen,
                });
                i += 1;
            }
            '<' | '>' | '=' => {
                let mut op = c.to_string();
                if (c == '<' || c == '>') && bytes.get(i + 1) == Some(&b'=') {
                    op.push('=');
                    i += 1;
                }
                out.push(Token {
                    at,
                    kind: TokenKind::Cmp(op),
                });
                i += 1;
            }
            '"' => {
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(WtqlError::Parse {
                        at,
                        expected: "closing quote".into(),
                        found: "end of input".into(),
                    });
                }
                out.push(Token {
                    at,
                    kind: TokenKind::Str(src[start..i].to_string()),
                });
                i += 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'-' || bytes[i] == b'+')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &src[start..i];
                let value: f64 = text.parse().map_err(|_| WtqlError::Parse {
                    at,
                    expected: "number".into(),
                    found: text.to_string(),
                })?;
                out.push(Token {
                    at,
                    kind: TokenKind::Number(value),
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token {
                        at,
                        kind: TokenKind::Keyword(upper),
                    });
                } else {
                    out.push(Token {
                        at,
                        kind: TokenKind::Ident(word.to_string()),
                    });
                }
            }
            other => return Err(WtqlError::Lex { at, found: other }),
        }
    }
    out.push(Token {
        at: src.len(),
        kind: TokenKind::Eof,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("explore SWEEP Subject to"),
            vec![
                TokenKind::Keyword("EXPLORE".into()),
                TokenKind::Keyword("SWEEP".into()),
                TokenKind::Keyword("SUBJECT".into()),
                TokenKind::Keyword("TO".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            kinds(r#"3 0.9999 1e-3 "10g""#),
            vec![
                TokenKind::Number(3.0),
                TokenKind::Number(0.9999),
                TokenKind::Number(1e-3),
                TokenKind::Str("10g".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            kinds("<= >= < > ="),
            vec![
                TokenKind::Cmp("<=".into()),
                TokenKind::Cmp(">=".into()),
                TokenKind::Cmp("<".into()),
                TokenKind::Cmp(">".into()),
                TokenKind::Cmp("=".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn punctuation_and_idents() {
        assert_eq!(
            kinds("replication IN [3, 5]"),
            vec![
                TokenKind::Ident("replication".into()),
                TokenKind::Keyword("IN".into()),
                TokenKind::LBracket,
                TokenKind::Number(3.0),
                TokenKind::Comma,
                TokenKind::Number(5.0),
                TokenKind::RBracket,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("EXPLORE -- the metrics\n availability"),
            vec![
                TokenKind::Keyword("EXPLORE".into()),
                TokenKind::Ident("availability".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(lex(r#""oops"#).is_err());
    }

    #[test]
    fn bad_character_rejected() {
        match lex("a $ b") {
            Err(WtqlError::Lex { found, .. }) => assert_eq!(found, '$'),
            other => panic!("expected lex error, got {other:?}"),
        }
    }

    #[test]
    fn positions_recorded() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].at, 0);
        assert_eq!(toks[1].at, 3);
    }
}
