//! The Figure 1 computation, shared by the `fig1` binary and the farm
//! determinism integration test.
//!
//! All curve points — every (series, failure-count) pair — become one
//! explicit sweep grid executed by `windtunnel::sweep::SweepRunner`, so
//! the whole figure parallelizes across cores while the rendered table
//! stays bitwise-identical for any worker count.

use crate::{fmt_p, Table};
use windtunnel::sweep::{Assignment, SweepGrid, SweepRunner};
use wt_cluster::UnavailabilityExperiment;
use wt_sw::Placement;

/// One curve: cluster size `N`, replication `n`, placement policy.
pub type Series = (usize, usize, Placement);

/// Configuration of the Figure 1 sweep.
#[derive(Debug, Clone)]
pub struct Fig1Config {
    /// Customers (the paper uses 10,000).
    pub users: u64,
    /// Root seed shared by every series.
    pub seed: u64,
    /// Largest failure count plotted (curves run `f = 0..=max_f`).
    pub max_f: usize,
    /// Monte-Carlo trials per point (`None` = the experiment default).
    pub trials: Option<u32>,
    /// The curves, in column order.
    pub series: Vec<Series>,
}

impl Fig1Config {
    /// The paper's full figure: {R, RR} × {n=3, n=5} × {N=10, N=30}.
    pub fn paper() -> Self {
        Fig1Config {
            users: 10_000,
            seed: 2014,
            max_f: 12,
            trials: None,
            series: vec![
                (10, 3, Placement::Random),
                (10, 3, Placement::RoundRobin),
                (30, 3, Placement::Random),
                (30, 3, Placement::RoundRobin),
                (10, 5, Placement::Random),
                (10, 5, Placement::RoundRobin),
                (30, 5, Placement::Random),
                (30, 5, Placement::RoundRobin),
            ],
        }
    }

    /// The figure's smallest series (N=10, n=3, Random) at reduced trial
    /// count — the cheap configuration the determinism test sweeps.
    pub fn smallest() -> Self {
        Fig1Config {
            users: 1_000,
            seed: 2014,
            max_f: 10,
            trials: Some(400),
            series: vec![(10, 3, Placement::Random)],
        }
    }

    /// Column headers: `failures` plus one label per series.
    pub fn headers(&self) -> Vec<String> {
        let mut headers = vec!["failures".to_string()];
        headers.extend(
            self.series
                .iter()
                .map(|(n_nodes, n, p)| format!("{}-n{}-N{}", p.label(), n, n_nodes)),
        );
        headers
    }
}

/// The computed curves, one `Vec<f64>` of length `max_f + 1` per series.
#[derive(Debug, Clone)]
pub struct Fig1Curves {
    /// The configuration that produced the curves.
    pub config: Fig1Config,
    /// `curves[series][f]` = P(data unavailability) at `f` failures.
    pub curves: Vec<Vec<f64>>,
}

/// Computes every curve point on the runner's farm: the work list is the
/// flattened (series, f) grid as an explicit sweep (series-major, like
/// the table's columns), so even a single series spreads over all
/// workers.
pub fn compute(config: &Fig1Config, runner: &SweepRunner) -> Fig1Curves {
    let assignments: Vec<Assignment> = (0..config.series.len())
        .flat_map(|s| {
            (0..=config.max_f).map(move |f| {
                vec![
                    ("series".to_string(), s.into()),
                    ("f".to_string(), f.into()),
                ]
            })
        })
        .collect();
    let grid = SweepGrid::explicit("fig1", config.seed, assignments);
    let values = runner.map_points(&grid, |point, _ctx| {
        let s = point.axis_num("series") as usize;
        let f = point.axis_num("f") as usize;
        let (n_nodes, n, placement) = config.series[s];
        if f > n_nodes {
            return 1.0;
        }
        let mut exp =
            UnavailabilityExperiment::figure1(n_nodes, config.users, n, placement, config.seed);
        if let Some(trials) = config.trials {
            exp.trials = trials;
        }
        exp.run_at(f).p_unavailable
    });
    let curves = values
        .chunks(config.max_f + 1)
        .map(<[f64]>::to_vec)
        .collect();
    Fig1Curves {
        config: config.clone(),
        curves,
    }
}

impl Fig1Curves {
    /// The figure as a fixed-width table (rows = failure counts).
    pub fn table(&self) -> Table {
        let headers = self.config.headers();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(&header_refs);
        for f in 0..=self.config.max_f {
            let mut row = vec![f.to_string()];
            row.extend(self.curves.iter().map(|c| fmt_p(c[f])));
            table.row(row);
        }
        table
    }

    /// The raw series as CSV (full float precision, for plotting).
    pub fn csv(&self) -> String {
        let mut csv = self.config.headers().join(",");
        csv.push('\n');
        for f in 0..=self.config.max_f {
            csv.push_str(&f.to_string());
            for c in &self.curves {
                csv.push(',');
                csv.push_str(&format!("{}", c[f]));
            }
            csv.push('\n');
        }
        csv
    }

    /// The column index of a series, for the qualitative checks.
    pub fn col(&self, n_nodes: usize, n: usize, placement_label: &str) -> usize {
        self.config
            .series
            .iter()
            .position(|(nn, r, pl)| *nn == n_nodes && *r == n && pl.label() == placement_label)
            .expect("series exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_config_has_expected_shape() {
        let cfg = Fig1Config::smallest();
        let curves = compute(&cfg, &SweepRunner::serial());
        assert_eq!(curves.curves.len(), 1);
        assert_eq!(curves.curves[0].len(), cfg.max_f + 1);
        assert_eq!(curves.curves[0][0], 0.0, "f=0 never loses quorum");
        assert_eq!(*curves.curves[0].last().unwrap(), 1.0, "f=N is certain");
    }

    #[test]
    fn csv_and_table_are_consistent() {
        let curves = compute(&Fig1Config::smallest(), &SweepRunner::serial());
        let csv = curves.csv();
        assert_eq!(csv.lines().count(), curves.config.max_f + 2);
        assert!(csv.starts_with("failures,R-n3-N10\n"));
        let table = curves.table().render();
        assert_eq!(table.lines().count(), curves.config.max_f + 3);
    }
}
