//! **E2 — the §1 worked example**: can n−1 replication plus a faster
//! network and/or parallel repair match n-way replication's availability
//! at lower storage cost?
//!
//! Arms: rep5 baseline (1G, serial repair) vs rep4 with (a) nothing,
//! (b) 10G network, (c) parallel repair, (d) both. The paper's claim:
//! the repair-path improvements can lift the cheaper design back over
//! the SLA line.

use wt_bench::{banner, Table};
use wt_cluster::results::AvailabilityResult;
use wt_cluster::{AvailabilityModel, RebuildModel};
use wt_des::time::SimDuration;
use wt_dist::Dist;
use wt_sw::{Placement, RedundancyScheme, RepairPolicy};

const DAY: f64 = 86_400.0;

fn arm(n: usize, gbps: f64, parallel: usize) -> AvailabilityModel {
    AvailabilityModel {
        n_nodes: 30,
        redundancy: RedundancyScheme::replication(n),
        placement: Placement::Random,
        objects: 1_000,
        object_bytes: 16 << 30,
        // Aggressive failure rate so the repair window matters within a
        // tractable horizon (the *comparison* is the artifact), but kept
        // below the serial-repair queue's saturation point.
        node_ttf: Dist::weibull_mean(0.8, 40.0 * DAY),
        node_replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
        rebuild: RebuildModel::Bandwidth {
            link_gbps: gbps,
            share: 0.5,
        },
        repair: RepairPolicy {
            max_parallel: parallel,
            bandwidth_share: 0.5,
            detection_delay_s: 300.0,
        },
        switches: None,
        disks: None,
    }
}

fn run(m: &AvailabilityModel) -> AvailabilityResult {
    // Average three seeds for stability.
    let seeds = [11u64, 22, 33];
    let mut acc: Option<AvailabilityResult> = None;
    for &s in &seeds {
        let r = m.run(s, SimDuration::from_days(200.0));
        acc = Some(match acc {
            None => r,
            Some(mut a) => {
                a.availability = (a.availability + r.availability) / 2.0;
                a.unavailability_events += r.unavailability_events;
                a.objects_lost += r.objects_lost;
                a.node_failures += r.node_failures;
                a
            }
        });
    }
    acc.expect("at least one seed")
}

fn main() {
    banner(
        "E2 — repair what-if (paper §1 worked example)",
        "rep4 alone is worse than rep5; rep4 + faster network and/or parallel \
         repair recovers most of the availability at 20% less storage",
    );

    let arms: Vec<(&str, AvailabilityModel, f64)> = vec![
        ("rep5 1G serial", arm(5, 1.0, 1), 5.0),
        ("rep4 1G serial", arm(4, 1.0, 1), 4.0),
        ("rep4 10G serial", arm(4, 10.0, 1), 4.0),
        ("rep4 1G parallel16", arm(4, 1.0, 16), 4.0),
        ("rep4 10G parallel16", arm(4, 10.0, 16), 4.0),
    ];

    let mut table = Table::new(&[
        "config",
        "availability",
        "unavail events",
        "objects lost",
        "storage overhead",
    ]);
    let mut results = Vec::new();
    for (name, model, overhead) in &arms {
        let r = run(model);
        table.row(vec![
            name.to_string(),
            format!("{:.6}", r.availability),
            r.unavailability_events.to_string(),
            r.objects_lost.to_string(),
            format!("{overhead:.1}x"),
        ]);
        results.push((name.to_string(), r));
    }
    table.print();

    println!();
    let get = |n: &str| {
        &results
            .iter()
            .find(|(name, _)| name == n)
            .expect("arm exists")
            .1
    };
    let rep5 = get("rep5 1G serial");
    let rep4 = get("rep4 1G serial");
    let rep4_both = get("rep4 10G parallel16");
    println!(
        "check: rep4 plain worse than rep5: {:.6} <= {:.6} -> {}",
        rep4.availability,
        rep5.availability,
        rep4.availability <= rep5.availability
    );
    println!(
        "check: rep4 + 10G + parallel repair closes the gap: {:.6} >= {:.6} -> {}",
        rep4_both.availability,
        rep5.availability,
        rep4_both.availability >= rep5.availability
    );
    println!(
        "storage saved by rep4: {:.0}% of the rep5 bill",
        100.0 * (1.0 - 4.0 / 5.0)
    );
}
