//! **E2 — the §1 worked example**: can n−1 replication plus a faster
//! network and/or parallel repair match n-way replication's availability
//! at lower storage cost?
//!
//! Arms: rep5 baseline (1G, serial repair) vs rep4 with (a) nothing,
//! (b) 10G network, (c) parallel repair, (d) both. The paper's claim:
//! the repair-path improvements can lift the cheaper design back over
//! the SLA line. The configuration axis is a declarative [`SweepSpec`]
//! on the shared run farm: 3 CRN replications per arm (identical
//! failure traces across arms; availability averaged equal-weight,
//! counters summed). `--workers N` sizes the pool; stdout is
//! byte-identical for any value (timing goes to stderr).

use windtunnel::prelude::*;
use wt_bench::{banner, runner_from_args};
use wt_cluster::{AvailabilityModel, RebuildModel};
use wt_des::time::SimDuration;
use wt_store::SharedStore;

const DAY: f64 = 86_400.0;

fn arm(n: usize, gbps: f64, parallel: usize) -> AvailabilityModel {
    AvailabilityModel {
        n_nodes: 30,
        redundancy: RedundancyScheme::replication(n),
        placement: Placement::Random,
        objects: 1_000,
        object_bytes: 16 << 30,
        // Aggressive failure rate so the repair window matters within a
        // tractable horizon (the *comparison* is the artifact), but kept
        // below the serial-repair queue's saturation point.
        node_ttf: Dist::weibull_mean(0.8, 40.0 * DAY),
        node_replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
        rebuild: RebuildModel::Bandwidth {
            link_gbps: gbps,
            share: 0.5,
        },
        repair: RepairPolicy {
            max_parallel: parallel,
            bandwidth_share: 0.5,
            detection_delay_s: 300.0,
        },
        switches: None,
        disks: None,
        queue: QueueBackend::Heap,
        chaos: None,
    }
}

/// `(replication, link Gb/s, parallel repair slots, storage overhead)`
/// per named configuration arm.
fn arm_of(label: &str) -> (AvailabilityModel, f64) {
    match label {
        "rep5 1G serial" => (arm(5, 1.0, 1), 5.0),
        "rep4 1G serial" => (arm(4, 1.0, 1), 4.0),
        "rep4 10G serial" => (arm(4, 10.0, 1), 4.0),
        "rep4 1G parallel16" => (arm(4, 1.0, 16), 4.0),
        "rep4 10G parallel16" => (arm(4, 10.0, 16), 4.0),
        other => panic!("unknown config arm '{other}'"),
    }
}

fn main() {
    banner(
        "E2 — repair what-if (paper §1 worked example)",
        "rep4 alone is worse than rep5; rep4 + faster network and/or parallel \
         repair recovers most of the availability at 20% less storage",
    );

    let args: Vec<String> = std::env::args().collect();
    let runner = runner_from_args(&args);
    let store = SharedStore::new();

    let spec = SweepSpec::new("e2-repair-whatif")
        .axis(
            "config",
            [
                "rep5 1G serial",
                "rep4 1G serial",
                "rep4 10G serial",
                "rep4 1G parallel16",
                "rep4 10G parallel16",
            ],
        )
        .seed(2)
        .replications(3)
        .common_random_numbers()
        .aggregate("unavailability_events", MetricAgg::Sum)
        .aggregate("objects_lost", MetricAgg::Sum);

    let out = runner.run(&spec, &store, |point, rep, sink| {
        let (m, _) = arm_of(&point.axis_str("config"));
        let (r, telemetry) = m.run_observed(rep.seed, SimDuration::from_days(200.0), None);
        sink.record(
            point
                .record(spec.name(), rep.seed)
                .metric("availability", r.availability)
                .metric("unavailability_events", r.unavailability_events as f64)
                .metric("objects_lost", r.objects_lost as f64)
                .telemetry(telemetry),
        );
        [
            ("availability".to_string(), r.availability),
            (
                "unavailability_events".to_string(),
                r.unavailability_events as f64,
            ),
            ("objects_lost".to_string(), r.objects_lost as f64),
        ]
        .into()
    });

    out.report()
        .axis_column("config", "config")
        .metric_column("availability", "availability", |a| format!("{a:.6}"))
        .metric_column("unavail events", "unavailability_events", |v| {
            format!("{}", v as u64)
        })
        .metric_column("objects lost", "objects_lost", |v| format!("{}", v as u64))
        .column("storage overhead", |row| {
            format!("{:.1}x", arm_of(&row.axis_display("config")).1)
        })
        .print();
    eprintln!(
        "computed on {} farm worker(s) in {:.2}s ({} recorded run(s))",
        runner.workers(),
        out.wall_s,
        store.len()
    );

    println!();
    let avail = |label: &str| out.metric_where("config", label, "availability");
    let rep5 = avail("rep5 1G serial");
    let rep4 = avail("rep4 1G serial");
    let rep4_both = avail("rep4 10G parallel16");
    println!(
        "check: rep4 plain worse than rep5: {rep4:.6} <= {rep5:.6} -> {}",
        rep4 <= rep5
    );
    println!(
        "check: rep4 + 10G + parallel repair closes the gap: {rep4_both:.6} >= {rep5:.6} -> {}",
        rep4_both >= rep5
    );
    println!(
        "storage saved by rep4: {:.0}% of the rep5 bill",
        100.0 * (1.0 - 4.0 / 5.0)
    );
}
