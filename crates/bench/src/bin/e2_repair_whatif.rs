//! **E2 — the §1 worked example**: can n−1 replication plus a faster
//! network and/or parallel repair match n-way replication's availability
//! at lower storage cost?
//!
//! Arms: rep5 baseline (1G, serial repair) vs rep4 with (a) nothing,
//! (b) 10G network, (c) parallel repair, (d) both. The paper's claim:
//! the repair-path improvements can lift the cheaper design back over
//! the SLA line. The (arm, seed) grid runs on the shared
//! `windtunnel::farm` executor and merges per arm in run order.

use windtunnel::farm::Farm;
use wt_bench::{banner, Table};
use wt_cluster::results::AvailabilityResult;
use wt_cluster::{AvailabilityModel, RebuildModel};
use wt_des::time::SimDuration;
use wt_dist::Dist;
use wt_sw::{Placement, RedundancyScheme, RepairPolicy};

const DAY: f64 = 86_400.0;

fn arm(n: usize, gbps: f64, parallel: usize) -> AvailabilityModel {
    AvailabilityModel {
        n_nodes: 30,
        redundancy: RedundancyScheme::replication(n),
        placement: Placement::Random,
        objects: 1_000,
        object_bytes: 16 << 30,
        // Aggressive failure rate so the repair window matters within a
        // tractable horizon (the *comparison* is the artifact), but kept
        // below the serial-repair queue's saturation point.
        node_ttf: Dist::weibull_mean(0.8, 40.0 * DAY),
        node_replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
        rebuild: RebuildModel::Bandwidth {
            link_gbps: gbps,
            share: 0.5,
        },
        repair: RepairPolicy {
            max_parallel: parallel,
            bandwidth_share: 0.5,
            detection_delay_s: 300.0,
        },
        switches: None,
        disks: None,
    }
}

const SEEDS: [u64; 3] = [11, 22, 33];

/// Merges one seed's run into the arm's aggregate: availability is an
/// equal-weight mean over seeds (the old running `(a+r)/2` pairwise
/// average silently over-weighted later seeds), counters sum.
fn merge(acc: Option<AvailabilityResult>, r: AvailabilityResult) -> Option<AvailabilityResult> {
    Some(match acc {
        None => {
            let mut a = r;
            a.availability /= SEEDS.len() as f64;
            a
        }
        Some(mut a) => {
            a.availability += r.availability / SEEDS.len() as f64;
            a.unavailability_events += r.unavailability_events;
            a.objects_lost += r.objects_lost;
            a.node_failures += r.node_failures;
            a
        }
    })
}

fn main() {
    banner(
        "E2 — repair what-if (paper §1 worked example)",
        "rep4 alone is worse than rep5; rep4 + faster network and/or parallel \
         repair recovers most of the availability at 20% less storage",
    );

    let arms: Vec<(&str, AvailabilityModel, f64)> = vec![
        ("rep5 1G serial", arm(5, 1.0, 1), 5.0),
        ("rep4 1G serial", arm(4, 1.0, 1), 4.0),
        ("rep4 10G serial", arm(4, 10.0, 1), 4.0),
        ("rep4 1G parallel16", arm(4, 1.0, 16), 4.0),
        ("rep4 10G parallel16", arm(4, 10.0, 16), 4.0),
    ];

    // One farm item per (arm, seed): seeds of the same arm fold into one
    // aggregate row, in run order, as results stream in.
    let points: Vec<(usize, u64)> = (0..arms.len())
        .flat_map(|a| SEEDS.iter().map(move |&s| (a, s)))
        .collect();
    let merged: Vec<Option<AvailabilityResult>> = Farm::from_env().run_fold(
        0,
        &points,
        |&(a, seed), _ctx| arms[a].1.run(seed, SimDuration::from_days(200.0)),
        vec![None; arms.len()],
        |mut accs, idx, r| {
            let (a, _) = points[idx];
            accs[a] = merge(accs[a].take(), r);
            accs
        },
    );

    let mut table = Table::new(&[
        "config",
        "availability",
        "unavail events",
        "objects lost",
        "storage overhead",
    ]);
    let mut results = Vec::new();
    for ((name, _, overhead), r) in arms.iter().zip(merged) {
        let r = r.expect("every arm simulated");
        table.row(vec![
            name.to_string(),
            format!("{:.6}", r.availability),
            r.unavailability_events.to_string(),
            r.objects_lost.to_string(),
            format!("{overhead:.1}x"),
        ]);
        results.push((name.to_string(), r));
    }
    table.print();

    println!();
    let get = |n: &str| {
        &results
            .iter()
            .find(|(name, _)| name == n)
            .expect("arm exists")
            .1
    };
    let rep5 = get("rep5 1G serial");
    let rep4 = get("rep4 1G serial");
    let rep4_both = get("rep4 10G parallel16");
    println!(
        "check: rep4 plain worse than rep5: {:.6} <= {:.6} -> {}",
        rep4.availability,
        rep5.availability,
        rep4.availability <= rep5.availability
    );
    println!(
        "check: rep4 + 10G + parallel repair closes the gap: {:.6} >= {:.6} -> {}",
        rep4_both.availability,
        rep5.availability,
        rep4_both.availability >= rep5.availability
    );
    println!(
        "storage saved by rep4: {:.0}% of the rep5 bill",
        100.0 * (1.0 - 4.0 / 5.0)
    );
}
