//! **E6 — run-ordering + dominance pruning (§4.2)**: "if a performance
//! SLA cannot be met with a 10Gb network, then it won't be met with a 1Gb
//! network" — measure how many simulation runs the optimizer saves on a
//! multi-dimensional grid, and verify the pruned execution returns the
//! same answer. Both passes dispatch through `run_query`'s
//! [`windtunnel::sweep::SweepRunner`].

use windtunnel::prelude::*;
use wt_bench::{banner, farm_from_args, Table};
use wt_wtql::{parse, run_query, ExecOptions};

fn main() {
    banner(
        "E6 — dominance pruning over a design grid",
        "pruned execution runs strictly fewer simulations and returns the \
         identical set of SLA-passing configurations",
    );

    // `--workers N` sizes the exhaustive pass's farm pool (default host
    // cores or `WT_WORKERS`); stdout is byte-identical for any value —
    // wall-clock timing goes to stderr.
    let args: Vec<String> = std::env::args().collect();
    let workers = farm_from_args(&args).workers();

    // A 3 (replication) × 3 (nic) × 2 (repair) = 18-point grid with an
    // availability floor most configurations miss.
    let query_text = r#"
        EXPLORE availability, tco_usd_per_year
        SWEEP replication IN [2, 3, 5],
              nic IN ["1g", "10g", "40g"],
              repair_parallel IN [1, 16]
        SUBJECT TO availability >= 0.99985, objects_lost <= 0
        MINIMIZE tco_usd_per_year
    "#;
    println!("query:\n{query_text}");

    let mut base = ScenarioBuilder::new("pruning-base")
        .racks(3)
        .nodes_per_rack(10)
        .objects(1_000)
        .object_gb(32.0)
        .horizon_years(0.25)
        .seed(6)
        .build();
    // Failure pressure high enough that slow repair paths miss the floor.
    base.topology.node.ttf = Dist::weibull_mean(0.8, 40.0 * 86_400.0);
    base.repair.detection_delay_s = 600.0;

    let query = parse(query_text).expect("parses");

    let run_with = |prune: bool, threads: usize| {
        let tunnel = WindTunnel::new();
        let opts = ExecOptions {
            prune,
            threads,
            ..ExecOptions::default()
        };
        let t0 = std::time::Instant::now();
        let out = run_query(&query, &base, &tunnel, &opts).expect("runs");
        (out, t0.elapsed())
    };

    // The exhaustive pass parallelizes across the farm; the pruned pass
    // stays serial, because dominance pruning consumes results in run
    // order — which runs get skipped must not depend on completion order.
    let (full, full_t) = run_with(false, workers);
    let (pruned, pruned_t) = run_with(true, 1);
    eprintln!(
        "exhaustive {:.2}s on {workers} worker(s), pruned {:.2}s serial",
        full_t.as_secs_f64(),
        pruned_t.as_secs_f64()
    );

    let mut table = Table::new(&[
        "mode",
        "grid",
        "executed",
        "pruned",
        "passing",
        "sim events",
    ]);
    for (name, out) in [("exhaustive", &full), ("pruned", &pruned)] {
        table.row(vec![
            name.into(),
            out.rows.len().to_string(),
            out.executed.to_string(),
            out.pruned.to_string(),
            out.passing().len().to_string(),
            out.total_sim_events.to_string(),
        ]);
    }
    table.print();

    println!();
    let passing = |o: &wt_wtql::QueryOutcome| {
        let mut v: Vec<String> = o
            .passing()
            .iter()
            .map(|r| format!("{:?}", r.assignment))
            .collect();
        v.sort();
        v
    };
    println!(
        "check: identical passing sets -> {}",
        passing(&full) == passing(&pruned)
    );
    println!(
        "check: pruning saved runs -> {} ({} of {})",
        pruned.pruned > 0,
        pruned.pruned,
        pruned.rows.len()
    );
    match (full.best_row(), pruned.best_row()) {
        (Some(a), Some(b)) => println!(
            "check: same optimum -> {} ({:?})",
            a.assignment == b.assignment,
            b.assignment
        ),
        (None, None) => println!("check: both found no feasible configuration"),
        _ => println!("check: OPTIMUM MISMATCH — pruning bug"),
    }
}
