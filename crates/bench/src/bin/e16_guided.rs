//! **E16 — guided sweep execution (screen / rank / early-stop)**: run the
//! same constrained design sweep exhaustively and in `GUIDED` mode and
//! verify the planner's contract — the verdict table and the winning row
//! are identical, while the guided pass executes a fraction of the DES
//! events. The savings come from three cooperating stages: analytic
//! screening (closed-form availability bounds resolve hopeless redundancy
//! levels without simulation), surrogate ranking (visit likely-infeasible
//! points first to feed dominance pruning), and replication early-stop
//! (stop re-running a point once its constraints resolve confidently —
//! never below two recorded replications).
//!
//! The fixture is deliberately failure-heavy: ~40-day node lifetimes with
//! a 5-day detection delay, the regime where weak replication *provably*
//! misses a tight availability floor and simulating it is pure waste.

use windtunnel::prelude::*;
use wt_bench::{banner, farm_from_args, Table};
use wt_wtql::{parse, run_query, ExecOptions, QueryOutcome};

fn verdict_table(out: &QueryOutcome) -> Vec<(String, bool, bool)> {
    out.rows
        .iter()
        .map(|r| {
            let desc: Vec<String> = r
                .assignment
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            (desc.join(","), r.passes, r.pruned)
        })
        .collect()
}

fn main() {
    banner(
        "E16 — guided sweep: screen, rank, early-stop",
        "guided and exhaustive modes return the identical verdict table; \
         the guided pass runs a fraction of the DES events",
    );

    let args: Vec<String> = std::env::args().collect();
    let workers = farm_from_args(&args).workers();

    // 4 (replication) × 2 (repair) grid, 10 CRN replications per point —
    // the budget a tight confidence interval needs — under SLAs nothing
    // at this detection delay meets: the sweep's real answer is "fix
    // detection first", and guided mode proves it with a fraction of the
    // simulation. Weak replication is screened analytically (zero DES);
    // the surviving points stop after two replications because their
    // constraint intervals already resolve confidently.
    let query_text = r#"
        EXPLORE availability, tco_usd_per_year
        SWEEP replication IN [1, 2, 3, 5], repair_parallel IN [1, 4]
        SUBJECT TO availability >= 0.99985, mean_rebuild_wait_s <= 60
        MINIMIZE tco_usd_per_year
        OPTIONS prune = FALSE, replications = 10
    "#;
    println!("query:\n{query_text}");

    let mut base = ScenarioBuilder::new("guided-base")
        .racks(3)
        .nodes_per_rack(10)
        .objects(1_000)
        .object_gb(4.0)
        .horizon_years(0.25)
        .seed(16)
        .build();
    base.topology.node.ttf = Dist::weibull_mean(0.8, 40.0 * 86_400.0);
    base.repair.detection_delay_s = 5.0 * 86_400.0;

    let query = parse(query_text).expect("parses");

    let run_with = |guided: bool| {
        let tunnel = WindTunnel::new();
        let mut opts = ExecOptions::from_query(&query);
        opts.threads = workers;
        if guided {
            opts.guided = true;
            opts.screen = true;
            opts.rank = true;
            opts.early_stop = true;
            opts.sketch_abort = true;
        }
        let t0 = std::time::Instant::now();
        let out = run_query(&query, &base, &tunnel, &opts).expect("runs");
        (out, t0.elapsed())
    };

    let (full, full_t) = run_with(false);
    let (guided, guided_t) = run_with(true);
    eprintln!(
        "exhaustive {:.2}s, guided {:.2}s on {workers} worker(s)",
        full_t.as_secs_f64(),
        guided_t.as_secs_f64()
    );

    let mut table = Table::new(&[
        "mode",
        "grid",
        "executed",
        "screened",
        "early-stopped",
        "passing",
        "sim events",
    ]);
    for (name, out) in [("exhaustive", &full), ("guided", &guided)] {
        table.row(vec![
            name.into(),
            out.rows.len().to_string(),
            out.executed.to_string(),
            out.screened.to_string(),
            out.early_stopped.to_string(),
            out.passing().len().to_string(),
            out.total_sim_events.to_string(),
        ]);
    }
    table.print();

    println!();
    println!(
        "check: identical verdict tables -> {}",
        verdict_table(&full) == verdict_table(&guided)
    );
    let best = |o: &QueryOutcome| o.best_row().map(|r| r.assignment.clone());
    println!(
        "check: identical winning row -> {} ({:?})",
        best(&full) == best(&guided),
        best(&guided)
    );
    println!(
        "check: screens resolved points analytically -> {} ({} of {})",
        guided.screened > 0,
        guided.screened,
        guided.rows.len()
    );
    let reduction = full.total_sim_events as f64 / guided.total_sim_events.max(1) as f64;
    println!(
        "check: >=5x fewer DES events -> {} ({:.1}x: {} vs {})",
        reduction >= 5.0,
        reduction,
        full.total_sim_events,
        guided.total_sim_events
    );
}
