//! **E7 — simulation at scale (§4.2)**: parallel run execution speedup,
//! and events saved by aborting hopeless runs on a probe horizon.
//!
//! The `threads` knob sizes the shared `windtunnel::farm` worker pool
//! that `run_query`'s [`windtunnel::sweep::SweepRunner`] dispatches
//! onto; results are identical at every setting, only the wall-clock
//! moves.

use windtunnel::prelude::*;
use wt_bench::{banner, Table};
use wt_wtql::{parse, run_query, ExecOptions};

fn main() {
    banner(
        "E7 — parallel execution and early abort",
        "wall-clock scales down with worker threads (independent runs \
         parallelize embarrassingly); early abort cuts simulated events on \
         SLA-hopeless configurations without changing any verdict",
    );

    // ---- Parallel speedup ----------------------------------------------
    let query = parse(
        r#"EXPLORE availability
           SWEEP replication IN [2, 3, 4, 5],
                 repair_parallel IN [1, 4, 16],
                 placement IN ["R", "RR"]"#,
    )
    .expect("parses");
    let base = ScenarioBuilder::new("scale-base")
        .racks(3)
        .nodes_per_rack(10)
        .objects(20_000)
        .object_gb(16.0)
        .horizon_years(2.0)
        .seed(7)
        .build();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s) — ideal speedup is min(threads, {cores})");
    let mut table = Table::new(&["farm workers", "wall", "speedup", "ideal", "runs"]);
    let mut t1 = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let tunnel = WindTunnel::new();
        let opts = ExecOptions {
            threads,
            prune: false,
            ..ExecOptions::default()
        };
        let t0 = std::time::Instant::now();
        let out = run_query(&query, &base, &tunnel, &opts).expect("runs");
        let wall = t0.elapsed().as_secs_f64();
        if threads == 1 {
            t1 = wall;
        }
        table.row(vec![
            threads.to_string(),
            format!("{wall:.2}s"),
            format!("{:.2}x", t1 / wall),
            format!("{}x", threads.min(cores)),
            out.executed.to_string(),
        ]);
    }
    table.print();

    // ---- Early abort -----------------------------------------------------
    println!();
    let query = parse(
        r#"EXPLORE availability
           SWEEP replication IN [2, 3]
           SUBJECT TO unavailability_events <= 0
           OPTIONS prune = FALSE"#,
    )
    .expect("parses");
    // A steadily-churning cluster: failures and rebuilds all horizon long,
    // with regular quorum-loss episodes — so a zero-episodes SLA is
    // detectably hopeless within the first few simulated days, while a
    // full run would grind through 20x the events.
    let mut churning = ScenarioBuilder::new("churning")
        .racks(1)
        .nodes_per_rack(10)
        .objects(500)
        .object_gb(64.0)
        .horizon_years(2.0)
        .seed(7)
        .build();
    churning.topology.node.ttf = Dist::exponential_mean(10.0 * 86_400.0);
    churning.repair.detection_delay_s = 3_600.0;

    let mut table = Table::new(&["mode", "executed", "aborted", "sim events", "verdicts"]);
    let mut verdicts = Vec::new();
    for (name, early) in [("full runs", false), ("early abort", true)] {
        let tunnel = WindTunnel::new();
        let opts = ExecOptions {
            early_abort: early,
            probe_fraction: 0.05,
            prune: false,
            ..ExecOptions::default()
        };
        let out = run_query(&query, &churning, &tunnel, &opts).expect("runs");
        let verdict: Vec<bool> = out.rows.iter().map(|r| r.passes).collect();
        table.row(vec![
            name.into(),
            out.executed.to_string(),
            out.aborted.to_string(),
            out.total_sim_events.to_string(),
            format!("{verdict:?}"),
        ]);
        verdicts.push((out.total_sim_events, verdict));
    }
    table.print();

    println!();
    println!(
        "check: same verdicts with and without abort -> {}",
        verdicts[0].1 == verdicts[1].1
    );
    println!(
        "check: events saved by abort -> {} ({} vs {})",
        verdicts[1].0 < verdicts[0].0,
        verdicts[1].0,
        verdicts[0].0
    );
}
