//! **E5 — validating the simulator against analytical models (§4.3 /
//! §2.2)**: where closed forms exist, the DES must match them; where the
//! paper says closed forms break (non-exponential laws), show the
//! exponential-assuming model drifting while the simulator keeps going.
//!
//! Both validation batches — the queueing table and the availability
//! replications — run on the shared `windtunnel::farm` executor with
//! sharded recording (`--workers N` sizes the pool, default host cores
//! or `WT_WORKERS`). Every run lands in the result store (`e5-queue` /
//! `e5-avail` records, the latter with full engine telemetry attached),
//! exported with `--jsonl <path>`. stdout is byte-identical for any
//! worker count.

use wt_analytic::{Mg1, Mm1, Mmc, RepairableReplicas};
use wt_bench::queuesim::QueueSim;
use wt_bench::{banner, farm_from_args, flag_value, Table};
use wt_cluster::{AvailabilityModel, RebuildModel};
use wt_des::time::SimDuration;
use wt_dist::Dist;
use wt_store::{RecordSink, RunRecord, SharedStore};
use wt_sw::{Placement, RedundancyScheme, RepairPolicy};

const DAY: f64 = 86_400.0;

fn main() {
    banner(
        "E5 — simulator vs analytical models",
        "DES matches M/M/1, M/M/c, M/G/1 and the exponential Markov chain \
         to within Monte-Carlo noise; with Weibull failures at the same \
         mean, the exponential Markov prediction is biased — the paper's \
         case for simulation",
    );

    let args: Vec<String> = std::env::args().collect();
    let farm = farm_from_args(&args);
    let store = SharedStore::new();

    // ---- Queueing validation -------------------------------------------
    let runs: Vec<(&str, QueueSim, f64)> = vec![
        (
            "M/M/1 (rho=0.8)",
            QueueSim {
                interarrival: Dist::exponential(8.0),
                service: Dist::exponential(10.0),
                servers: 1,
            },
            Mm1::new(8.0, 10.0).wq(),
        ),
        (
            "M/M/4 (rho=0.625)",
            QueueSim {
                interarrival: Dist::exponential(10.0),
                service: Dist::exponential(4.0),
                servers: 4,
            },
            Mmc::new(10.0, 4.0, 4).wq(),
        ),
        (
            "M/G/1 lognormal cv=1.5",
            QueueSim {
                interarrival: Dist::exponential(8.0),
                service: Dist::lognormal_mean_cv(0.08, 1.5),
                servers: 1,
            },
            Mg1::new(8.0, Dist::lognormal_mean_cv(0.08, 1.5)).wq(),
        ),
        (
            "M/D/1 (P-K, zero var)",
            QueueSim {
                interarrival: Dist::exponential(8.0),
                service: Dist::deterministic(0.1),
                servers: 1,
            },
            Mg1::new(8.0, Dist::deterministic(0.1)).wq(),
        ),
    ];
    let wqs = farm.run_recorded(0, &runs, &store, |(name, sim, want), _ctx, shard| {
        let stats = sim.run(300_000, 5);
        shard.record(
            RunRecord::new("e5-queue", 0)
                .param("model", *name)
                .metric("sim_wq", stats.wq)
                .metric("formula_wq", *want),
        );
        stats.wq
    });
    let mut table = Table::new(&["model", "sim Wq", "formula Wq", "rel err"]);
    for ((name, _, want), wq) in runs.iter().zip(&wqs) {
        table.row(vec![
            (*name).into(),
            format!("{wq:.5}"),
            format!("{want:.5}"),
            format!("{:.1}%", 100.0 * (wq - want).abs() / want),
        ]);
    }
    table.print();

    // ---- Availability validation ---------------------------------------
    println!();
    const LAMBDA: f64 = 1.0 / (30.0 * DAY);
    const MU: f64 = 1.0 / DAY;
    let mk = |ttf: Dist| AvailabilityModel {
        n_nodes: 10,
        redundancy: RedundancyScheme::replication(5),
        placement: Placement::Random,
        objects: 1,
        object_bytes: 1,
        node_ttf: ttf,
        node_replace: Dist::deterministic(1.0),
        rebuild: RebuildModel::Timed(Dist::exponential(MU)),
        repair: RepairPolicy {
            max_parallel: 1024,
            bandwidth_share: 1.0,
            detection_delay_s: 0.0,
        },
        switches: None,
        disks: None,
    };
    // One flat work list: (failure law, rebuild law, rep seed) per run.
    const REPS: u64 = 8;
    let mut jobs: Vec<(&str, Dist, u64)> = Vec::new();
    for law in ["exponential", "weibull"] {
        for s in 0..REPS {
            let ttf = match law {
                "exponential" => Dist::exponential(LAMBDA),
                _ => Dist::weibull_mean(0.7, 30.0 * DAY),
            };
            jobs.push((law, ttf, s));
        }
    }
    let avails = farm.run_recorded(5, &jobs, &store, |(law, ttf, seed), _ctx, shard| {
        let (r, t) = mk(ttf.clone()).run_observed(*seed, SimDuration::from_years(40.0), None);
        shard.record(
            RunRecord::new("e5-avail", *seed)
                .param("ttf", *law)
                .metric("availability", r.availability)
                .metric("node_failures", r.node_failures as f64)
                .telemetry(t),
        );
        (*law, r.availability)
    });
    let mean = |law: &str| {
        let picked: Vec<f64> = avails
            .iter()
            .filter(|(l, _)| *l == law)
            .map(|(_, a)| *a)
            .collect();
        picked.iter().sum::<f64>() / picked.len() as f64
    };
    let markov = RepairableReplicas::new(5, LAMBDA, MU, true).availability(3);
    let sim_exp = mean("exponential");
    let sim_weib = mean("weibull");

    let mut table = Table::new(&["model", "unavailability (1-A)"]);
    table.row(vec![
        "Markov chain (exp)".into(),
        format!("{:.3e}", 1.0 - markov),
    ]);
    table.row(vec![
        "DES, exponential TTF".into(),
        format!("{:.3e}", 1.0 - sim_exp),
    ]);
    table.row(vec![
        "DES, Weibull(0.7) TTF same mean".into(),
        format!("{:.3e}", 1.0 - sim_weib),
    ]);
    table.print();

    if let Some(path) = flag_value(&args, "--jsonl") {
        if let Err(e) = store.with(|s| s.save_jsonl(std::path::Path::new(path))) {
            eprintln!("error: failed to write --jsonl {path}: {e}");
            std::process::exit(1);
        }
        println!("runs written to {path}");
    }

    println!();
    println!(
        "check: DES(exp) within 50% of Markov: {}",
        ((1.0 - sim_exp) - (1.0 - markov)).abs() < 0.5 * (1.0 - markov)
    );
    println!(
        "check: Weibull regime diverges from the exponential prediction: {}",
        ((1.0 - sim_weib) - (1.0 - markov)).abs() > 0.25 * (1.0 - markov)
    );
    println!(
        "bias if one trusted the exponential model under Weibull reality: {:.1}x",
        (1.0 - sim_weib) / (1.0 - markov)
    );
}
