//! **E5 — validating the simulator against analytical models (§4.3 /
//! §2.2)**: where closed forms exist, the DES must match them; where the
//! paper says closed forms break (non-exponential laws), show the
//! exponential-assuming model drifting while the simulator keeps going.

use wt_analytic::{Mg1, Mm1, Mmc, RepairableReplicas};
use wt_bench::queuesim::QueueSim;
use wt_bench::{banner, Table};
use wt_cluster::{AvailabilityModel, RebuildModel};
use wt_des::time::SimDuration;
use wt_dist::Dist;
use wt_sw::{Placement, RedundancyScheme, RepairPolicy};

const DAY: f64 = 86_400.0;

fn main() {
    banner(
        "E5 — simulator vs analytical models",
        "DES matches M/M/1, M/M/c, M/G/1 and the exponential Markov chain \
         to within Monte-Carlo noise; with Weibull failures at the same \
         mean, the exponential Markov prediction is biased — the paper's \
         case for simulation",
    );

    // ---- Queueing validation -------------------------------------------
    let mut table = Table::new(&["model", "sim Wq", "formula Wq", "rel err"]);
    let runs: Vec<(&str, QueueSim, f64)> = vec![
        (
            "M/M/1 (rho=0.8)",
            QueueSim {
                interarrival: Dist::exponential(8.0),
                service: Dist::exponential(10.0),
                servers: 1,
            },
            Mm1::new(8.0, 10.0).wq(),
        ),
        (
            "M/M/4 (rho=0.625)",
            QueueSim {
                interarrival: Dist::exponential(10.0),
                service: Dist::exponential(4.0),
                servers: 4,
            },
            Mmc::new(10.0, 4.0, 4).wq(),
        ),
        (
            "M/G/1 lognormal cv=1.5",
            QueueSim {
                interarrival: Dist::exponential(8.0),
                service: Dist::lognormal_mean_cv(0.08, 1.5),
                servers: 1,
            },
            Mg1::new(8.0, Dist::lognormal_mean_cv(0.08, 1.5)).wq(),
        ),
        (
            "M/D/1 (P-K, zero var)",
            QueueSim {
                interarrival: Dist::exponential(8.0),
                service: Dist::deterministic(0.1),
                servers: 1,
            },
            Mg1::new(8.0, Dist::deterministic(0.1)).wq(),
        ),
    ];
    for (name, sim, want) in runs {
        let stats = sim.run(300_000, 5);
        table.row(vec![
            name.into(),
            format!("{:.5}", stats.wq),
            format!("{want:.5}"),
            format!("{:.1}%", 100.0 * (stats.wq - want).abs() / want),
        ]);
    }
    table.print();

    // ---- Availability validation ---------------------------------------
    println!();
    const LAMBDA: f64 = 1.0 / (30.0 * DAY);
    const MU: f64 = 1.0 / DAY;
    let mk = |ttf: Dist| AvailabilityModel {
        n_nodes: 10,
        redundancy: RedundancyScheme::replication(5),
        placement: Placement::Random,
        objects: 1,
        object_bytes: 1,
        node_ttf: ttf,
        node_replace: Dist::deterministic(1.0),
        rebuild: RebuildModel::Timed(Dist::exponential(MU)),
        repair: RepairPolicy {
            max_parallel: 1024,
            bandwidth_share: 1.0,
            detection_delay_s: 0.0,
        },
        switches: None,
        disks: None,
    };
    let average = |m: &AvailabilityModel, reps: u64| {
        (0..reps)
            .map(|s| m.run(s, SimDuration::from_years(40.0)).availability)
            .sum::<f64>()
            / reps as f64
    };
    let markov = RepairableReplicas::new(5, LAMBDA, MU, true).availability(3);
    let sim_exp = average(&mk(Dist::exponential(LAMBDA)), 8);
    let sim_weib = average(&mk(Dist::weibull_mean(0.7, 30.0 * DAY)), 8);

    let mut table = Table::new(&["model", "unavailability (1-A)"]);
    table.row(vec![
        "Markov chain (exp)".into(),
        format!("{:.3e}", 1.0 - markov),
    ]);
    table.row(vec![
        "DES, exponential TTF".into(),
        format!("{:.3e}", 1.0 - sim_exp),
    ]);
    table.row(vec![
        "DES, Weibull(0.7) TTF same mean".into(),
        format!("{:.3e}", 1.0 - sim_weib),
    ]);
    table.print();

    println!();
    println!(
        "check: DES(exp) within 50% of Markov: {}",
        ((1.0 - sim_exp) - (1.0 - markov)).abs() < 0.5 * (1.0 - markov)
    );
    println!(
        "check: Weibull regime diverges from the exponential prediction: {}",
        ((1.0 - sim_weib) - (1.0 - markov)).abs() > 0.25 * (1.0 - markov)
    );
    println!(
        "bias if one trusted the exponential model under Weibull reality: {:.1}x",
        (1.0 - sim_weib) / (1.0 - markov)
    );
}
