//! **E5 — validating the simulator against analytical models (§4.3 /
//! §2.2)**: where closed forms exist, the DES must match them; where the
//! paper says closed forms break (non-exponential laws), show the
//! exponential-assuming model drifting while the simulator keeps going.
//!
//! Both validation batches — the queueing table and the availability
//! replications — are declarative [`SweepSpec`]s executed by the shared
//! [`windtunnel::sweep::SweepRunner`] with sharded recording into one
//! result store
//! (`--workers N` sizes the pool, default host cores or `WT_WORKERS`).
//! Every run lands in the store (`e5-queue` / `e5-avail` records, the
//! latter with full engine telemetry attached), exported with
//! `--jsonl <path>`. stdout is byte-identical for any worker count.

use wt_analytic::{Mg1, Mm1, Mmc, RepairableReplicas};
use wt_bench::queuesim::QueueSim;
use wt_bench::{banner, flag_value, runner_from_args, Table};
use wt_cluster::{AvailabilityModel, RebuildModel};
use wt_des::time::SimDuration;
use wt_des::QueueBackend;
use wt_dist::Dist;
use wt_store::SharedStore;
use wt_sw::{Placement, RedundancyScheme, RepairPolicy};

use windtunnel::sweep::SweepSpec;

const DAY: f64 = 86_400.0;

fn queue_arm(model: &str) -> (QueueSim, f64) {
    match model {
        "M/M/1 (rho=0.8)" => (
            QueueSim {
                interarrival: Dist::exponential(8.0),
                service: Dist::exponential(10.0),
                servers: 1,
            },
            Mm1::new(8.0, 10.0).wq(),
        ),
        "M/M/4 (rho=0.625)" => (
            QueueSim {
                interarrival: Dist::exponential(10.0),
                service: Dist::exponential(4.0),
                servers: 4,
            },
            Mmc::new(10.0, 4.0, 4).wq(),
        ),
        "M/G/1 lognormal cv=1.5" => (
            QueueSim {
                interarrival: Dist::exponential(8.0),
                service: Dist::lognormal_mean_cv(0.08, 1.5),
                servers: 1,
            },
            Mg1::new(8.0, Dist::lognormal_mean_cv(0.08, 1.5)).wq(),
        ),
        "M/D/1 (P-K, zero var)" => (
            QueueSim {
                interarrival: Dist::exponential(8.0),
                service: Dist::deterministic(0.1),
                servers: 1,
            },
            Mg1::new(8.0, Dist::deterministic(0.1)).wq(),
        ),
        other => panic!("unknown queue model '{other}'"),
    }
}

fn main() {
    banner(
        "E5 — simulator vs analytical models",
        "DES matches M/M/1, M/M/c, M/G/1 and the exponential Markov chain \
         to within Monte-Carlo noise; with Weibull failures at the same \
         mean, the exponential Markov prediction is biased — the paper's \
         case for simulation",
    );

    let args: Vec<String> = std::env::args().collect();
    let runner = runner_from_args(&args);
    let store = SharedStore::new();

    // ---- Queueing validation -------------------------------------------
    // CRN: every queue model consumes the same arrival stream seed.
    let queue_spec = SweepSpec::new("e5-queue")
        .axis(
            "model",
            [
                "M/M/1 (rho=0.8)",
                "M/M/4 (rho=0.625)",
                "M/G/1 lognormal cv=1.5",
                "M/D/1 (P-K, zero var)",
            ],
        )
        .seed(5)
        .common_random_numbers();
    let queues = runner.run(&queue_spec, &store, |point, rep, sink| {
        let (sim, want) = queue_arm(&point.axis_str("model"));
        let stats = sim.run(300_000, rep.seed);
        sink.record(
            point
                .record(queue_spec.name(), rep.seed)
                .metric("sim_wq", stats.wq)
                .metric("formula_wq", want),
        );
        [
            ("sim_wq".to_string(), stats.wq),
            ("formula_wq".to_string(), want),
        ]
        .into()
    });
    queues
        .report()
        .axis_column("model", "model")
        .metric_column("sim Wq", "sim_wq", |v| format!("{v:.5}"))
        .metric_column("formula Wq", "formula_wq", |v| format!("{v:.5}"))
        .column("rel err", |row| {
            let (wq, want) = (row.metric("sim_wq"), row.metric("formula_wq"));
            format!("{:.1}%", 100.0 * (wq - want).abs() / want)
        })
        .print();

    // ---- Availability validation ---------------------------------------
    println!();
    const LAMBDA: f64 = 1.0 / (30.0 * DAY);
    const MU: f64 = 1.0 / DAY;
    let mk = |ttf: Dist| AvailabilityModel {
        n_nodes: 10,
        redundancy: RedundancyScheme::replication(5),
        placement: Placement::Random,
        objects: 1,
        object_bytes: 1,
        node_ttf: ttf,
        node_replace: Dist::deterministic(1.0),
        rebuild: RebuildModel::Timed(Dist::exponential(MU)),
        repair: RepairPolicy {
            max_parallel: 1024,
            bandwidth_share: 1.0,
            detection_delay_s: 0.0,
        },
        switches: None,
        disks: None,
        queue: QueueBackend::Heap,
        chaos: None,
    };
    // 8 CRN replications per failure law: both laws face the same seeds,
    // so the Weibull-vs-exponential gap is the law's, not the sampler's.
    let avail_spec = SweepSpec::new("e5-avail")
        .axis("ttf", ["exponential", "weibull"])
        .seed(5)
        .replications(8)
        .common_random_numbers();
    let avails = runner.run(&avail_spec, &store, |point, rep, sink| {
        let ttf = match point.axis_str("ttf").as_str() {
            "exponential" => Dist::exponential(LAMBDA),
            _ => Dist::weibull_mean(0.7, 30.0 * DAY),
        };
        let (r, t) = mk(ttf).run_observed(rep.seed, SimDuration::from_years(40.0), None);
        sink.record(
            point
                .record(avail_spec.name(), rep.seed)
                .metric("availability", r.availability)
                .metric("node_failures", r.node_failures as f64)
                .telemetry(t),
        );
        [("availability".to_string(), r.availability)].into()
    });
    let markov = RepairableReplicas::new(5, LAMBDA, MU, true).availability(3);
    let sim_exp = avails.metric_where("ttf", "exponential", "availability");
    let sim_weib = avails.metric_where("ttf", "weibull", "availability");

    let mut table = Table::new(&["model", "unavailability (1-A)"]);
    table.row(vec![
        "Markov chain (exp)".into(),
        format!("{:.3e}", 1.0 - markov),
    ]);
    table.row(vec![
        "DES, exponential TTF".into(),
        format!("{:.3e}", 1.0 - sim_exp),
    ]);
    table.row(vec![
        "DES, Weibull(0.7) TTF same mean".into(),
        format!("{:.3e}", 1.0 - sim_weib),
    ]);
    table.print();
    eprintln!(
        "computed on {} farm worker(s) in {:.2}s ({} recorded run(s))",
        runner.workers(),
        queues.wall_s + avails.wall_s,
        store.len()
    );

    if let Some(path) = flag_value(&args, "--jsonl") {
        if let Err(e) = store.with(|s| s.save_jsonl(std::path::Path::new(path))) {
            eprintln!("error: failed to write --jsonl {path}: {e}");
            std::process::exit(1);
        }
        println!("runs written to {path}");
    }

    println!();
    println!(
        "check: DES(exp) within 50% of Markov: {}",
        ((1.0 - sim_exp) - (1.0 - markov)).abs() < 0.5 * (1.0 - markov)
    );
    println!(
        "check: Weibull regime diverges from the exponential prediction: {}",
        ((1.0 - sim_weib) - (1.0 - markov)).abs() > 0.25 * (1.0 - markov)
    );
    println!(
        "bias if one trusted the exponential model under Weibull reality: {:.1}x",
        (1.0 - sim_weib) / (1.0 - markov)
    );
}
