//! **E13 — chaos scenarios: independent vs correlated failures (§2.1)**:
//! the same node-downtime budget hurts very differently depending on how
//! it is spent. Ten scattered single-node maintenance windows barely
//! register against 3-way quorums; the identical node-seconds taken as
//! one power-domain loss breaks every rack-colocated quorum at once. A
//! third arm spends the window as a *gray-failure storm* — no downtime at
//! all, but rebuilds crossing the limping rack neighborhood slow by an
//! order of magnitude, eroding the repair margin that downtime metrics
//! never see.
//!
//! The three arms run as a declarative [`SweepSpec`] with 3 CRN
//! replications, so every arm faces the same organic failure trace and
//! the measured gap is the injection schedule alone. `--workers N` sizes
//! the pool and `--queue heap|calendar` picks the event-list backend;
//! stdout is byte-identical for any combination (timing goes to stderr).
//! `--smoke` shrinks the horizon and object count for CI.

use windtunnel::prelude::*;
use wt_bench::{banner, queue_from_args, runner_from_args};
use wt_cluster::chaos::ChaosConfig;
use wt_cluster::{AvailabilityModel, FaultKind, FaultSchedule, RebuildModel};
use wt_des::time::SimDuration;
use wt_store::SharedStore;

const DAY: f64 = 86_400.0;
const YEAR: f64 = 365.0 * DAY;
const NODES_PER_RACK: usize = 10;

/// The chaos schedule for one arm. Every arm's *downtime* budget is
/// 10 nodes x 1 window; the gray arm spends the same window limping
/// instead of dark (gray failures page nobody, so they persist far
/// longer than a crash-repair cycle).
fn schedule(arm: &str, horizon_s: f64) -> FaultSchedule {
    // ~10_000 s at the full 1-year horizon, scaled so --smoke keeps the
    // same shape.
    let window_s = horizon_s / 3_150.0;
    match arm {
        "independent" => {
            // One node at a time, scattered over nodes and time.
            let mut s = FaultSchedule::new();
            for i in 0..10 {
                s = s.rule(
                    "scattered-maintenance",
                    (0.05 + 0.09 * i as f64) * horizon_s,
                    FaultKind::MaintenanceWindow {
                        first_node: i * 6,
                        nodes: 1,
                        duration_s: window_s,
                    },
                );
            }
            s
        }
        "correlated" => FaultSchedule::new().rule(
            "power-domain-loss",
            0.5 * horizon_s,
            FaultKind::PowerDomainLoss {
                first_rack: 0,
                racks: 1,
                restore_s: window_s,
            },
        ),
        "gray_storm" => FaultSchedule::new().rule(
            "undetected-disk-storm",
            0.4 * horizon_s,
            FaultKind::GrayStorm {
                spec: LimpwareSpec::degraded_disk_fixed(1.0, 20.0),
                center_rack: 0,
                radius_racks: 1,
                duration_s: 0.16 * horizon_s,
            },
        ),
        other => panic!("unknown arm '{other}'"),
    }
}

fn model(arm: &str, horizon_s: f64, objects: u64, queue: QueueBackend) -> AvailabilityModel {
    AvailabilityModel {
        n_nodes: 60,
        redundancy: RedundancyScheme::replication(3),
        placement: Placement::Random,
        objects,
        object_bytes: 8 << 30,
        node_ttf: Dist::exponential_mean(1.0 * YEAR),
        node_replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
        rebuild: RebuildModel::Bandwidth {
            link_gbps: 10.0,
            share: 0.5,
        },
        repair: RepairPolicy {
            max_parallel: 16,
            bandwidth_share: 0.5,
            detection_delay_s: 300.0,
        },
        switches: None,
        disks: None,
        queue,
        chaos: Some(ChaosConfig {
            schedule: schedule(arm, horizon_s),
            nodes_per_rack: NODES_PER_RACK,
        }),
    }
}

fn main() {
    banner(
        "E13 — chaos scenarios: spending one downtime budget three ways",
        "ten scattered single-node windows, one power-domain loss of the \
         same node-seconds, and a gray-failure storm that takes nothing \
         down at all — identical budgets, different failure classes, very \
         different availability",
    );

    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let runner = runner_from_args(&args);
    let queue = queue_from_args(&args);
    let store = SharedStore::new();

    let (horizon_years, objects) = if smoke { (0.25, 500) } else { (1.0, 2_000) };
    let horizon_s = horizon_years * YEAR;

    let spec = SweepSpec::new("e13-chaos")
        .axis("failure_mode", ["independent", "correlated", "gray_storm"])
        .seed(13)
        .replications(3)
        .common_random_numbers()
        .aggregate("unavailability_events", MetricAgg::Sum)
        .aggregate("objects_lost", MetricAgg::Sum);

    let out = runner.run(&spec, &store, |point, rep, sink| {
        let m = model(&point.axis_str("failure_mode"), horizon_s, objects, queue);
        let (r, telemetry) = m.run_observed(rep.seed, SimDuration::from_years(horizon_years), None);
        sink.record(
            point
                .record(spec.name(), rep.seed)
                .metric("availability", r.availability)
                .metric("unavailability_events", r.unavailability_events as f64)
                .metric("objects_lost", r.objects_lost as f64)
                .metric("mean_rebuild_wait_s", r.mean_rebuild_wait_s)
                .telemetry(telemetry),
        );
        [
            ("availability".to_string(), r.availability),
            (
                "unavailability_events".to_string(),
                r.unavailability_events as f64,
            ),
            ("objects_lost".to_string(), r.objects_lost as f64),
            ("mean_rebuild_wait_s".to_string(), r.mean_rebuild_wait_s),
        ]
        .into()
    });

    out.report()
        .axis_column("failure mode", "failure_mode")
        .metric_column("availability", "availability", |a| format!("{a:.7}"))
        .metric_column("unavail events", "unavailability_events", |v| {
            format!("{}", v as u64)
        })
        .metric_column("objects lost", "objects_lost", |v| format!("{}", v as u64))
        .metric_column("mean rebuild wait", "mean_rebuild_wait_s", |v| {
            format!("{v:.0}s")
        })
        .print();
    eprintln!(
        "computed on {} farm worker(s) in {:.2}s ({} recorded run(s))",
        runner.workers(),
        out.wall_s,
        store.len()
    );

    println!();
    let arm = |name: &str| {
        out.rows
            .iter()
            .find(|r| r.matches("failure_mode", name))
            .expect("arm")
    };
    let independent = arm("independent").metric("unavailability_events") as u64;
    let correlated = arm("correlated").metric("unavailability_events") as u64;
    println!(
        "check: equal downtime budgets, unequal damage: scattered {} vs \
         correlated {} unavailability episodes -> {}x",
        independent,
        correlated,
        correlated / independent.max(1)
    );
    let gray_wait = arm("gray_storm").metric("mean_rebuild_wait_s");
    let indep_wait = arm("independent").metric("mean_rebuild_wait_s");
    println!(
        "check: the gray storm takes zero nodes down yet stretches mean \
         rebuild wait {:.0}s -> {:.0}s ({:.1}x) — repair margin erodes \
         where downtime dashboards show nothing",
        indep_wait,
        gray_wait,
        gray_wait / indep_wait.max(1.0)
    );
    let fired = |mark: &str| {
        store.with(|s| {
            s.records()
                .filter_map(|r| r.telemetry.as_ref())
                .filter_map(|t| t.marks.get(mark).copied())
                .sum::<u64>()
        })
    };
    println!(
        "check: injections recorded in run telemetry: maintenance {}, \
         power loss {}, gray storm {}",
        fired("inject_maintenance"),
        fired("inject_power_loss"),
        fired("inject_gray_storm"),
    );
}
