//! **E9 — limpware (§4.5, ref \[5\])**: a component that *degrades* is
//! worse than one that *dies*, because the system keeps routing work to
//! it. Compare healthy vs fail-stop vs limping-NIC tails.

use wt_bench::{banner, fmt_secs, Table};
use wt_cluster::PerfModel;
use wt_dist::Dist;
use wt_hw::{catalog, LimpwareSpec, TopologySpec};
use wt_sw::{Placement, RedundancyScheme};
use wt_workload::TenantWorkload;

fn model() -> PerfModel {
    PerfModel {
        topology: TopologySpec {
            racks: 2,
            nodes_per_rack: 5,
            node: catalog::node_storage_server(catalog::ssd_sata_1t(), 4, catalog::nic_10g()),
            tor: catalog::switch_tor_48x10g(),
            agg: catalog::switch_agg_32x40g(),
            oversubscription: 4.0,
        },
        redundancy: RedundancyScheme::replication(3),
        placement: Placement::Random,
        tenants: vec![TenantWorkload::oltp("shop", 400.0, 100_000)],
        limpware: None,
        inject_failures: false,
        node_ttf: None,
        horizon_s: 180.0,
    }
}

fn main() {
    banner(
        "E9 — limpware vs fail-stop",
        "a NIC running 100x slow (but 'up') hurts tail latency more than a \
         cleanly failed node, because replica selection keeps using it — \
         the paper's argument for modeling performance-degradation faults",
    );

    let arms: Vec<(&str, PerfModel)> = vec![
        ("healthy", model()),
        ("fail-stop (1 node down)", {
            let mut m = model();
            m.inject_failures = true;
            // One early, long-lasting failure: node TTF ~5s once, repair slow.
            m.node_ttf = Some(Dist::pareto(5.0, 3.0));
            m.topology.node.repair = Dist::deterministic(1e6);
            m
        }),
        ("limpware ~30% NICs ~100x slow", {
            let mut m = model();
            m.limpware = Some(LimpwareSpec::degraded_nic(0.30));
            m
        }),
    ];

    let mut table = Table::new(&["arm", "p50", "p95", "p99", "mean", "failed"]);
    let mut tails = Vec::new();
    for (name, m) in &arms {
        let r = m.run(9);
        let t = &r.tenants[0];
        table.row(vec![
            name.to_string(),
            fmt_secs(t.p50_s),
            fmt_secs(t.p95_s),
            fmt_secs(t.p99_s),
            fmt_secs(t.mean_s),
            t.failed.to_string(),
        ]);
        tails.push((name.to_string(), t.p99_s));
    }
    table.print();

    println!();
    let p99 = |n: &str| tails.iter().find(|(k, _)| k.starts_with(n)).expect("arm").1;
    println!(
        "check: limpware p99 ({}) > fail-stop p99 ({}) -> {}",
        fmt_secs(p99("limpware")),
        fmt_secs(p99("fail-stop")),
        p99("limpware") > p99("fail-stop")
    );
    println!(
        "check: limpware p99 ({}) >> healthy p99 ({}) -> {}",
        fmt_secs(p99("limpware")),
        fmt_secs(p99("healthy")),
        p99("limpware") > 2.0 * p99("healthy")
    );
}
