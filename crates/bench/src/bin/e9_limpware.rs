//! **E9 — limpware (§4.5, ref \[5\])**: a component that *degrades* is
//! worse than one that *dies*, because the system keeps routing work to
//! it. Compare healthy vs fail-stop vs limping-NIC tails.
//!
//! The three fault arms are a declarative [`SweepSpec`] on the shared
//! run farm (CRN: each arm replays the same seed), with per-run records
//! and telemetry in the result store. `--workers N` sizes the pool;
//! stdout is byte-identical for any value (timing goes to stderr).

use windtunnel::prelude::*;
use wt_bench::{banner, fmt_secs, runner_from_args};
use wt_cluster::PerfModel;
use wt_hw::{catalog, TopologySpec};
use wt_store::SharedStore;

fn model() -> PerfModel {
    PerfModel {
        topology: TopologySpec {
            racks: 2,
            nodes_per_rack: 5,
            node: catalog::node_storage_server(catalog::ssd_sata_1t(), 4, catalog::nic_10g()),
            tor: catalog::switch_tor_48x10g(),
            agg: catalog::switch_agg_32x40g(),
            oversubscription: 4.0,
        },
        redundancy: RedundancyScheme::replication(3),
        placement: Placement::Random,
        tenants: vec![TenantWorkload::oltp("shop", 400.0, 100_000)],
        limpware: None,
        inject_failures: false,
        node_ttf: None,
        horizon_s: 180.0,
        queue: QueueBackend::Heap,
        chaos: None,
    }
}

fn arm_model(arm: &str) -> PerfModel {
    let mut m = model();
    match arm {
        "healthy" => {}
        "fail-stop (1 node down)" => {
            m.inject_failures = true;
            // One early, long-lasting failure: node TTF ~5s once, repair slow.
            m.node_ttf = Some(Dist::pareto(5.0, 3.0));
            m.topology.node.repair = Dist::deterministic(1e6);
        }
        "limpware ~30% NICs ~100x slow" => {
            m.limpware = Some(LimpwareSpec::degraded_nic(0.30));
        }
        other => panic!("unknown arm '{other}'"),
    }
    m
}

fn main() {
    banner(
        "E9 — limpware vs fail-stop",
        "a NIC running 100x slow (but 'up') hurts tail latency more than a \
         cleanly failed node, because replica selection keeps using it — \
         the paper's argument for modeling performance-degradation faults",
    );

    let args: Vec<String> = std::env::args().collect();
    let runner = runner_from_args(&args);
    let store = SharedStore::new();

    let spec = SweepSpec::new("e9-limpware")
        .axis(
            "arm",
            [
                "healthy",
                "fail-stop (1 node down)",
                "limpware ~30% NICs ~100x slow",
            ],
        )
        .seed(9)
        .common_random_numbers();

    let out = runner.run(&spec, &store, |point, rep, sink| {
        let arm = point.axis_str("arm");
        let (r, telemetry) = arm_model(&arm).run_observed(rep.seed, None);
        let t = &r.tenants[0];
        sink.record(
            point
                .record(spec.name(), rep.seed)
                .metric("p50_s", t.p50_s)
                .metric("p95_s", t.p95_s)
                .metric("p99_s", t.p99_s)
                .metric("mean_s", t.mean_s)
                .metric("failed", t.failed as f64)
                .telemetry(telemetry),
        );
        [
            ("p50_s".to_string(), t.p50_s),
            ("p95_s".to_string(), t.p95_s),
            ("p99_s".to_string(), t.p99_s),
            ("mean_s".to_string(), t.mean_s),
            ("failed".to_string(), t.failed as f64),
        ]
        .into()
    });

    out.report()
        .axis_column("arm", "arm")
        .metric_column("p50", "p50_s", fmt_secs)
        .metric_column("p95", "p95_s", fmt_secs)
        .metric_column("p99", "p99_s", fmt_secs)
        .metric_column("mean", "mean_s", fmt_secs)
        .metric_column("failed", "failed", |v| format!("{}", v as u64))
        .print();
    eprintln!(
        "computed on {} farm worker(s) in {:.2}s ({} recorded run(s))",
        runner.workers(),
        out.wall_s,
        store.len()
    );

    println!();
    let p99 = |prefix: &str| {
        out.rows
            .iter()
            .find(|r| r.axis_display("arm").starts_with(prefix))
            .expect("arm")
            .metric("p99_s")
    };
    println!(
        "check: limpware p99 ({}) > fail-stop p99 ({}) -> {}",
        fmt_secs(p99("limpware")),
        fmt_secs(p99("fail-stop")),
        p99("limpware") > p99("fail-stop")
    );
    println!(
        "check: limpware p99 ({}) >> healthy p99 ({}) -> {}",
        fmt_secs(p99("limpware")),
        fmt_secs(p99("healthy")),
        p99("limpware") > 2.0 * p99("healthy")
    );
}
