//! `wtql` — run a WTQL what-if query against the wind tunnel from the
//! command line.
//!
//! ```text
//! wtql <query.wtql | -> [--base scenario.json] [--explain] [--csv out.csv]
//!      [--threads N]
//! ```
//!
//! * the query is read from the file (or stdin with `-`),
//! * `--base` loads a serialized `windtunnel::Scenario` as the fixed
//!   part of the configuration (defaults: 30-node HDD cluster, 1,000×4 GB
//!   objects, 3 simulated months),
//! * `--explain` prints the optimizer plan and exits without simulating,
//! * `--csv` exports every recorded run for external plotting.

use std::io::Read as _;
use windtunnel::prelude::*;
use wt_bench::Table;
use wt_wtql::{parse, run_query, ExecOptions, Plan};

fn usage() -> ! {
    eprintln!(
        "usage: wtql <query.wtql | -> [--base scenario.json] [--explain] \
         [--csv out.csv] [--threads N]"
    );
    std::process::exit(2);
}

fn default_base() -> Scenario {
    ScenarioBuilder::new("wtql-base")
        .racks(3)
        .nodes_per_rack(10)
        .objects(1_000)
        .object_gb(4.0)
        .horizon_years(0.25)
        .seed(42)
        .build()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut query_path: Option<String> = None;
    let mut base_path: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut explain_only = false;
    let mut threads = 1usize;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--base" => base_path = Some(it.next().unwrap_or_else(|| usage())),
            "--csv" => csv_path = Some(it.next().unwrap_or_else(|| usage())),
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--explain" => explain_only = true,
            _ if query_path.is_none() => query_path = Some(arg),
            _ => usage(),
        }
    }
    let query_path = query_path.unwrap_or_else(|| usage());

    let text = if query_path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        std::fs::read_to_string(&query_path)
            .unwrap_or_else(|e| panic!("cannot read {query_path}: {e}"))
    };

    let query = match parse(&text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let plan = match Plan::build(&query) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!("{}", plan.explain(&query));
    if explain_only {
        return;
    }

    let base = match &base_path {
        Some(p) => {
            let json = std::fs::read_to_string(p).unwrap_or_else(|e| panic!("{p}: {e}"));
            serde_json::from_str(&json).unwrap_or_else(|e| panic!("{p}: bad scenario: {e}"))
        }
        None => default_base(),
    };

    let mut opts = ExecOptions::from_query(&query);
    if threads > 1 {
        opts.threads = threads;
    }
    let tunnel = WindTunnel::new();
    let t0 = std::time::Instant::now();
    let outcome = match run_query(&query, &base, &tunnel, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let wall = t0.elapsed();

    // Results table: swept axes, then explored metrics, then the verdict.
    let axis_names: Vec<String> = query.sweeps.iter().map(|a| a.param.clone()).collect();
    let mut headers: Vec<&str> = axis_names.iter().map(String::as_str).collect();
    let metric_names = query.explore.clone();
    headers.extend(metric_names.iter().map(String::as_str));
    headers.push("status");
    let mut table = Table::new(&headers);
    for row in &outcome.rows {
        let mut cells: Vec<String> = row.assignment.iter().map(|(_, v)| v.to_string()).collect();
        for m in &metric_names {
            cells.push(
                row.metrics
                    .get(m)
                    .map(|v| format!("{v:.6}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        cells.push(
            if row.pruned {
                "pruned"
            } else if row.aborted {
                "aborted"
            } else if row.passes {
                "PASS"
            } else if query.constraints.is_empty() {
                "done"
            } else {
                "fail"
            }
            .into(),
        );
        table.row(cells);
    }
    table.print();

    println!();
    println!(
        "executed {} | pruned {} | aborted {} | {} sim events | {:.2}s wall",
        outcome.executed,
        outcome.pruned,
        outcome.aborted,
        outcome.total_sim_events,
        wall.as_secs_f64()
    );
    if let Some(best) = outcome.best_row() {
        let desc: Vec<String> = best
            .assignment
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        println!("best: {}", desc.join(", "));
    } else if query.objective.is_some() {
        println!("best: none (no configuration satisfied the constraints)");
    }

    if let Some(path) = csv_path {
        let csv = tunnel.store().with(|s| {
            let mut out = String::new();
            for exp in ["availability", "perf"] {
                let part = s.export_csv(exp);
                if part.lines().count() > 1 {
                    out.push_str(&part);
                }
            }
            out
        });
        std::fs::write(&path, csv).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("recorded runs exported to {path}");
    }
}
