//! `wtql` — run WTQL what-if queries against the wind tunnel from the
//! command line.
//!
//! ```text
//! wtql <script.wtql | -> [--base scenario.json] [--explain] [--csv out.csv]
//!      [--workers N]
//! wtql --interactive [--base scenario.json] [--workers N]
//! ```
//!
//! * the script is read from the file (or stdin with `-`) and may contain
//!   any number of statements: queries, and `STATS` (print result-store
//!   statistics — a safe no-op on an empty store),
//! * `--interactive` starts a small REPL: end a query with a blank line or
//!   `;`, and use the dot commands (`.stats`, `.help`, `.quit`),
//! * `--base` loads a serialized `windtunnel::Scenario` as the fixed
//!   part of the configuration (defaults: 30-node HDD cluster, 1,000×4 GB
//!   objects, 3 simulated months),
//! * `--stress` swaps in a failure-heavy variant of the default base
//!   (40-day node lifetimes, 5-day failure detection) where analytic
//!   screens and dominance pruning have real work to do — the preset used
//!   by the guided-sweep experiments,
//! * `--explain` prints the optimizer plan and exits without simulating,
//! * `--csv` exports every recorded run for external plotting,
//! * `--workers N` (alias `--threads`) sizes the farm pool `run_query`'s
//!   [`windtunnel::sweep::SweepRunner`] dispatches onto.
//!   stdout is byte-identical for any worker count (with `prune = FALSE`);
//!   wall-clock timing goes to stderr.
//!
//! All statements in one invocation share a single result store, so a
//! trailing `STATS` reports on everything the script ran.

use std::io::{BufRead as _, Read as _, Write as _};
use windtunnel::prelude::*;
use wt_bench::Table;
use wt_wtql::{parse_script, run_query, store_stats, ExecOptions, Plan, Query, Statement};

fn usage() -> ! {
    eprintln!(
        "usage: wtql <script.wtql | -> [--base scenario.json | --stress] [--explain] \
         [--csv out.csv] [--workers N]\n       wtql --interactive \
         [--base scenario.json | --stress] [--workers N]"
    );
    std::process::exit(2);
}

fn default_base() -> Scenario {
    ScenarioBuilder::new("wtql-base")
        .racks(3)
        .nodes_per_rack(10)
        .objects(1_000)
        .object_gb(4.0)
        .horizon_years(0.25)
        .seed(42)
        .build()
}

/// The failure-heavy preset behind `--stress`: same 30-node cluster, but
/// nodes live ~40 days (Weibull, infant-mortality shape) and failures take
/// five days to detect. Expected failures over the quarter ≈ 68, which is
/// enough signal for the analytic availability screens to resolve weak
/// redundancy configurations without simulation.
fn stress_base() -> Scenario {
    let mut sc = default_base();
    sc.name = "wtql-stress".into();
    sc.topology.node.ttf = Dist::weibull_mean(0.8, 40.0 * 86_400.0);
    sc.repair.detection_delay_s = 5.0 * 86_400.0;
    sc
}

/// Parses, plans and runs one query, printing the plan, the results table
/// and the summary line. Returns false when the query failed.
fn execute_query(query: &Query, base: &Scenario, tunnel: &WindTunnel, threads: usize) -> bool {
    let plan = match Plan::build(query) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return false;
        }
    };
    println!("{}", plan.explain(query));

    let mut opts = ExecOptions::from_query(query);
    if threads > 1 {
        opts.threads = threads;
    }
    let t0 = std::time::Instant::now();
    let outcome = match run_query(query, base, tunnel, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return false;
        }
    };
    let wall = t0.elapsed();

    // Results table: swept axes, then explored metrics, then the verdict.
    let axis_names: Vec<String> = query.sweeps.iter().map(|a| a.param.clone()).collect();
    let mut headers: Vec<&str> = axis_names.iter().map(String::as_str).collect();
    let metric_names = query.explore.clone();
    headers.extend(metric_names.iter().map(String::as_str));
    headers.push("status");
    let mut table = Table::new(&headers);
    for row in &outcome.rows {
        let mut cells: Vec<String> = row.assignment.iter().map(|(_, v)| v.to_string()).collect();
        for m in &metric_names {
            cells.push(
                row.metrics
                    .get(m)
                    .map(|v| format!("{v:.6}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        cells.push(
            if row.pruned {
                "pruned"
            } else if row.screened {
                // Resolved analytically, no simulation behind this row.
                if row.passes {
                    "PASS*"
                } else {
                    "fail*"
                }
            } else if row.aborted {
                "aborted"
            } else if row.passes {
                if row.early_stopped {
                    "PASS~"
                } else {
                    "PASS"
                }
            } else if query.constraints.is_empty() {
                "done"
            } else if row.early_stopped {
                "fail~"
            } else {
                "fail"
            }
            .into(),
        );
        table.row(cells);
    }
    table.print();

    println!();
    println!(
        "executed {} | pruned {} | screened {} | aborted {} | early-stopped {} | {} sim events",
        outcome.executed,
        outcome.pruned,
        outcome.screened,
        outcome.aborted,
        outcome.early_stopped,
        outcome.total_sim_events,
    );
    eprintln!("{:.2}s wall", wall.as_secs_f64());
    if let Some(best) = outcome.best_row() {
        let desc: Vec<String> = best
            .assignment
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        println!("best: {}", desc.join(", "));
    } else if query.objective.is_some() {
        println!("best: none (no configuration satisfied the constraints)");
    }
    true
}

/// Runs every statement in a script against a shared tunnel. `STATS`
/// statements print store statistics (safe anywhere, including first).
/// Returns false if any query failed.
fn execute_script(text: &str, base: &Scenario, tunnel: &WindTunnel, threads: usize) -> bool {
    let statements = match parse_script(text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return false;
        }
    };
    let mut ok = true;
    for stmt in &statements {
        match stmt {
            Statement::Stats => print!("{}", store_stats(tunnel.store())),
            Statement::Query(q) => ok &= execute_query(q, base, tunnel, threads),
        }
    }
    ok
}

const REPL_HELP: &str = "\
WTQL interactive mode. Statements run against one shared result store.
  <query>     end with a blank line (or a line ending in ';') to run
  STATS       print result-store statistics (also works inside scripts)
  .stats      same as STATS
  .help       this text
  .quit       exit (also .exit or ctrl-d)";

/// The interactive loop: dot commands run immediately; query text
/// accumulates until a blank line or a trailing `;` submits it.
fn repl(base: &Scenario, tunnel: &WindTunnel, threads: usize) {
    println!("{REPL_HELP}");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let submit = |buffer: &mut String| {
        let text = buffer.trim().trim_end_matches(';').to_string();
        buffer.clear();
        if !text.is_empty() {
            execute_script(&text, base, tunnel, threads);
        }
    };
    loop {
        print!(
            "{}",
            if buffer.is_empty() {
                "wtql> "
            } else {
                "  ... "
            }
        );
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        match trimmed {
            ".quit" | ".exit" => break,
            ".help" => println!("{REPL_HELP}"),
            ".stats" => print!("{}", store_stats(tunnel.store())),
            "" => submit(&mut buffer),
            _ => {
                buffer.push_str(&line);
                if trimmed.ends_with(';') {
                    submit(&mut buffer);
                }
            }
        }
    }
    submit(&mut buffer);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut query_path: Option<String> = None;
    let mut base_path: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut explain_only = false;
    let mut interactive = false;
    let mut stress = false;
    let mut threads = 1usize;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--base" => base_path = Some(it.next().unwrap_or_else(|| usage())),
            "--stress" => stress = true,
            "--csv" => csv_path = Some(it.next().unwrap_or_else(|| usage())),
            "--workers" | "--threads" => {
                threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--explain" => explain_only = true,
            "--interactive" | "-i" => interactive = true,
            _ if query_path.is_none() => query_path = Some(arg),
            _ => usage(),
        }
    }

    let base = match &base_path {
        Some(_) if stress => usage(),
        Some(p) => {
            let json = std::fs::read_to_string(p).unwrap_or_else(|e| panic!("{p}: {e}"));
            serde_json::from_str(&json).unwrap_or_else(|e| panic!("{p}: bad scenario: {e}"))
        }
        None if stress => stress_base(),
        None => default_base(),
    };
    let tunnel = WindTunnel::new();

    if interactive {
        if query_path.is_some() || explain_only || csv_path.is_some() {
            usage();
        }
        repl(&base, &tunnel, threads);
        return;
    }

    let query_path = query_path.unwrap_or_else(|| usage());
    let text = if query_path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        std::fs::read_to_string(&query_path)
            .unwrap_or_else(|e| panic!("cannot read {query_path}: {e}"))
    };

    if explain_only {
        match parse_script(&text) {
            Ok(stmts) => {
                for stmt in &stmts {
                    if let Statement::Query(q) = stmt {
                        match Plan::build(q) {
                            Ok(p) => println!("{}", p.explain(q)),
                            Err(e) => {
                                eprintln!("{e}");
                                std::process::exit(1);
                            }
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if !execute_script(&text, &base, &tunnel, threads) {
        std::process::exit(1);
    }

    if let Some(path) = csv_path {
        let csv = tunnel.store().with(|s| {
            let mut out = String::new();
            for exp in ["availability", "perf"] {
                let part = s.export_csv(exp);
                if part.lines().count() > 1 {
                    out.push_str(&part);
                }
            }
            out
        });
        std::fs::write(&path, csv).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("recorded runs exported to {path}");
    }
}
