//! **E4 — hardware provisioning (§3)**: "Should I invest in storage or
//! memory in order to satisfy the SLAs of 95% of my customers and
//! minimize the total operating cost?" — answered as a WTQL query.
//!
//! The query's 6 configurations dispatch through `run_query`'s
//! [`SweepRunner`] onto the shared `windtunnel::farm` pool with sharded
//! recording (`--workers N`, default host cores or `WT_WORKERS`);
//! results, record ids, and output are byte-identical for any worker
//! count.

use windtunnel::prelude::*;
use wt_bench::{banner, farm_from_args, fmt_secs, Table};
use wt_wtql::{parse, run_query, ExecOptions};

fn main() {
    banner(
        "E4 — memory vs storage provisioning as a declarative query",
        "HDD+plenty-of-DRAM and SSD+little-DRAM both meet the p95 SLA; the \
         tunnel picks whichever is cheaper per year — an answer that flips \
         with workload and prices, which is why it has to be *queried*",
    );

    let query_text = r#"
        EXPLORE shop_p95_s, tco_usd_per_year
        SWEEP disk IN ["hdd", "ssd"],
              mem_gb IN [32, 128, 512]
        SUBJECT TO shop_p95_s <= 0.010
        MINIMIZE tco_usd_per_year
    "#;
    println!("query:\n{query_text}");

    let base = ScenarioBuilder::new("provisioning-base")
        .racks(1)
        .nodes_per_rack(10)
        .disks_per_node(8)
        .tenant(TenantWorkload::oltp("shop", 400.0, 100_000))
        .horizon_years(180.0 / (365.25 * 86_400.0)) // 180 simulated seconds
        .seed(4)
        .build();

    let args: Vec<String> = std::env::args().collect();
    let workers = farm_from_args(&args).workers();

    let query = parse(query_text).expect("query parses");
    let tunnel = WindTunnel::new();
    // Pruning on: verdicts key on plan order, not completion order, so
    // the table (including which configs show "-") is byte-identical for
    // any worker count.
    let opts = ExecOptions {
        threads: workers,
        ..ExecOptions::default()
    };
    let out = run_query(&query, &base, &tunnel, &opts).expect("query runs");

    let mut table = Table::new(&["disk", "mem GB", "p95", "TCO $/yr", "meets SLA"]);
    for row in &out.rows {
        let disk = row.assignment[0].1.to_string();
        let mem = row.assignment[1].1.to_string();
        table.row(vec![
            disk,
            mem,
            row.metrics
                .get("shop_p95_s")
                .map(|v| fmt_secs(*v))
                .unwrap_or_else(|| "-".into()),
            row.metrics
                .get("tco_usd_per_year")
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "-".into()),
            if row.passes { "yes" } else { "no" }.into(),
        ]);
    }
    table.print();

    println!();
    match out.best_row() {
        Some(best) => {
            println!(
                "answer: cheapest SLA-meeting configuration = {} at ${:.0}/yr (p95 {})",
                best.assignment
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                best.metrics["tco_usd_per_year"],
                fmt_secs(best.metrics["shop_p95_s"]),
            );
        }
        None => println!("answer: no configuration meets the SLA — provision more hardware"),
    }
    println!(
        "runs executed: {}, pruned: {}, recorded in store: {}",
        out.executed,
        out.pruned,
        tunnel.store().len()
    );
}
