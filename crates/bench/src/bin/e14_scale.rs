//! **E14 — simulation at scale (§4.2)**: one availability run over a
//! million-component data center — 20,000 nodes × (48 disks + NIC) plus
//! the switch fabric — with per-disk and per-switch failures live, i.e.
//! every component is a failure domain with its own pending timer. This
//! is the paper's "wind tunnel" sizing question asked at full build-out
//! instead of on a toy slice, and it is the workload the SoA/arena state
//! layout and the adaptive queue-backend selection exist for.
//!
//! The queue backend is *inferred* unless `--queue heap|calendar` is
//! given: the scenario's estimated pending set (~1M timers here) is far
//! past the adaptive threshold, so the calendar queue is selected — the
//! chosen backend goes to stderr, and stdout is byte-identical across
//! `--workers`, both backends, and the adaptive default (timing and
//! provenance never touch stdout). `--smoke` shrinks the build-out to
//! a ≥100k-component slice for CI.

use windtunnel::prelude::*;
use wt_bench::{
    banner, farm_from_args, flag_value, partitions_from_args, queue_opt_from_args, runner_from_args,
};
use wt_des::time::SimDuration;
use wt_store::SharedStore;

const DISKS_PER_NODE: usize = 48;
const NODES_PER_RACK: usize = 40;

fn scenario(smoke: bool) -> Scenario {
    // Full: 500 racks × 40 nodes × (1 node + 48 disks + 1 NIC) = 1,000,000
    // components before the switch layer. Smoke: a 50-rack slice of the
    // same design — 100,051 components with the fabric.
    let (racks, objects, horizon_years) = if smoke {
        (50, 20_000, 0.1)
    } else {
        (500, 200_000, 0.5)
    };
    ScenarioBuilder::new("e14-scale")
        .racks(racks)
        .nodes_per_rack(NODES_PER_RACK)
        .disk(catalog::hdd_7200_4t())
        .disks_per_node(DISKS_PER_NODE)
        .objects(objects)
        .object_gb(8.0)
        .repair(RepairPolicy::parallel(64))
        .switch_failures(true)
        .disk_failures(true)
        .horizon_years(horizon_years)
        .seed(14)
        .build()
}

fn main() {
    banner(
        "E14 — simulation at scale: a million-component availability run",
        "every disk, NIC, node and switch of a 500-rack build-out is a \
         live failure domain; the pending-event set sits around a million \
         timers, which is the regime the arena state layout and adaptive \
         queue-backend selection target",
    );

    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let runner = runner_from_args(&args);
    let queue = queue_opt_from_args(&args);
    let store = SharedStore::new();

    let mut base = scenario(smoke);
    base.queue = queue;
    let components = base.topology.build().components_iter().count();
    let floor = if smoke { 100_000 } else { 1_000_000 };
    assert!(
        components >= floor,
        "build-out shrank below the scale floor: {components} < {floor}"
    );
    // Provenance, not results: the backend affects wall-clock only, so it
    // stays off stdout (CI diffs stdout across backends and worker counts).
    let backend = WindTunnel::availability_model(&base).queue;
    eprintln!(
        "queue backend: {backend} ({}; estimated pending set {})",
        if queue.is_some() {
            "explicit --queue"
        } else {
            "adaptive"
        },
        base.availability_pending_estimate()
    );

    // Partitioned mode: `--partitions N` (or WT_PARTITIONS) runs one
    // simulation through the rack-sharded engine instead of the sweep —
    // node failure domains only, which is what that engine models. All
    // stdout below the branch is partition-count- and backend-invariant,
    // so CI can diff it across `--partitions 1/2/4` × `--queue
    // heap/calendar`; wall time, thread count and queue depths (which do
    // depend on partitioning) go to stderr.
    if flag_value(&args, "--partitions").is_some() || std::env::var("WT_PARTITIONS").is_ok() {
        let partitions = partitions_from_args(&args);
        let threads = farm_from_args(&args).workers();
        let m = WindTunnel::partitioned_availability_model(&base);
        eprintln!(
            "partitioned run: {partitions} partition(s) on {threads} thread(s), \
             lookahead {:.1}s",
            m.lookahead_s()
        );
        let horizon_s = SimDuration::from_years(base.horizon_years).as_secs();
        let started = std::time::Instant::now();
        let (r, t) = m.run_observed(base.seed, horizon_s, partitions, threads);
        eprintln!(
            "computed in {:.2}s (peak pending-event set {})",
            started.elapsed().as_secs_f64(),
            t.peak_queue_depth
        );
        println!();
        println!("partitioned availability over the same build-out (node failure domains):");
        println!("  availability    {:.7}", r.availability);
        println!("  unavail events  {}", r.unavailability_events);
        println!("  objects lost    {}", r.objects_lost);
        println!("  node failures   {}", r.node_failures);
        println!("  events          {}", t.events);
        println!(
            "check: results above are bitwise-identical at any partition count, \
             thread count, or queue backend"
        );
        return;
    }

    let spec = SweepSpec::new("e14-scale")
        .axis("build_out", [if smoke { "smoke-slice" } else { "full" }])
        .seed(14)
        .replications(2)
        .aggregate("unavailability_events", MetricAgg::Sum)
        .aggregate("objects_lost", MetricAgg::Sum)
        .aggregate("node_failures", MetricAgg::Sum)
        .aggregate("disk_failures", MetricAgg::Sum)
        .aggregate("switch_failures", MetricAgg::Sum)
        .aggregate("sim_events", MetricAgg::Sum);

    let sc = base.clone();
    let out = runner.run(&spec, &store, move |point, rep, sink| {
        let m = WindTunnel::availability_model(&sc);
        let horizon = SimDuration::from_years(sc.horizon_years);
        let (r, telemetry) = m.run_observed(rep.seed, horizon, None);
        sink.record(
            point
                .record("e14-scale", rep.seed)
                .metric("availability", r.availability)
                .metric("unavailability_events", r.unavailability_events as f64)
                .metric("objects_lost", r.objects_lost as f64)
                .metric("node_failures", r.node_failures as f64)
                .metric("disk_failures", r.disk_failures as f64)
                .metric("switch_failures", r.switch_failures as f64)
                .metric("sim_events", r.sim_events as f64)
                .telemetry(telemetry),
        );
        [
            ("availability".to_string(), r.availability),
            (
                "unavailability_events".to_string(),
                r.unavailability_events as f64,
            ),
            ("objects_lost".to_string(), r.objects_lost as f64),
            ("node_failures".to_string(), r.node_failures as f64),
            ("disk_failures".to_string(), r.disk_failures as f64),
            ("switch_failures".to_string(), r.switch_failures as f64),
            ("sim_events".to_string(), r.sim_events as f64),
        ]
        .into()
    });

    out.report()
        .axis_column("build-out", "build_out")
        .metric_column("availability", "availability", |a| format!("{a:.7}"))
        .metric_column("unavail events", "unavailability_events", |v| {
            format!("{}", v as u64)
        })
        .metric_column("objects lost", "objects_lost", |v| format!("{}", v as u64))
        .metric_column("node fails", "node_failures", |v| format!("{}", v as u64))
        .metric_column("disk fails", "disk_failures", |v| format!("{}", v as u64))
        .metric_column("switch fails", "switch_failures", |v| {
            format!("{}", v as u64)
        })
        .metric_column("events", "sim_events", |v| format!("{}", v as u64))
        .print();
    eprintln!(
        "computed on {} farm worker(s) in {:.2}s ({} recorded run(s))",
        runner.workers(),
        out.wall_s,
        store.len()
    );

    println!();
    println!(
        "check: {components} hardware components simulated as live failure \
         domains (floor {floor})"
    );
    let peak = store.with(|s| {
        s.records()
            .filter_map(|r| r.telemetry.as_ref())
            .map(|t| t.peak_queue_depth)
            .max()
            .unwrap_or(0)
    });
    println!(
        "check: peak pending-event set {peak} — the regime the adaptive \
         queue-backend selection targets"
    );
    let events: u64 = out.rows[0].metric("sim_events") as u64;
    println!(
        "check: {events} discrete events executed across {} replication(s) \
         with bitwise-identical results on either queue backend",
        2
    );
}
