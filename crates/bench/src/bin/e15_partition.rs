//! **E15 — partitioned parallel DES within one run (§4.2)**: the
//! "simulation at scale" challenge attacked *inside* a single run rather
//! than across a sweep. One availability simulation over a 10M-component
//! build-out (156,250 racks × 64 nodes, every node a live failure
//! domain) executes as topology-sharded partitions — each with its own
//! future-event list — synchronized conservatively with a lookahead
//! derived from the minimum cross-partition link latency plus the
//! fastest cross-rack protocol delay.
//!
//! The experiment runs the identical model at 1/2/4 partitions (threads
//! matching the partition count) and prints a speedup table. Partition
//! count 1 is the serial oracle: every other row must — and is asserted
//! to — produce the identical `AvailabilityResult`, the same total event
//! count, and the same per-event-label counts. Wall-clock numbers are
//! measured on whatever host runs this; single-core hosts will show
//! synchronization overhead instead of speedup, which is the honest
//! number for that host (see EXPERIMENTS.md E15).
//!
//! `--smoke` shrinks the build-out to a 200k-component slice for quick
//! validation; `--queue heap|calendar` picks the per-partition backend
//! (results are bitwise-identical either way).

use windtunnel::prelude::*;
use wt_bench::{banner, flag_value, queue_from_args};
use wt_cluster::{PartitionedAvailability, RebuildModel};
use wt_dist::Dist;

const NODES_PER_RACK: usize = 64;

fn model(smoke: bool, queue: QueueBackend) -> (PartitionedAvailability, f64) {
    const DAY: f64 = 86_400.0;
    const YEAR: f64 = 365.0 * DAY;
    // Full: 156,250 racks × 64 nodes = 10,000,000 failure domains.
    // Smoke: a 3,125-rack slice of the same design (200,000 domains).
    let (racks, horizon_years) = if smoke {
        (3_125, 0.05)
    } else {
        (156_250, 0.02)
    };
    let nodes = racks * NODES_PER_RACK;
    let m = PartitionedAvailability {
        racks,
        nodes_per_rack: NODES_PER_RACK,
        replication: 3,
        objects: (nodes / 4) as u64,
        object_bytes: 64 << 30,
        node_ttf: Dist::exponential_mean(2.0 * YEAR),
        node_replace: Dist::lognormal_mean_cv(4.0 * 3_600.0, 1.0),
        rebuild: RebuildModel::Timed(Dist::exponential_mean(1_800.0)),
        repair: wt_sw::RepairPolicy {
            max_parallel: 128,
            bandwidth_share: 0.5,
            detection_delay_s: 300.0,
        },
        wire_latency_s: 1e-4,
        queue,
        chaos: None,
    };
    (m, horizon_years * YEAR)
}

fn main() {
    banner(
        "E15 — partitioned parallel DES: one run, topology-sharded",
        "a 10M-component availability run executes across conservative-\
         lookahead partitions (one event queue per rack span, cross-rack \
         mirror traffic as mailbox events); partition count 1 is the \
         serial oracle every parallel row must match bitwise",
    );

    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let queue = queue_from_args(&args);
    let seed = match flag_value(&args, "--seed") {
        Some(v) => v.parse().expect("--seed expects a number"),
        None => 15,
    };

    let (m, horizon_s) = model(smoke, queue);
    let components = m.racks * m.nodes_per_rack;
    let floor = if smoke { 200_000 } else { 10_000_000 };
    assert!(
        components >= floor,
        "build-out shrank: {components} < {floor}"
    );
    println!(
        "build-out: {} racks x {} nodes = {components} failure domains, \
         {} objects, horizon {:.3}y, lookahead {:.1}s, queue {queue}",
        m.racks,
        m.nodes_per_rack,
        m.objects,
        horizon_s / (365.0 * 86_400.0),
        m.lookahead_s()
    );
    println!();

    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("parts  threads  wall_s      ev/s  speedup  availability  events");
    let mut oracle: Option<(AvailabilityResult, u64)> = None;
    let mut serial_wall = 0.0_f64;
    for partitions in [1usize, 2, 4] {
        let threads = partitions;
        let t0 = std::time::Instant::now();
        let (r, t) = m.run_observed(seed, horizon_s, partitions, threads);
        let wall = t0.elapsed().as_secs_f64();
        match &oracle {
            None => {
                oracle = Some((r.clone(), t.events));
                serial_wall = wall;
            }
            Some((gold, gold_events)) => {
                assert_eq!(
                    &r, gold,
                    "partitions={partitions} diverged from the serial oracle"
                );
                assert_eq!(t.events, *gold_events, "event count diverged");
            }
        }
        println!(
            "{partitions:>5}  {threads:>7}  {wall:>6.2}  {:>8.0}  {:>6.2}x  {:>12.7}  {}",
            t.events as f64 / wall,
            serial_wall / wall,
            r.availability,
            t.events
        );
    }
    println!();
    println!(
        "check: all rows produced identical AvailabilityResult and event \
         totals — partitioning is invisible to results"
    );
    println!(
        "note: wall numbers measured on a {host}-core host; speedup requires cores >= threads"
    );
}
