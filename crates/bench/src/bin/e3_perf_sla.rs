//! **E3 — performance SLAs (§3)**: what happens to a tenant's latency
//! when (a) a second workload moves in, and (b) cluster events — node
//! failures and the repair traffic they trigger — hit the same hardware.
//!
//! The paper's point: prediction models that ignore cluster events miss
//! the tail; "holistic simulation can capture the impact of these events
//! on the performance SLAs".
//!
//! The arms run on the shared `windtunnel::farm` executor with sharded
//! recording (`--workers N` sizes the pool, default host cores or
//! `WT_WORKERS`); every arm lands in the result store as an `e3-perf`
//! record, exported with `--jsonl <path>`. Output is byte-identical for
//! any worker count. `--trace <path>` re-runs the busiest arm with the
//! probe stack attached and writes Chrome trace-event JSON.

use windtunnel::obs::TraceProbe;
use wt_bench::{banner, export_trace, farm_from_args, flag_value, fmt_secs, Table};
use wt_cluster::PerfModel;
use wt_dist::Dist;
use wt_hw::{catalog, TopologySpec};
use wt_store::{RecordSink, RunRecord, SharedStore};
use wt_sw::{Placement, RedundancyScheme};
use wt_workload::TenantWorkload;

fn topo() -> TopologySpec {
    TopologySpec {
        racks: 2,
        nodes_per_rack: 5,
        node: catalog::node_storage_server(catalog::ssd_sata_1t(), 4, catalog::nic_10g()),
        tor: catalog::switch_tor_48x10g(),
        agg: catalog::switch_agg_32x40g(),
        oversubscription: 4.0,
    }
}

fn model(tenants: Vec<TenantWorkload>) -> PerfModel {
    PerfModel {
        topology: topo(),
        redundancy: RedundancyScheme::replication(3),
        placement: Placement::Random,
        tenants,
        limpware: None,
        inject_failures: false,
        node_ttf: None,
        horizon_s: 180.0,
    }
}

fn main() {
    banner(
        "E3 — tenant latency under co-location and cluster events",
        "co-locating an analytics tenant inflates the OLTP tail; node \
         failures + repair traffic inflate it further — effects a \
         failure-blind prediction model cannot see",
    );

    let oltp = || TenantWorkload::oltp("shop", 300.0, 100_000);

    let arms: Vec<(&str, PerfModel)> = vec![
        ("shop alone", model(vec![oltp()])),
        (
            "shop + analytics",
            model(vec![
                oltp(),
                TenantWorkload::analytics("reports", 8.0, 1_000),
            ]),
        ),
        ("shop + failures", {
            let mut m = model(vec![oltp()]);
            m.inject_failures = true;
            m.node_ttf = Some(Dist::exponential_mean(60.0));
            m
        }),
        ("shop + analytics + failures", {
            let mut m = model(vec![
                oltp(),
                TenantWorkload::analytics("reports", 8.0, 1_000),
            ]);
            m.inject_failures = true;
            m.node_ttf = Some(Dist::exponential_mean(60.0));
            m
        }),
    ];

    let args: Vec<String> = std::env::args().collect();
    let farm = farm_from_args(&args);

    // Each arm simulates on a farm worker and records into a private
    // shard; shards merge into the store in arm order, so record ids are
    // identical for any worker count. Seed 99 is fixed per arm (the arms
    // are the comparison, not seed replication).
    let store = SharedStore::new();
    let results = farm.run_recorded(0, &arms, &store, |(name, m), _ctx, shard| {
        let r = m.run(99);
        let shop = r.tenant("shop").expect("shop tenant present").clone();
        let mut record = RunRecord::new("e3-perf", 99)
            .param("arm", *name)
            .param("inject_failures", m.inject_failures)
            .param("tenants", m.tenants.len())
            .metric("shop_p50_s", shop.p50_s)
            .metric("shop_p95_s", shop.p95_s)
            .metric("shop_p99_s", shop.p99_s)
            .metric("shop_failed", shop.failed as f64)
            .metric("node_failures", r.node_failures as f64);
        if let Some(met) = shop.sla_met {
            record = record.metric("sla_met", if met { 1.0 } else { 0.0 });
        }
        shard.record(record);
        (shop, r.node_failures)
    });

    let mut table = Table::new(&[
        "arm",
        "p50",
        "p95",
        "p99",
        "failed",
        "node failures",
        "SLA p95<=50ms",
    ]);
    let mut p99s = Vec::new();
    for ((name, _), (shop, node_failures)) in arms.iter().zip(&results) {
        table.row(vec![
            name.to_string(),
            fmt_secs(shop.p50_s),
            fmt_secs(shop.p95_s),
            fmt_secs(shop.p99_s),
            shop.failed.to_string(),
            node_failures.to_string(),
            match shop.sla_met {
                Some(true) => "met".into(),
                Some(false) => "VIOLATED".into(),
                None => "-".into(),
            },
        ]);
        p99s.push((name.to_string(), shop.p99_s));
    }
    table.print();

    if let Some(path) = flag_value(&args, "--jsonl") {
        if let Err(e) = store.with(|s| s.save_jsonl(std::path::Path::new(path))) {
            eprintln!("error: failed to write --jsonl {path}: {e}");
            std::process::exit(1);
        }
        println!("runs written to {path}");
    }

    // `--trace`: re-run the busiest arm (co-location + failures) with a
    // trace probe — the Chrome JSON shows tenant requests interleaving
    // with node failures and repair traffic on a shared timeline.
    if let Some(path) = flag_value(&args, "--trace") {
        let (name, m) = arms.last().expect("arms are nonempty");
        let mut probe = TraceProbe::new();
        let (_, telemetry) = m.run_observed(99, Some(&mut probe));
        eprintln!("[trace] arm '{name}': {} sim event(s)", telemetry.events);
        export_trace(path, &mut probe, &telemetry);
    }

    println!();
    let p99 = |n: &str| p99s.iter().find(|(k, _)| k == n).expect("arm").1;
    println!(
        "check: co-location inflates p99: {} -> {} ({}x)",
        fmt_secs(p99("shop alone")),
        fmt_secs(p99("shop + analytics")),
        (p99("shop + analytics") / p99("shop alone")).round()
    );
    println!(
        "check: cluster events inflate p99 beyond workload-only prediction: {} -> {}",
        fmt_secs(p99("shop + analytics")),
        fmt_secs(p99("shop + analytics + failures")),
    );
}
