//! **E3 — performance SLAs (§3)**: what happens to a tenant's latency
//! when (a) a second workload moves in, and (b) cluster events — node
//! failures and the repair traffic they trigger — hit the same hardware.
//!
//! The paper's point: prediction models that ignore cluster events miss
//! the tail; "holistic simulation can capture the impact of these events
//! on the performance SLAs".
//!
//! The arm axis is a declarative [`SweepSpec`] executed by the shared
//! [`SweepRunner`] with sharded recording (`--workers N` sizes the pool,
//! default host cores or `WT_WORKERS`); every arm lands in the result
//! store as an `e3-perf` record, exported with `--jsonl <path>`. Output
//! is byte-identical for any worker count. `--trace <path>` re-runs the
//! busiest arm with the probe stack attached and writes Chrome
//! trace-event JSON.

use windtunnel::obs::TraceProbe;
use windtunnel::prelude::*;
use wt_bench::{banner, export_trace, flag_value, fmt_secs, queue_from_args, runner_from_args};
use wt_cluster::PerfModel;
use wt_des::QueueBackend;
use wt_hw::{catalog, TopologySpec};
use wt_store::SharedStore;

fn topo() -> TopologySpec {
    TopologySpec {
        racks: 2,
        nodes_per_rack: 5,
        node: catalog::node_storage_server(catalog::ssd_sata_1t(), 4, catalog::nic_10g()),
        tor: catalog::switch_tor_48x10g(),
        agg: catalog::switch_agg_32x40g(),
        oversubscription: 4.0,
    }
}

fn model(tenants: Vec<TenantWorkload>, queue: QueueBackend) -> PerfModel {
    PerfModel {
        topology: topo(),
        redundancy: RedundancyScheme::replication(3),
        placement: Placement::Random,
        tenants,
        limpware: None,
        inject_failures: false,
        node_ttf: None,
        horizon_s: 180.0,
        queue,
        chaos: None,
    }
}

fn arm_model(arm: &str, queue: QueueBackend) -> PerfModel {
    let oltp = || TenantWorkload::oltp("shop", 300.0, 100_000);
    let analytics = || TenantWorkload::analytics("reports", 8.0, 1_000);
    let mut m = match arm {
        "shop alone" | "shop + failures" => model(vec![oltp()], queue),
        "shop + analytics" | "shop + analytics + failures" => {
            model(vec![oltp(), analytics()], queue)
        }
        other => panic!("unknown arm '{other}'"),
    };
    if arm.ends_with("failures") {
        m.inject_failures = true;
        m.node_ttf = Some(Dist::exponential_mean(60.0));
    }
    m
}

fn main() {
    banner(
        "E3 — tenant latency under co-location and cluster events",
        "co-locating an analytics tenant inflates the OLTP tail; node \
         failures + repair traffic inflate it further — effects a \
         failure-blind prediction model cannot see",
    );

    let args: Vec<String> = std::env::args().collect();
    let runner = runner_from_args(&args);
    let queue = queue_from_args(&args);
    let store = SharedStore::new();

    // The arms are the comparison, not seed replication: one CRN
    // replication means every arm simulates the same seed.
    let spec = SweepSpec::new("e3-perf")
        .axis(
            "arm",
            [
                "shop alone",
                "shop + analytics",
                "shop + failures",
                "shop + analytics + failures",
            ],
        )
        .seed(2014)
        .common_random_numbers();

    let out = runner.run(&spec, &store, |point, rep, sink| {
        let m = arm_model(&point.axis_str("arm"), queue);
        let r = m.run(rep.seed);
        let shop = r.tenant("shop").expect("shop tenant present");
        // The reported percentiles come from the constant-memory sketch
        // path; the exact histogram stays recorded as the oracle, and
        // the two SLA verdicts must agree — a divergence would mean the
        // sketch's error band swallowed the SLA threshold.
        let sk_p50 = shop.sketch_p50_s.expect("sketch path present");
        let sk_p95 = shop.sketch_p95_s.expect("sketch path present");
        let sk_p99 = shop.sketch_p99_s.expect("sketch path present");
        assert_eq!(
            shop.sketch_sla_met, shop.sla_met,
            "sketch SLA verdict diverged from exact-histogram oracle"
        );
        let mut record = point
            .record(spec.name(), rep.seed)
            .param("inject_failures", m.inject_failures)
            .param("tenants", m.tenants.len())
            .metric("shop_p50_s", sk_p50)
            .metric("shop_p95_s", sk_p95)
            .metric("shop_p99_s", sk_p99)
            .metric("shop_exact_p50_s", shop.p50_s)
            .metric("shop_exact_p95_s", shop.p95_s)
            .metric("shop_exact_p99_s", shop.p99_s)
            .metric("shop_failed", shop.failed as f64)
            .metric("node_failures", r.node_failures as f64);
        if let Some(met) = shop.sla_met {
            record = record.metric("sla_met", if met { 1.0 } else { 0.0 });
        }
        sink.record(record);
        let mut metrics: std::collections::BTreeMap<String, f64> = [
            ("shop_p50_s".to_string(), sk_p50),
            ("shop_p95_s".to_string(), sk_p95),
            ("shop_p99_s".to_string(), sk_p99),
            ("shop_exact_p99_s".to_string(), shop.p99_s),
            ("shop_failed".to_string(), shop.failed as f64),
            ("node_failures".to_string(), r.node_failures as f64),
        ]
        .into();
        if let Some(met) = shop.sla_met {
            metrics.insert("sla_met".to_string(), if met { 1.0 } else { 0.0 });
        }
        metrics
    });

    out.report()
        .axis_column("arm", "arm")
        .metric_column("p50", "shop_p50_s", fmt_secs)
        .metric_column("p95", "shop_p95_s", fmt_secs)
        .metric_column("p99", "shop_p99_s", fmt_secs)
        .metric_column("failed", "shop_failed", |v| format!("{}", v as u64))
        .metric_column("node failures", "node_failures", |v| {
            format!("{}", v as u64)
        })
        .column("SLA p95<=50ms", |row| match row.try_metric("sla_met") {
            Some(v) if v > 0.5 => "met".into(),
            Some(_) => "VIOLATED".into(),
            None => "-".into(),
        })
        .print();
    eprintln!(
        "computed on {} farm worker(s) in {:.2}s ({} recorded run(s))",
        runner.workers(),
        out.wall_s,
        store.len()
    );

    if let Some(path) = flag_value(&args, "--jsonl") {
        if let Err(e) = store.with(|s| s.save_jsonl(std::path::Path::new(path))) {
            eprintln!("error: failed to write --jsonl {path}: {e}");
            std::process::exit(1);
        }
        println!("runs written to {path}");
    }

    // `--trace`: re-run the busiest arm (co-location + failures) with a
    // trace probe — the Chrome JSON shows tenant requests interleaving
    // with node failures and repair traffic on a shared timeline. Uses
    // the same CRN seed the sweep ran, so the trace matches the record.
    if let Some(path) = flag_value(&args, "--trace") {
        let arm = "shop + analytics + failures";
        let grid = spec.grid();
        let seed = grid.rep_seed(&grid.points[0], 0);
        let mut probe = TraceProbe::new();
        let (_, telemetry) = arm_model(arm, queue).run_observed(seed, Some(&mut probe));
        eprintln!("[trace] arm '{arm}': {} sim event(s)", telemetry.events);
        export_trace(path, &mut probe, &telemetry);
    }

    println!();
    let p99 = |arm: &str| out.metric_where("arm", arm, "shop_p99_s");
    println!(
        "check: co-location inflates p99: {} -> {} ({}x)",
        fmt_secs(p99("shop alone")),
        fmt_secs(p99("shop + analytics")),
        (p99("shop + analytics") / p99("shop alone")).round()
    );
    println!(
        "check: cluster events inflate p99 beyond workload-only prediction: {} -> {}",
        fmt_secs(p99("shop + analytics")),
        fmt_secs(p99("shop + analytics + failures")),
    );
    // Sketch-vs-oracle accuracy: the reported (sketch) p99 must sit
    // within the DDSketch relative-error band of the exact histogram's.
    let worst_rel = out
        .rows
        .iter()
        .map(|row| {
            let exact = row.metric("shop_exact_p99_s");
            let sketch = row.metric("shop_p99_s");
            ((sketch - exact) / exact).abs()
        })
        .fold(0.0f64, f64::max);
    println!(
        "check: sketch p99 within {:.2}% of exact oracle across arms",
        worst_rel * 100.0
    );
}
