//! **E12 — model coverage across the component spectrum (§4.5)**: "the
//! entire space of hardware components … has still not been covered".
//! What does the availability estimate *miss* when the failure model stops
//! at whole nodes? Same cluster, three failure models of increasing
//! coverage: nodes only, nodes + per-disk failures, nodes + disks +
//! ToR switches.

use windtunnel::farm::Farm;
use wt_bench::{banner, Table};
use wt_cluster::availability::{DiskFailureModel, SwitchFailureModel};
use wt_cluster::{AvailabilityModel, RebuildModel};
use wt_des::time::SimDuration;
use wt_dist::Dist;
use wt_sw::{Placement, RedundancyScheme, RepairPolicy};

const DAY: f64 = 86_400.0;
const YEAR: f64 = 365.0 * DAY;

fn model(disks: bool, switches: bool) -> AvailabilityModel {
    AvailabilityModel {
        n_nodes: 30,
        redundancy: RedundancyScheme::replication(3),
        placement: Placement::Random,
        objects: 1_000,
        object_bytes: 32 << 30,
        node_ttf: Dist::weibull_mean(0.9, 0.5 * YEAR),
        node_replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
        // A 1G repair network: the repair window after a node failure is
        // hours long, so even independent double failures overlap
        // occasionally — the graduation the experiment needs.
        rebuild: RebuildModel::Bandwidth {
            link_gbps: 1.0,
            share: 0.5,
        },
        repair: RepairPolicy {
            max_parallel: 16,
            bandwidth_share: 0.5,
            detection_delay_s: 3_600.0,
        },
        switches: switches.then(|| SwitchFailureModel {
            nodes_per_rack: 10,
            ttf: Dist::exponential_mean(180.0 * DAY),
            repair: Dist::lognormal_mean_cv(2.0 * 3600.0, 1.0),
        }),
        disks: disks.then(|| DiskFailureModel {
            per_node: 12,
            // Per-disk: Weibull with ~3%/yr ARR (Schroeder–Gibson) — with
            // 360 disks that is ~11 disk losses/yr on top of ~15 node
            // events.
            ttf: Dist::weibull_mean(0.8, 15.0 * YEAR),
            replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.5),
        }),
    }
}

fn main() {
    banner(
        "E12 — what the availability estimate misses per modeled component",
        "each omitted component class silently inflates the availability \
         estimate; the gap between 'nodes only' and full coverage is the \
         modeling error a naive simulator ships to its users",
    );

    let arms: Vec<(&str, AvailabilityModel)> = vec![
        ("nodes only", model(false, false)),
        ("nodes + disks", model(true, false)),
        ("nodes + disks + switches", model(true, true)),
    ];

    let mut table = Table::new(&[
        "failure model",
        "availability",
        "unavail events",
        "node fails",
        "disk fails",
        "switch fails",
        "rebuilds",
    ]);
    // Every (arm, seed) replication is one farm item; per-arm aggregates
    // fold in run order (availability averaged, counters summed).
    let reps = 4u64;
    let points: Vec<(usize, u64)> = (0..arms.len())
        .flat_map(|a| (0..reps).map(move |seed| (a, seed)))
        .collect();
    #[derive(Clone, Copy, Default)]
    struct Agg {
        avail: f64,
        ev: u64,
        nf: u64,
        df: u64,
        sf: u64,
        rb: u64,
    }
    let aggs: Vec<Agg> = Farm::from_env().run_fold(
        0,
        &points,
        |&(a, seed), _ctx| arms[a].1.run(seed, SimDuration::from_years(1.0)),
        vec![Agg::default(); arms.len()],
        |mut aggs, idx, r| {
            let (a, _) = points[idx];
            let agg = &mut aggs[a];
            agg.avail += r.availability / reps as f64;
            agg.ev += r.unavailability_events;
            agg.nf += r.node_failures;
            agg.df += r.disk_failures;
            agg.sf += r.switch_failures;
            agg.rb += r.rebuilds_completed;
            aggs
        },
    );

    let mut unavail = Vec::new();
    for ((name, _), agg) in arms.iter().zip(&aggs) {
        table.row(vec![
            name.to_string(),
            format!("{:.7}", agg.avail),
            agg.ev.to_string(),
            agg.nf.to_string(),
            agg.df.to_string(),
            agg.sf.to_string(),
            agg.rb.to_string(),
        ]);
        unavail.push((name.to_string(), 1.0 - agg.avail, agg.ev));
    }
    table.print();

    println!();
    let base = unavail[0].1.max(1e-12);
    for (name, u, _) in &unavail[1..] {
        println!(
            "check: '{}' reveals {:.1}x the unavailability of 'nodes only' ({:.2e} vs {:.2e})",
            name,
            u / base,
            u,
            base
        );
    }
    println!(
        "takeaway: every omitted component class makes the design look \
         better than it is — the paper's call for failure data across the \
         whole component spectrum, quantified."
    );
}
