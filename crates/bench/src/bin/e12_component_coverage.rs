//! **E12 — model coverage across the component spectrum (§4.5)**: "the
//! entire space of hardware components … has still not been covered".
//! What does the availability estimate *miss* when the failure model stops
//! at whole nodes? Same cluster, three failure models of increasing
//! coverage: nodes only, nodes + per-disk failures, nodes + disks +
//! ToR switches.
//!
//! The coverage axis is a declarative [`SweepSpec`] on the shared run
//! farm: 4 CRN replications per arm (availability averaged, counters
//! summed by the sweep's aggregate registry). `--workers N` sizes the
//! pool; stdout is byte-identical for any value (timing goes to stderr).

use windtunnel::prelude::*;
use wt_bench::{banner, runner_from_args};
use wt_cluster::availability::{DiskFailureModel, SwitchFailureModel};
use wt_cluster::{AvailabilityModel, RebuildModel};
use wt_des::time::SimDuration;
use wt_store::SharedStore;

const DAY: f64 = 86_400.0;
const YEAR: f64 = 365.0 * DAY;

fn model(disks: bool, switches: bool) -> AvailabilityModel {
    AvailabilityModel {
        n_nodes: 30,
        redundancy: RedundancyScheme::replication(3),
        placement: Placement::Random,
        objects: 1_000,
        object_bytes: 32 << 30,
        node_ttf: Dist::weibull_mean(0.9, 0.5 * YEAR),
        node_replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
        // A 1G repair network: the repair window after a node failure is
        // hours long, so even independent double failures overlap
        // occasionally — the graduation the experiment needs.
        rebuild: RebuildModel::Bandwidth {
            link_gbps: 1.0,
            share: 0.5,
        },
        repair: RepairPolicy {
            max_parallel: 16,
            bandwidth_share: 0.5,
            detection_delay_s: 3_600.0,
        },
        switches: switches.then(|| SwitchFailureModel {
            nodes_per_rack: 10,
            ttf: Dist::exponential_mean(180.0 * DAY),
            repair: Dist::lognormal_mean_cv(2.0 * 3600.0, 1.0),
        }),
        disks: disks.then(|| DiskFailureModel {
            per_node: 12,
            // Per-disk: Weibull with ~3%/yr ARR (Schroeder–Gibson) — with
            // 360 disks that is ~11 disk losses/yr on top of ~15 node
            // events.
            ttf: Dist::weibull_mean(0.8, 15.0 * YEAR),
            replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.5),
        }),
        queue: QueueBackend::Heap,
        chaos: None,
    }
}

fn coverage_model(label: &str) -> AvailabilityModel {
    match label {
        "nodes only" => model(false, false),
        "nodes + disks" => model(true, false),
        "nodes + disks + switches" => model(true, true),
        other => panic!("unknown coverage arm '{other}'"),
    }
}

fn main() {
    banner(
        "E12 — what the availability estimate misses per modeled component",
        "each omitted component class silently inflates the availability \
         estimate; the gap between 'nodes only' and full coverage is the \
         modeling error a naive simulator ships to its users",
    );

    let args: Vec<String> = std::env::args().collect();
    let runner = runner_from_args(&args);
    let store = SharedStore::new();

    let spec = SweepSpec::new("e12-coverage")
        .axis(
            "failure model",
            ["nodes only", "nodes + disks", "nodes + disks + switches"],
        )
        .seed(12)
        .replications(4)
        .common_random_numbers()
        .aggregate("unavailability_events", MetricAgg::Sum)
        .aggregate("node_failures", MetricAgg::Sum)
        .aggregate("disk_failures", MetricAgg::Sum)
        .aggregate("switch_failures", MetricAgg::Sum)
        .aggregate("rebuilds_completed", MetricAgg::Sum);

    let out = runner.run(&spec, &store, |point, rep, sink| {
        let m = coverage_model(&point.axis_str("failure model"));
        let (r, telemetry) = m.run_observed(rep.seed, SimDuration::from_years(1.0), None);
        sink.record(
            point
                .record(spec.name(), rep.seed)
                .metric("availability", r.availability)
                .metric("unavailability_events", r.unavailability_events as f64)
                .telemetry(telemetry),
        );
        [
            ("availability".to_string(), r.availability),
            (
                "unavailability_events".to_string(),
                r.unavailability_events as f64,
            ),
            ("node_failures".to_string(), r.node_failures as f64),
            ("disk_failures".to_string(), r.disk_failures as f64),
            ("switch_failures".to_string(), r.switch_failures as f64),
            (
                "rebuilds_completed".to_string(),
                r.rebuilds_completed as f64,
            ),
        ]
        .into()
    });

    out.report()
        .axis_column("failure model", "failure model")
        .metric_column("availability", "availability", |a| format!("{a:.7}"))
        .metric_column("unavail events", "unavailability_events", |v| {
            format!("{}", v as u64)
        })
        .metric_column("node fails", "node_failures", |v| format!("{}", v as u64))
        .metric_column("disk fails", "disk_failures", |v| format!("{}", v as u64))
        .metric_column("switch fails", "switch_failures", |v| {
            format!("{}", v as u64)
        })
        .metric_column("rebuilds", "rebuilds_completed", |v| {
            format!("{}", v as u64)
        })
        .print();
    eprintln!(
        "computed on {} farm worker(s) in {:.2}s ({} recorded run(s))",
        runner.workers(),
        out.wall_s,
        store.len()
    );

    println!();
    let unavail = |label: &str| 1.0 - out.metric_where("failure model", label, "availability");
    let base = unavail("nodes only").max(1e-12);
    for name in ["nodes + disks", "nodes + disks + switches"] {
        let u = unavail(name);
        println!(
            "check: '{}' reveals {:.1}x the unavailability of 'nodes only' ({:.2e} vs {:.2e})",
            name,
            u / base,
            u,
            base
        );
    }
    println!(
        "takeaway: every omitted component class makes the design look \
         better than it is — the paper's call for failure data across the \
         whole component spectrum, quantified."
    );
}
