//! **E1 — Figure 1**: probability of data unavailability vs. number of
//! node failures.
//!
//! Reproduces the paper's only quantitative artifact: 10,000 customers,
//! quorum protocol, series {Random, RoundRobin} × {n=3, n=5} ×
//! {N=10, N=30}. All curve points run on the shared `windtunnel::farm`
//! executor; `--workers N` sets the pool size (default: host cores, or
//! `WT_WORKERS`) and stdout is bitwise-identical for any value (timing
//! and worker counts go to stderr).
//!
//! Extra flags:
//! * `--smoke` — the smallest series at reduced trial count (the CI
//!   configuration), skipping the full-figure qualitative checks and
//!   appending a deterministic DES digest line (see below),
//! * `--queue heap|calendar` — future-event-list backend for the DES
//!   runs (the digest and `--trace`); stdout is byte-identical across
//!   backends, which CI's kernel-smoke job diffs,
//! * `--trace <path>` — additionally run one representative DES
//!   availability run with the probe stack attached and write it as
//!   Chrome trace-event JSON (open in Perfetto / `about:tracing`),
//! * `--csv <path>` — write the raw series for plotting,
//! * `--metrics <path>` — run a small farm-recorded availability sweep
//!   through the observed (sketch-recording) path and write the merged
//!   store's [`MetricsSnapshot`] as Prometheus-style text exposition.
//!   The exposition is bitwise-identical for any `--workers` count and
//!   either `--queue` backend, which CI's obs-smoke job diffs.
//!
//! [`MetricsSnapshot`]: windtunnel::obs::MetricsSnapshot

use windtunnel::obs::TraceProbe;
use windtunnel::prelude::*;
use wt_bench::fig1::{compute, Fig1Config};
use wt_bench::{banner, export_trace, flag_value, fmt_p, queue_from_args, runner_from_args};
use wt_des::SimDuration;
use wt_store::SharedStore;

/// The figure itself is a Monte-Carlo quorum computation, so `--trace`
/// records one representative DES availability run instead: the default
/// 30-node storage cluster under failure pressure high enough to
/// exercise the full event vocabulary (failures, rebuild queueing,
/// repair completion).
fn trace_representative_run(path: &str, queue: QueueBackend) {
    let mut scenario = ScenarioBuilder::new("fig1-trace")
        .racks(3)
        .nodes_per_rack(10)
        .objects(200)
        .object_gb(4.0)
        .horizon_years(0.25)
        .seed(2014)
        .queue(queue)
        .build();
    scenario.topology.node.ttf = Dist::weibull_mean(0.8, 40.0 * 86_400.0);

    let tunnel = WindTunnel::new();
    let mut probe = TraceProbe::new();
    let (result, telemetry) =
        tunnel.run_availability_observed_into(&scenario, tunnel.store(), Some(&mut probe));
    eprintln!(
        "[trace] representative availability run: A={:.6}, {} node failure(s), {} sim event(s)",
        result.availability, result.node_failures, telemetry.events
    );
    export_trace(path, &mut probe, &telemetry);
}

fn main() {
    banner(
        "E1 / Figure 1 — P(data unavailability) vs node failures",
        "probability grows with failures; n=5 far below n=3; Random >= RoundRobin; \
         N=10 saturates sooner than N=30",
    );

    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let runner = runner_from_args(&args);
    let queue = queue_from_args(&args);

    let config = if smoke {
        Fig1Config::smallest()
    } else {
        Fig1Config::paper()
    };
    let t0 = std::time::Instant::now();
    let curves = compute(&config, &runner);
    let wall = t0.elapsed().as_secs_f64();
    curves.table().print();
    eprintln!(
        "computed on {} farm worker(s) in {wall:.2}s",
        runner.workers()
    );

    // Optional: `fig1 --csv <path>` writes the raw series for plotting.
    if let Some(path) = flag_value(&args, "--csv") {
        if let Err(e) = std::fs::write(path, curves.csv()) {
            eprintln!("error: failed to write --csv {path}: {e}");
            std::process::exit(1);
        }
        println!("series written to {path}");
    }

    if let Some(path) = flag_value(&args, "--trace") {
        trace_representative_run(path, queue);
    }

    // `--metrics`: a small sketch-bearing sweep (observed availability
    // runs on the farm, shards merged in item order) folded into one
    // MetricsSnapshot. Every byte of the exposition is derived from
    // simulation-determined state, so the file is identical for any
    // worker count and either queue backend.
    if let Some(path) = flag_value(&args, "--metrics") {
        let store = SharedStore::new();
        let spec = SweepSpec::new("fig1-metrics")
            .axis("ttf_days", [30.0, 60.0])
            .replications(2)
            .seed(2014);
        runner.run(&spec, &store, |point, rep, sink| {
            let mut sc = ScenarioBuilder::new("fig1-metrics")
                .racks(1)
                .nodes_per_rack(10)
                .objects(150)
                .object_gb(4.0)
                .horizon_years(0.25)
                .seed(rep.seed)
                .queue(queue)
                .build();
            sc.topology.node.ttf = Dist::weibull_mean(0.8, point.axis_num("ttf_days") * 86_400.0);
            let tunnel = WindTunnel::new();
            let (r, _telemetry) = tunnel.run_availability_observed_into(&sc, sink, None);
            [("availability".to_string(), r.availability)].into()
        });
        if let Err(e) = std::fs::write(path, store.metrics_snapshot().render()) {
            eprintln!("error: failed to write --metrics {path}: {e}");
            std::process::exit(1);
        }
        println!("metrics written to {path}");
    }

    if smoke {
        // The figure itself is a Monte-Carlo quorum computation that never
        // touches the event queue, so `--queue` needs a run with teeth: one
        // deterministic DES availability run on the selected backend, its
        // digest printed to stdout. The backend name is deliberately
        // absent from the line — CI diffs the heap and calendar stdout
        // byte for byte, and this digest is the part a nonconforming
        // backend would corrupt.
        let mut scenario = ScenarioBuilder::new("fig1-smoke-des")
            .racks(1)
            .nodes_per_rack(10)
            .objects(150)
            .object_gb(4.0)
            .horizon_years(0.25)
            .seed(2014)
            .queue(queue)
            .build();
        scenario.topology.node.ttf = Dist::weibull_mean(0.8, 40.0 * 86_400.0);
        let model = WindTunnel::availability_model(&scenario);
        let r = model.run(
            scenario.seed,
            SimDuration::from_years(scenario.horizon_years),
        );
        println!();
        println!(
            "des digest: availability={:.9} node_failures={} rebuilds={} events={}",
            r.availability, r.node_failures, r.rebuilds_completed, r.sim_events
        );
        // The reduced grid has a single series; the full-figure
        // cross-series checks below would index columns it lacks.
        return;
    }

    // The qualitative checks the paper's Figure 1 makes visually.
    println!();
    // n=5 is safe where n=3 is already certain to lose someone (f=2).
    let r3 = curves.curves[curves.col(10, 3, "R")][2];
    let r5 = curves.curves[curves.col(10, 5, "R")][2];
    println!(
        "check: at f=2, Random n=5 below n=3: {} < {} -> {}",
        fmt_p(r5),
        fmt_p(r3),
        r5 < r3
    );
    let f = 3;
    let rr3_30 = curves.curves[curves.col(30, 3, "RR")][f];
    let r3_30 = curves.curves[curves.col(30, 3, "R")][f];
    println!(
        "check: at f={f}, Random >= RoundRobin on N=30 n=3: {} >= {} -> {}",
        fmt_p(r3_30),
        fmt_p(rr3_30),
        r3_30 >= rr3_30
    );
    let rr10 = curves.curves[curves.col(10, 3, "RR")][f];
    let rr30 = curves.curves[curves.col(30, 3, "RR")][f];
    println!(
        "check: at f={f}, RR on N=10 above RR on N=30: {} >= {} -> {}",
        fmt_p(rr10),
        fmt_p(rr30),
        rr10 >= rr30
    );
    // The paper's '*' series: with 10,000 users, Random placement occupies
    // essentially every replica set, so the N=10 and N=30 curves coincide
    // (the figure draws them as a single 'R-n-*' line).
    let star3 = (0..=config.max_f).all(|f| {
        (curves.curves[curves.col(10, 3, "R")][f] - curves.curves[curves.col(30, 3, "R")][f]).abs()
            < 0.02
    });
    println!("check: Random n=3 curves for N=10 and N=30 coincide ('*') -> {star3}");
}
