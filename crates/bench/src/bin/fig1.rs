//! **E1 — Figure 1**: probability of data unavailability vs. number of
//! node failures.
//!
//! Reproduces the paper's only quantitative artifact: 10,000 customers,
//! quorum protocol, series {Random, RoundRobin} × {n=3, n=5} ×
//! {N=10, N=30}.

use wt_bench::{banner, fmt_p, Table};
use wt_cluster::UnavailabilityExperiment;
use wt_sw::Placement;

fn main() {
    banner(
        "E1 / Figure 1 — P(data unavailability) vs node failures",
        "probability grows with failures; n=5 far below n=3; Random >= RoundRobin; \
         N=10 saturates sooner than N=30",
    );

    let users = 10_000;
    let seed = 2014;
    let series: Vec<(usize, usize, Placement)> = vec![
        (10, 3, Placement::Random),
        (10, 3, Placement::RoundRobin),
        (30, 3, Placement::Random),
        (30, 3, Placement::RoundRobin),
        (10, 5, Placement::Random),
        (10, 5, Placement::RoundRobin),
        (30, 5, Placement::Random),
        (30, 5, Placement::RoundRobin),
    ];

    let mut headers: Vec<String> = vec!["failures".to_string()];
    headers.extend(
        series
            .iter()
            .map(|(n_nodes, n, p)| format!("{}-n{}-N{}", p.label(), n, n_nodes)),
    );
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    // Curves, computed per series up to the largest cluster size.
    let max_f = 12; // the interesting range: beyond this everything saturates
    let curves: Vec<Vec<f64>> = series
        .iter()
        .map(|&(n_nodes, n, placement)| {
            let exp = UnavailabilityExperiment::figure1(n_nodes, users, n, placement, seed);
            (0..=max_f)
                .map(|f| {
                    if f > n_nodes {
                        1.0
                    } else {
                        exp.run_at(f).p_unavailable
                    }
                })
                .collect()
        })
        .collect();

    for f in 0..=max_f {
        let mut row = vec![f.to_string()];
        row.extend(curves.iter().map(|c| fmt_p(c[f])));
        table.row(row);
    }
    table.print();

    // Optional: `fig1 --csv <path>` writes the raw series for plotting.
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        if let Some(path) = args.get(pos + 1) {
            let mut csv = headers.join(",");
            csv.push('\n');
            for f in 0..=max_f {
                csv.push_str(&f.to_string());
                for c in &curves {
                    csv.push(',');
                    csv.push_str(&format!("{}", c[f]));
                }
                csv.push('\n');
            }
            std::fs::write(path, csv).expect("write csv");
            println!("\nseries written to {path}");
        }
    }

    // The qualitative checks the paper's Figure 1 makes visually.
    let col = |n_nodes: usize, n: usize, p: &str| -> usize {
        series
            .iter()
            .position(|(nn, r, pl)| *nn == n_nodes && *r == n && pl.label() == p)
            .expect("series exists")
    };
    println!();
    // n=5 is safe where n=3 is already certain to lose someone (f=2).
    let r3 = curves[col(10, 3, "R")][2];
    let r5 = curves[col(10, 5, "R")][2];
    println!(
        "check: at f=2, Random n=5 below n=3: {} < {} -> {}",
        fmt_p(r5),
        fmt_p(r3),
        r5 < r3
    );
    let f = 3;
    let rr3_30 = curves[col(30, 3, "RR")][f];
    let r3_30 = curves[col(30, 3, "R")][f];
    println!(
        "check: at f={f}, Random >= RoundRobin on N=30 n=3: {} >= {} -> {}",
        fmt_p(r3_30),
        fmt_p(rr3_30),
        r3_30 >= rr3_30
    );
    let rr10 = curves[col(10, 3, "RR")][f];
    let rr30 = curves[col(30, 3, "RR")][f];
    println!(
        "check: at f={f}, RR on N=10 above RR on N=30: {} >= {} -> {}",
        fmt_p(rr10),
        fmt_p(rr30),
        rr10 >= rr30
    );
    // The paper's '*' series: with 10,000 users, Random placement occupies
    // essentially every replica set, so the N=10 and N=30 curves coincide
    // (the figure draws them as a single 'R-n-*' line).
    let star3 =
        (0..=max_f).all(|f| (curves[col(10, 3, "R")][f] - curves[col(30, 3, "R")][f]).abs() < 0.02);
    println!("check: Random n=3 curves for N=10 and N=30 coincide ('*') -> {star3}");
}
