//! **E10 — operational logs → models → simulator (§4.4)**: generate a
//! synthetic operational log from known ground truth, fit distribution
//! models from the log, feed the fitted models back into the availability
//! simulator, and compare against the ground-truth run. Also show what
//! happens when the operator lazily fits an exponential (the §2.2 trap).
//!
//! The log generation and fitting are sequential (they are the pipeline
//! under test); the expensive part — 3 model sources × 30 replications
//! of the availability simulator — is a declarative [`SweepSpec`] on the
//! shared run farm with common random numbers, so every model source
//! faces identical failure traces. `--workers N` sizes the pool; stdout
//! is byte-identical for any value (timing goes to stderr).

use windtunnel::prelude::*;
use wt_bench::{banner, runner_from_args, Table};
use wt_cluster::{AvailabilityModel, RebuildModel};
use wt_des::rng::Stream;
use wt_des::time::SimDuration;
use wt_dist::fit::fit_exponential;
use wt_store::{generate_log, seed_models, SharedStore};

const DAY: f64 = 86_400.0;

fn avail_model(ttf: Dist, repair_time: Dist) -> AvailabilityModel {
    AvailabilityModel {
        n_nodes: 20,
        redundancy: RedundancyScheme::replication(3),
        placement: Placement::Random,
        objects: 300,
        object_bytes: 8 << 30,
        node_ttf: ttf,
        node_replace: Dist::deterministic(3600.0),
        rebuild: RebuildModel::Timed(repair_time),
        repair: RepairPolicy {
            max_parallel: 64,
            bandwidth_share: 0.5,
            detection_delay_s: 300.0,
        },
        switches: None,
        disks: None,
        queue: QueueBackend::Heap,
        chaos: None,
    }
}

fn main() {
    banner(
        "E10 — seeding simulator models from operational logs",
        "the pipeline recovers the Weibull/lognormal families and their \
         parameters from raw logs; the fitted models reproduce ground-truth \
         availability; and the naive exponential fit — right mean, wrong \
         shape — misstates early-failure risk by >2x (the §2.2 trap)",
    );

    let args: Vec<String> = std::env::args().collect();
    let runner = runner_from_args(&args);

    // Ground truth: the field-study laws.
    let ttf_truth = Dist::weibull_mean(0.7, 20.0 * DAY);
    let repair_truth = Dist::lognormal_mean_cv(12.0 * 3600.0, 1.2);

    // 1. Generate the "operational log" (what a real DC would export).
    let mut rng = Stream::from_seed(10);
    let log = generate_log(
        "node",
        500,
        3.0 * 365.0 * DAY,
        &ttf_truth,
        &repair_truth,
        &mut rng,
    );
    println!(
        "generated log: {} events from 500 components over 3 years",
        log.len()
    );

    // 2. Fit models from the log.
    let seeds = seed_models(&log);
    let seed = &seeds[0];
    let mut table = Table::new(&[
        "quantity",
        "family",
        "KS stat",
        "fit mean (d)",
        "truth mean (d)",
    ]);
    table.row(vec![
        "time-to-failure".into(),
        seed.best_ttf().family.into(),
        format!("{:.4}", seed.best_ttf().ks.statistic),
        format!("{:.2}", seed.best_ttf().dist.mean() / DAY),
        format!("{:.2}", ttf_truth.mean() / DAY),
    ]);
    table.row(vec![
        "repair time".into(),
        seed.best_repair().family.into(),
        format!("{:.4}", seed.best_repair().ks.statistic),
        format!("{:.2}", seed.best_repair().dist.mean() / DAY),
        format!("{:.2}", repair_truth.mean() / DAY),
    ]);
    table.print();

    // 3. Simulate with ground truth, fitted, and naive-exponential models.
    //    The repair_time drives the *rebuild* duration here, exercising the
    //    full log→model→simulator path.
    let ttf_samples: Vec<f64> = {
        // Re-extract raw TTF samples for the naive fit.
        let mut rng = Stream::from_seed(11);
        (0..5_000).map(|_| ttf_truth.sample(&mut rng)).collect()
    };
    let naive_ttf = fit_exponential(&ttf_samples);

    // Unavailability under bursty Weibull failures is heavy-tailed across
    // replications (single-run spread exceeds 10x), so average widely;
    // common random numbers give every model source the same traces.
    let sources: Vec<(&str, Dist, Dist)> = vec![
        ("ground truth", ttf_truth.clone(), repair_truth.clone()),
        (
            "fitted from log",
            seed.best_ttf().dist.clone(),
            seed.best_repair().dist.clone(),
        ),
        (
            "naive exponential TTF",
            naive_ttf.clone(),
            repair_truth.clone(),
        ),
    ];
    let spec = SweepSpec::new("e10-logmodel")
        .axis("model source", sources.iter().map(|(name, _, _)| *name))
        .seed(50)
        .replications(30)
        .common_random_numbers();
    let store = SharedStore::new();
    let out = runner.run(&spec, &store, |point, rep, sink| {
        let name = point.axis_str("model source");
        let (_, ttf, repair_time) = sources
            .iter()
            .find(|(n, _, _)| *n == name)
            .expect("model source");
        let m = avail_model(ttf.clone(), repair_time.clone());
        let (r, telemetry) = m.run_observed(rep.seed, SimDuration::from_days(200.0), None);
        sink.record(
            point
                .record(spec.name(), rep.seed)
                .metric("availability", r.availability)
                .telemetry(telemetry),
        );
        [("availability".to_string(), r.availability)].into()
    });
    eprintln!(
        "computed on {} farm worker(s) in {:.2}s ({} recorded run(s))",
        runner.workers(),
        out.wall_s,
        store.len()
    );

    println!();
    out.report()
        .axis_column("model source", "model source")
        .metric_column("availability", "availability", |a| format!("{a:.6}"))
        .metric_column("unavail (1-A)", "availability", |a| {
            format!("{:.3e}", 1.0 - a)
        })
        .print();

    println!();
    let avail = |name: &str| out.metric_where("model source", name, "availability");
    let truth = avail("ground truth");
    let fitted = avail("fitted from log");
    let err_fit = ((1.0 - fitted) - (1.0 - truth)).abs() / (1.0 - truth);
    println!(
        "check: fitted-model availability reproduces ground truth within noise: {:.0}% error -> {}",
        err_fit * 100.0,
        err_fit < 0.3
    );

    // Where the exponential shortcut actually bites (§2.2): the hazard
    // shape. Weibull(0.7) front-loads failures; an exponential with the
    // same mean understates the chance a fresh device dies young.
    let horizon = 1.0 * DAY;
    let p_truth = ttf_truth.cdf(horizon);
    let p_fitted = seed.best_ttf().dist.cdf(horizon);
    let p_naive = naive_ttf.cdf(horizon);
    let mut table = Table::new(&["model source", "P(fail within 1 day)"]);
    table.row(vec!["ground truth".into(), format!("{p_truth:.4}")]);
    table.row(vec!["fitted from log".into(), format!("{p_fitted:.4}")]);
    table.row(vec!["naive exponential".into(), format!("{p_naive:.4}")]);
    table.print();
    println!(
        "check: fitted early-failure probability within 10% of truth -> {}",
        (p_fitted - p_truth).abs() / p_truth < 0.1
    );
    println!(
        "check: naive exponential understates early failures by {:.1}x -> {}",
        p_truth / p_naive,
        p_truth / p_naive > 2.0
    );
}
