//! **E8 — erasure coding vs replication (§3 + ref \[14\])**: same failure
//! pressure, different redundancy schemes — availability, durability and
//! the storage bill side by side.

use wt_bench::{banner, Table};
use wt_cluster::{AvailabilityModel, RebuildModel};
use wt_des::time::SimDuration;
use wt_dist::Dist;
use wt_sw::{Placement, RedundancyScheme, RepairPolicy};

const DAY: f64 = 86_400.0;

fn main() {
    banner(
        "E8 — replication vs Reed-Solomon under identical failure traces",
        "RS(10,4) stores 2.1x less than rep3 with better fault tolerance \
         (4 vs 2 losses) but pays repair amplification; rep3 loses data \
         first as failure pressure rises",
    );

    let schemes = [
        RedundancyScheme::replication(3),
        RedundancyScheme::erasure(6, 3),
        RedundancyScheme::erasure(10, 4),
    ];

    let mk = |scheme: RedundancyScheme| AvailabilityModel {
        n_nodes: 30,
        redundancy: scheme,
        placement: Placement::Random,
        objects: 1_500,
        object_bytes: 32 << 30,
        node_ttf: Dist::weibull_mean(0.8, 15.0 * DAY),
        node_replace: Dist::lognormal_mean_cv(6.0 * 3600.0, 1.0),
        rebuild: RebuildModel::Bandwidth {
            link_gbps: 10.0,
            share: 0.5,
        },
        repair: RepairPolicy {
            max_parallel: 32,
            bandwidth_share: 0.5,
            detection_delay_s: 600.0,
        },
        switches: None,
        disks: None,
    };

    let mut table = Table::new(&[
        "scheme",
        "overhead",
        "tolerates",
        "availability",
        "unavail events",
        "objects lost",
        "repair bytes/32GB object",
    ]);
    let mut rows = Vec::new();
    for scheme in schemes {
        let model = mk(scheme);
        // Average over seeds; identical seeds = identical failure traces
        // across schemes (common random numbers).
        let mut avail = 0.0;
        let mut events = 0u64;
        let mut lost = 0u64;
        let reps = 3;
        for seed in 0..reps {
            let r = model.run(seed, SimDuration::from_days(120.0));
            avail += r.availability / reps as f64;
            events += r.unavailability_events;
            lost += r.objects_lost;
        }
        let tolerates = match scheme {
            RedundancyScheme::Replication(q) => q.n - (q.n / 2 + 1),
            RedundancyScheme::Erasure(s) => s.m,
        };
        table.row(vec![
            scheme.label(),
            format!("{:.2}x", scheme.overhead()),
            tolerates.to_string(),
            format!("{avail:.6}"),
            events.to_string(),
            lost.to_string(),
            format!(
                "{:.1} GB",
                scheme.repair_traffic_bytes(32 << 30) as f64 / 1e9
            ),
        ]);
        rows.push((scheme.label(), avail, lost, scheme.overhead()));
    }
    table.print();

    println!();
    let rep3 = rows.iter().find(|r| r.0 == "rep3").expect("rep3 arm");
    let rs104 = rows.iter().find(|r| r.0 == "rs(10,4)").expect("rs arm");
    println!(
        "check: RS(10,4) stores {:.1}x less than rep3 -> {}",
        rep3.3 / rs104.3,
        rep3.3 / rs104.3 > 2.0
    );
    println!(
        "check: RS(10,4) durability >= rep3 (lost {} vs {})",
        rs104.2, rep3.2
    );
}
