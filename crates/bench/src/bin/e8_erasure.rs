//! **E8 — erasure coding vs replication (§3 + ref \[14\])**: same failure
//! pressure, different redundancy schemes — availability, durability and
//! the storage bill side by side.
//!
//! The redundancy axis is a declarative [`SweepSpec`] executed on the
//! shared run farm: three CRN replications per scheme (identical failure
//! traces across arms), per-run records with engine telemetry, and the
//! table rendered by [`windtunnel::sweep::SweepReport`]. `--workers N`
//! sizes the pool; stdout is byte-identical for any value (timing goes
//! to stderr).

use windtunnel::prelude::*;
use wt_bench::{banner, runner_from_args};
use wt_cluster::{AvailabilityModel, RebuildModel};
use wt_des::time::SimDuration;
use wt_store::SharedStore;

const DAY: f64 = 86_400.0;

fn scheme_of(label: &str) -> RedundancyScheme {
    [
        RedundancyScheme::replication(3),
        RedundancyScheme::erasure(6, 3),
        RedundancyScheme::erasure(10, 4),
    ]
    .into_iter()
    .find(|s| s.label() == label)
    .unwrap_or_else(|| panic!("unknown scheme '{label}'"))
}

fn mk(scheme: RedundancyScheme) -> AvailabilityModel {
    AvailabilityModel {
        n_nodes: 30,
        redundancy: scheme,
        placement: Placement::Random,
        objects: 1_500,
        object_bytes: 32 << 30,
        node_ttf: Dist::weibull_mean(0.8, 15.0 * DAY),
        node_replace: Dist::lognormal_mean_cv(6.0 * 3600.0, 1.0),
        rebuild: RebuildModel::Bandwidth {
            link_gbps: 10.0,
            share: 0.5,
        },
        repair: RepairPolicy {
            max_parallel: 32,
            bandwidth_share: 0.5,
            detection_delay_s: 600.0,
        },
        switches: None,
        disks: None,
        queue: QueueBackend::Heap,
        chaos: None,
    }
}

fn main() {
    banner(
        "E8 — replication vs Reed-Solomon under identical failure traces",
        "RS(10,4) stores 2.1x less than rep3 with better fault tolerance \
         (4 vs 2 losses) but pays repair amplification; rep3 loses data \
         first as failure pressure rises",
    );

    let args: Vec<String> = std::env::args().collect();
    let runner = runner_from_args(&args);
    let store = SharedStore::new();

    // Identical replication seeds across schemes (common random numbers):
    // every arm faces the same failure trace, so differences are the
    // scheme's alone.
    let spec = SweepSpec::new("e8-redundancy")
        .axis(
            "scheme",
            ["rep3", "rs(6,3)", "rs(10,4)"].map(|s| scheme_of(s).label()),
        )
        .seed(8)
        .replications(3)
        .common_random_numbers()
        .aggregate("unavailability_events", MetricAgg::Sum)
        .aggregate("objects_lost", MetricAgg::Sum);

    let out = runner.run(&spec, &store, |point, rep, sink| {
        let model = mk(scheme_of(&point.axis_str("scheme")));
        let (r, telemetry) = model.run_observed(rep.seed, SimDuration::from_days(120.0), None);
        sink.record(
            point
                .record(spec.name(), rep.seed)
                .metric("availability", r.availability)
                .metric("unavailability_events", r.unavailability_events as f64)
                .metric("objects_lost", r.objects_lost as f64)
                .telemetry(telemetry),
        );
        [
            ("availability".to_string(), r.availability),
            (
                "unavailability_events".to_string(),
                r.unavailability_events as f64,
            ),
            ("objects_lost".to_string(), r.objects_lost as f64),
        ]
        .into()
    });

    out.report()
        .axis_column("scheme", "scheme")
        .column("overhead", |row| {
            format!("{:.2}x", scheme_of(&row.axis_display("scheme")).overhead())
        })
        .column("tolerates", |row| {
            let tolerates = match scheme_of(&row.axis_display("scheme")) {
                RedundancyScheme::Replication(q) => q.n - (q.n / 2 + 1),
                RedundancyScheme::Erasure(s) => s.m,
            };
            tolerates.to_string()
        })
        .metric_column("availability", "availability", |v| format!("{v:.6}"))
        .metric_column("unavail events", "unavailability_events", |v| {
            format!("{}", v as u64)
        })
        .metric_column("objects lost", "objects_lost", |v| format!("{}", v as u64))
        .column("repair bytes/32GB object", |row| {
            let scheme = scheme_of(&row.axis_display("scheme"));
            format!(
                "{:.1} GB",
                scheme.repair_traffic_bytes(32 << 30) as f64 / 1e9
            )
        })
        .print();
    eprintln!(
        "computed on {} farm worker(s) in {:.2}s ({} recorded run(s))",
        runner.workers(),
        out.wall_s,
        store.len()
    );

    println!();
    let overhead = |label: &str| scheme_of(label).overhead();
    let lost = |label: &str| out.metric_where("scheme", label, "objects_lost") as u64;
    let ratio = overhead("rep3") / overhead("rs(10,4)");
    println!(
        "check: RS(10,4) stores {ratio:.1}x less than rep3 -> {}",
        ratio > 2.0
    );
    println!(
        "check: RS(10,4) durability >= rep3 (lost {} vs {})",
        lost("rs(10,4)"),
        lost("rep3")
    );
}
