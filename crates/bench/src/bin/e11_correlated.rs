//! **E11 — correlated failures (§2.1)**: "behaviors that happen at a
//! larger scale can't be easily observed at a smaller scale; e.g. …
//! correlated hardware failures". A top-of-rack switch outage takes a
//! whole rack offline at once; whether that breaks customer quorums is
//! decided by the *placement policy* — a hardware/software interaction
//! that only an integrated simulation exposes.

use wt_bench::{banner, Table};
use wt_cluster::availability::SwitchFailureModel;
use wt_cluster::{AvailabilityModel, RebuildModel};
use wt_des::time::SimDuration;
use wt_dist::Dist;
use wt_sw::{Placement, RedundancyScheme, RepairPolicy};

const DAY: f64 = 86_400.0;
const YEAR: f64 = 365.0 * DAY;

fn model(placement: Placement, with_switch_failures: bool) -> AvailabilityModel {
    AvailabilityModel {
        n_nodes: 60,
        redundancy: RedundancyScheme::replication(3),
        placement,
        objects: 2_000,
        object_bytes: 8 << 30,
        node_ttf: Dist::weibull_mean(0.9, 5.0 * YEAR),
        node_replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
        rebuild: RebuildModel::Bandwidth {
            link_gbps: 10.0,
            share: 0.5,
        },
        repair: RepairPolicy {
            max_parallel: 16,
            bandwidth_share: 0.5,
            detection_delay_s: 300.0,
        },
        switches: with_switch_failures.then(|| SwitchFailureModel {
            nodes_per_rack: 10,
            ttf: Dist::exponential_mean(60.0 * DAY),
            // A 1h-mean switch swap: short enough that simultaneous
            // double-outages (the only thing that hurts RackAware) are
            // rare, while every single outage still hits Random's
            // rack-colocated quorums.
            repair: Dist::lognormal_mean_cv(3600.0, 1.0),
        }),
        disks: None,
    }
}

fn run(m: &AvailabilityModel) -> (f64, u64, u64) {
    let reps = 3;
    let mut avail = 0.0;
    let mut events = 0;
    let mut switch_failures = 0;
    for seed in 0..reps {
        let r = m.run(seed, SimDuration::from_years(1.0));
        avail += r.availability / reps as f64;
        events += r.unavailability_events;
        switch_failures += r.switch_failures;
    }
    (avail, events, switch_failures)
}

fn main() {
    banner(
        "E11 — correlated rack failures vs placement policy",
        "with independent node failures only, Random and RackAware placement \
         are nearly indistinguishable; once correlated switch outages are \
         modeled, Random placement suffers orders of magnitude more quorum \
         losses — the class of effect the paper says small prototypes miss",
    );

    let arms: Vec<(&str, Placement, bool)> = vec![
        ("Random, node failures only", Placement::Random, false),
        (
            "RackAware, node failures only",
            Placement::RackAware { nodes_per_rack: 10 },
            false,
        ),
        ("Random, + switch outages", Placement::Random, true),
        (
            "RackAware, + switch outages",
            Placement::RackAware { nodes_per_rack: 10 },
            true,
        ),
    ];

    let mut table = Table::new(&["arm", "availability", "unavail events", "switch outages"]);
    let mut results = Vec::new();
    for (name, placement, switches) in arms {
        let (avail, events, sw) = run(&model(placement, switches));
        table.row(vec![
            name.to_string(),
            format!("{avail:.7}"),
            events.to_string(),
            sw.to_string(),
        ]);
        results.push((name, avail, events));
    }
    table.print();

    println!();
    let events = |n: &str| results.iter().find(|(k, _, _)| *k == n).expect("arm").2;
    let without = events("Random, node failures only").max(1);
    let ra_without = events("RackAware, node failures only").max(1);
    println!(
        "check: without correlation both placements are near-perfect ({without} vs {ra_without} episodes)"
    );
    let with = events("Random, + switch outages");
    let ra_with = events("RackAware, + switch outages");
    println!(
        "check: correlation separates them: Random {} vs RackAware {} -> {}x",
        with,
        ra_with,
        with / ra_with.max(1)
    );
    println!(
        "check: a small prototype without rack-scale correlation would have \
         called the two placements equivalent — the wind tunnel does not."
    );
}
