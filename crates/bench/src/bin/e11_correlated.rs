//! **E11 — correlated failures (§2.1)**: "behaviors that happen at a
//! larger scale can't be easily observed at a smaller scale; e.g. …
//! correlated hardware failures". A top-of-rack switch outage takes a
//! whole rack offline at once; whether that breaks customer quorums is
//! decided by the *placement policy* — a hardware/software interaction
//! that only an integrated simulation exposes.
//!
//! The 2×2 grid (placement × switch outages) is a declarative
//! [`SweepSpec`] on the shared run farm: 3 CRN replications per arm, so
//! every arm faces the same failure trace. `--workers N` sizes the pool;
//! stdout is byte-identical for any value (timing goes to stderr).

use windtunnel::prelude::*;
use wt_bench::{banner, runner_from_args};
use wt_cluster::availability::SwitchFailureModel;
use wt_cluster::{AvailabilityModel, RebuildModel};
use wt_des::time::SimDuration;
use wt_store::SharedStore;

const DAY: f64 = 86_400.0;
const YEAR: f64 = 365.0 * DAY;

fn model(placement: Placement, with_switch_failures: bool) -> AvailabilityModel {
    AvailabilityModel {
        n_nodes: 60,
        redundancy: RedundancyScheme::replication(3),
        placement,
        objects: 2_000,
        object_bytes: 8 << 30,
        node_ttf: Dist::weibull_mean(0.9, 5.0 * YEAR),
        node_replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
        rebuild: RebuildModel::Bandwidth {
            link_gbps: 10.0,
            share: 0.5,
        },
        repair: RepairPolicy {
            max_parallel: 16,
            bandwidth_share: 0.5,
            detection_delay_s: 300.0,
        },
        switches: with_switch_failures.then(|| SwitchFailureModel {
            nodes_per_rack: 10,
            ttf: Dist::exponential_mean(60.0 * DAY),
            // A 1h-mean switch swap: short enough that simultaneous
            // double-outages (the only thing that hurts RackAware) are
            // rare, while every single outage still hits Random's
            // rack-colocated quorums.
            repair: Dist::lognormal_mean_cv(3600.0, 1.0),
        }),
        disks: None,
        queue: QueueBackend::Heap,
        chaos: None,
    }
}

fn placement_of(label: &str) -> Placement {
    match label {
        "Random" => Placement::Random,
        "RackAware" => Placement::RackAware { nodes_per_rack: 10 },
        other => panic!("unknown placement '{other}'"),
    }
}

fn arm_label(placement: &str, switches: bool) -> String {
    format!(
        "{placement}, {}",
        if switches {
            "+ switch outages"
        } else {
            "node failures only"
        }
    )
}

fn main() {
    banner(
        "E11 — correlated rack failures vs placement policy",
        "with independent node failures only, Random and RackAware placement \
         are nearly indistinguishable; once correlated switch outages are \
         modeled, Random placement suffers orders of magnitude more quorum \
         losses — the class of effect the paper says small prototypes miss",
    );

    let args: Vec<String> = std::env::args().collect();
    let runner = runner_from_args(&args);
    let store = SharedStore::new();

    let spec = SweepSpec::new("e11-correlated")
        .axis("placement", ["Random", "RackAware"])
        .axis("switch_outages", [false, true])
        .seed(11)
        .replications(3)
        .common_random_numbers()
        .aggregate("unavailability_events", MetricAgg::Sum)
        .aggregate("switch_failures", MetricAgg::Sum);

    let out = runner.run(&spec, &store, |point, rep, sink| {
        let m = model(
            placement_of(&point.axis_str("placement")),
            point.axis_bool("switch_outages"),
        );
        let (r, telemetry) = m.run_observed(rep.seed, SimDuration::from_years(1.0), None);
        sink.record(
            point
                .record(spec.name(), rep.seed)
                .metric("availability", r.availability)
                .metric("unavailability_events", r.unavailability_events as f64)
                .metric("switch_failures", r.switch_failures as f64)
                .telemetry(telemetry),
        );
        [
            ("availability".to_string(), r.availability),
            (
                "unavailability_events".to_string(),
                r.unavailability_events as f64,
            ),
            ("switch_failures".to_string(), r.switch_failures as f64),
        ]
        .into()
    });

    out.report()
        .column("arm", |row| {
            arm_label(
                &row.axis_display("placement"),
                row.point.axis_bool("switch_outages"),
            )
        })
        .metric_column("availability", "availability", |a| format!("{a:.7}"))
        .metric_column("unavail events", "unavailability_events", |v| {
            format!("{}", v as u64)
        })
        .metric_column("switch outages", "switch_failures", |v| {
            format!("{}", v as u64)
        })
        .print();
    eprintln!(
        "computed on {} farm worker(s) in {:.2}s ({} recorded run(s))",
        runner.workers(),
        out.wall_s,
        store.len()
    );

    println!();
    let events = |placement: &str, switches: bool| {
        out.rows
            .iter()
            .find(|r| r.matches("placement", placement) && r.matches("switch_outages", switches))
            .expect("arm")
            .metric("unavailability_events") as u64
    };
    let without = events("Random", false).max(1);
    let ra_without = events("RackAware", false).max(1);
    println!(
        "check: without correlation both placements are near-perfect ({without} vs {ra_without} episodes)"
    );
    let with = events("Random", true);
    let ra_with = events("RackAware", true);
    println!(
        "check: correlation separates them: Random {} vs RackAware {} -> {}x",
        with,
        ra_with,
        with / ra_with.max(1)
    );
    println!(
        "check: a small prototype without rack-scale correlation would have \
         called the two placements equivalent — the wind tunnel does not."
    );
}
