//! # wt-bench — the experiment harness
//!
//! One binary per experiment from EXPERIMENTS.md (`fig1`, `e2_repair_whatif`
//! … `e10_logmodel`), each regenerating the corresponding figure/use-case
//! of the paper, plus Criterion micro-benchmarks for the ablations listed
//! in DESIGN.md §8. This library holds the output formatting shared by the
//! binaries.

pub mod fig1;
pub mod queuesim;

use windtunnel::farm::Farm;
use windtunnel::obs::{RunTelemetry, TraceProbe};
use windtunnel::sweep::SweepRunner;

// The table/formatting helpers moved into `windtunnel::report` when the
// sweep layer started rendering its own tables; re-exported here so the
// binaries keep one import path.
pub use windtunnel::report::{banner, fmt_p, fmt_secs, Table};

/// Returns the value following flag `name` in `args`, if present.
pub fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|pos| args.get(pos + 1))
}

/// The shared `--workers N` flag: an explicit pool size when given,
/// otherwise the environment default (`WT_WORKERS`, then host cores).
/// Exits with a usage error on a non-numeric value.
pub fn farm_from_args(args: &[String]) -> Farm {
    match flag_value(args, "--workers") {
        Some(v) => match v.parse::<usize>() {
            Ok(w) => Farm::new(w),
            Err(_) => {
                eprintln!("error: --workers expects a number, got '{v}'");
                std::process::exit(2);
            }
        },
        None => Farm::from_env(),
    }
}

/// A [`SweepRunner`] over the farm selected by `--workers`/environment —
/// the standard way an experiment binary obtains its executor.
pub fn runner_from_args(args: &[String]) -> SweepRunner {
    SweepRunner::new(farm_from_args(args))
}

/// The shared `--queue heap|calendar` flag selecting the engines'
/// future-event-list backend (default heap). Exits with a usage error on
/// an unknown backend name. The choice affects wall-clock time only —
/// experiment output is byte-identical either way, which the CI
/// kernel-smoke job diffs.
pub fn queue_from_args(args: &[String]) -> wt_des::QueueBackend {
    queue_opt_from_args(args).unwrap_or_default()
}

/// [`queue_from_args`] preserving "no flag given" as `None`, for binaries
/// that let scenario-level adaptive selection pick the backend when the
/// user expresses no preference (see `Scenario::queue_backend_for`).
pub fn queue_opt_from_args(args: &[String]) -> Option<wt_des::QueueBackend> {
    flag_value(args, "--queue").map(|v| match wt_des::QueueBackend::parse(v) {
        Some(q) => q,
        None => {
            eprintln!("error: --queue expects 'heap' or 'calendar', got '{v}'");
            std::process::exit(2);
        }
    })
}

/// The shared `--partitions N` flag: how many conservative-lookahead
/// partitions a single simulation run is sharded across. An explicit
/// flag wins; otherwise the `WT_PARTITIONS` environment knob applies
/// (parsed by the same helper as `WT_WORKERS`, warn-once on garbage);
/// the default is 1 — the serial oracle. Exits with a usage error on a
/// non-positive or non-numeric flag value. Partitioning affects
/// wall-clock time only: results are bitwise-identical at any partition
/// count, which the CI partition-smoke job diffs.
pub fn partitions_from_args(args: &[String]) -> usize {
    match flag_value(args, "--partitions") {
        Some(v) => match windtunnel::knobs::parse_count("--partitions", "partition", Some(v)) {
            Ok(n) => n.unwrap_or(1),
            Err(reason) => {
                eprintln!("error: {reason}");
                std::process::exit(2);
            }
        },
        None => windtunnel::knobs::partitions_from_env(),
    }
}

/// Writes a recorded run as Chrome trace-event JSON (`--trace <path>`)
/// and reports the span/event round trip on stderr — stderr so that
/// experiment stdout stays byte-identical with tracing on or off.
///
/// Exits nonzero when the trace disagrees with the engine's event count
/// or the file cannot be written; the CI smoke job relies on this.
pub fn export_trace(path: &str, probe: &mut TraceProbe, telemetry: &RunTelemetry) {
    let spans = probe.span_count() as u64;
    if spans != telemetry.events {
        eprintln!(
            "error: trace holds {spans} span(s) but the engine executed {} event(s)",
            telemetry.events
        );
        std::process::exit(1);
    }
    let mut buf = Vec::new();
    probe
        .write_chrome_json(&mut buf)
        .expect("in-memory trace serialization cannot fail");
    if let Err(e) = std::fs::write(path, &buf) {
        eprintln!("error: failed to write --trace {path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "[trace] {spans} span(s), peak queue depth {}, stop: {} -> {path}",
        telemetry.peak_queue_depth, telemetry.stop_reason
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_from_args_honors_workers_flag() {
        let args: Vec<String> = vec!["prog".into(), "--workers".into(), "3".into()];
        assert_eq!(runner_from_args(&args).workers(), 3);
    }

    #[test]
    fn partitions_flag_wins_and_defaults_to_serial() {
        let args: Vec<String> = vec!["prog".into(), "--partitions".into(), "4".into()];
        assert_eq!(partitions_from_args(&args), 4);
        // No flag and no WT_PARTITIONS in the test environment: serial.
        let bare: Vec<String> = vec!["prog".into()];
        assert_eq!(partitions_from_args(&bare), 1);
    }
}
