//! # wt-bench — the experiment harness
//!
//! One binary per experiment from EXPERIMENTS.md (`fig1`, `e2_repair_whatif`
//! … `e10_logmodel`), each regenerating the corresponding figure/use-case
//! of the paper, plus Criterion micro-benchmarks for the ablations listed
//! in DESIGN.md §8. This library holds the output formatting shared by the
//! binaries.

pub mod fig1;
pub mod queuesim;

use std::fmt::Write as _;
use windtunnel::farm::Farm;
use windtunnel::obs::{RunTelemetry, TraceProbe};

/// Returns the value following flag `name` in `args`, if present.
pub fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|pos| args.get(pos + 1))
}

/// The shared `--workers N` flag: an explicit pool size when given,
/// otherwise the environment default (`WT_WORKERS`, then host cores).
/// Exits with a usage error on a non-numeric value.
pub fn farm_from_args(args: &[String]) -> Farm {
    match flag_value(args, "--workers") {
        Some(v) => match v.parse::<usize>() {
            Ok(w) => Farm::new(w),
            Err(_) => {
                eprintln!("error: --workers expects a number, got '{v}'");
                std::process::exit(2);
            }
        },
        None => Farm::from_env(),
    }
}

/// Writes a recorded run as Chrome trace-event JSON (`--trace <path>`)
/// and reports the span/event round trip on stderr — stderr so that
/// experiment stdout stays byte-identical with tracing on or off.
///
/// Exits nonzero when the trace disagrees with the engine's event count
/// or the file cannot be written; the CI smoke job relies on this.
pub fn export_trace(path: &str, probe: &mut TraceProbe, telemetry: &RunTelemetry) {
    let spans = probe.span_count() as u64;
    if spans != telemetry.events {
        eprintln!(
            "error: trace holds {spans} span(s) but the engine executed {} event(s)",
            telemetry.events
        );
        std::process::exit(1);
    }
    let mut buf = Vec::new();
    probe
        .write_chrome_json(&mut buf)
        .expect("in-memory trace serialization cannot fail");
    if let Err(e) = std::fs::write(path, &buf) {
        eprintln!("error: failed to write --trace {path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "[trace] {spans} span(s), peak queue depth {}, stop: {} -> {path}",
        telemetry.peak_queue_depth, telemetry.stop_reason
    );
}

/// A fixed-width text table, printed to stdout by the experiment binaries
/// so EXPERIMENTS.md can paste results directly.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String], widths: &[usize]| {
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(out, "{cell:>w$}  ");
            }
            out.push('\n');
        };
        line(&mut out, &self.headers, &widths);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row, &widths);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a probability with enough digits to see tails.
pub fn fmt_p(p: f64) -> String {
    if p == 0.0 {
        "0".into()
    } else if p >= 0.01 {
        format!("{p:.3}")
    } else {
        format!("{p:.2e}")
    }
}

/// Formats seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.2}h", s / 3600.0)
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.2}ms", s * 1000.0)
    }
}

/// Banner printed at the top of each experiment binary.
pub fn banner(id: &str, claim: &str) {
    println!("=== {id} ===");
    println!("paper expectation: {claim}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["f", "P(unavail)"]);
        t.row(vec!["0".into(), "0".into()]);
        t.row(vec!["10".into(), "1.000".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("P(unavail)"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_p(0.0), "0");
        assert_eq!(fmt_p(0.5), "0.500");
        assert!(fmt_p(1e-4).contains('e'));
        assert_eq!(fmt_secs(2.0), "2.00s");
        assert_eq!(fmt_secs(7200.0), "2.00h");
        assert_eq!(fmt_secs(0.01), "10.00ms");
    }
}
