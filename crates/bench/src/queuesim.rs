//! A G/G/c queue simulator on the DES kernel — the workhorse of the §4.3
//! validation experiment (E5): simulate M/M/1, M/M/c and M/G/1 stations
//! and compare against the closed forms in `wt-analytic`.

use wt_des::prelude::*;
use wt_des::ServerPool;
use wt_dist::Dist;

/// One queueing station: arbitrary interarrival and service distributions,
/// `c` identical servers, FIFO discipline.
pub struct QueueSim {
    /// Interarrival distribution, seconds.
    pub interarrival: Dist,
    /// Service distribution, seconds.
    pub service: Dist,
    /// Number of servers.
    pub servers: usize,
}

/// Steady-ish-state estimates from one run.
#[derive(Debug, Clone, Copy)]
pub struct QueueStats {
    /// Mean wait in queue (excluding service), seconds.
    pub wq: f64,
    /// Mean time in system, seconds.
    pub w: f64,
    /// Time-averaged queue length.
    pub lq: f64,
    /// Server utilization.
    pub rho: f64,
    /// Customers that completed service.
    pub completed: u64,
}

enum Ev {
    Arrival,
    Departure,
}

struct St {
    interarrival: Dist,
    service: Dist,
    pool: ServerPool<()>,
    rng: wt_des::rng::Stream,
}

impl Model for St {
    type Event = Ev;
    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now();
        match ev {
            Ev::Arrival => {
                let gap = SimDuration::from_secs(self.interarrival.sample(&mut self.rng));
                ctx.schedule_in(gap, Ev::Arrival);
                if self.pool.arrive(now, ()).is_some() {
                    let s = SimDuration::from_secs(self.service.sample(&mut self.rng));
                    ctx.schedule_in(s, Ev::Departure);
                }
            }
            Ev::Departure => {
                if self.pool.depart(now).is_some() {
                    // The next queued job starts service immediately.
                    let s = SimDuration::from_secs(self.service.sample(&mut self.rng));
                    ctx.schedule_in(s, Ev::Departure);
                }
            }
        }
    }
}

impl QueueSim {
    /// Runs the station for `customers` completions and returns its
    /// statistics. Wait/utilization figures come from the server pool's
    /// exact time-weighted accounting (the initial empty-system transient
    /// is negligible at the run lengths the callers use).
    pub fn run(&self, customers: u64, seed: u64) -> QueueStats {
        assert!(customers > 100, "need a meaningful run length");
        let st = St {
            interarrival: self.interarrival.clone(),
            service: self.service.clone(),
            pool: ServerPool::new(self.servers, SimTime::ZERO),
            rng: wt_des::rng::RngFactory::new(seed).stream("queue"),
        };
        let mut sim = Simulation::new(st, seed);
        sim.schedule_at(SimTime::ZERO, Ev::Arrival);
        // Run until enough completions.
        while sim.model().pool.completions() < customers {
            if !sim.step() {
                break;
            }
        }
        let now = sim.now();
        let st = sim.model();
        let wq = st.pool.waits().mean();
        let service_mean = self.service.mean();
        QueueStats {
            wq,
            w: wq + service_mean,
            lq: st.pool.avg_queue_len(now),
            rho: st.pool.utilization(now),
            completed: st.pool.completions(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wt_analytic::{Mg1, Mm1, Mmc};

    #[test]
    fn mm1_sim_matches_formula() {
        let q = QueueSim {
            interarrival: Dist::exponential(8.0),
            service: Dist::exponential(10.0),
            servers: 1,
        };
        let stats = q.run(200_000, 1);
        let formula = Mm1::new(8.0, 10.0);
        assert!(
            (stats.wq - formula.wq()).abs() / formula.wq() < 0.05,
            "sim Wq {} vs formula {}",
            stats.wq,
            formula.wq()
        );
        assert!((stats.rho - 0.8).abs() < 0.01, "rho {}", stats.rho);
    }

    #[test]
    fn mmc_sim_matches_formula() {
        let q = QueueSim {
            interarrival: Dist::exponential(10.0),
            service: Dist::exponential(4.0),
            servers: 4,
        };
        let stats = q.run(200_000, 2);
        let formula = Mmc::new(10.0, 4.0, 4);
        assert!(
            (stats.wq - formula.wq()).abs() / formula.wq() < 0.1,
            "sim Wq {} vs formula {}",
            stats.wq,
            formula.wq()
        );
    }

    #[test]
    fn mg1_lognormal_matches_pollaczek_khinchine() {
        let service = Dist::lognormal_mean_cv(0.08, 1.5);
        let q = QueueSim {
            interarrival: Dist::exponential(8.0),
            service: service.clone(),
            servers: 1,
        };
        let stats = q.run(300_000, 3);
        let formula = Mg1::new(8.0, service);
        assert!(
            (stats.wq - formula.wq()).abs() / formula.wq() < 0.08,
            "sim Wq {} vs P-K {}",
            stats.wq,
            formula.wq()
        );
    }

    #[test]
    fn md1_half_of_mm1() {
        let det = QueueSim {
            interarrival: Dist::exponential(8.0),
            service: Dist::deterministic(0.1),
            servers: 1,
        };
        let exp = QueueSim {
            interarrival: Dist::exponential(8.0),
            service: Dist::exponential(10.0),
            servers: 1,
        };
        let sd = det.run(150_000, 4);
        let se = exp.run(150_000, 4);
        let ratio = sd.wq / se.wq;
        assert!((ratio - 0.5).abs() < 0.06, "M/D/1 / M/M/1 = {ratio}");
    }
}
